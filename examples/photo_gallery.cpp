/**
 * @file
 * Photo gallery: the paper's Fig. 1 scenario as a runnable program.
 *
 * The gallery kicks off an AsyncTask that decodes thumbnails for five
 * seconds and then writes them into its ImageViews — capturing raw view
 * references at task start, as countless real apps do. The user rotates
 * mid-download:
 *
 *   - stock Android 10 destroys the activity; the task returns into
 *     released views and the process dies with a NullPointerException;
 *   - RCHDroid shadows the old instance, shows a sunny one, and
 *     lazy-migrates the thumbnails when they arrive.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/analyzer.h"
#include "observability.h"
#include "sim/android_system.h"
#include "view/image_view.h"
#include "view/text_view.h"
#include "view/view_group.h"

using namespace rchdroid;

namespace {

constexpr int kThumbnails = 6;

class GalleryActivity final : public Activity
{
  public:
    GalleryActivity() : Activity("com.example.photos/.GalleryActivity") {}

    /** Start the thumbnail download (app logic, called by the UI). */
    void
    loadThumbnails()
    {
        auto self = context().thread->activityForToken(token());
        auto task = std::make_shared<AsyncTask>(*context().thread, self,
                                                "thumbnailLoader");
        // The classic bug: raw view pointers captured at task start.
        std::vector<ImageView *> slots;
        window().decorView().visit([&slots](View &v) {
            if (auto *image = dynamic_cast<ImageView *>(&v))
                slots.push_back(image);
        });
        task->execute(seconds(5), [slots] {
            int index = 0;
            for (ImageView *slot : slots) {
                slot->setDrawable(DrawableValue{
                    "thumb_" + std::to_string(index++), 256, 256});
            }
        });
    }

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto title = std::make_unique<TextView>("title");
        title->setText("Holiday album");
        root->addChild(std::move(title));
        for (int i = 0; i < kThumbnails; ++i) {
            root->addChild(
                std::make_unique<ImageView>("slot_" + std::to_string(i)));
        }
        setContentView(std::move(root));
    }
};

void
runOn(RuntimeChangeMode mode, examples::ObservabilityFlags &obs)
{
    sim::SystemOptions options;
    options.mode = mode;
    sim::AndroidSystem device(options);

    sim::CustomAppParams params;
    params.process = "com.example.photos";
    params.component = "com.example.photos/.GalleryActivity";
    params.factory = [] { return std::make_unique<GalleryActivity>(); };
    device.installCustom(params);
    device.launchProcess("com.example.photos");

    auto &thread = *device.installedProcess("com.example.photos").thread;
    auto activity = std::dynamic_pointer_cast<GalleryActivity>(
        device.foregroundActivityOf("com.example.photos"));
    thread.postAppCallback([activity] { activity->loadThumbnails(); });
    device.runFor(seconds(1));

    // Rotate while the download is in flight.
    device.rotate();
    device.waitHandlingComplete();
    device.runFor(seconds(6)); // the task returns in here

    std::printf("--- %s ---\n", runtimeChangeModeName(mode));
    if (thread.crashed()) {
        std::printf("  app CRASHED: %s\n",
                    thread.crashInfo()->reason.c_str());
        std::printf("  (the AsyncTask returned into the restarted "
                    "activity's released views)\n");
        obs.report(device);
        return;
    }
    auto foreground = device.foregroundActivityOf("com.example.photos");
    int loaded = 0;
    foreground->window().decorView().visit([&loaded](View &v) {
        if (auto *image = dynamic_cast<ImageView *>(&v))
            loaded += image->drawable().has_value();
    });
    std::printf("  app alive; %d/%d thumbnails visible on the %s screen\n",
                loaded, kThumbnails,
                foreground->configuration().orientation ==
                        Orientation::Portrait
                    ? "portrait"
                    : "landscape");
    const auto *handler =
        device.installedProcess("com.example.photos").handler.get();
    std::printf("  old instance state: %s; lazy migrations performed: %llu\n",
                lifecycleStateName(activity->lifecycleState()),
                static_cast<unsigned long long>(
                    handler ? handler->stats().views_migrated : 0));
    obs.report(device);
}

} // namespace

int
main(int argc, char **argv)
{
    analysis::CheckMode check(argc, argv);
    examples::ObservabilityFlags obs(argc, argv);
    std::printf("rotating a photo gallery mid-download (Fig. 1 of the "
                "paper):\n\n");
    runOn(RuntimeChangeMode::Restart, obs);
    runOn(RuntimeChangeMode::RchDroid, obs);
    const int obs_rc = obs.finish();
    const int check_rc = check.finish();
    return check_rc ? check_rc : obs_rc;
}
