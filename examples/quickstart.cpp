/**
 * @file
 * Quickstart: write an Activity, install it on a simulated device
 * running RCHDroid, rotate the screen, and watch the state survive —
 * with zero runtime-change code in the app.
 *
 *   $ ./quickstart
 *   $ ./quickstart --trace-out=trace.json --metrics-json=metrics.json --dumpsys
 *
 * The same app runs on stock Android 10 first, so the before/after is
 * visible in one output.
 */
#include <cstdio>
#include <memory>

#include "analysis/analyzer.h"
#include "observability.h"
#include "sim/android_system.h"
#include "view/text_view.h"
#include "view/view_group.h"

using namespace rchdroid;

namespace {

/**
 * A note-taking screen: a label set programmatically (TextView text is
 * NOT saved by stock Android's default instance state) and an id-less
 * EditText (skipped entirely by the default save) — two textbook ways
 * real apps lose state on rotation.
 */
class NotesActivity final : public Activity
{
  public:
    NotesActivity() : Activity("com.example.notes/.NotesActivity") {}

  protected:
    void
    onCreate(const Bundle *saved_state) override
    {
        (void)saved_state; // we never wrote onSaveInstanceState — typical!
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto status = std::make_unique<TextView>("status");
        status->setText("0 unsaved notes");
        root->addChild(std::move(status));
        root->addChild(std::make_unique<EditText>("")); // oops: no id
        setContentView(std::move(root));
    }
};

/** Run the scenario on one system and report what the user sees. */
void
runOn(RuntimeChangeMode mode, examples::ObservabilityFlags &obs)
{
    sim::SystemOptions options;
    options.mode = mode;
    sim::AndroidSystem device(options);

    sim::CustomAppParams params;
    params.process = "com.example.notes";
    params.component = "com.example.notes/.NotesActivity";
    params.factory = [] { return std::make_unique<NotesActivity>(); };
    device.installCustom(params);
    device.launchProcess("com.example.notes");

    // The user types a draft and the app updates its status label.
    auto activity = device.foregroundActivityOf("com.example.notes");
    device.installedProcess("com.example.notes")
        .thread->postAppCallback([activity] {
            activity->findViewByIdAs<TextView>("status")->setText(
                "1 unsaved note");
            EditText *draft = nullptr;
            activity->window().decorView().visit([&draft](View &v) {
                if (!draft)
                    draft = dynamic_cast<EditText *>(&v);
            });
            draft->typeText("buy milk, fix the bug, call mum");
        });
    device.runFor(milliseconds(10));

    // The runtime change: the user rotates the phone.
    device.rotate();
    device.waitHandlingComplete();
    device.runFor(seconds(1));

    auto after = device.foregroundActivityOf("com.example.notes");
    EditText *draft = nullptr;
    after->window().decorView().visit([&draft](View &v) {
        if (!draft)
            draft = dynamic_cast<EditText *>(&v);
    });
    std::printf("%-11s handling=%6.1fms  status=\"%s\"  draft=\"%s\"\n",
                runtimeChangeModeName(mode), device.lastHandlingMs(),
                after->findViewByIdAs<TextView>("status")->text().c_str(),
                draft->text().c_str());
    obs.report(device);
}

} // namespace

int
main(int argc, char **argv)
{
    analysis::CheckMode check(argc, argv);
    examples::ObservabilityFlags obs(argc, argv);
    std::printf("rotating a note-taking app on both systems:\n\n");
    runOn(RuntimeChangeMode::Restart, obs);
    runOn(RuntimeChangeMode::RchDroid, obs);
    std::printf("\nstock Android restarted the activity and lost both the "
                "label and the id-less\ndraft; RCHDroid migrated them — "
                "without the app containing a single line of\n"
                "state-preservation code.\n");
    const int obs_rc = obs.finish();
    const int check_rc = check.finish();
    return check_rc ? check_rc : obs_rc;
}
