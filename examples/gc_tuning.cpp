/**
 * @file
 * GC tuning: operating RCHDroid's threshold GC (§3.5) from the public
 * API — how THRESH_T/THRESH_F trade handling latency against resident
 * memory, and how to verify a policy with the built-in telemetry.
 *
 * Three policies run the same workload (a rotation every 12 seconds for
 * three minutes on an image-heavy app):
 *   eager:    THRESH_T = 2 s   — reclaim almost immediately,
 *   paper:    THRESH_T = 50 s  — the paper's sweet spot,
 *   hoarder:  THRESH_T = 10 min — never reclaim in this window.
 */
#include <cstdio>

#include "analysis/analyzer.h"
#include "platform/stats.h"
#include "observability.h"
#include "sim/android_system.h"

using namespace rchdroid;

namespace {

struct PolicyResult
{
    double mean_handling_ms = 0.0;
    double mean_memory_mb = 0.0;
    std::uint64_t flips = 0;
    std::uint64_t inits = 0;
    std::uint64_t collections = 0;
};

PolicyResult
runPolicy(const char *label, RchConfig rch,
          rchdroid::examples::ObservabilityFlags &obs)
{
    sim::SystemOptions options;
    options.mode = RuntimeChangeMode::RchDroid;
    options.rch = rch;
    sim::AndroidSystem device(options);
    const auto spec = apps::makeBenchmarkApp(24);
    device.install(spec);
    device.launch(spec);
    auto &sampler = device.startMemorySampling(spec);

    SampleSet handling;
    for (int i = 0; i < 15; ++i) {
        device.runFor(seconds(12));
        device.rotate();
        if (!device.waitHandlingComplete())
            break;
        handling.add(device.lastHandlingMs());
    }
    sampler.stop();

    PolicyResult result;
    result.mean_handling_ms = handling.mean();
    result.mean_memory_mb = sampler.meanMb();
    const auto &stats = device.installed(spec).handler->stats();
    result.flips = stats.flips;
    result.inits = stats.init_launches;
    result.collections = stats.gc_collections;
    std::printf("%-8s handling=%6.1fms  memory=%6.2fMB  flips=%llu "
                "inits=%llu gc=%llu\n",
                label, result.mean_handling_ms, result.mean_memory_mb,
                static_cast<unsigned long long>(result.flips),
                static_cast<unsigned long long>(result.inits),
                static_cast<unsigned long long>(result.collections));
    obs.report(device);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    analysis::CheckMode check(argc, argv);
    examples::ObservabilityFlags obs(argc, argv);
    std::printf("one rotation every 12 s for 3 minutes, three GC "
                "policies:\n\n");

    RchConfig eager;
    eager.thresh_t = seconds(2);
    eager.thresh_f = 1; // any recent entry at all blocks — almost never
    eager.frequency_window = seconds(5);
    eager.gc_interval = seconds(1);

    RchConfig paper; // the defaults are the paper's choice
    paper.gc_interval = seconds(1);

    RchConfig hoarder;
    hoarder.thresh_t = minutes(10);
    hoarder.gc_interval = seconds(1);

    const auto eager_result = runPolicy("eager", eager, obs);
    const auto paper_result = runPolicy("paper", paper, obs);
    const auto hoarder_result = runPolicy("hoarder", hoarder, obs);

    std::printf("\nreading the trade-off (Fig. 11 of the paper):\n");
    std::printf("  eager reclaims between changes, so most changes pay "
                "the init path\n  (%.1f ms vs %.1f ms) while saving %.2f MB "
                "of average residency;\n",
                eager_result.mean_handling_ms,
                hoarder_result.mean_handling_ms,
                hoarder_result.mean_memory_mb -
                    eager_result.mean_memory_mb);
    std::printf("  the paper's THRESH_T=50s keeps the shadow through this "
                "cadence (flips=%llu)\n  at hoarder-level latency without "
                "hoarding across long idles.\n",
                static_cast<unsigned long long>(paper_result.flips));
    const int obs_rc = obs.finish();
    const int check_rc = check.finish();
    return check_rc ? check_rc : obs_rc;
}
