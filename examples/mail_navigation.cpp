/**
 * @file
 * Mail navigation: a two-screen app (inbox → message detail) driven
 * through the public navigation API — startActivity, back press — with
 * a rotation landing on each screen.
 *
 * Shows what RCHDroid means for multi-activity apps: the change is
 * handled for whichever screen is in front, the inbox's half-typed
 * search box survives being backgrounded AND rotated, and navigating
 * away releases the detail screen's shadow instance immediately (the
 * §3.5 rule), which the printed ATMS record count makes visible.
 */
#include <cstdio>
#include <memory>

#include "analysis/analyzer.h"
#include "observability.h"
#include "sim/android_system.h"
#include "view/list_view.h"
#include "view/text_view.h"
#include "view/view_group.h"

using namespace rchdroid;

namespace {

constexpr const char *kProcess = "com.example.mail";
constexpr const char *kInbox = "com.example.mail/.InboxActivity";
constexpr const char *kDetail = "com.example.mail/.DetailActivity";

class InboxActivity final : public Activity
{
  public:
    InboxActivity() : Activity(kInbox) {}

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto search = std::make_unique<EditText>("search");
        search->setHint("search mail");
        root->addChild(std::move(search));
        auto list = std::make_unique<ListView>("messages");
        list->setItems({"Re: invoices", "Build green", "Lunch?"});
        root->addChild(std::move(list));
        setContentView(std::move(root));
    }
};

class DetailActivity final : public Activity
{
  public:
    DetailActivity() : Activity(kDetail) {}

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto subject = std::make_unique<TextView>("subject");
        subject->setText("Re: invoices");
        root->addChild(std::move(subject));
        auto body = std::make_unique<ScrollView>("body");
        body->addChild(std::make_unique<TextView>("body_text"));
        root->addChild(std::move(body));
        setContentView(std::move(root));
    }
};

void
report(sim::AndroidSystem &device, const char *step)
{
    auto foreground = device.foregroundActivityOf(kProcess);
    std::printf("%-34s foreground=%-16s records=%zu  handling=%6.1fms\n",
                step,
                foreground ? (foreground->component() == kInbox ? "Inbox"
                                                                : "Detail")
                           : "(none)",
                device.atms().recordCount(), device.lastHandlingMs());
}

} // namespace

int
main(int argc, char **argv)
{
    analysis::CheckMode check(argc, argv);
    examples::ObservabilityFlags obs(argc, argv);
    sim::SystemOptions options;
    options.mode = RuntimeChangeMode::RchDroid;
    sim::AndroidSystem device(options);

    sim::CustomAppParams params;
    params.process = kProcess;
    params.component = kInbox;
    params.factory = [] { return std::make_unique<InboxActivity>(); };
    device.installCustom(params);
    device.declareExtraComponent(kProcess, kDetail, [] {
        return std::make_unique<DetailActivity>();
    });
    device.launchProcess(kProcess);
    report(device, "launched");

    // The user starts a search...
    auto inbox = device.foregroundActivityOf(kProcess);
    device.installedProcess(kProcess).thread->postAppCallback([inbox] {
        inbox->findViewByIdAs<EditText>("search")->typeText("inv");
    });
    device.runFor(milliseconds(10));

    // ...rotates (RCHDroid shadows the inbox; note the extra record)...
    device.rotate();
    device.waitHandlingComplete();
    report(device, "rotated on the inbox");

    // ...opens a message (the inbox stops; its shadow is released)...
    auto foreground = device.foregroundActivityOf(kProcess);
    device.installedProcess(kProcess).thread->postAppCallback(
        [foreground] { foreground->startActivity(kDetail); });
    device.runFor(seconds(1));
    report(device, "opened a message");

    // ...rotates while reading (the detail screen gets the shadow)...
    device.rotate();
    device.waitHandlingComplete();
    report(device, "rotated on the detail screen");

    // ...and goes back. The detail pair is torn down; the inbox resumes
    // with the search text intact.
    device.pressBack();
    device.runFor(seconds(1));
    report(device, "pressed back");

    auto resumed = device.foregroundActivityOf(kProcess);
    std::printf("\nsearch box after the whole journey: \"%s\"\n",
                resumed->findViewByIdAs<EditText>("search")->text().c_str());
    obs.report(device);
    const int obs_rc = obs.finish();
    const int check_rc = check.finish();
    return check_rc ? check_rc : obs_rc;
}
