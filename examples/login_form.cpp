/**
 * @file
 * Login form: the Twitter example of Fig. 13(a) — "the user name box
 * content is lost after the restart caused by the configuration change"
 * — plus a locale switch, the other common runtime change.
 *
 * The form uses an id-less EditText (stock Android's default save skips
 * it) and a remember-me CheckBox without an id. The user types their
 * name, the device is resized (`wm size`), then the system language
 * changes; on RCHDroid the half-typed form survives both.
 */
#include <cstdio>
#include <memory>

#include "analysis/analyzer.h"
#include "observability.h"
#include "sim/android_system.h"
#include "view/text_view.h"
#include "view/view_group.h"

using namespace rchdroid;

namespace {

class LoginActivity final : public Activity
{
  public:
    LoginActivity() : Activity("com.example.login/.LoginActivity") {}

    EditText *
    nameBox()
    {
        EditText *box = nullptr;
        window().decorView().visit([&box](View &v) {
            if (!box)
                box = dynamic_cast<EditText *>(&v);
        });
        return box;
    }

    CheckBox *
    rememberMe()
    {
        CheckBox *box = nullptr;
        window().decorView().visit([&box](View &v) {
            if (!box)
                box = dynamic_cast<CheckBox *>(&v);
        });
        return box;
    }

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto heading = std::make_unique<TextView>("heading");
        heading->setText(headingFor(configuration().locale));
        root->addChild(std::move(heading));
        auto name = std::make_unique<EditText>(""); // no id: Fig. 13(a)
        name->setHint("username");
        root->addChild(std::move(name));
        auto remember = std::make_unique<CheckBox>("");
        remember->setText("remember me");
        root->addChild(std::move(remember));
        auto sign_in = std::make_unique<Button>("sign_in");
        sign_in->setText("Sign in");
        root->addChild(std::move(sign_in));
        setContentView(std::move(root));
    }

    void
    onConfigurationChanged(const Configuration &config) override
    {
        // Apps that keep the instance still re-localise by hand.
        if (auto *heading = findViewByIdAs<TextView>("heading"))
            heading->setText(headingFor(config.locale));
    }

  private:
    static std::string
    headingFor(const std::string &locale)
    {
        return locale == "fr-FR" ? "Connexion" : "Sign in to your account";
    }
};

void
runOn(RuntimeChangeMode mode, examples::ObservabilityFlags &obs)
{
    sim::SystemOptions options;
    options.mode = mode;
    sim::AndroidSystem device(options);
    sim::CustomAppParams params;
    params.process = "com.example.login";
    params.component = "com.example.login/.LoginActivity";
    params.factory = [] { return std::make_unique<LoginActivity>(); };
    device.installCustom(params);
    device.launchProcess("com.example.login");

    auto &thread = *device.installedProcess("com.example.login").thread;
    auto login = std::dynamic_pointer_cast<LoginActivity>(
        device.foregroundActivityOf("com.example.login"));
    thread.postAppCallback([login] {
        login->nameBox()->typeText("ada.lovelace");
        login->rememberMe()->setChecked(true);
    });
    device.runFor(milliseconds(10));

    device.wmSize(1080, 1920); // resize: the §6 methodology
    device.waitHandlingComplete();
    device.runFor(seconds(1));
    device.setLocale("fr-FR"); // language switch, another runtime change
    device.waitHandlingComplete();
    device.runFor(seconds(1));

    auto after = std::dynamic_pointer_cast<LoginActivity>(
        device.foregroundActivityOf("com.example.login"));
    std::printf("%-11s name=\"%s\"  remember-me=%s\n",
                runtimeChangeModeName(mode),
                after->nameBox()->text().c_str(),
                after->rememberMe()->isChecked() ? "on" : "off");
    obs.report(device);
}

} // namespace

int
main(int argc, char **argv)
{
    analysis::CheckMode check(argc, argv);
    examples::ObservabilityFlags obs(argc, argv);
    std::printf("half-typed login form through a resize and a language "
                "switch:\n\n");
    runOn(RuntimeChangeMode::Restart, obs);
    runOn(RuntimeChangeMode::RchDroid, obs);
    std::printf("\nthe Fig. 13(a) loss class (id-less text box) and its "
                "RCHDroid fix.\n");
    const int obs_rc = obs.finish();
    const int check_rc = check.finish();
    return check_rc ? check_rc : obs_rc;
}
