/**
 * @file
 * Shared observability flags for the example binaries:
 *
 *   --trace-out=FILE     write a Chrome trace-event JSON of the run
 *                        (open in Perfetto / chrome://tracing)
 *   --metrics-json=FILE  write the metrics registry as JSON
 *   --dumpsys            print a dumpsys-style state snapshot per device
 *
 * The helper strips its flags from argv (same pattern as
 * analysis::CheckMode), installs a MetricsRegistry for the whole run,
 * and installs a Tracer only when a trace was requested — with no flags
 * the instrumented framework pays the registry branch and nothing else.
 */
#ifndef RCHDROID_EXAMPLES_OBSERVABILITY_H
#define RCHDROID_EXAMPLES_OBSERVABILITY_H

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "platform/metrics.h"
#include "platform/tracing.h"
#include "sim/dumpsys.h"

namespace rchdroid::examples {

class ObservabilityFlags
{
  public:
    /** Scans argv for the flags above and removes them. */
    ObservabilityFlags(int &argc, char **argv)
    {
        int kept = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--trace-out=", 0) == 0) {
                trace_path_ = arg.substr(std::string("--trace-out=").size());
            } else if (arg.rfind("--metrics-json=", 0) == 0) {
                metrics_path_ =
                    arg.substr(std::string("--metrics-json=").size());
            } else if (arg == "--dumpsys") {
                dumpsys_ = true;
            } else {
                argv[kept++] = argv[i];
            }
        }
        argc = kept;
        registry_guard_.emplace(&registry_);
        if (!trace_path_.empty()) {
            tracer_ = std::make_unique<trace::Tracer>();
            tracer_guard_.emplace(tracer_.get());
        }
    }

    /**
     * Report a finished device: prints dumpsys when requested and takes
     * the metrics snapshot (gauges are sampled from the live system).
     * Call once per device, before it is destroyed.
     */
    void
    report(sim::AndroidSystem &device)
    {
        if (dumpsys_)
            std::fputs(sim::dumpsys(device, &registry_).c_str(), stdout);
        if (!metrics_path_.empty())
            metrics_snapshot_ = sim::metricsJson(device, &registry_);
    }

    /**
     * Write the requested output files.
     * @return 0 on success, 1 on I/O failure (compose with CheckMode's
     *         exit code).
     */
    int
    finish()
    {
        int rc = 0;
        if (!trace_path_.empty()) {
            if (tracer_->writeChromeJson(trace_path_)) {
                std::printf("trace written to %s (%zu events)\n",
                            trace_path_.c_str(), tracer_->eventCount());
            } else {
                std::fprintf(stderr, "failed to write trace to %s\n",
                             trace_path_.c_str());
                rc = 1;
            }
        }
        if (!metrics_path_.empty()) {
            if (metrics_snapshot_.empty())
                metrics_snapshot_ = registry_.toJson();
            std::FILE *f = std::fopen(metrics_path_.c_str(), "w");
            if (f) {
                std::fputs(metrics_snapshot_.c_str(), f);
                std::fclose(f);
                std::printf("metrics written to %s\n", metrics_path_.c_str());
            } else {
                std::fprintf(stderr, "failed to write metrics to %s\n",
                             metrics_path_.c_str());
                rc = 1;
            }
        }
        return rc;
    }

    metrics::MetricsRegistry &registry() { return registry_; }
    trace::Tracer *tracer() { return tracer_.get(); }
    bool dumpsysRequested() const { return dumpsys_; }

  private:
    std::string trace_path_;
    std::string metrics_path_;
    bool dumpsys_ = false;
    metrics::MetricsRegistry registry_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::string metrics_snapshot_;
    /** Guards last: destroyed first, restoring the previous installs. */
    std::optional<metrics::ScopedMetricsRegistry> registry_guard_;
    std::optional<trace::ScopedTracer> tracer_guard_;
};

} // namespace rchdroid::examples

#endif // RCHDROID_EXAMPLES_OBSERVABILITY_H
