#include "mc/explorer.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <utility>

#include "mc/snapshot_session.h"
#include "platform/logging.h"

namespace rchdroid::mc {

namespace {

/** A slept event: its id plus the footprint observed when explored. */
struct SleepEntry
{
    EventId id = kInvalidEventId;
    std::set<std::string> footprint;
    /** Static summary of the same segment, for the MHP oracle. */
    SegmentSummary segment;
};

bool
footprintsIntersect(const std::set<std::string> &a,
                    const std::set<std::string> &b)
{
    // "<barrier>" poisons a footprint: conservatively dependent.
    if (a.count("<barrier>") || b.count("<barrier>"))
        return true;
    for (const std::string &name : a) {
        if (b.count(name))
            return true;
    }
    return false;
}

class Explorer
{
  public:
    explicit Explorer(const ExplorerOptions &options) : options_(options) {}

    ExplorerReport
    run()
    {
        if (options_.snapshots && sim::SnapshotHost::supported()) {
            session_ =
                std::make_unique<SnapshotSession>(options_.max_depth);
            if (!session_->active())
                session_.reset(); // pipe setup failed: replay-from-root
        }
        std::vector<int> prefix;
        ExecutionResult root = execute(prefix);
        report_.stats.schedules_covered = dfs(prefix, root, 0, {});
        report_.stats.distinct_states = visited_.size();
        if (session_ != nullptr) {
            report_.stats.snapshots_active = true;
            report_.stats.snapshots_taken = session_->snapshotsTaken();
            report_.stats.snapshot_restores = session_->restores();
            session_.reset(); // reap checkpoints before returning
        }
        return std::move(report_);
    }

  private:
    using VisitedKey = std::tuple<std::uint64_t, int, int>;

    /**
     * May the two segments be swapped without observable difference,
     * per the static oracle alone? Requires every dispatched class to
     * be known to the spec, pairwise class independence, no barrier,
     * and no post collision on one (looper, due-time) queue slot (two
     * posts into the same slot dispatch in enqueue order, so swapping
     * them is observable; posts into distinct slots dispatch in
     * due-time order either way — the queue-ordering argument in
     * DESIGN.md §14).
     */
    bool
    staticallyIndependent(const SegmentSummary &a,
                          const SegmentSummary &b) const
    {
        const sa::IndependenceSpec *spec = options_.independence;
        if (spec == nullptr || spec->empty())
            return false;
        if (a.barrier || b.barrier)
            return false;
        if (a.classes.empty() || b.classes.empty())
            return false; // injection / unknown content: stay dynamic
        for (const std::string &key_a : a.classes) {
            const sa::StepClass *class_a = spec->find(key_a);
            if (class_a == nullptr)
                return false;
            for (const std::string &key_b : b.classes) {
                const sa::StepClass *class_b = spec->find(key_b);
                if (class_b == nullptr)
                    return false;
                if (!spec->independentClasses(*class_a, *class_b))
                    return false;
            }
        }
        for (const auto &post : a.posts) {
            if (b.posts.count(post))
                return false;
        }
        return true;
    }

    /**
     * Is {option 0} a persistent set at this choice point? True when
     * the spec is closed-world process-isolated and every option is an
     * event on a looper the spec maps to a *distinct* process: the
     * options pairwise commute (different processes never interact
     * under the isolation obligation), every future event stays inside
     * one listed process too, so exploring only the default covers the
     * whole subtree up to Mazurkiewicz equivalence.
     */
    bool
    oracleAllowsPrune(const ChoicePoint &cp) const
    {
        const sa::IndependenceSpec *spec = options_.independence;
        if (spec == nullptr || !spec->processIsolated())
            return false;
        std::set<std::string> processes;
        for (const ChoiceOption &option : cp.options) {
            if (option.kind != ChoiceOption::Kind::Event)
                return false; // injections/end are global
            const std::string *process = spec->looperProcess(option.label);
            if (process == nullptr || !processes.insert(*process).second)
                return false;
        }
        return true;
    }

    ExecutionResult
    execute(const std::vector<int> &schedule, bool last_use = false)
    {
        ++report_.stats.executions;
        ExecutionOptions eo;
        eo.scenario = options_.scenario;
        eo.schedule = schedule;
        eo.max_choice_points = options_.max_depth;
        eo.oracles = options_.oracles;
        eo.run_analysis = options_.run_analysis;
        eo.fingerprints = options_.reduction;
        ExecutionResult result =
            session_ != nullptr
                ? session_->execute(eo, last_use, closed_keys_)
                : runExecution(eo);
        // "Replayed" = redundant prefix work: events this execution
        // re-ran up to its divergence point (the last schedule entry)
        // that an earlier execution had already performed. Checkpoint
        // resumes inherit that prefix instead ("saved").
        const int divergence = static_cast<int>(schedule.size()) - 1;
        if (divergence >= 0 &&
            divergence < static_cast<int>(result.choice_points.size())) {
            const std::uint64_t prefix_events =
                result.choice_points[static_cast<std::size_t>(divergence)]
                    .events_before;
            if (prefix_events > result.events_at_resume)
                report_.stats.events_replayed +=
                    prefix_events - result.events_at_resume;
        }
        report_.stats.events_saved += result.events_at_resume;
        for (const McViolation &violation : result.violations) {
            if (!seen_.insert({violation.oracle, violation.summary}).second)
                continue;
            report_.violations.push_back(violation);
        }
        if (!result.violations.empty() &&
            report_.first_violation_schedule.empty()) {
            // Normalise to exactly what the execution chose, so the
            // replay is self-contained even if `schedule` was shorter.
            for (const ChoicePoint &cp : result.choice_points)
                report_.first_violation_schedule.push_back(cp.chosen);
            if (report_.first_violation_schedule.empty())
                report_.first_violation_schedule.push_back(0);
        }
        return result;
    }

    /**
     * Will any sibling after `i` be executed at this choice point?
     * Mirrors the skip conditions of the dfs loop exactly (the sleep
     * set is fixed across one node's iteration, so the answer is
     * stable). False means sibling `i` is the checkpoint's last user
     * and its resume may consume the checkpoint in place.
     */
    bool
    moreSiblingsAfter(const ChoicePoint &cp, int i,
                      const std::vector<SleepEntry> &sleep,
                      bool prune_siblings) const
    {
        for (int j = i + 1; j < static_cast<int>(cp.options.size());
             ++j) {
            if (j == cp.chosen)
                continue; // spine reuse: no execution, no resume
            if (prune_siblings)
                continue;
            const ChoiceOption &option = cp.options[j];
            if (options_.reduction &&
                option.kind == ChoiceOption::Kind::Event &&
                std::any_of(sleep.begin(), sleep.end(),
                            [&option](const SleepEntry &entry) {
                                return entry.id == option.event_id;
                            }))
                continue;
            return true;
        }
        return false;
    }

    /**
     * Explore the subtree below `prefix`; `spine` is an execution whose
     * schedule extends `prefix` with defaults. Returns the number of
     * schedules the subtree covers.
     */
    std::uint64_t
    dfs(std::vector<int> &prefix, const ExecutionResult &spine,
        std::size_t level, std::vector<SleepEntry> sleep)
    {
        if (truncated_)
            return 0;
        if (level >= spine.choice_points.size())
            return 1; // the path ran out of choice points: one schedule
        ++report_.stats.nodes;
        const ChoicePoint &cp = spine.choice_points[level];

        VisitedKey key{cp.fingerprint_before,
                       options_.max_depth - static_cast<int>(level),
                       cp.injections_left};
        if (options_.reduction) {
            auto it = visited_.find(key);
            if (it != visited_.end()) {
                ++report_.stats.visited_hits;
                return it->second;
            }
        }

        std::uint64_t covered = 0;
        std::vector<SleepEntry> explored;
        const bool prune_siblings =
            options_.reduction && oracleAllowsPrune(cp);
        for (int i = 0; i < static_cast<int>(cp.options.size()); ++i) {
            if (truncated_)
                break;
            const ChoiceOption &option = cp.options[i];
            if (prune_siblings && i != cp.chosen) {
                ++report_.stats.mhp_prunes;
                continue;
            }
            const bool is_event = option.kind == ChoiceOption::Kind::Event;
            if (options_.reduction && is_event &&
                std::any_of(sleep.begin(), sleep.end(),
                            [&option](const SleepEntry &entry) {
                                return entry.id == option.event_id;
                            })) {
                ++report_.stats.sleep_skips;
                continue;
            }

            prefix.push_back(i);
            ExecutionResult branch;
            const ExecutionResult *child = nullptr;
            if (i == cp.chosen) {
                child = &spine; // the spine already took this option
            } else if (report_.stats.executions >=
                       options_.max_executions) {
                truncated_ = true;
                report_.stats.truncated = true;
                prefix.pop_back();
                break;
            } else {
                branch = execute(prefix,
                                 !moreSiblingsAfter(cp, i, sleep,
                                                    prune_siblings));
                child = &branch;
            }

            static const std::set<std::string> kEmpty;
            static const SegmentSummary kEmptySegment;
            const bool has_cp = child->choice_points.size() > level;
            const std::set<std::string> &footprint =
                has_cp ? child->choice_points[level].segment_footprint
                       : kEmpty;
            const SegmentSummary &segment =
                has_cp ? child->choice_points[level].segment
                       : kEmptySegment;

            std::vector<SleepEntry> child_sleep;
            if (options_.reduction) {
                for (const std::vector<SleepEntry> *source :
                     {&sleep, &explored}) {
                    for (const SleepEntry &entry : *source) {
                        bool keep = !footprintsIntersect(entry.footprint,
                                                         footprint);
                        if (!keep && staticallyIndependent(entry.segment,
                                                           segment)) {
                            // Dynamic footprints touched the same
                            // looper names, but the oracle proves the
                            // segments commute: stay asleep.
                            keep = true;
                            ++report_.stats.mhp_sleep_keeps;
                        }
                        if (keep)
                            child_sleep.push_back(entry);
                    }
                }
            }
            covered += dfs(prefix, *child, level + 1,
                           std::move(child_sleep));
            prefix.pop_back();

            if (options_.reduction && is_event)
                explored.push_back(
                    SleepEntry{option.event_id, footprint, segment});
        }

        if (options_.reduction && !truncated_) {
            visited_[key] = covered;
            // Mirror the entry as a closed-subtree key for the
            // checkpoint veto (ships to workers with each resume —
            // their forked copies of `visited_` are frozen in time).
            closed_keys_.push_back(choiceStateKey(
                cp.fingerprint_before,
                options_.max_depth - static_cast<int>(level),
                cp.injections_left));
        }
        return covered;
    }

    ExplorerOptions options_;
    ExplorerReport report_;
    std::unique_ptr<SnapshotSession> session_;
    std::map<VisitedKey, std::uint64_t> visited_;
    /** choiceStateKey() of every visited_ entry, in insertion order. */
    std::vector<std::uint64_t> closed_keys_;
    std::set<std::pair<std::string, std::string>> seen_;
    bool truncated_ = false;
};

} // namespace

ExplorerReport
explore(const ExplorerOptions &options)
{
    RCH_ASSERT(options.scenario != nullptr, "explore without scenario");
    return Explorer(options).run();
}

} // namespace rchdroid::mc
