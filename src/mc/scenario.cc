#include "mc/scenario.h"

#include <memory>

#include "view/image_view.h"
#include "view/list_view.h"
#include "view/text_view.h"
#include "view/view_group.h"

namespace rchdroid::mc {

namespace {

// ---------------------------------------------------------------------
// Scenario app code. Small clones of the examples/ programs — the
// checker needs its own copies because examples/ are standalone
// binaries, and the activities here are tuned for exploration (small
// view trees keep the state fingerprint cheap).
// ---------------------------------------------------------------------

constexpr const char *kNotesProcess = "com.example.notes";
constexpr const char *kNotesComponent = "com.example.notes/.NotesActivity";

/** quickstart: a status label plus an id-less draft box. */
class McNotesActivity final : public Activity
{
  public:
    McNotesActivity() : Activity(kNotesComponent) {}

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto status = std::make_unique<TextView>("status");
        status->setText("0 unsaved notes");
        root->addChild(std::move(status));
        root->addChild(std::make_unique<EditText>("")); // id-less
        setContentView(std::move(root));
    }
};

constexpr const char *kLoginProcess = "com.example.login";
constexpr const char *kLoginComponent = "com.example.login/.LoginActivity";

/** login_form: Fig. 13(a) — id-less name box and remember-me. */
class McLoginActivity final : public Activity
{
  public:
    McLoginActivity() : Activity(kLoginComponent) {}

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto name = std::make_unique<EditText>("");
        name->setHint("username");
        root->addChild(std::move(name));
        auto remember = std::make_unique<CheckBox>("");
        remember->setText("remember me");
        root->addChild(std::move(remember));
        setContentView(std::move(root));
    }
};

constexpr const char *kPhotosProcess = "com.example.photos";
constexpr const char *kPhotosComponent =
    "com.example.photos/.GalleryActivity";
constexpr int kThumbnails = 3;

/** photo_gallery / seeded_gc: Fig. 1 — async views captured raw. */
class McGalleryActivity final : public Activity
{
  public:
    McGalleryActivity() : Activity(kPhotosComponent) {}

    void
    loadThumbnails(SimDuration duration)
    {
        auto self = context().thread->activityForToken(token());
        auto task = std::make_shared<AsyncTask>(*context().thread, self,
                                                "thumbnailLoader");
        std::vector<ImageView *> slots;
        window().decorView().visit([&slots](View &v) {
            if (auto *image = dynamic_cast<ImageView *>(&v))
                slots.push_back(image);
        });
        task->execute(duration, [slots] {
            int index = 0;
            for (ImageView *slot : slots) {
                slot->setDrawable(DrawableValue{
                    "thumb_" + std::to_string(index++), 256, 256});
            }
        });
    }

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto title = std::make_unique<TextView>("title");
        title->setText("Holiday album");
        root->addChild(std::move(title));
        for (int i = 0; i < kThumbnails; ++i) {
            root->addChild(
                std::make_unique<ImageView>("slot_" + std::to_string(i)));
        }
        setContentView(std::move(root));
    }
};

constexpr const char *kMailProcess = "com.example.mail";
constexpr const char *kInbox = "com.example.mail/.InboxActivity";
constexpr const char *kDetail = "com.example.mail/.DetailActivity";

class McInboxActivity final : public Activity
{
  public:
    McInboxActivity() : Activity(kInbox) {}

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto search = std::make_unique<EditText>("search");
        search->setHint("search mail");
        root->addChild(std::move(search));
        auto list = std::make_unique<ListView>("messages");
        list->setItems({"Re: invoices", "Build green", "Lunch?"});
        root->addChild(std::move(list));
        setContentView(std::move(root));
    }
};

class McDetailActivity final : public Activity
{
  public:
    McDetailActivity() : Activity(kDetail) {}

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        auto subject = std::make_unique<TextView>("subject");
        subject->setText("Re: invoices");
        root->addChild(std::move(subject));
        setContentView(std::move(root));
    }
};

/** reduction_demo: does nothing but host a callback chain. */
class McPingActivity final : public Activity
{
  public:
    explicit McPingActivity(const std::string &component)
        : Activity(component)
    {
    }

  protected:
    void
    onCreate(const Bundle *) override
    {
        auto root = std::make_unique<LinearLayout>(
            "root", LinearLayout::Direction::Vertical);
        root->addChild(std::make_unique<TextView>("label"));
        setContentView(std::move(root));
    }
};

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

EditText *
firstEditText(Activity &activity)
{
    EditText *box = nullptr;
    activity.window().decorView().visit([&box](View &v) {
        if (!box)
            box = dynamic_cast<EditText *>(&v);
    });
    return box;
}

CheckBox *
firstCheckBox(Activity &activity)
{
    CheckBox *box = nullptr;
    activity.window().decorView().visit([&box](View &v) {
        if (!box)
            box = dynamic_cast<CheckBox *>(&v);
    });
    return box;
}

sim::SystemOptions
rchOptions(RchConfig rch = {})
{
    sim::SystemOptions options;
    options.mode = RuntimeChangeMode::RchDroid;
    options.rch = rch;
    return options;
}

/** One independence-spec class (sa/mhp.h). */
sa::StepClass
stepClass(std::string process, std::string looper, std::string tag,
          sa::LocationMask reads = 0, sa::LocationMask writes = 0)
{
    sa::StepClass step;
    step.process = std::move(process);
    step.looper = std::move(looper);
    step.tag = std::move(tag);
    step.reads = reads;
    step.writes = writes;
    return step;
}

/**
 * The AsyncTask + GC-tick class vocabulary of one RCHDroid app process:
 * the worker-side doInBackground (touches nothing shared), the
 * main-looper completion (writes the captured view tree when the app
 * holds raw references), and the shadow GC tick (may destroy the same
 * tree). Used both as a closed-world spec (gc_tuning) and as partial
 * guidance (photo_gallery, seeded_gc).
 */
void
addAsyncAppClasses(sa::IndependenceSpec &spec, const std::string &process,
                   const std::string &task_name)
{
    spec.classes.push_back(stepClass(process, process + ".async",
                                     task_name + ".doInBackground"));
    spec.classes.push_back(stepClass(process, process + ".main",
                                     task_name + ".onPostExecute",
                                     /*reads=*/0,
                                     /*writes=*/sa::kViewsBit));
    spec.classes.push_back(stepClass(process, process + ".main", "gcTick",
                                     /*reads=*/0,
                                     /*writes=*/sa::kViewsBit));
}

/** Post a chain of `remaining` zero-cost callbacks onto `thread`. */
void
pingChain(ActivityThread &thread, int remaining)
{
    thread.postAppCallback(
        [&thread, remaining] {
            if (remaining > 1)
                pingChain(thread, remaining - 1);
        },
        0, "ping");
}

/**
 * Post a 1 s-period callback chain whose due times sit exactly on the
 * grid (zero cost, absolute re-post): chains started at the same
 * instant in two processes tie at every second.
 */
void
pulseChain(sim::AndroidSystem &device, const std::string &process,
           int remaining)
{
    device.installedProcess(process).thread->postAppCallbackAt(
        device.scheduler().now() + seconds(1),
        [&device, process, remaining] {
            if (remaining > 1)
                pulseChain(device, process, remaining - 1);
        },
        0, "pulse");
}

std::optional<std::string>
aliveWithForeground(sim::AndroidSystem &device, const std::string &process)
{
    if (device.installedProcess(process).thread->crashed())
        return "process " + process + " crashed";
    if (!device.foregroundActivityOf(process))
        return "no foreground activity in " + process;
    return std::nullopt;
}

// ---------------------------------------------------------------------
// The catalogue
// ---------------------------------------------------------------------

Scenario
quickstartScenario()
{
    Scenario s;
    s.name = "quickstart";
    s.description = "note-taking app; draft + label must survive any "
                    "interleaving of rotate / wm size / locale";
    s.make_options = [] { return rchOptions(RchConfig{}); };
    s.setup = [](sim::AndroidSystem &device) {
        sim::CustomAppParams params;
        params.process = kNotesProcess;
        params.component = kNotesComponent;
        params.factory = [] { return std::make_unique<McNotesActivity>(); };
        device.installCustom(params);
        device.launchProcess(kNotesProcess);
        auto activity = device.foregroundActivityOf(kNotesProcess);
        device.installedProcess(kNotesProcess)
            .thread->postAppCallback([activity] {
                activity->findViewByIdAs<TextView>("status")->setText(
                    "1 unsaved note");
                firstEditText(*activity)->typeText("buy milk");
            });
        device.runFor(milliseconds(10));
    };
    s.injections = {InjectionKind::Rotate, InjectionKind::WmSizeToggle,
                    InjectionKind::LocaleToggle};
    s.max_injections = 6;
    s.horizon = seconds(20);
    s.final_check =
        [](sim::AndroidSystem &device) -> std::optional<std::string> {
        if (auto alive = aliveWithForeground(device, kNotesProcess))
            return alive;
        auto fg = device.foregroundActivityOf(kNotesProcess);
        EditText *draft = firstEditText(*fg);
        if (!draft || draft->text() != "buy milk")
            return std::optional<std::string>{"draft text lost"};
        auto *status = fg->findViewByIdAs<TextView>("status");
        if (!status || status->text() != "1 unsaved note")
            return std::optional<std::string>{"status label lost"};
        return std::nullopt;
    };
    return s;
}

Scenario
loginFormScenario()
{
    Scenario s;
    s.name = "login_form";
    s.description = "Fig. 13(a) login form; the half-typed name and "
                    "remember-me must survive every schedule";
    s.make_options = [] { return rchOptions(); };
    s.setup = [](sim::AndroidSystem &device) {
        sim::CustomAppParams params;
        params.process = kLoginProcess;
        params.component = kLoginComponent;
        params.factory = [] { return std::make_unique<McLoginActivity>(); };
        device.installCustom(params);
        device.launchProcess(kLoginProcess);
        auto activity = device.foregroundActivityOf(kLoginProcess);
        device.installedProcess(kLoginProcess)
            .thread->postAppCallback([activity] {
                firstEditText(*activity)->typeText("ada.lovelace");
                firstCheckBox(*activity)->setChecked(true);
            });
        device.runFor(milliseconds(10));
    };
    s.injections = {InjectionKind::Rotate, InjectionKind::WmSizeToggle,
                    InjectionKind::LocaleToggle};
    s.max_injections = 4;
    s.horizon = seconds(20);
    s.final_check =
        [](sim::AndroidSystem &device) -> std::optional<std::string> {
        if (auto alive = aliveWithForeground(device, kLoginProcess))
            return alive;
        auto fg = device.foregroundActivityOf(kLoginProcess);
        EditText *name = firstEditText(*fg);
        if (!name || name->text() != "ada.lovelace")
            return std::optional<std::string>{"username lost"};
        CheckBox *remember = firstCheckBox(*fg);
        if (!remember || !remember->isChecked())
            return std::optional<std::string>{"remember-me lost"};
        return std::nullopt;
    };
    return s;
}

Scenario
photoGalleryScenario()
{
    Scenario s;
    s.name = "photo_gallery";
    s.description = "Fig. 1 gallery; rotations racing a 5 s AsyncTask "
                    "must never crash under RCHDroid";
    s.make_options = [] { return rchOptions(); };
    s.setup = [](sim::AndroidSystem &device) {
        sim::CustomAppParams params;
        params.process = kPhotosProcess;
        params.component = kPhotosComponent;
        params.factory = [] {
            return std::make_unique<McGalleryActivity>();
        };
        device.installCustom(params);
        device.launchProcess(kPhotosProcess);
        auto activity = std::dynamic_pointer_cast<McGalleryActivity>(
            device.foregroundActivityOf(kPhotosProcess));
        device.installedProcess(kPhotosProcess)
            .thread->postAppCallback(
                [activity] { activity->loadThumbnails(seconds(5)); });
        device.runFor(milliseconds(100));
    };
    s.injections = {InjectionKind::Rotate, InjectionKind::WmSizeToggle};
    s.max_injections = 2;
    s.horizon = seconds(8);
    s.tail = seconds(6); // let the task return after the window
    s.final_check =
        [](sim::AndroidSystem &device) -> std::optional<std::string> {
        return aliveWithForeground(device, kPhotosProcess);
    };
    // Partial guidance: injections keep the window open-world, but the
    // task/tick classes still refine sleep-set wakes.
    addAsyncAppClasses(s.independence, kPhotosProcess, "thumbnailLoader");
    return s;
}

Scenario
mailNavigationScenario()
{
    Scenario s;
    s.name = "mail_navigation";
    s.description = "two-screen mail app; changes land on the detail "
                    "screen while the inbox is stopped behind it";
    s.make_options = [] { return rchOptions(); };
    s.setup = [](sim::AndroidSystem &device) {
        sim::CustomAppParams params;
        params.process = kMailProcess;
        params.component = kInbox;
        params.factory = [] { return std::make_unique<McInboxActivity>(); };
        device.installCustom(params);
        device.declareExtraComponent(kMailProcess, kDetail, [] {
            return std::make_unique<McDetailActivity>();
        });
        device.launchProcess(kMailProcess);
        auto inbox = device.foregroundActivityOf(kMailProcess);
        device.installedProcess(kMailProcess)
            .thread->postAppCallback([inbox] {
                inbox->findViewByIdAs<EditText>("search")->typeText("inv");
            });
        device.runFor(milliseconds(10));
        auto foreground = device.foregroundActivityOf(kMailProcess);
        device.installedProcess(kMailProcess)
            .thread->postAppCallback(
                [foreground] { foreground->startActivity(kDetail); });
        device.runFor(seconds(1));
    };
    s.injections = {InjectionKind::Rotate, InjectionKind::LocaleToggle};
    s.max_injections = 3;
    s.horizon = seconds(20);
    s.final_check =
        [](sim::AndroidSystem &device) -> std::optional<std::string> {
        if (auto alive = aliveWithForeground(device, kMailProcess))
            return alive;
        auto fg = device.foregroundActivityOf(kMailProcess);
        if (fg->component() != kDetail)
            return std::optional<std::string>{
                "foreground is not the detail screen"};
        return std::nullopt;
    };
    return s;
}

Scenario
gcTuningScenario()
{
    Scenario s;
    s.name = "gc_tuning";
    s.description = "one rotated benchmark process (1 s GC ticks plus a "
                    "4.5 s AsyncTask) next to two lock-step pulse "
                    "processes: the window is fully process-isolated, "
                    "so the static oracle's persistent sets collapse "
                    "the pulse tree";
    s.make_options = [] {
        RchConfig rch; // paper defaults: THRESH_T keeps the shadow
        rch.gc_interval = seconds(1);
        return rchOptions(rch);
    };
    s.setup = [](sim::AndroidSystem &device) {
        // Pulse processes first: the benchmark launched last keeps the
        // foreground, so only it handles the rotation (shadow + ticks).
        for (int i = 0; i < 2; ++i) {
            const std::string process =
                "com.example.pulse" + std::to_string(i);
            const std::string component = process + "/.PulseActivity";
            sim::CustomAppParams params;
            params.process = process;
            params.component = component;
            params.factory = [component] {
                return std::make_unique<McPingActivity>(component);
            };
            device.installCustom(params);
            device.launchProcess(process);
        }
        const auto bench = apps::makeBenchmarkApp(4, milliseconds(4500));
        device.install(bench);
        device.launch(bench);
        device.rotate(); // shadow forms; the GC tick grid arms
        device.runFor(milliseconds(500)); // drain the sunny start
        device.clickUpdateButton(bench);  // 4.5 s task off the grid
        device.runFor(milliseconds(10));
        // Started back to back at the same instant, the two chains'
        // absolute due times tie at every second of the window.
        for (int i = 0; i < 2; ++i)
            pulseChain(device, "com.example.pulse" + std::to_string(i),
                       10);
    };
    s.injections = {};
    s.horizon = seconds(12);
    s.tail = seconds(6);
    s.final_check =
        [](sim::AndroidSystem &device) -> std::optional<std::string> {
        for (const auto &[process, app] : device.installedApps()) {
            if (app->thread->crashed())
                return std::optional<std::string>{"process " + process +
                                                  " crashed"};
        }
        return std::nullopt;
    };
    // Closed world: inside the window only the benchmark's GC ticks and
    // AsyncTask steps plus the two pulse chains run, and none of them
    // crosses processes.
    s.independence.closed_world = true;
    addAsyncAppClasses(s.independence, "com.eval.Benchmark4",
                       "Benchmark4#task0");
    for (int i = 0; i < 2; ++i) {
        const std::string process = "com.example.pulse" + std::to_string(i);
        s.independence.classes.push_back(
            stepClass(process, process + ".main", "pulse"));
    }
    return s;
}

Scenario
seededGcScenario()
{
    Scenario s;
    s.name = "seeded_gc";
    s.description = "SEEDED BUG: GC mistuned to a 1 s THRESH_T and a "
                    "1 s tick reclaims the shadow the thumbnail task "
                    "still targets — only when a rotation is injected "
                    "while the task is in flight";
    s.make_options = [] {
        RchConfig rch;
        rch.thresh_t = seconds(1);   // reclaim almost immediately
        rch.thresh_f = 100;          // KeepFrequent can never save it
        rch.frequency_window = seconds(60);
        rch.gc_interval = seconds(1);
        return rchOptions(rch);
    };
    s.setup = [](sim::AndroidSystem &device) {
        sim::CustomAppParams params;
        params.process = kPhotosProcess;
        params.component = kPhotosComponent;
        params.factory = [] {
            return std::make_unique<McGalleryActivity>();
        };
        device.installCustom(params);
        device.launchProcess(kPhotosProcess);
        auto activity = std::dynamic_pointer_cast<McGalleryActivity>(
            device.foregroundActivityOf(kPhotosProcess));
        device.installedProcess(kPhotosProcess)
            .thread->postAppCallback(
                [activity] { activity->loadThumbnails(seconds(5)); });
        device.runFor(milliseconds(100));
    };
    s.injections = {InjectionKind::Rotate, InjectionKind::LocaleToggle};
    s.max_injections = 3;
    s.horizon = seconds(6);
    s.tail = seconds(6);
    // Same partial vocabulary as photo_gallery. The collect path fires
    // a sync barrier, which poisons its segment for both the dynamic
    // and the static check — the seeded bug stays reachable.
    addAsyncAppClasses(s.independence, kPhotosProcess, "thumbnailLoader");
    return s;
}

Scenario
reductionDemoScenario()
{
    Scenario s;
    s.name = "reduction_demo";
    s.description = "three independent processes in lock-step: every "
                    "interleaving is equivalent, so the sleep-set + "
                    "state-hash reduction is measurable against naive "
                    "DFS";
    s.make_options = [] {
        sim::SystemOptions options;
        options.mode = RuntimeChangeMode::Restart; // no GC ticks
        return options;
    };
    s.setup = [](sim::AndroidSystem &device) {
        for (int i = 0; i < 3; ++i) {
            const std::string process =
                "com.example.ping" + std::to_string(i);
            const std::string component =
                process + "/.PingActivity" + std::to_string(i);
            sim::CustomAppParams params;
            params.process = process;
            params.component = component;
            params.factory = [component] {
                return std::make_unique<McPingActivity>(component);
            };
            device.installCustom(params);
            device.launchProcess(process);
        }
        // Posted after all three launches so the first wakeups tie.
        for (int i = 0; i < 3; ++i) {
            pingChain(*device
                           .installedProcess("com.example.ping" +
                                             std::to_string(i))
                           .thread,
                      3);
        }
    };
    s.injections = {};
    s.horizon = seconds(1);
    s.tail = milliseconds(10);
    // Closed world: only the three ping chains run, one per process.
    s.independence.closed_world = true;
    for (int i = 0; i < 3; ++i) {
        const std::string process = "com.example.ping" + std::to_string(i);
        s.independence.classes.push_back(
            stepClass(process, process + ".main", "ping"));
    }
    return s;
}

} // namespace

const char *
injectionName(InjectionKind kind)
{
    switch (kind) {
    case InjectionKind::Rotate:
        return "rotate";
    case InjectionKind::WmSizeToggle:
        return "wm_size";
    case InjectionKind::LocaleToggle:
        return "locale";
    }
    return "?";
}

void
applyInjection(sim::AndroidSystem &system, InjectionKind kind)
{
    switch (kind) {
    case InjectionKind::Rotate:
        system.rotate();
        return;
    case InjectionKind::WmSizeToggle:
        if (system.currentConfiguration().screen_width_px == 1080 &&
            system.currentConfiguration().screen_height_px == 1920)
            system.wmSizeReset();
        else
            system.wmSize(1080, 1920);
        return;
    case InjectionKind::LocaleToggle:
        system.setLocale(system.currentConfiguration().locale == "fr-FR"
                             ? "en-US"
                             : "fr-FR");
        return;
    }
}

const std::vector<Scenario> &
scenarioCatalog()
{
    static const std::vector<Scenario> catalog = {
        quickstartScenario(),    loginFormScenario(),
        photoGalleryScenario(),  mailNavigationScenario(),
        gcTuningScenario(),      seededGcScenario(),
        reductionDemoScenario(),
    };
    return catalog;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const Scenario &scenario : scenarioCatalog()) {
        if (scenario.name == name)
            return &scenario;
    }
    return nullptr;
}

} // namespace rchdroid::mc
