#include "mc/independence.h"

namespace rchdroid::mc {

sa::IndependenceSpec
independenceForApp(const apps::AppSpec &spec, sa::HandlingModel handling)
{
    sa::IndependenceSpec independence; // open world (injections)
    const std::string process = spec.process();

    if (spec.async.trigger != apps::AsyncTrigger::Never) {
        // SimulatedApp names its first task "<name>#task0"; the
        // differential drive clicks the button exactly once.
        const std::string task = spec.name + "#task0";

        sa::StepClass background;
        background.process = process;
        background.looper = process + ".async";
        background.tag = task + ".doInBackground";
        independence.classes.push_back(std::move(background));

        sa::StepClass done;
        done.process = process;
        done.looper = process + ".main";
        done.tag = task + ".onPostExecute";
        // Raw captures write the captured instance's tree; patched apps
        // re-resolve ids through the live tree.
        if (!spec.runtimedroid_patched)
            done.writes = sa::kViewsBit;
        independence.classes.push_back(std::move(done));
    }

    if (handling == sa::HandlingModel::RchDroid) {
        sa::StepClass tick;
        tick.process = process;
        tick.looper = process + ".main";
        tick.tag = "gcTick";
        tick.writes = sa::kViewsBit; // may collect the shadow tree
        independence.classes.push_back(std::move(tick));
    }
    return independence;
}

} // namespace rchdroid::mc
