/**
 * @file
 * Counterexample minimization: ddmin over the non-default choices.
 *
 * A violating schedule found by DFS usually carries irrelevant
 * deviations (injections and reorderings that do not matter for the
 * bug). The minimizer runs Zeller-style delta debugging over the set
 * of non-default positions: a candidate keeps a subset of them and
 * resets every other position to 0 (the stock scheduler's choice),
 * then replays. The result is 1-minimal — resetting any single
 * remaining deviation makes the violation disappear — and trailing
 * defaults are trimmed, so the reported counterexample is exactly the
 * decisions that produce the bug.
 */
#ifndef RCHDROID_MC_MINIMIZE_H
#define RCHDROID_MC_MINIMIZE_H

#include <cstdint>
#include <string>
#include <vector>

#include "mc/execution.h"

namespace rchdroid::mc {

struct MinimizeOptions
{
    const Scenario *scenario = nullptr;
    /** Must reproduce a violation when replayed (else returned as-is). */
    std::vector<int> schedule;
    int max_choice_points = 10;
    std::vector<std::string> oracles;
    bool run_analysis = true;
    /** Only keep candidates reproducing this oracle; empty = any. */
    std::string oracle;
};

struct MinimizeResult
{
    /** Minimized schedule, trailing defaults trimmed. */
    std::vector<int> schedule;
    /** Non-default choices remaining (the counterexample's size). */
    int non_default_choices = 0;
    /** Replays spent minimizing. */
    std::uint64_t executions = 0;
    /** False when the input schedule did not reproduce at all. */
    bool reproduced = false;
};

MinimizeResult minimizeCounterexample(const MinimizeOptions &options);

} // namespace rchdroid::mc

#endif // RCHDROID_MC_MINIMIZE_H
