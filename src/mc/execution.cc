#include "mc/execution.h"

#include "mc/snapshot_session.h"
#include "mc/state_hash.h"
#include "platform/logging.h"
#include "sim/dumpsys.h"

namespace rchdroid::mc {

namespace {

/** Options at the current instant: due events, then injections. */
std::vector<ChoiceOption>
buildOptions(SimScheduler &scheduler, const Scenario &scenario,
             SimTime deadline, bool can_inject)
{
    std::vector<ChoiceOption> options;
    std::vector<RunnableEvent> runnable = scheduler.runnableNow();
    if (!runnable.empty() && runnable.front().when > deadline)
        runnable.clear(); // nothing due inside the window any more
    for (const RunnableEvent &event : runnable) {
        ChoiceOption option;
        option.kind = ChoiceOption::Kind::Event;
        option.event_id = event.id;
        option.label = event.label.name ? event.label.name : "?";
        options.push_back(std::move(option));
    }
    if (can_inject) {
        if (options.empty()) {
            // Idle device: the default must stay injection-free, so
            // offer "end the window" as option 0.
            ChoiceOption end;
            end.kind = ChoiceOption::Kind::EndWindow;
            end.label = "end";
            options.push_back(std::move(end));
        }
        for (InjectionKind kind : scenario.injections) {
            ChoiceOption option;
            option.kind = ChoiceOption::Kind::Injection;
            option.injection = kind;
            option.label = injectionName(kind);
            options.push_back(std::move(option));
        }
    }
    return options;
}

} // namespace

std::uint64_t
choiceStateKey(std::uint64_t fingerprint, int remaining_depth,
               int injections_left)
{
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    std::uint64_t h = 1469598103934665603ULL;
    h = (h ^ fingerprint) * kPrime;
    h = (h ^ static_cast<std::uint32_t>(remaining_depth)) * kPrime;
    h = (h ^ static_cast<std::uint32_t>(injections_left)) * kPrime;
    return h;
}

ExecutionResult
runExecution(const ExecutionOptions &options)
{
    RCH_ASSERT(options.scenario != nullptr, "runExecution without scenario");
    const Scenario &scenario = *options.scenario;

    // Install the checker's hooks BEFORE the system exists: the
    // system's own ScopedAnalyzer defers to them, which both routes
    // every event through our footprint recorder and keeps the
    // environment's abort-on-violation default from killing the run.
    McHooks hooks(options.run_analysis);
    ScopedMcHooks hooks_guard(hooks);

    sim::AndroidSystem system(scenario.make_options());
    scenario.setup(system);

    std::vector<std::unique_ptr<Oracle>> oracles = makeOracles(
        options.oracles.empty() ? defaultOracleNames() : options.oracles);
    for (auto &oracle : oracles)
        oracle->onStart(system, hooks);

    ExecutionResult result;
    SimScheduler &scheduler = system.scheduler();
    const SimTime deadline = scheduler.now() + scenario.horizon;
    int injections_used = 0;
    bool violated = false;
    // Mutable copy: a snapshot resume swaps in the new schedule whose
    // suffix this continuation is about to execute.
    std::vector<int> schedule = options.schedule;

    const auto evaluate = [&]() -> bool {
        for (auto &oracle : oracles) {
            if (auto violation = oracle->afterStep(system, hooks)) {
                result.violations.push_back(*violation);
                return true;
            }
        }
        return false;
    };

    while (!violated && scheduler.now() < deadline) {
        const bool within_depth =
            result.choice_points.size() <
            static_cast<std::size_t>(options.max_choice_points);
        const bool can_inject = within_depth && !scenario.injections.empty() &&
                                injections_used < scenario.max_injections;
        std::vector<ChoiceOption> choice_options =
            buildOptions(scheduler, scenario, deadline, can_inject);
        if (choice_options.empty())
            break;

        int chosen = 0;
        if (choice_options.size() >= 2) {
            if (!within_depth) {
                result.hit_depth_cap = true;
            } else {
                ChoicePoint cp;
                cp.options = choice_options;
                cp.injections_left =
                    scenario.max_injections - injections_used;
                cp.events_before = scheduler.executedEvents();
                // The fingerprint is hashed BEFORE the checkpoint is
                // parked, so every continuation forked from it inherits
                // the memoized value instead of re-walking the state.
                if (options.fingerprints) {
                    cp.fingerprint_before = stateFingerprint(system);
                    ++result.fingerprints_computed;
                }
                const int depth =
                    static_cast<int>(result.choice_points.size());
                result.choice_points.push_back(std::move(cp));
                if (options.session != nullptr) {
                    const ChoicePoint &recorded =
                        result.choice_points.back();
                    const std::uint64_t key = choiceStateKey(
                        recorded.fingerprint_before,
                        options.max_choice_points - depth,
                        recorded.injections_left);
                    if (auto resumed =
                            options.session->parkAtChoicePoint(depth,
                                                               key)) {
                        // This process is now a forked continuation of
                        // the checkpoint: adopt the new schedule and
                        // account for the prefix it inherited for free.
                        schedule = std::move(*resumed);
                        result.resume_depth = depth;
                        result.events_at_resume =
                            scheduler.executedEvents();
                        result.fingerprints_computed = 0;
                    }
                }
                chosen = depth < static_cast<int>(schedule.size())
                             ? schedule[static_cast<std::size_t>(depth)]
                             : 0;
                if (chosen < 0 ||
                    chosen >= static_cast<int>(choice_options.size()))
                    chosen = 0; // out of range: take the default
                result.choice_points.back().chosen = chosen;
            }
        }

        const ChoiceOption &option = choice_options[chosen];
        if (option.kind == ChoiceOption::Kind::EndWindow)
            break;
        hooks.beginStep();
        if (option.kind == ChoiceOption::Kind::Injection) {
            applyInjection(system, option.injection);
            ++injections_used;
        } else {
            const bool ran = scheduler.runEventById(option.event_id);
            RCH_ASSERT(ran, "controlled event vanished before running");
        }
        ++result.steps;
        if (!result.choice_points.empty()) {
            ChoicePoint &last = result.choice_points.back();
            last.segment_footprint.insert(hooks.footprint().begin(),
                                          hooks.footprint().end());
            last.segment.merge(hooks.segment());
        }
        violated = evaluate();
    }

    if (!violated) {
        // Deterministic run-out: finish in-flight handling episodes.
        system.runFor(scenario.tail);
        violated = evaluate();
    }
    if (!violated && scenario.final_check) {
        if (auto failure = scenario.final_check(system)) {
            McViolation violation;
            violation.oracle = "final_state";
            violation.summary = *failure;
            violation.time = scheduler.now();
            result.violations.push_back(std::move(violation));
        }
    }
    result.events_total = scheduler.executedEvents();
    if (options.capture_final_state) {
        result.final_fingerprint = stateFingerprint(system);
        result.final_dumpsys = sim::dumpsys(system);
        result.final_trace_csv = system.trace().toCsv();
    }
    return result;
}

} // namespace rchdroid::mc
