/**
 * @file
 * One controlled execution of a scenario under an explicit schedule.
 *
 * The checker is stateless in the Godefroid sense: every schedule is a
 * full re-execution — construct a fresh AndroidSystem, run the
 * scenario's deterministic setup, then drive the scheduler through the
 * "controlled window" one event at a time via the os/nondet_seam.h
 * seam. Wherever ≥2 continuations exist (tied events per the
 * os/dispatch_order.h contract, or a configuration-change injection
 * while budget remains), the executor consults the schedule: entry k
 * is the option index taken at the k-th choice point; indices past the
 * end of the schedule (or out of range) mean option 0, the default.
 * Option 0 is always "the event the stock scheduler would run next",
 * so the empty schedule reproduces the untouched simulator exactly.
 *
 * The executor records each choice point (options, state fingerprint,
 * remaining injection budget) and the looper footprint of each taken
 * segment — everything the explorer (src/mc/explorer.h) needs to drive
 * DFS, sleep sets and visited-state pruning without a second pass.
 *
 * Oracles run after every step; the window stops at the first finding
 * (replays reproduce it bit-for-bit, so nothing is lost by stopping).
 */
#ifndef RCHDROID_MC_EXECUTION_H
#define RCHDROID_MC_EXECUTION_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "mc/hooks.h"
#include "mc/oracles.h"
#include "mc/scenario.h"
#include "os/scheduler.h"

namespace rchdroid::mc {

class SnapshotSession;

/** One runnable continuation at a choice point. */
struct ChoiceOption
{
    enum class Kind : std::uint8_t {
        /** Run a pending scheduler event (id below). */
        Event,
        /** Perform a configuration-change injection (kind below). */
        Injection,
        /** End the controlled window (offered when no event is due). */
        EndWindow,
    };

    Kind kind = Kind::Event;
    EventId event_id = kInvalidEventId;
    InjectionKind injection = InjectionKind::Rotate;
    /** Display label: looper name / "binder" for events, else name. */
    std::string label;
};

/** One recorded choice point along an execution. */
struct ChoicePoint
{
    std::vector<ChoiceOption> options;
    /** Option index actually taken (after clamping). */
    int chosen = 0;
    /** Canonical state hash before the step (0 when not computed). */
    std::uint64_t fingerprint_before = 0;
    /** Injection budget remaining before the step. */
    int injections_left = 0;
    /** Scheduler events executed before this choice (incl. setup). */
    std::uint64_t events_before = 0;
    /**
     * Union of looper footprints of the chosen step and every
     * following single-option step up to the next choice point —
     * the independence data sleep sets work with.
     */
    std::set<std::string> segment_footprint;
    /**
     * Step classes / posted queue slots / barrier flag of the same
     * segment — what the static independence oracle consumes.
     */
    SegmentSummary segment;
};

struct ExecutionOptions
{
    const Scenario *scenario = nullptr;
    /** Choice indices; missing/out-of-range entries mean 0. */
    std::vector<int> schedule;
    /** Depth bound: choice points recorded before defaulting. */
    int max_choice_points = 10;
    /** Oracle names; empty means defaultOracleNames(). */
    std::vector<std::string> oracles;
    /** Run the PR-1 analyzer on this execution. */
    bool run_analysis = true;
    /** Compute state fingerprints at choice points. */
    bool fingerprints = true;
    /**
     * When set, the executor parks a copy-on-write checkpoint at every
     * choice point and may *become* a resumed continuation mid-run: the
     * session hands it a replacement schedule and the executor replays
     * only the suffix (see mc/snapshot_session.h). Null means classic
     * replay-from-root.
     */
    SnapshotSession *session = nullptr;
    /**
     * Capture final fingerprint/dumpsys/trace into the result — the
     * bit-identity evidence the snapshot equivalence tests compare.
     */
    bool capture_final_state = false;
};

struct ExecutionResult
{
    std::vector<ChoicePoint> choice_points;
    /** At most one oracle finding (the window stops on the first). */
    std::vector<McViolation> violations;
    /** Controlled steps taken (choice points + forced steps). */
    std::uint64_t steps = 0;
    /** The depth bound forced defaults on a ≥2-option step. */
    bool hit_depth_cap = false;
    /**
     * Choice-point depth this execution was resumed from (-1 when it
     * ran from the root). Depths < resume_depth were inherited from the
     * checkpoint, not re-executed.
     */
    int resume_depth = -1;
    /** Scheduler events already executed at the resume point. */
    std::uint64_t events_at_resume = 0;
    /** Scheduler events executed by the end of the run. */
    std::uint64_t events_total = 0;
    /** stateFingerprint() walks actually performed by this process. */
    std::uint64_t fingerprints_computed = 0;
    /** Final-state evidence (only with capture_final_state). */
    std::uint64_t final_fingerprint = 0;
    std::string final_dumpsys;
    std::string final_trace_csv;
};

/** Run one schedule start to finish. Deterministic. */
ExecutionResult runExecution(const ExecutionOptions &options);

/**
 * Canonical 64-bit key of a choice-point state: the explorer's
 * visited-table tuple (fingerprint, remaining depth, remaining
 * injection budget) mixed FNV-style. Both the explorer (when closing a
 * subtree) and the executor (when deciding whether a checkpoint could
 * ever be resumed) must derive keys through this one function.
 */
std::uint64_t choiceStateKey(std::uint64_t fingerprint,
                             int remaining_depth, int injections_left);

} // namespace rchdroid::mc

#endif // RCHDROID_MC_EXECUTION_H
