#include "mc/snapshot_session.h"

#include <cstring>

#include "platform/logging.h"

namespace rchdroid::mc {

namespace {

/** Little-endian append-only writer for the result/schedule codec. */
class Writer
{
  public:
    void
    u8(std::uint8_t value)
    {
        out_.push_back(static_cast<char>(value));
    }

    void
    u32(std::uint32_t value)
    {
        raw(&value, sizeof value);
    }

    void
    u64(std::uint64_t value)
    {
        raw(&value, sizeof value);
    }

    void
    i32(std::int32_t value)
    {
        raw(&value, sizeof value);
    }

    void
    i64(std::int64_t value)
    {
        raw(&value, sizeof value);
    }

    void
    str(const std::string &value)
    {
        u32(static_cast<std::uint32_t>(value.size()));
        out_.append(value);
    }

    std::string
    take()
    {
        return std::move(out_);
    }

  private:
    void
    raw(const void *data, std::size_t size)
    {
        out_.append(static_cast<const char *>(data), size);
    }

    std::string out_;
};

/** Bounds-checked cursor over an encoded payload. */
class Reader
{
  public:
    explicit Reader(const std::string &payload) : payload_(payload) {}

    std::uint8_t
    u8()
    {
        std::uint8_t value = 0;
        raw(&value, sizeof value);
        return value;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t value = 0;
        raw(&value, sizeof value);
        return value;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t value = 0;
        raw(&value, sizeof value);
        return value;
    }

    std::int32_t
    i32()
    {
        std::int32_t value = 0;
        raw(&value, sizeof value);
        return value;
    }

    std::int64_t
    i64()
    {
        std::int64_t value = 0;
        raw(&value, sizeof value);
        return value;
    }

    std::string
    str()
    {
        const std::uint32_t size = u32();
        RCH_ASSERT(pos_ + size <= payload_.size(),
                   "truncated snapshot payload string");
        std::string value = payload_.substr(pos_, size);
        pos_ += size;
        return value;
    }

    bool
    done() const
    {
        return pos_ == payload_.size();
    }

  private:
    void
    raw(void *data, std::size_t size)
    {
        RCH_ASSERT(pos_ + size <= payload_.size(),
                   "truncated snapshot payload");
        std::memcpy(data, payload_.data() + pos_, size);
        pos_ += size;
    }

    const std::string &payload_;
    std::size_t pos_ = 0;
};

void
encodeSegment(Writer &w, const SegmentSummary &segment)
{
    w.u32(static_cast<std::uint32_t>(segment.classes.size()));
    for (const std::string &cls : segment.classes)
        w.str(cls);
    w.u32(static_cast<std::uint32_t>(segment.posts.size()));
    for (const auto &post : segment.posts) {
        w.str(post.first);
        w.i64(post.second);
    }
    w.u8(segment.barrier ? 1 : 0);
}

SegmentSummary
decodeSegment(Reader &r)
{
    SegmentSummary segment;
    for (std::uint32_t i = 0, n = r.u32(); i < n; ++i)
        segment.classes.insert(r.str());
    for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
        std::string looper = r.str();
        const SimTime when = r.i64();
        segment.posts.emplace(std::move(looper), when);
    }
    segment.barrier = r.u8() != 0;
    return segment;
}

} // namespace

std::string
encodeExecutionResult(const ExecutionResult &result)
{
    Writer w;
    w.u32(static_cast<std::uint32_t>(result.choice_points.size()));
    for (const ChoicePoint &cp : result.choice_points) {
        w.u32(static_cast<std::uint32_t>(cp.options.size()));
        for (const ChoiceOption &option : cp.options) {
            w.u8(static_cast<std::uint8_t>(option.kind));
            w.u64(option.event_id);
            w.u8(static_cast<std::uint8_t>(option.injection));
            w.str(option.label);
        }
        w.i32(cp.chosen);
        w.u64(cp.fingerprint_before);
        w.i32(cp.injections_left);
        w.u64(cp.events_before);
        w.u32(static_cast<std::uint32_t>(cp.segment_footprint.size()));
        for (const std::string &looper : cp.segment_footprint)
            w.str(looper);
        encodeSegment(w, cp.segment);
    }
    w.u32(static_cast<std::uint32_t>(result.violations.size()));
    for (const McViolation &violation : result.violations) {
        w.str(violation.oracle);
        w.str(violation.summary);
        w.i64(violation.time);
    }
    w.u64(result.steps);
    w.u8(result.hit_depth_cap ? 1 : 0);
    w.i32(result.resume_depth);
    w.u64(result.events_at_resume);
    w.u64(result.events_total);
    w.u64(result.fingerprints_computed);
    w.u64(result.final_fingerprint);
    w.str(result.final_dumpsys);
    w.str(result.final_trace_csv);
    return w.take();
}

ExecutionResult
decodeExecutionResult(const std::string &payload)
{
    Reader r(payload);
    ExecutionResult result;
    result.choice_points.resize(r.u32());
    for (ChoicePoint &cp : result.choice_points) {
        cp.options.resize(r.u32());
        for (ChoiceOption &option : cp.options) {
            option.kind = static_cast<ChoiceOption::Kind>(r.u8());
            option.event_id = r.u64();
            option.injection = static_cast<InjectionKind>(r.u8());
            option.label = r.str();
        }
        cp.chosen = r.i32();
        cp.fingerprint_before = r.u64();
        cp.injections_left = r.i32();
        cp.events_before = r.u64();
        for (std::uint32_t i = 0, n = r.u32(); i < n; ++i)
            cp.segment_footprint.insert(r.str());
        cp.segment = decodeSegment(r);
    }
    result.violations.resize(r.u32());
    for (McViolation &violation : result.violations) {
        violation.oracle = r.str();
        violation.summary = r.str();
        violation.time = r.i64();
    }
    result.steps = r.u64();
    result.hit_depth_cap = r.u8() != 0;
    result.resume_depth = r.i32();
    result.events_at_resume = r.u64();
    result.events_total = r.u64();
    result.fingerprints_computed = r.u64();
    result.final_fingerprint = r.u64();
    result.final_dumpsys = r.str();
    result.final_trace_csv = r.str();
    RCH_ASSERT(r.done(), "trailing bytes in snapshot result payload");
    return result;
}

std::string
encodeResumePayload(const ResumePayload &resume)
{
    Writer w;
    w.u32(static_cast<std::uint32_t>(resume.schedule.size()));
    for (int choice : resume.schedule)
        w.i32(choice);
    w.u32(static_cast<std::uint32_t>(resume.closed_keys.size()));
    for (std::uint64_t key : resume.closed_keys)
        w.u64(key);
    return w.take();
}

ResumePayload
decodeResumePayload(const std::string &payload)
{
    Reader r(payload);
    ResumePayload resume;
    resume.schedule.resize(r.u32());
    for (int &choice : resume.schedule)
        choice = r.i32();
    resume.closed_keys.resize(r.u32());
    for (std::uint64_t &key : resume.closed_keys)
        key = r.u64();
    RCH_ASSERT(r.done(), "trailing bytes in snapshot resume payload");
    return resume;
}

SnapshotSession::SnapshotSession(int max_depth)
    : host_(max_depth > 0 ? max_depth : 0)
{
}

ExecutionResult
SnapshotSession::execute(const ExecutionOptions &options, bool last_use,
                         const std::vector<std::uint64_t> &closed_keys)
{
    if (!host_.active()) {
        ExecutionOptions local = options;
        local.session = nullptr;
        return runExecution(local);
    }

    const auto wants = [&options](int depth) {
        return depth < static_cast<int>(options.schedule.size())
                   ? options.schedule[static_cast<std::size_t>(depth)]
                   : 0;
    };

    // Deepest live checkpoint whose prefix this schedule shares. Slot 0
    // (post-setup, pre-first-choice) has an empty prefix and matches
    // every schedule once it exists.
    int resume_slot = -1;
    for (int d = static_cast<int>(spine_chosen_.size()); d >= 0; --d) {
        if (!host_.slotLive(d))
            continue;
        bool matches = true;
        for (int i = 0; i < d; ++i) {
            if (wants(i) != spine_chosen_[static_cast<std::size_t>(i)]) {
                matches = false;
                break;
            }
        }
        if (matches) {
            resume_slot = d;
            break;
        }
    }

    // Checkpoints deeper than the resume point extend a prefix this
    // schedule diverges from; reap them before their slots are reused
    // (and before a fresh root worker re-parks slot 0).
    host_.discardAbove(resume_slot);
    if (resume_slot >= 0) {
        // Only the checkpoint at the exact divergence depth may be
        // consumed: a shallower fallback slot is still the deepest
        // checkpoint other prefixes share.
        const bool consume =
            last_use &&
            resume_slot == static_cast<int>(options.schedule.size()) - 1;
        ResumePayload resume;
        resume.schedule = options.schedule;
        resume.closed_keys = closed_keys;
        host_.resume(resume_slot, encodeResumePayload(resume), consume);
    } else {
        // First execution: fork the root worker. The options are
        // captured by value — every later continuation inherits this
        // copy, which is why everything but the schedule must stay
        // constant across a session's execute() calls. The closed-key
        // list rides along via `closed_` (copied into the fork).
        closed_.insert(closed_keys.begin(), closed_keys.end());
        host_.spawnWorker([this, options](sim::SnapshotWorker &worker) {
            worker_ = &worker;
            ExecutionOptions local = options;
            local.session = this;
            worker.finish(encodeExecutionResult(runExecution(local)));
        });
    }

    const sim::SnapshotResult raw = host_.awaitResult();
    ExecutionResult result = decodeExecutionResult(raw.payload);
    spine_chosen_.clear();
    spine_chosen_.reserve(result.choice_points.size());
    for (const ChoicePoint &cp : result.choice_points)
        spine_chosen_.push_back(cp.chosen);
    return result;
}

std::optional<std::vector<int>>
SnapshotSession::parkAtChoicePoint(int depth, std::uint64_t key)
{
    if (worker_ == nullptr)
        return std::nullopt;
    if (parks_suppressed_)
        return std::nullopt;
    if (closed_.count(key) != 0) {
        // This state heads a fully explored subtree: the DFS walk of
        // this path will stop here (or above), so neither this choice
        // point nor anything deeper can ever be backtracked into.
        parks_suppressed_ = true;
        return std::nullopt;
    }
    if (auto payload = worker_->park(depth)) {
        // We are now a forked continuation: refresh the veto set with
        // every subtree the coordinator closed while we were parked.
        ResumePayload resume = decodeResumePayload(*payload);
        closed_.insert(resume.closed_keys.begin(),
                       resume.closed_keys.end());
        return std::move(resume.schedule);
    }
    return std::nullopt;
}

} // namespace rchdroid::mc
