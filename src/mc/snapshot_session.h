/**
 * @file
 * Schedule-aware façade over sim/snapshot.h for the model checker: one
 * session serves one exploration, parking a copy-on-write checkpoint at
 * every choice point and resuming each new schedule from the deepest
 * checkpoint whose prefix it shares, so only the schedule's suffix is
 * re-executed.
 *
 * Soundness rule. Slot d holds the process state captured *after* the
 * choices at depths 0..d-1 were taken and *before* the choice at depth
 * d. The session records the chosen index at every depth of the most
 * recent execution (the live slots always lie along a single path, so
 * one spine of chosen values describes them all). A schedule may resume
 * from slot d iff its entries at depths 0..d-1 equal the spine exactly;
 * slot 0 — parked after scenario setup, before the first choice —
 * matches every schedule, so setup cost is paid exactly once per
 * exploration. Before resuming from slot d every deeper slot is
 * discarded: those checkpoints extend a prefix the new schedule just
 * abandoned. The DFS in mc/explorer.cc visits siblings only after the
 * spine child (option 0), so this discard order never destroys a
 * checkpoint a later schedule could still have used.
 *
 * When SnapshotHost::supported() is false (non-POSIX build or
 * RCHDROID_SNAPSHOTS=0), execute() silently degrades to classic
 * replay-from-root with identical observable results.
 */
#ifndef RCHDROID_MC_SNAPSHOT_SESSION_H
#define RCHDROID_MC_SNAPSHOT_SESSION_H

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "mc/execution.h"
#include "sim/snapshot.h"

namespace rchdroid::mc {

/**
 * What a resumed continuation receives: the schedule it must switch
 * to, plus every closed-subtree key the coordinator has memoized so
 * far (see choiceStateKey). The key list re-arms the checkpoint veto
 * inside the worker — its forked-at-spawn copy of the coordinator's
 * visited table is frozen in the past, so the fresh list must travel
 * with each resume.
 */
struct ResumePayload
{
    std::vector<int> schedule;
    std::vector<std::uint64_t> closed_keys;
};

/** @name Wire codec for results and resume payloads
 * Exposed for the round-trip unit tests; everything is versionless
 * little-endian binary, consumed only within one process tree.
 * @{
 */
std::string encodeExecutionResult(const ExecutionResult &result);
ExecutionResult decodeExecutionResult(const std::string &payload);
std::string encodeResumePayload(const ResumePayload &resume);
ResumePayload decodeResumePayload(const std::string &payload);
/** @} */

/**
 * One exploration's worth of checkpointed executions. Construct with
 * the depth bound (= number of checkpoint slots beyond slot 0), call
 * execute() once per schedule, destroy to reap every checkpoint.
 */
class SnapshotSession
{
  public:
    /** @param max_depth The exploration's choice-point depth bound. */
    explicit SnapshotSession(int max_depth);

    SnapshotSession(const SnapshotSession &) = delete;
    SnapshotSession &operator=(const SnapshotSession &) = delete;

    /** True when fork-based execution is actually in use. */
    bool active() const { return host_.active(); }

    /**
     * Run one schedule, resuming from the deepest matching checkpoint
     * when one exists (options.session/capture flags are overridden as
     * needed; options.scenario etc. must be identical across calls).
     * Inactive sessions run from the root in-process.
     *
     * `last_use` promises the caller will never again resume from the
     * checkpoint this schedule diverges at: the holder then becomes
     * the continuation in place (no fork) and the slot dies. A broken
     * promise is safe — a later schedule just resumes from a shallower
     * checkpoint and re-executes a little more suffix.
     *
     * `closed_keys` is the caller's full list of closed-subtree keys
     * (choiceStateKey of every fully explored visited-table entry); it
     * powers the checkpoint veto below.
     */
    ExecutionResult
    execute(const ExecutionOptions &options, bool last_use = false,
            const std::vector<std::uint64_t> &closed_keys = {});

    /**
     * Executor-side hook, called at every recorded choice point. Parks
     * a checkpoint for `depth`, then either returns std::nullopt (this
     * process keeps executing its current schedule) or — in a forked
     * continuation, possibly much later — returns the schedule that
     * continuation must switch to.
     *
     * Checkpoint veto: when `key` names a subtree the coordinator has
     * already fully explored, no park happens at all — the DFS can
     * never backtrack into a closed state, so its checkpoint would be
     * a wasted fork. Better yet, the DFS walk of *this* execution's
     * path stops at its first closed level, so once one veto fires
     * every deeper choice point of this continuation is unreachable
     * too and parking stays suppressed until the run finishes. Both
     * skips are sound because the visited table is monotone: a key
     * closed at veto time is still closed when the DFS gets there.
     */
    std::optional<std::vector<int>> parkAtChoicePoint(int depth,
                                                      std::uint64_t key);

    /** Checkpoints parked across the session. */
    std::uint64_t snapshotsTaken() const { return host_.snapshotsTaken(); }
    /** Executions resumed from a checkpoint (vs run from the root). */
    std::uint64_t restores() const { return host_.restores(); }

  private:
    sim::SnapshotHost host_;
    /** Worker-side handle; non-null only inside worker processes. */
    sim::SnapshotWorker *worker_ = nullptr;
    /** chosen[] of the path the live checkpoints lie along. */
    std::vector<int> spine_chosen_;
    /**
     * Closed-subtree keys known to this process: inherited at fork
     * time, refreshed from each resume payload. Holders forked before
     * an entry arrived simply don't have it — the veto degrades, never
     * misfires.
     */
    std::set<std::uint64_t> closed_;
    /** A veto fired: every deeper choice point is unreachable. */
    bool parks_suppressed_ = false;
};

} // namespace rchdroid::mc

#endif // RCHDROID_MC_SNAPSHOT_SESSION_H
