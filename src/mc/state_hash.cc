#include "mc/state_hash.h"

#include <string_view>
#include <variant>

namespace rchdroid::mc {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
mixByte(std::uint64_t &h, std::uint8_t byte)
{
    h ^= byte;
    h *= kFnvPrime;
}

void
mixU64(std::uint64_t &h, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        mixByte(h, static_cast<std::uint8_t>(value >> (i * 8)));
}

void
mixI64(std::uint64_t &h, std::int64_t value)
{
    mixU64(h, static_cast<std::uint64_t>(value));
}

void
mixString(std::uint64_t &h, std::string_view s)
{
    mixU64(h, s.size());
    for (char c : s)
        mixByte(h, static_cast<std::uint8_t>(c));
}

void
mixBundle(std::uint64_t &h, const Bundle &bundle)
{
    // std::map iteration: keys in sorted order — canonical.
    mixU64(h, bundle.size());
    for (const auto &[key, value] : bundle.entries()) {
        mixString(h, key);
        mixU64(h, value.index());
        std::visit(
            [&h](const auto &held) {
                using T = std::decay_t<decltype(held)>;
                if constexpr (std::is_same_v<T, std::int64_t>) {
                    mixI64(h, held);
                } else if constexpr (std::is_same_v<T, double>) {
                    std::uint64_t bits;
                    static_assert(sizeof(bits) == sizeof(held));
                    __builtin_memcpy(&bits, &held, sizeof(bits));
                    mixU64(h, bits);
                } else if constexpr (std::is_same_v<T, bool>) {
                    mixByte(h, held ? 1 : 0);
                } else if constexpr (std::is_same_v<T, std::string>) {
                    mixString(h, held);
                } else if constexpr (std::is_same_v<
                                         T, std::vector<std::int64_t>>) {
                    mixU64(h, held.size());
                    for (std::int64_t v : held)
                        mixI64(h, v);
                } else if constexpr (std::is_same_v<
                                         T, std::vector<std::string>>) {
                    mixU64(h, held.size());
                    for (const std::string &v : held)
                        mixString(h, v);
                } else if constexpr (std::is_same_v<
                                         T, std::shared_ptr<Bundle>>) {
                    if (held)
                        mixBundle(h, *held);
                    else
                        mixByte(h, 0);
                }
            },
            value);
    }
}

void
mixQueue(std::uint64_t &h, const Looper &looper)
{
    mixString(h, looper.name());
    mixU64(h, looper.queuedMessages());
    looper.queue().forEachPendingInOrder([&h](const Message &msg) {
        // (when, what, tag) in delivery order; seq/analysis_id are
        // per-execution tickets and stay out.
        mixI64(h, msg.when);
        mixI64(h, msg.cost);
        mixU64(h, static_cast<std::uint64_t>(msg.what));
        mixString(h, msg.tag);
    });
}

void
mixActivity(std::uint64_t &h, Activity &activity)
{
    mixString(h, activity.component());
    mixU64(h, activity.token());
    mixByte(h, static_cast<std::uint8_t>(activity.lifecycleState()));
    mixI64(h, activity.shadowEnteredAt());
    // Full widget state: text values, progress, list positions — the
    // essence whose loss the oracles detect. Harness-context save:
    // chargeCpu is a no-op outside a dispatch and shared-access hooks
    // ignore accesses with no current looper.
    if (!activity.isDestroyed())
        mixBundle(h, activity.saveInstanceStateNow(/*full=*/true));
    mixByte(h, activity.hasShadowSnapshot() ? 1 : 0);
    if (activity.hasShadowSnapshot())
        mixBundle(h, activity.shadowSnapshot());
    mixU64(h, static_cast<std::uint64_t>(activity.showingDialogCount()));
}

} // namespace

std::uint64_t
stateFingerprint(sim::AndroidSystem &system)
{
    std::uint64_t h = kFnvOffset;

    mixI64(h, system.scheduler().now());
    mixString(h, system.currentConfiguration().toString());

    // Server side: the task stack and every record's Fig. 4 state.
    Atms &atms = system.atms();
    mixU64(h, atms.stack().taskCount());
    for (const auto &task : atms.stack().tasks()) {
        mixString(h, task->process());
        mixU64(h, task->depth());
        for (ActivityToken token : task->tokens()) {
            mixU64(h, token);
            const ActivityRecord *record = atms.recordFor(token);
            if (!record) {
                mixByte(h, 0xff);
                continue;
            }
            mixString(h, record->component());
            mixByte(h, static_cast<std::uint8_t>(record->state()));
            mixByte(h, record->isShadow() ? 1 : 0);
            mixI64(h, record->shadowSince());
        }
    }
    mixQueue(h, atms.looper());

    // Client side: every process, its activities, async tasks, queues.
    mixU64(h, system.installedApps().size());
    for (const auto &[process, app] : system.installedApps()) {
        mixString(h, process);
        mixByte(h, app->thread->crashed() ? 1 : 0);
        mixU64(h, app->thread->liveActivityCount());
        for (const auto &[token, activity] : app->thread->activities()) {
            mixU64(h, token);
            mixActivity(h, *activity);
        }
        mixU64(h, app->thread->inFlightAsyncTasks());
        for (const auto &task : app->thread->inFlightAsyncList()) {
            mixString(h, task->name());
            mixByte(h, static_cast<std::uint8_t>(task->state()));
            mixString(h, task->owner() ? task->owner()->component() : "");
            mixU64(h, task->owner() ? task->owner()->token() : 0);
        }
        mixQueue(h, app->thread->uiLooper());
        mixQueue(h, app->thread->workerLooper());
        if (app->handler) {
            const RchStats &stats = app->handler->stats();
            mixU64(h, stats.gc_collections);
            mixU64(h, stats.flips);
            mixU64(h, stats.init_launches);
            mixU64(h, static_cast<std::uint64_t>(
                          app->handler->gcPolicy().shadowFrequency(
                              system.scheduler().now())));
        }
    }

    // The raw scheduler pending set: binder legs in flight, timers,
    // looper wakeups — (when, label) in delivery order.
    for (const RunnableEvent &event : system.scheduler().pendingInOrder()) {
        mixI64(h, event.when);
        mixString(h, event.label.name ? event.label.name : "?");
    }

    return h;
}

} // namespace rchdroid::mc
