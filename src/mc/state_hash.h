/**
 * @file
 * Canonical state fingerprint for visited-state pruning.
 *
 * Two explored prefixes that reach the same fingerprint with the same
 * remaining exploration budget have identical futures (the simulator is
 * deterministic given the schedule), so the second can be pruned and
 * credited with the first subtree's schedule count.
 *
 * What the hash covers (the paper's observable state):
 *  - current device Configuration;
 *  - the ATMS task stack: per task, per record — component, server
 *    RecordState, shadow flag + shadowSince (Fig. 4 server view);
 *  - per app process: crash flag, every live Activity — component,
 *    client LifecycleState (Fig. 4), shadow-entry time, the full
 *    instance-state Bundle (widget values — the essence the paper's
 *    data-loss oracles care about) and the retained shadow snapshot;
 *  - in-flight AsyncTasks (name, state, owner component/token);
 *  - RCH handler counters that gate future behaviour (gc_collections,
 *    flips, init_launches) and the GC policy's live frequency;
 *  - every pending message queue in delivery order ((when, what, tag) —
 *    the os/dispatch_order.h contract makes the order canonical);
 *  - the scheduler's pending set (when + label) and the current time.
 *
 * Deliberately excluded:
 *  - Activity::instanceId() — allocated from a process-global counter,
 *    so it differs between two executions that are otherwise in
 *    identical states;
 *  - raw message seq / analysis ids — per-execution tickets;
 *  - object addresses — never meaningful across executions;
 *  - monotone telemetry counters with no behavioural feedback.
 */
#ifndef RCHDROID_MC_STATE_HASH_H
#define RCHDROID_MC_STATE_HASH_H

#include <cstdint>

#include "sim/android_system.h"

namespace rchdroid::mc {

/** FNV-1a 64 over the canonical state serialisation described above. */
std::uint64_t stateFingerprint(sim::AndroidSystem &system);

} // namespace rchdroid::mc

#endif // RCHDROID_MC_STATE_HASH_H
