#include "mc/minimize.h"

#include <algorithm>

#include "platform/logging.h"

namespace rchdroid::mc {

namespace {

std::vector<int>
trimTrailingDefaults(std::vector<int> schedule)
{
    while (!schedule.empty() && schedule.back() == 0)
        schedule.pop_back();
    return schedule;
}

} // namespace

MinimizeResult
minimizeCounterexample(const MinimizeOptions &options)
{
    RCH_ASSERT(options.scenario != nullptr, "minimize without scenario");
    MinimizeResult result;

    const auto reproduces = [&](const std::vector<int> &schedule) -> bool {
        ++result.executions;
        ExecutionOptions eo;
        eo.scenario = options.scenario;
        eo.schedule = schedule;
        eo.max_choice_points = options.max_choice_points;
        eo.oracles = options.oracles;
        eo.run_analysis = options.run_analysis;
        eo.fingerprints = false; // replays do not need state hashes
        const ExecutionResult replay = runExecution(eo);
        if (replay.violations.empty())
            return false;
        return options.oracle.empty() ||
               replay.violations.front().oracle == options.oracle;
    };

    if (!reproduces(options.schedule)) {
        result.schedule = trimTrailingDefaults(options.schedule);
        return result;
    }
    result.reproduced = true;

    // The deviation set: positions where the schedule departs from the
    // stock scheduler. ddmin operates on this set; a candidate zeroes
    // every position outside the kept subset.
    std::vector<int> schedule = options.schedule;
    std::vector<std::size_t> deviations;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        if (schedule[i] != 0)
            deviations.push_back(i);
    }

    const auto candidate =
        [&schedule](const std::vector<std::size_t> &keep) {
            std::vector<int> out(schedule.size(), 0);
            for (std::size_t position : keep)
                out[position] = schedule[position];
            return out;
        };

    // Classic ddmin: try subsets, then complements, then refine.
    std::size_t granularity = 2;
    while (deviations.size() >= 2) {
        const std::size_t chunk =
            std::max<std::size_t>(1, deviations.size() / granularity);
        bool reduced = false;
        for (std::size_t start = 0; start < deviations.size();
             start += chunk) {
            // Complement: drop one chunk, keep the rest.
            std::vector<std::size_t> keep;
            for (std::size_t i = 0; i < deviations.size(); ++i) {
                if (i < start || i >= start + chunk)
                    keep.push_back(deviations[i]);
            }
            if (keep.size() == deviations.size())
                continue;
            if (reproduces(candidate(keep))) {
                deviations = keep;
                granularity = std::max<std::size_t>(2, granularity - 1);
                reduced = true;
                break;
            }
        }
        if (reduced)
            continue;
        if (chunk <= 1)
            break; // 1-minimal: no single deviation can be dropped
        granularity = std::min(deviations.size(), granularity * 2);
    }

    result.schedule = trimTrailingDefaults(candidate(deviations));
    result.non_default_choices = static_cast<int>(deviations.size());
    return result;
}

} // namespace rchdroid::mc
