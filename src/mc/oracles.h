/**
 * @file
 * Safety oracles the explorer evaluates after every controlled step.
 *
 * An oracle is a pure observer: it reads the AndroidSystem under test
 * (and the McHooks analyzer) and reports the first property violation
 * it sees. Oracles must be deterministic functions of the simulator
 * state so a replayed schedule reproduces exactly the same finding.
 *
 * The built-in set ("default oracles"):
 *  - "crash"          any installed app process crashed;
 *  - "analysis"       the PR-1 race detector / lifecycle checker (run
 *                     on every explored schedule through McHooks)
 *                     reported a violation;
 *  - "gc_live_async"  the shadow GC reclaimed an activity that a still
 *                     Pending/Running AsyncTask targets — the data-loss
 *                     class the seeded-bug scenario plants;
 *  - "saved_restore"  on every activity resume: the bundle saved at
 *                     shadow entry must be a subset of the restored
 *                     foreground's state, where each value matches
 *                     either the saved value or the shadow's *current*
 *                     value (lazy migration legitimately advances
 *                     essence past the snapshot — that is not loss).
 *
 * The scenario's final functional check runs separately at the end of
 * an execution and reports under the oracle name "final_state"
 * (src/mc/execution.h).
 */
#ifndef RCHDROID_MC_ORACLES_H
#define RCHDROID_MC_ORACLES_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mc/hooks.h"
#include "platform/time.h"
#include "sim/android_system.h"

namespace rchdroid::mc {

/** One oracle finding, attributed to the oracle that raised it. */
struct McViolation
{
    /** Oracle name ("crash", "analysis", "gc_live_async", ...). */
    std::string oracle;
    /** One-line human description. */
    std::string summary;
    /** Virtual time at which the oracle fired. */
    SimTime time = 0;
};

/** Base class: stateful observer over one execution. */
class Oracle
{
  public:
    virtual ~Oracle() = default;

    virtual const char *name() const = 0;

    /** Called once after scenario setup, before the controlled window. */
    virtual void onStart(sim::AndroidSystem &system, McHooks &hooks)
    {
        (void)system;
        (void)hooks;
    }

    /** Called after every controlled step; first finding wins. */
    virtual std::optional<McViolation>
    afterStep(sim::AndroidSystem &system, McHooks &hooks) = 0;
};

/**
 * Instantiate oracles by name.
 * @param names Subset of defaultOracleNames(); unknown names throw
 *        std::invalid_argument (the CLI surfaces the message).
 */
std::vector<std::unique_ptr<Oracle>>
makeOracles(const std::vector<std::string> &names);

/** The full built-in set, in evaluation order. */
std::vector<std::string> defaultOracleNames();

} // namespace rchdroid::mc

#endif // RCHDROID_MC_ORACLES_H
