#include "mc/oracles.h"

#include <map>
#include <sstream>
#include <stdexcept>
#include <variant>

namespace rchdroid::mc {

namespace {

/**
 * Deep BundleValue equality: nested bundles compare structurally
 * (Bundle::operator== is deep); the variant's own == would compare
 * the shared_ptr identity and call every nested bundle "changed".
 */
bool
deepEquals(const BundleValue &a, const BundleValue &b)
{
    if (a.index() != b.index())
        return false;
    if (const auto *nested_a = std::get_if<std::shared_ptr<Bundle>>(&a)) {
        const auto *nested_b = std::get_if<std::shared_ptr<Bundle>>(&b);
        if (!*nested_a || !*nested_b)
            return *nested_a == *nested_b;
        return **nested_a == **nested_b;
    }
    return a == b;
}

/** Any installed app process crashed. */
class CrashOracle final : public Oracle
{
  public:
    const char *name() const override { return "crash"; }

    std::optional<McViolation>
    afterStep(sim::AndroidSystem &system, McHooks &) override
    {
        for (const auto &[process, app] : system.installedApps()) {
            if (!app->thread->crashed())
                continue;
            McViolation violation;
            violation.oracle = name();
            violation.time = system.scheduler().now();
            std::ostringstream os;
            os << "process " << process << " crashed";
            if (app->thread->crashInfo())
                os << ": " << app->thread->crashInfo()->reason;
            violation.summary = os.str();
            return violation;
        }
        return std::nullopt;
    }
};

/** The PR-1 analyzer (race detector + lifecycle checker) found one. */
class AnalysisOracle final : public Oracle
{
  public:
    const char *name() const override { return "analysis"; }

    void
    onStart(sim::AndroidSystem &, McHooks &hooks) override
    {
        // Setup runs uncontrolled; findings there are not schedule
        // dependent, so only count what the controlled window adds.
        baseline_ =
            hooks.analyzer() ? hooks.analyzer()->sink().totalCount() : 0;
    }

    std::optional<McViolation>
    afterStep(sim::AndroidSystem &system, McHooks &hooks) override
    {
        analysis::Analyzer *analyzer = hooks.analyzer();
        if (!analyzer || analyzer->sink().totalCount() <= baseline_)
            return std::nullopt;
        McViolation violation;
        violation.oracle = name();
        violation.time = system.scheduler().now();
        const auto &stored = analyzer->sink().violations();
        violation.summary =
            stored.empty() ? "analyzer reported a violation"
                           : stored.back().summary;
        return violation;
    }

  private:
    std::size_t baseline_ = 0;
};

/**
 * The shadow GC reclaimed an activity some live AsyncTask still
 * targets: the task's onPostExecute will run against released views.
 * Fires at collection time (when the damage is done), not when the
 * task later returns — that keeps counterexamples short.
 */
class GcLiveAsyncOracle final : public Oracle
{
  public:
    const char *name() const override { return "gc_live_async"; }

    void
    onStart(sim::AndroidSystem &system, McHooks &) override
    {
        for (const auto &[process, app] : system.installedApps()) {
            if (app->handler)
                baselines_[process] = app->handler->stats().gc_collections;
        }
    }

    std::optional<McViolation>
    afterStep(sim::AndroidSystem &system, McHooks &) override
    {
        for (const auto &[process, app] : system.installedApps()) {
            if (!app->handler)
                continue;
            const std::uint64_t collections =
                app->handler->stats().gc_collections;
            if (collections <= baselines_[process])
                continue;
            baselines_[process] = collections;
            for (const auto &task : app->thread->inFlightAsyncList()) {
                if (task->state() != AsyncTask::TaskState::Pending &&
                    task->state() != AsyncTask::TaskState::Running)
                    continue;
                const auto &owner = task->owner();
                if (!owner || !owner->isDestroyed())
                    continue;
                McViolation violation;
                violation.oracle = name();
                violation.time = system.scheduler().now();
                std::ostringstream os;
                os << "GC reclaimed " << owner->component()
                   << " (token " << owner->token()
                   << ") while AsyncTask \"" << task->name()
                   << "\" still targets it";
                violation.summary = os.str();
                return violation;
            }
        }
        return std::nullopt;
    }

  private:
    std::map<std::string, std::uint64_t> baselines_;
};

/**
 * Saved-bundle ⊆ restored-state: whenever an activity resumes while a
 * shadow (with its entry snapshot) exists, every key saved at shadow
 * entry must be present in the freshly restored foreground and hold
 * either the saved value or the shadow's current value (lazy migration
 * may legitimately have advanced it).
 */
class SavedRestoreOracle final : public Oracle
{
  public:
    const char *name() const override { return "saved_restore"; }

    void
    onStart(sim::AndroidSystem &system, McHooks &) override
    {
        last_resumed_ =
            system.trace().countOfKind(kinds::kAtmsActivityResumed);
    }

    std::optional<McViolation>
    afterStep(sim::AndroidSystem &system, McHooks &) override
    {
        const std::size_t resumed =
            system.trace().countOfKind(kinds::kAtmsActivityResumed);
        if (resumed <= last_resumed_)
            return std::nullopt;
        last_resumed_ = resumed;
        for (const auto &[process, app] : system.installedApps()) {
            auto foreground = app->thread->foregroundActivity();
            auto shadow = app->thread->shadowActivity();
            if (!foreground || !shadow || foreground == shadow ||
                !shadow->hasShadowSnapshot())
                continue;
            const Bundle saved = shadow->shadowSnapshot();
            const Bundle restored =
                foreground->saveInstanceStateNow(/*full=*/true);
            const Bundle shadow_now =
                shadow->saveInstanceStateNow(/*full=*/true);
            for (const auto &[key, value] : saved.entries()) {
                auto restored_it = restored.entries().find(key);
                if (restored_it == restored.entries().end())
                    return loss(system, process, key, "missing");
                if (deepEquals(restored_it->second, value))
                    continue;
                auto now_it = shadow_now.entries().find(key);
                if (now_it != shadow_now.entries().end() &&
                    deepEquals(restored_it->second, now_it->second))
                    continue; // migrated past the snapshot: not loss
                return loss(system, process, key, "changed");
            }
        }
        return std::nullopt;
    }

  private:
    static McViolation
    loss(sim::AndroidSystem &system, const std::string &process,
         const std::string &key, const char *how)
    {
        McViolation violation;
        violation.oracle = "saved_restore";
        violation.time = system.scheduler().now();
        std::ostringstream os;
        os << "data loss in " << process << ": saved key \"" << key
           << "\" " << how << " in the restored state";
        violation.summary = os.str();
        return violation;
    }

    std::size_t last_resumed_ = 0;
};

} // namespace

std::vector<std::string>
defaultOracleNames()
{
    return {"crash", "analysis", "gc_live_async", "saved_restore"};
}

std::vector<std::unique_ptr<Oracle>>
makeOracles(const std::vector<std::string> &names)
{
    std::vector<std::unique_ptr<Oracle>> oracles;
    for (const std::string &name : names) {
        if (name == "crash") {
            oracles.push_back(std::make_unique<CrashOracle>());
        } else if (name == "analysis") {
            oracles.push_back(std::make_unique<AnalysisOracle>());
        } else if (name == "gc_live_async") {
            oracles.push_back(std::make_unique<GcLiveAsyncOracle>());
        } else if (name == "saved_restore") {
            oracles.push_back(std::make_unique<SavedRestoreOracle>());
        } else {
            throw std::invalid_argument(
                "unknown oracle \"" + name +
                "\" (known: crash, analysis, gc_live_async, "
                "saved_restore)");
        }
    }
    return oracles;
}

} // namespace rchdroid::mc
