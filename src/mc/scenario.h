/**
 * @file
 * Model-checking scenarios: the workload catalogue rchdroid_mc explores.
 *
 * A scenario bundles everything one bounded exploration needs:
 * system options (mode + RCH tuning), a deterministic setup phase
 * (install apps, launch, seed user state — runs uncontrolled, before
 * the first choice point), the set of configuration-change injections
 * the explorer may interleave with pending events, the virtual-time
 * horizon of the controlled window, and an optional end-of-execution
 * functional check (reported under the oracle name "final_state").
 *
 * The catalogue covers the five examples/ programs (quickstart,
 * login_form, photo_gallery, mail_navigation, gc_tuning) plus two
 * checker-specific workloads:
 *  - "seeded_gc": an intentionally mistuned GC (THRESH_T of a second,
 *    a tick every second) over the Fig. 1 gallery — the GC reclaims
 *    the shadow while the thumbnail AsyncTask still targets it, but
 *    only on schedules where a rotation is injected before the task
 *    returns. The bug the gc_live_async oracle and the minimizer are
 *    demonstrated on.
 *  - "reduction_demo": three fully independent app processes stepping
 *    in lock-step — every interleaving is equivalent, so it isolates
 *    what sleep sets + state hashing buy over naive DFS.
 */
#ifndef RCHDROID_MC_SCENARIO_H
#define RCHDROID_MC_SCENARIO_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sa/mhp.h"
#include "sim/android_system.h"

namespace rchdroid::mc {

/** A configuration change the explorer may inject at a choice point. */
enum class InjectionKind : std::uint8_t {
    /** Toggle orientation (Configuration::rotated). */
    Rotate,
    /** Toggle `wm size 1080x1920` / `wm size reset`. */
    WmSizeToggle,
    /** Toggle the system locale en-US / fr-FR. */
    LocaleToggle,
};

/** Stable display name ("rotate", "wm_size", "locale"). */
const char *injectionName(InjectionKind kind);

/** Perform the injection on the device (toggles are self-inverse). */
void applyInjection(sim::AndroidSystem &system, InjectionKind kind);

/** One explorable workload. */
struct Scenario
{
    std::string name;
    std::string description;
    /** System construction parameters for each (re-)execution. */
    std::function<sim::SystemOptions()> make_options;
    /** Deterministic uncontrolled warm-up: install, launch, seed. */
    std::function<void(sim::AndroidSystem &)> setup;
    /** Injections offered at choice points (may be empty). */
    std::vector<InjectionKind> injections;
    /** Total injections allowed along one schedule. */
    int max_injections = 4;
    /** Virtual-time extent of the controlled window. */
    SimDuration horizon = seconds(30);
    /** Uncontrolled run-out after the window, before final_check. */
    SimDuration tail = seconds(2);
    /**
     * End-of-execution functional check; returns a description of the
     * failure or nullopt. Must hold on EVERY schedule — it asserts
     * what RCHDroid guarantees, not what one lucky ordering produces.
     */
    std::function<std::optional<std::string>(sim::AndroidSystem &)>
        final_check;
    /**
     * The static independence oracle for this workload (sa/mhp.h).
     * Empty = no static guidance; the explorer then runs classical
     * unguided DPOR. Spec authors carry the soundness obligations
     * documented on sa::IndependenceSpec; the guided-vs-unguided
     * equivalence CTest cross-checks them.
     */
    sa::IndependenceSpec independence;
};

/** Look up a scenario; null when the name is unknown. */
const Scenario *findScenario(const std::string &name);

/** The full catalogue, in presentation order. */
const std::vector<Scenario> &scenarioCatalog();

} // namespace rchdroid::mc

#endif // RCHDROID_MC_SCENARIO_H
