/**
 * @file
 * McHooks: the model checker's analysis::Hooks implementation — one
 * object that (a) owns a full analysis::Analyzer (the PR-1 race
 * detector + lifecycle checker, abort disabled so the explorer can
 * observe violations instead of dying on them) and forwards every
 * framework event to it, and (b) records the *footprint* of the step
 * currently executing: which loopers it dispatched on or posted to.
 *
 * Footprints feed the sleep-set reduction (src/mc/explorer.h): two
 * scheduling choices whose footprints are disjoint commute, so only one
 * of their two orders needs exploring.
 *
 * The hooks MUST be installed before the AndroidSystem under test is
 * constructed: AndroidSystem's own ScopedAnalyzer is idempotent (inert
 * when hooks exist), and — critically — it force-arms abort-on-violation
 * from RCHDROID_ANALYSIS_ABORT, which is set for every ctest run and
 * would kill the explorer at its first (intentionally found) violation.
 */
#ifndef RCHDROID_MC_HOOKS_H
#define RCHDROID_MC_HOOKS_H

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "analysis/analyzer.h"
#include "os/analysis_hooks.h"
#include "platform/time.h"

namespace rchdroid::mc {

/**
 * What the static independence oracle needs to know about one executed
 * segment (the chosen step plus its forced single-option successors):
 * the step classes it dispatched, the queue slots it posted into, and
 * whether a sync barrier fired (DESIGN.md §14).
 */
struct SegmentSummary
{
    /** "<looper>#<tag>" key of every dispatch in the segment. */
    std::set<std::string> classes;
    /** (target looper, due time) of every message the segment posted. */
    std::set<std::pair<std::string, SimTime>> posts;
    /** Conservatively dependent on everything when set. */
    bool barrier = false;

    void
    merge(const SegmentSummary &other)
    {
        classes.insert(other.classes.begin(), other.classes.end());
        posts.insert(other.posts.begin(), other.posts.end());
        barrier = barrier || other.barrier;
    }
};

/**
 * Forwarding hooks + footprint recorder. See file comment.
 */
class McHooks final : public analysis::Hooks
{
  public:
    /**
     * @param run_analysis Run the PR-1 checkers on every explored
     *        schedule (the "analysis" oracle). When false the hooks
     *        only record footprints.
     */
    explicit McHooks(bool run_analysis);

    /** The wrapped analyzer, or null when run_analysis was false. */
    analysis::Analyzer *analyzer() { return analyzer_.get(); }

    /** @name Footprint recording (explorer-driven)
     * @{
     */
    /** Start recording a fresh footprint for the next step. */
    void
    beginStep()
    {
        footprint_.clear();
        segment_ = SegmentSummary{};
    }
    /** Loopers the step touched (dispatches + message sends). */
    const std::set<std::string> &footprint() const { return footprint_; }
    /** Classes/posts/barrier of the step, for the static oracle. */
    const SegmentSummary &segment() const { return segment_; }
    /** @} */

    /** @name Hooks: forward to the analyzer, record looper touches
     * @{
     */
    void onLooperCreated(Looper &looper) override;
    void onLooperDestroyed(Looper &looper) override;
    void onMessageSend(Looper &target, std::uint64_t msg_id, SimTime when,
                       const std::string &tag) override;
    void onDispatchBegin(Looper &looper, std::uint64_t msg_id,
                         const std::string &tag) override;
    void onDispatchEnd(Looper &looper) override;
    void onSyncBarrier(const void *scope, const char *label) override;
    void onSharedAccess(const void *object, const char *kind,
                        const std::string &label, bool is_write) override;
    void onObjectGone(const void *object) override;
    void onLifecycleTransition(const void *activity, const void *scope,
                               const std::string &component,
                               std::uint64_t instance_id, std::uint8_t from,
                               std::uint8_t to) override;
    void onActivityGone(const void *activity) override;
    void onDestroyedViewMutation(const void *view, const char *kind,
                                 const std::string &label) override;
    void onAppCodeBegin() override;
    void onAppCodeEnd() override;
    /** @} */

  private:
    std::unique_ptr<analysis::Analyzer> analyzer_;
    std::set<std::string> footprint_;
    SegmentSummary segment_;
};

/**
 * RAII installer that *replaces* whatever hooks the thread had (unlike
 * ScopedAnalyzer, which defers to an existing installation — the
 * explorer must win over a test harness's ambient analyzer) and
 * restores the previous hooks on destruction.
 */
class ScopedMcHooks
{
  public:
    explicit ScopedMcHooks(McHooks &hooks)
        : previous_(analysis::hooks())
    {
        analysis::setHooks(&hooks);
    }

    ~ScopedMcHooks() { analysis::setHooks(previous_); }

    ScopedMcHooks(const ScopedMcHooks &) = delete;
    ScopedMcHooks &operator=(const ScopedMcHooks &) = delete;

  private:
    analysis::Hooks *previous_;
};

} // namespace rchdroid::mc

#endif // RCHDROID_MC_HOOKS_H
