/**
 * @file
 * McHooks: the model checker's analysis::Hooks implementation — one
 * object that (a) owns a full analysis::Analyzer (the PR-1 race
 * detector + lifecycle checker, abort disabled so the explorer can
 * observe violations instead of dying on them) and forwards every
 * framework event to it, and (b) records the *footprint* of the step
 * currently executing: which loopers it dispatched on or posted to.
 *
 * Footprints feed the sleep-set reduction (src/mc/explorer.h): two
 * scheduling choices whose footprints are disjoint commute, so only one
 * of their two orders needs exploring.
 *
 * The hooks MUST be installed before the AndroidSystem under test is
 * constructed: AndroidSystem's own ScopedAnalyzer is idempotent (inert
 * when hooks exist), and — critically — it force-arms abort-on-violation
 * from RCHDROID_ANALYSIS_ABORT, which is set for every ctest run and
 * would kill the explorer at its first (intentionally found) violation.
 */
#ifndef RCHDROID_MC_HOOKS_H
#define RCHDROID_MC_HOOKS_H

#include <memory>
#include <set>
#include <string>

#include "analysis/analyzer.h"
#include "os/analysis_hooks.h"

namespace rchdroid::mc {

/**
 * Forwarding hooks + footprint recorder. See file comment.
 */
class McHooks final : public analysis::Hooks
{
  public:
    /**
     * @param run_analysis Run the PR-1 checkers on every explored
     *        schedule (the "analysis" oracle). When false the hooks
     *        only record footprints.
     */
    explicit McHooks(bool run_analysis);

    /** The wrapped analyzer, or null when run_analysis was false. */
    analysis::Analyzer *analyzer() { return analyzer_.get(); }

    /** @name Footprint recording (explorer-driven)
     * @{
     */
    /** Start recording a fresh footprint for the next step. */
    void beginStep() { footprint_.clear(); }
    /** Loopers the step touched (dispatches + message sends). */
    const std::set<std::string> &footprint() const { return footprint_; }
    /** @} */

    /** @name Hooks: forward to the analyzer, record looper touches
     * @{
     */
    void onLooperCreated(Looper &looper) override;
    void onLooperDestroyed(Looper &looper) override;
    void onMessageSend(Looper &target, std::uint64_t msg_id) override;
    void onDispatchBegin(Looper &looper, std::uint64_t msg_id,
                         const std::string &tag) override;
    void onDispatchEnd(Looper &looper) override;
    void onSyncBarrier(const void *scope, const char *label) override;
    void onSharedAccess(const void *object, const char *kind,
                        const std::string &label, bool is_write) override;
    void onObjectGone(const void *object) override;
    void onLifecycleTransition(const void *activity, const void *scope,
                               const std::string &component,
                               std::uint64_t instance_id, std::uint8_t from,
                               std::uint8_t to) override;
    void onActivityGone(const void *activity) override;
    void onDestroyedViewMutation(const void *view, const char *kind,
                                 const std::string &label) override;
    void onAppCodeBegin() override;
    void onAppCodeEnd() override;
    /** @} */

  private:
    std::unique_ptr<analysis::Analyzer> analyzer_;
    std::set<std::string> footprint_;
};

/**
 * RAII installer that *replaces* whatever hooks the thread had (unlike
 * ScopedAnalyzer, which defers to an existing installation — the
 * explorer must win over a test harness's ambient analyzer) and
 * restores the previous hooks on destruction.
 */
class ScopedMcHooks
{
  public:
    explicit ScopedMcHooks(McHooks &hooks)
        : previous_(analysis::hooks())
    {
        analysis::setHooks(&hooks);
    }

    ~ScopedMcHooks() { analysis::setHooks(previous_); }

    ScopedMcHooks(const ScopedMcHooks &) = delete;
    ScopedMcHooks &operator=(const ScopedMcHooks &) = delete;

  private:
    analysis::Hooks *previous_;
};

} // namespace rchdroid::mc

#endif // RCHDROID_MC_HOOKS_H
