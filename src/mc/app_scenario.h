/**
 * @file
 * The dynamic half of the static analyzer's differential harness.
 *
 * src/sa/ is forbidden (by the lint seam) from touching the simulator,
 * so this lives in mc — the layer that already drives AndroidSystem
 * under instrumentation. observeApp() runs the §6 methodology once for
 * one app under one handling model (launch, seed user state, rotate
 * mid-async-flight, settle) with a recording analyzer installed, and
 * reduces the run to the sa::DynamicObservation record the comparator
 * consumes. makeAppScenario() wraps the same drive as a bounded
 * model-checking scenario so the explorer can quantify over schedules
 * instead of the single default interleaving.
 */
#ifndef RCHDROID_MC_APP_SCENARIO_H
#define RCHDROID_MC_APP_SCENARIO_H

#include <cstdint>

#include "mc/scenario.h"
#include "sa/differential.h"

namespace rchdroid::mc {

/** Bounds for the optional model-checking leg of an observation. */
struct ObserveOptions
{
    /** Also explore the app's schedule space (slower; off by default). */
    bool run_mc = false;
    /** Choice-point depth of the exploration. */
    int mc_max_depth = 3;
    /** Re-execution budget of the exploration. */
    std::uint64_t mc_max_executions = 200;
};

/**
 * Drive one app once under `handling` and report what happened: did the
 * critical state survive the rotation, did the process crash, what did
 * the dynamic analyzers flag, and (optionally) did the model checker
 * find any schedule violating an oracle.
 */
sa::DynamicObservation observeApp(const apps::AppSpec &spec,
                                  sa::HandlingModel handling,
                                  const ObserveOptions &options = {});

/**
 * The same drive as an explorable scenario: setup installs/launches/
 * seeds the app (and starts its button task), the explorer may inject
 * rotations, and the final check reports a crash or lost critical state
 * under the "final_state" oracle — but only when the static analyzer
 * would call the app clean for this mode (`expect_clean`), so explored
 * counterexamples line up with the soundness contract rather than with
 * expected-dirty apps.
 */
Scenario makeAppScenario(const apps::AppSpec &spec,
                         sa::HandlingModel handling, bool expect_clean);

} // namespace rchdroid::mc

#endif // RCHDROID_MC_APP_SCENARIO_H
