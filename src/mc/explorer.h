/**
 * @file
 * Bounded DFS over the schedule space of a scenario, with two
 * partial-order-style reductions:
 *
 *  - Sleep sets (Godefroid): after exploring event e at a choice
 *    point, e is put to sleep for the sibling branches — a sibling
 *    subtree need not re-run e while everything executed since is
 *    independent of it (disjoint observed looper footprints), because
 *    "f then e" is Mazurkiewicz-equivalent to the already-explored
 *    "e then f". A step whose footprint intersects a sleeping event's
 *    footprint (or that crossed a sync barrier) wakes it. Injections
 *    are global (they touch the ATMS and every app) and are never
 *    slept. Footprints are observed dynamically per branch — the
 *    classical static independence relation is replaced by what the
 *    McHooks actually saw, which is exact for replayed prefixes.
 *
 *  - Visited-state pruning: the canonical fingerprint
 *    (src/mc/state_hash.h) keyed with (remaining depth, remaining
 *    injection budget) memoizes fully-explored subtrees. A prefix
 *    reaching a known key contributes the memoized subtree's schedule
 *    count without re-executing it — so `schedules_covered` counts
 *    every distinguishable schedule the search *covered*, while
 *    `executions` counts the re-executions actually paid for.
 *
 * A third, *static* reduction arms when the scenario carries an
 * sa::IndependenceSpec (the MHP analysis' exported oracle, DESIGN.md
 * §14):
 *
 *  - Sleep-set wake refinement: a sleeping event stays asleep when the
 *    executed segment is *statically* independent of the segment that
 *    put it to sleep — every dispatched step class is known to the
 *    spec, all cross-pairs are independent (distinct processes, or
 *    mask-disjoint off-looper classes), and no two posts target the
 *    same (looper, due-time) queue slot — even if their dynamically
 *    observed looper footprints overlap.
 *
 *  - Persistent-set pruning: under a closed-world, process-isolated
 *    spec, when every option at a choice point is an event on a looper
 *    of a *distinct* process (and no injection is on offer), the
 *    options pairwise commute and {option 0} is a persistent set — the
 *    siblings need not be explored at all. Skips are counted in
 *    `mhp_prunes`.
 *
 * Both refinements are belt-and-braces guarded by the guided-vs-
 * unguided bit-identical CTest (tests/mc/guided_equivalence_test.cc).
 *
 * Exploration pays one execution per explored branch: one execution
 * serves as the "spine" for the whole default-continuation of its
 * prefix. By default those executions are *snapshot-forked* — a
 * SnapshotSession (mc/snapshot_session.h) parks a copy-on-write
 * process checkpoint at every choice point and each branch resumes
 * from the deepest checkpoint sharing its prefix, re-executing only
 * the suffix below the backtrack point. With snapshots off (or
 * unsupported) each branch is a full replay-from-root via
 * runExecution(); both modes produce bit-identical reports.
 */
#ifndef RCHDROID_MC_EXPLORER_H
#define RCHDROID_MC_EXPLORER_H

#include <cstdint>
#include <string>
#include <vector>

#include "mc/execution.h"
#include "sa/mhp.h"

namespace rchdroid::mc {

struct ExplorerOptions
{
    const Scenario *scenario = nullptr;
    /** Choice points explored along any one schedule. */
    int max_depth = 10;
    /** Re-execution budget; the search truncates when exhausted. */
    std::uint64_t max_executions = 50'000;
    /** Oracle names; empty means defaultOracleNames(). */
    std::vector<std::string> oracles;
    /** Run the PR-1 analyzer on every execution. */
    bool run_analysis = true;
    /** Sleep sets + visited-state pruning; false = naive DFS. */
    bool reduction = true;
    /**
     * Fork branch executions from copy-on-write checkpoints instead of
     * replaying from the root. Purely a performance switch: reports are
     * bit-identical either way. Silently ignored where
     * sim::SnapshotHost::supported() is false.
     */
    bool snapshots = true;
    /**
     * The static independence oracle, or null for unguided DPOR. Only
     * consulted when `reduction` is on; soundness obligations are
     * documented on sa::IndependenceSpec.
     */
    const sa::IndependenceSpec *independence = nullptr;
};

struct ExplorerStats
{
    /** Full re-executions performed. */
    std::uint64_t executions = 0;
    /** Distinguishable schedules covered (incl. memoized subtrees). */
    std::uint64_t schedules_covered = 0;
    /** Choice-point nodes visited by the DFS. */
    std::uint64_t nodes = 0;
    /** Distinct (state, depth, budget) keys memoized. */
    std::uint64_t distinct_states = 0;
    /** Subtrees answered from the visited table. */
    std::uint64_t visited_hits = 0;
    /** Sibling branches skipped by sleep sets. */
    std::uint64_t sleep_skips = 0;
    /** Siblings skipped by static persistent-set pruning. */
    std::uint64_t mhp_prunes = 0;
    /** Sleepers kept asleep only by the static oracle (dynamic
     * footprints intersected but the spec proved independence). */
    std::uint64_t mhp_sleep_keeps = 0;
    /** True when max_executions stopped the search early. */
    bool truncated = false;
    /** True when executions actually ran snapshot-forked. */
    bool snapshots_active = false;
    /** Copy-on-write checkpoints parked across the search. */
    std::uint64_t snapshots_taken = 0;
    /** Executions resumed from a checkpoint (vs from the root). */
    std::uint64_t snapshot_restores = 0;
    /** Redundant prefix events re-executed to reach branch divergence
     * points — the cost of replay-from-root; 0 when every branch
     * resumed from a checkpoint at its exact divergence depth. */
    std::uint64_t events_replayed = 0;
    /** Prefix events inherited from checkpoints instead of re-run. */
    std::uint64_t events_saved = 0;
};

struct ExplorerReport
{
    ExplorerStats stats;
    /** Distinct findings, in discovery order (deduped by summary). */
    std::vector<McViolation> violations;
    /**
     * Schedule of the first violating execution (one entry per choice
     * point it recorded) — the minimizer's starting point.
     */
    std::vector<int> first_violation_schedule;
};

/** Explore the scenario's schedule space up to the configured bounds. */
ExplorerReport explore(const ExplorerOptions &options);

} // namespace rchdroid::mc

#endif // RCHDROID_MC_EXPLORER_H
