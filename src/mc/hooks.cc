#include "mc/hooks.h"

#include "os/looper.h"

namespace rchdroid::mc {

McHooks::McHooks(bool run_analysis)
{
    if (run_analysis) {
        analysis::AnalyzerOptions options;
        options.race_detector = true;
        options.lifecycle_checker = true;
        // The explorer reads the sink after every step; aborting would
        // kill the whole schedule enumeration on the first finding.
        options.abort_on_violation = false;
        analyzer_ = std::make_unique<analysis::Analyzer>(options);
    }
}

void
McHooks::onLooperCreated(Looper &looper)
{
    if (analyzer_)
        analyzer_->onLooperCreated(looper);
}

void
McHooks::onLooperDestroyed(Looper &looper)
{
    if (analyzer_)
        analyzer_->onLooperDestroyed(looper);
}

void
McHooks::onMessageSend(Looper &target, std::uint64_t msg_id, SimTime when,
                       const std::string &tag)
{
    footprint_.insert(target.name());
    segment_.posts.insert({target.name(), when});
    if (analyzer_)
        analyzer_->onMessageSend(target, msg_id, when, tag);
}

void
McHooks::onDispatchBegin(Looper &looper, std::uint64_t msg_id,
                         const std::string &tag)
{
    footprint_.insert(looper.name());
    segment_.classes.insert(looper.name() + "#" + tag);
    if (analyzer_)
        analyzer_->onDispatchBegin(looper, msg_id, tag);
}

void
McHooks::onDispatchEnd(Looper &looper)
{
    if (analyzer_)
        analyzer_->onDispatchEnd(looper);
}

void
McHooks::onSyncBarrier(const void *scope, const char *label)
{
    // A barrier is global synchronisation: conservatively poison the
    // footprint so the step is treated as dependent with everything.
    footprint_.insert("<barrier>");
    segment_.barrier = true;
    if (analyzer_)
        analyzer_->onSyncBarrier(scope, label);
}

void
McHooks::onSharedAccess(const void *object, const char *kind,
                        const std::string &label, bool is_write)
{
    if (analyzer_)
        analyzer_->onSharedAccess(object, kind, label, is_write);
}

void
McHooks::onObjectGone(const void *object)
{
    if (analyzer_)
        analyzer_->onObjectGone(object);
}

void
McHooks::onLifecycleTransition(const void *activity, const void *scope,
                               const std::string &component,
                               std::uint64_t instance_id, std::uint8_t from,
                               std::uint8_t to)
{
    if (analyzer_)
        analyzer_->onLifecycleTransition(activity, scope, component,
                                         instance_id, from, to);
}

void
McHooks::onActivityGone(const void *activity)
{
    if (analyzer_)
        analyzer_->onActivityGone(activity);
}

void
McHooks::onDestroyedViewMutation(const void *view, const char *kind,
                                 const std::string &label)
{
    if (analyzer_)
        analyzer_->onDestroyedViewMutation(view, kind, label);
}

void
McHooks::onAppCodeBegin()
{
    if (analyzer_)
        analyzer_->onAppCodeBegin();
}

void
McHooks::onAppCodeEnd()
{
    if (analyzer_)
        analyzer_->onAppCodeEnd();
}

} // namespace rchdroid::mc
