/**
 * @file
 * Derive a (partial) static independence spec for one corpus app from
 * its declarative AppSpec — the bridge between the MHP analysis'
 * per-model concurrency graph and the runtime step classes the
 * differential harness's app scenarios actually dispatch.
 *
 * The derived spec is never closed-world: app scenarios inject
 * configuration changes, which are global. It still sharpens sleep-set
 * wakes for the classes it does know — the AsyncTask worker step, the
 * main-looper completion (writes the captured view tree only when the
 * app holds raw references), and RCHDroid's GC tick.
 */
#ifndef RCHDROID_MC_INDEPENDENCE_H
#define RCHDROID_MC_INDEPENDENCE_H

#include "apps/app_spec.h"
#include "sa/mhp.h"
#include "sa/model_ir.h"

namespace rchdroid::mc {

/** Derive the partial spec for one app under one handling model. */
sa::IndependenceSpec independenceForApp(const apps::AppSpec &spec,
                                        sa::HandlingModel handling);

} // namespace rchdroid::mc

#endif // RCHDROID_MC_INDEPENDENCE_H
