#include "mc/app_scenario.h"

#include "analysis/analyzer.h"
#include "mc/explorer.h"
#include "mc/independence.h"
#include "sim/android_system.h"

namespace rchdroid::mc {

namespace {

sim::SystemOptions
systemOptionsFor(sa::HandlingModel handling)
{
    sim::SystemOptions options;
    options.mode = handling == sa::HandlingModel::Stock
                       ? RuntimeChangeMode::Restart
                       : RuntimeChangeMode::RchDroid;
    return options;
}

/** Install, launch, seed state, and start the button task if any. */
void
driveSetup(sim::AndroidSystem &system, const apps::AppSpec &spec)
{
    system.install(spec);
    system.launch(spec);
    system.applyUserState(spec);
    if (spec.async.trigger == apps::AsyncTrigger::OnButtonClick)
        system.clickUpdateButton(spec);
}

} // namespace

sa::DynamicObservation
observeApp(const apps::AppSpec &spec, sa::HandlingModel handling,
           const ObserveOptions &options)
{
    sa::DynamicObservation observation;
    observation.app = spec.name;
    observation.handling = handling;

    {
        // Recording analyzer, installed before the system so the
        // first-install-wins seam routes events here (and the
        // environment's abort-on-violation cannot kill the run — the
        // harness wants counts, not a panic).
        analysis::AnalyzerOptions record;
        record.abort_on_violation = false;
        analysis::ScopedAnalyzer guard(record);

        sim::AndroidSystem system(systemOptionsFor(handling));
        driveSetup(system, spec);
        // Rotate while any OnCreate/OnButtonClick task is mid-flight
        // (the §6 methodology: change while running in the state), then
        // let the episode and any straddling completion land.
        system.rotate();
        system.waitHandlingComplete(seconds(10));
        system.runFor(spec.async.duration + seconds(2));

        observation.crashed = system.threadFor(spec).crashed();
        observation.state_preserved =
            !observation.crashed &&
            system.verifyCriticalState(spec).preserved;

        const analysis::ViolationSink &sink = guard.analyzer().sink();
        observation.stale_view_mutations = static_cast<int>(
            sink.countOf(analysis::ViolationKind::DestroyedViewMutation));
        observation.other_violations =
            static_cast<int>(sink.totalCount()) -
            observation.stale_view_mutations;
    }

    if (options.run_mc) {
        // Quantify over schedules, not just the default interleaving:
        // any oracle finding on any explored schedule marks the app
        // dynamically dirty. The final_state oracle only arms for apps
        // the static pass calls clean — expected-dirty apps would
        // otherwise drown the report in known losses.
        const bool expect_clean = !observation.dirty();
        const Scenario scenario =
            makeAppScenario(spec, handling, expect_clean);
        ExplorerOptions explore_options;
        explore_options.scenario = &scenario;
        explore_options.max_depth = options.mc_max_depth;
        explore_options.max_executions = options.mc_max_executions;
        if (!scenario.independence.empty())
            explore_options.independence = &scenario.independence;
        const ExplorerReport report = explore(explore_options);
        observation.mc_explored = true;
        observation.mc_issue_found = !report.violations.empty();
    }
    return observation;
}

Scenario
makeAppScenario(const apps::AppSpec &spec, sa::HandlingModel handling,
                bool expect_clean)
{
    Scenario scenario;
    scenario.name = "app:" + spec.name;
    scenario.description =
        "differential-validation drive of " + spec.name + " under " +
        sa::handlingModelName(handling);
    scenario.make_options = [handling] { return systemOptionsFor(handling); };
    scenario.setup = [spec](sim::AndroidSystem &system) {
        driveSetup(system, spec);
    };
    scenario.injections = {InjectionKind::Rotate};
    scenario.max_injections = 2;
    scenario.horizon = spec.async.duration + seconds(2);
    scenario.tail = spec.async.duration + seconds(2);
    scenario.independence = independenceForApp(spec, handling);
    if (expect_clean) {
        scenario.final_check =
            [spec](sim::AndroidSystem &system)
            -> std::optional<std::string> {
            if (system.threadFor(spec).crashed())
                return "process crashed";
            const apps::StateCheckResult check =
                system.verifyCriticalState(spec);
            if (!check.preserved)
                return "critical state " + check.toString();
            return std::nullopt;
        };
    }
    return scenario;
}

} // namespace rchdroid::mc
