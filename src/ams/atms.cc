#include "ams/atms.h"

#include <utility>

#include "platform/logging.h"
#include "platform/metrics.h"
#include "platform/tracing.h"

namespace rchdroid {

const char *
runtimeChangeModeName(RuntimeChangeMode mode)
{
    switch (mode) {
      case RuntimeChangeMode::Restart: return "Android-10";
      case RuntimeChangeMode::RchDroid: return "RCHDroid";
    }
    return "Unknown";
}

Atms::Atms(SimScheduler &scheduler, const AtmsCosts &costs,
           const IpcLatencyModel &client_latency, TelemetrySink *telemetry)
    : scheduler_(scheduler),
      costs_(costs),
      client_latency_(client_latency),
      telemetry_(telemetry ? telemetry : &NullTelemetrySink::instance()),
      looper_(scheduler, "system_server.atms"),
      starter_(std::make_unique<ActivityStarter>(*this))
{
}

Atms::~Atms() = default;

void
Atms::registerProcess(const std::string &process, ActivityClient &client)
{
    clients_[process] = &client;
}

void
Atms::declareComponent(const std::string &component, ComponentInfo info)
{
    components_[component] = info;
}

ComponentInfo
Atms::componentInfo(const std::string &component) const
{
    auto it = components_.find(component);
    return it != components_.end() ? it->second : ComponentInfo{};
}

void
Atms::emitEvent(TelemetryKind kind, const std::string &detail,
                double value)
{
    TelemetryEvent event;
    event.time = scheduler_.now();
    event.kind = kind;
    event.detail = detail;
    event.value = value;
    telemetry_->record(event);
}

ActivityClient *
Atms::clientFor(const std::string &process)
{
    auto it = clients_.find(process);
    return it != clients_.end() ? it->second : nullptr;
}

void
Atms::callClient(const std::string &process, std::function<void()> fn,
                 std::size_t payload_bytes)
{
    ActivityClient *client = clientFor(process);
    if (!client) {
        RCH_LOGW("ATMS", "no client bound for process ", process);
        return;
    }
    (void)client;
    // A transaction issued from inside a costly ATMS dispatch departs
    // when the server-side work completes, then crosses the binder.
    SimDuration departure_delay = 0;
    if (looper_.isDispatching())
        departure_delay = looper_.currentCostEnd() - scheduler_.now();
    std::uint64_t causal_id = 0;
#if RCHDROID_TRACING
    // Flow-start at the binder send site: the client-side message this
    // transaction enqueues inherits the id through the scheduler slot
    // (pending causal), so the edge spans the whole server->client hop
    // and the binder latency shows up as queue wait.
    if (trace::Tracer *tracer = trace::Tracer::current()) {
        if (looper_.isDispatching()) {
            causal_id = tracer->newFlowId();
            tracer->flowAt(trace::Phase::kFlowStart, tracer->currentLane(),
                           tracer->now(), causal_id, "binder",
                           /*bind_enclosing=*/false);
        }
    }
#endif
    scheduler_.schedule(departure_delay +
                            client_latency_.oneWay(payload_bytes),
                        std::move(fn), EventLabel{}, causal_id);
}

ActivityRecord &
Atms::createRecord(const std::string &component, const std::string &process)
{
    const ActivityToken token = next_token_++;
    auto [it, inserted] = records_.emplace(
        token, ActivityRecord(token, component, process, config_,
                              scheduler_.now()));
    RCH_ASSERT(inserted, "duplicate token");
    it->second.setHandlesConfigChanges(
        componentInfo(component).handles_config_changes);
    return it->second;
}

ActivityRecord *
Atms::mutableRecordFor(ActivityToken token)
{
    auto it = records_.find(token);
    return it != records_.end() ? &it->second : nullptr;
}

const ActivityRecord *
Atms::recordFor(ActivityToken token) const
{
    auto it = records_.find(token);
    return it != records_.end() ? &it->second : nullptr;
}

const StarterStats &
Atms::starterStats() const
{
    return starter_->stats();
}

ActivityToken
Atms::foregroundToken() const
{
    const TaskRecord *top = stack_.topTask();
    return top ? top->top() : kInvalidToken;
}

void
Atms::updateConfiguration(const Configuration &config)
{
    // Timestamp the arrival: the paper measures handling time from the
    // configuration change arriving at the ATMS.
    emitEvent(kinds::kAtmsConfigChange, config.toString());
    metrics::add(metrics::Counter::kConfigChanges);
    looper_.post([this, config] { handleConfigChange(config); }, 0,
                 costs_.config_dispatch, "updateConfiguration");
}

void
Atms::handleConfigChange(const Configuration &config)
{
    const std::uint32_t change_bits = config_.diff(config);
    config_ = config;
    if (change_bits == kConfigNone)
        return;

    ActivityRecord *top = mutableRecordFor(foregroundToken());
    if (!top)
        return;

    if (top->handlesConfigChanges()) {
        // Manifest android:configChanges: deliver onConfigurationChanged
        // to the app, no relaunch — on both systems.
        top->setConfiguration(config);
        const ActivityToken token = top->token();
        ActivityClient *client = clientFor(top->process());
        if (client) {
            callClient(top->process(), [client, token, config] {
                client->scheduleConfigurationChanged(token, config);
            });
        }
        return;
    }

    if (mode_ == RuntimeChangeMode::Restart) {
        // ensureActivityConfiguration, stock behaviour: the record's
        // configuration no longer matches; relaunch the instance.
        top->setConfiguration(config);
        top->setState(RecordState::Launching);
        const ActivityToken token = top->token();
        const std::string process = top->process();
        ActivityClient *client = clientFor(process);
        if (client) {
            callClient(process, [client, token, config] {
                client->scheduleRelaunchActivity(token, config);
            });
        }
        metrics::add(metrics::Counter::kRelaunches);
        emitEvent(kinds::kAtmsRelaunch, top->component(),
                  static_cast<double>(token));
        return;
    }

    // RCHDroid: ensureActivityConfiguration modified to skip the
    // relaunch test (paper §3.1 Step 1). The client handler will shadow
    // the instance and request a sunny start.
    top->setConfiguration(config);
    const ActivityToken token = top->token();
    const std::string process = top->process();
    ActivityClient *client = clientFor(process);
    if (client) {
        callClient(process, [client, token, config] {
            client->scheduleConfigurationChanged(token, config);
        });
    }
    emitEvent(kinds::kAtmsShadowHandling, top->component(),
              static_cast<double>(token));
}

void
Atms::pressBack()
{
    looper_.post(
        [this] {
            ActivityRecord *top = mutableRecordFor(foregroundToken());
            if (!top)
                return;
            const ActivityToken token = top->token();
            ActivityClient *client = clientFor(top->process());
            emitEvent(kinds::kAtmsBack, top->component(),
                      static_cast<double>(token));
            if (client) {
                callClient(top->process(), [client, token] {
                    client->scheduleDestroyActivity(token);
                });
            }
        },
        0, costs_.transaction_handle, "pressBack");
}

void
Atms::startActivity(const Intent &intent)
{
    looper_.post([this, intent] { starter_->startActivityUnchecked(intent); },
                 0, costs_.start_activity_base, "startActivity");
}

void
Atms::activityResumed(ActivityToken token)
{
    looper_.post(
        [this, token] {
            if (ActivityRecord *record = mutableRecordFor(token)) {
                record->setState(RecordState::Resumed);
                emitEvent(kinds::kAtmsActivityResumed, record->component(),
                          static_cast<double>(token));
            }
        },
        0, costs_.transaction_handle, "activityResumed");
}

void
Atms::activityPaused(ActivityToken token)
{
    looper_.post(
        [this, token] {
            if (ActivityRecord *record = mutableRecordFor(token))
                record->setState(RecordState::Paused);
        },
        0, costs_.transaction_handle, "activityPaused");
}

void
Atms::activityStopped(ActivityToken token)
{
    looper_.post(
        [this, token] {
            if (ActivityRecord *record = mutableRecordFor(token))
                record->setState(RecordState::Stopped);
        },
        0, costs_.transaction_handle, "activityStopped");
}

void
Atms::activityDestroyed(ActivityToken token)
{
    looper_.post(
        [this, token] {
            if (ActivityRecord *record = mutableRecordFor(token)) {
                if (TaskRecord *task = stack_.taskContaining(token))
                    task->remove(token);
                emitEvent(kinds::kAtmsActivityDestroyed, record->component(),
                          static_cast<double>(token));
                records_.erase(token);
                // The record revealed beneath (back navigation) resumes.
                ActivityRecord *revealed =
                    mutableRecordFor(foregroundToken());
                if (revealed && revealed->state() != RecordState::Resumed) {
                    ActivityClient *client = clientFor(revealed->process());
                    const ActivityToken next = revealed->token();
                    if (client) {
                        callClient(revealed->process(), [client, next] {
                            client->scheduleResumeActivity(next);
                        });
                    }
                }
            }
        },
        0, costs_.transaction_handle, "activityDestroyed");
}

void
Atms::shadowActivityReclaimed(ActivityToken token)
{
    looper_.post(
        [this, token] {
            ActivityRecord *record = mutableRecordFor(token);
            if (!record || !record->isShadow())
                return;
            if (TaskRecord *task = stack_.taskContaining(token))
                task->remove(token);
            emitEvent(kinds::kAtmsShadowReclaimed, record->component(),
                      static_cast<double>(token));
            records_.erase(token);
        },
        0, costs_.transaction_handle, "shadowActivityReclaimed");
}

void
Atms::processCrashed(const std::string &process, const std::string &reason)
{
    looper_.post(
        [this, process, reason] {
            emitEvent(kinds::kAtmsProcessCrashed, process + ": " + reason);
            if (TaskRecord *task = stack_.taskForProcess(process)) {
                for (ActivityToken token : task->tokens())
                    records_.erase(token);
                stack_.removeTask(task->id());
            }
        },
        0, costs_.transaction_handle, "processCrashed");
}

} // namespace rchdroid
