/**
 * @file
 * TaskRecord and ActivityStack: the system_server's task/activity
 * ordering, mirroring the structures of Fig. 2(b) — the activity stack
 * holds task records (topmost = foreground app), each task holds a stack
 * of activity records (topmost = current interface).
 *
 * Carries the Table 2 RCHDroid addition to ActivityStack:
 * findShadowActivityLocked, the coin-flip search (29 LoC in the paper's
 * patch).
 */
#ifndef RCHDROID_AMS_ACTIVITY_STACK_H
#define RCHDROID_AMS_ACTIVITY_STACK_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ams/activity_record.h"

namespace rchdroid {

/** Identifier of a task (an app, in the paper's simplification). */
using TaskId = std::uint64_t;

/**
 * One app's back stack of activity records.
 */
class TaskRecord
{
  public:
    TaskRecord(TaskId id, std::string process)
        : id_(id), process_(std::move(process))
    {
    }

    TaskId id() const { return id_; }
    const std::string &process() const { return process_; }

    /** Push a record token on top. */
    void push(ActivityToken token) { stack_.push_back(token); }

    /** Top of the task stack, or kInvalidToken when empty. */
    ActivityToken top() const
    { return stack_.empty() ? kInvalidToken : stack_.back(); }

    bool empty() const { return stack_.empty(); }
    std::size_t depth() const { return stack_.size(); }

    /** Tokens bottom → top. */
    const std::vector<ActivityToken> &tokens() const { return stack_; }

    /** Remove a token wherever it sits; true if found. */
    bool remove(ActivityToken token);

    /** Move an existing token to the top; true if found. */
    bool moveToTop(ActivityToken token);

    bool contains(ActivityToken token) const;

  private:
    TaskId id_;
    std::string process_;
    std::vector<ActivityToken> stack_;
};

/**
 * The global ordering of tasks (topmost = foreground app).
 *
 * TaskRecord objects have stable addresses for their lifetime (heap
 * storage): pointers handed out by createTask/taskForProcess stay valid
 * until removeTask.
 */
class ActivityStack
{
  public:
    ActivityStack() = default;

    /** Create a task for a process and put it on top. */
    TaskRecord &createTask(const std::string &process);

    /** The foreground task, or null when none. */
    TaskRecord *topTask();
    const TaskRecord *topTask() const;

    /** The task owned by `process`, or null. */
    TaskRecord *taskForProcess(const std::string &process);

    /** Bring a task to the front; true if found. */
    bool moveTaskToFront(TaskId id);

    /** Remove a task entirely (process death, app close). */
    bool removeTask(TaskId id);

    std::size_t taskCount() const { return tasks_.size(); }

    /** Tasks bottom → top (stable pointees). */
    const std::vector<std::unique_ptr<TaskRecord>> &tasks() const
    { return tasks_; }

    /** The task holding `token`, or null. */
    TaskRecord *taskContaining(ActivityToken token);

    /**
     * RCHDroid (Table 2): search a task's stack top-down for a record
     * flagged shadow whose component matches; the coin-flip probe.
     * @param lookup Resolves a token to its record (null = skip).
     * @param records_visited Out: how many records were examined (the
     *        ATMS charges stack_search_per_record for each).
     * @return The shadow record's token, or nullopt.
     */
    std::optional<ActivityToken> findShadowActivityLocked(
        const TaskRecord &task, const std::string &component,
        const std::function<const ActivityRecord *(ActivityToken)> &lookup,
        int &records_visited) const;

  private:
    std::vector<std::unique_ptr<TaskRecord>> tasks_;
    TaskId next_task_id_ = 1;
};

} // namespace rchdroid

#endif // RCHDROID_AMS_ACTIVITY_STACK_H
