#include "ams/activity_stack.h"

#include <algorithm>

#include "platform/logging.h"

namespace rchdroid {

bool
TaskRecord::remove(ActivityToken token)
{
    auto it = std::find(stack_.begin(), stack_.end(), token);
    if (it == stack_.end())
        return false;
    stack_.erase(it);
    return true;
}

bool
TaskRecord::moveToTop(ActivityToken token)
{
    if (!remove(token))
        return false;
    stack_.push_back(token);
    return true;
}

bool
TaskRecord::contains(ActivityToken token) const
{
    return std::find(stack_.begin(), stack_.end(), token) != stack_.end();
}

TaskRecord &
ActivityStack::createTask(const std::string &process)
{
    tasks_.push_back(std::make_unique<TaskRecord>(next_task_id_++, process));
    return *tasks_.back();
}

TaskRecord *
ActivityStack::topTask()
{
    return tasks_.empty() ? nullptr : tasks_.back().get();
}

const TaskRecord *
ActivityStack::topTask() const
{
    return tasks_.empty() ? nullptr : tasks_.back().get();
}

TaskRecord *
ActivityStack::taskForProcess(const std::string &process)
{
    for (auto &task : tasks_) {
        if (task->process() == process)
            return task.get();
    }
    return nullptr;
}

bool
ActivityStack::moveTaskToFront(TaskId id)
{
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i]->id() == id) {
            auto task = std::move(tasks_[i]);
            tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(i));
            tasks_.push_back(std::move(task));
            return true;
        }
    }
    return false;
}

bool
ActivityStack::removeTask(TaskId id)
{
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i]->id() == id) {
            tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
    }
    return false;
}

TaskRecord *
ActivityStack::taskContaining(ActivityToken token)
{
    for (auto &task : tasks_) {
        if (task->contains(token))
            return task.get();
    }
    return nullptr;
}

std::optional<ActivityToken>
ActivityStack::findShadowActivityLocked(
    const TaskRecord &task, const std::string &component,
    const std::function<const ActivityRecord *(ActivityToken)> &lookup,
    int &records_visited) const
{
    records_visited = 0;
    const auto &tokens = task.tokens();
    // Top-down: the coupled shadow record sits directly under the top in
    // the steady state, so this usually terminates after two probes.
    for (auto it = tokens.rbegin(); it != tokens.rend(); ++it) {
        ++records_visited;
        const ActivityRecord *record = lookup(*it);
        if (!record)
            continue;
        if (record->isShadow() && record->component() == component)
            return *it;
    }
    return std::nullopt;
}

} // namespace rchdroid
