/**
 * @file
 * ActivityStarter: resolves startActivity intents into records, mirroring
 * com.android.server.wm.ActivityStarter with the RCHDroid modifications
 * of Table 2 (41 LoC in the paper's patch): startActivityUnchecked and
 * setTaskFromIntentActivity gain the coin-flip path — on a sunny-flagged
 * start, search the current task for a live shadow record and flip it to
 * the top instead of creating a new activity (paper §3.4, Fig. 6).
 */
#ifndef RCHDROID_AMS_ACTIVITY_STARTER_H
#define RCHDROID_AMS_ACTIVITY_STARTER_H

#include <cstdint>

#include "app/intent.h"

namespace rchdroid {

class Atms;
class TaskRecord;

/** Counters exposed for the ablation benches. */
struct StarterStats
{
    std::uint64_t normal_starts = 0;
    std::uint64_t sunny_creates = 0;
    std::uint64_t coin_flips = 0;
    std::uint64_t suppressed_same_top = 0;
};

/**
 * The launch resolver; runs on the ATMS looper.
 */
class ActivityStarter
{
  public:
    explicit ActivityStarter(Atms &atms);

    /**
     * Resolve and execute one start request. Must be called from within
     * an ATMS looper dispatch (costs are charged there).
     */
    void startActivityUnchecked(const Intent &intent);

    const StarterStats &stats() const { return stats_; }

  private:
    /** The sunny path: coin-flip an existing shadow record or create. */
    void setTaskFromIntentActivity(TaskRecord &task, const Intent &intent);

    Atms &atms_;
    StarterStats stats_;
};

} // namespace rchdroid

#endif // RCHDROID_AMS_ACTIVITY_STARTER_H
