/**
 * @file
 * AtmsCosts: server-side (system_server) cost constants, calibrated by
 * sim::DeviceModel alongside the client-side FrameworkCosts.
 */
#ifndef RCHDROID_AMS_ATMS_COSTS_H
#define RCHDROID_AMS_ATMS_COSTS_H

#include "platform/time.h"

namespace rchdroid {

/** Costs charged on the ATMS looper. */
struct AtmsCosts
{
    /** Receive + diff a configuration update, pick the top activity. */
    SimDuration config_dispatch = 0;
    /** startActivityUnchecked fixed part (intent resolution, checks). */
    SimDuration start_activity_base = 0;
    /** Allocate and initialise a new ActivityRecord. */
    SimDuration record_create = 0;
    /** findShadowActivityLocked: per record visited in the task stack. */
    SimDuration stack_search_per_record = 0;
    /** Reorder a found shadow record to the top (the coin flip). */
    SimDuration flip_reorder = 0;
    /** Generic transaction-handling overhead on the server looper. */
    SimDuration transaction_handle = 0;
};

} // namespace rchdroid

#endif // RCHDROID_AMS_ATMS_COSTS_H
