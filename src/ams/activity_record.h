/**
 * @file
 * ActivityRecord: the system_server's bookkeeping entry for one activity
 * instance, mirroring com.android.server.wm.ActivityRecord with the
 * RCHDroid addition of Table 2 — the shadow-state field and its
 * accessors (11 LoC in the paper's patch).
 */
#ifndef RCHDROID_AMS_ACTIVITY_RECORD_H
#define RCHDROID_AMS_ACTIVITY_RECORD_H

#include <cstdint>
#include <string>

#include "app/binder_interfaces.h"
#include "os/analysis_hooks.h"
#include "platform/time.h"
#include "resources/configuration.h"

namespace rchdroid {

/** Server-side visibility of a record's client instance. */
enum class RecordState : std::uint8_t {
    Launching,
    Resumed,
    Paused,
    Stopped,
    Destroyed,
};

/**
 * One activity's server-side record.
 */
class ActivityRecord
{
  public:
    ActivityRecord(ActivityToken token, std::string component,
                   std::string process, Configuration config,
                   SimTime created_at)
        : token_(token),
          component_(std::move(component)),
          process_(std::move(process)),
          config_(std::move(config)),
          created_at_(created_at)
    {
    }

    ~ActivityRecord()
    {
        if (auto *hooks = analysis::hooks())
            hooks->onObjectGone(this);
    }

    ActivityToken token() const { return token_; }
    const std::string &component() const { return component_; }
    const std::string &process() const { return process_; }

    const Configuration &configuration() const { return config_; }
    void
    setConfiguration(Configuration config)
    {
        noteAccess(/*is_write=*/true);
        config_ = std::move(config);
    }

    RecordState
    state() const
    {
        noteAccess(/*is_write=*/false);
        return state_;
    }
    void
    setState(RecordState state)
    {
        noteAccess(/*is_write=*/true);
        state_ = state;
    }

    /** @name RCHDroid shadow field (Table 2)
     * @{
     */
    bool
    isShadow() const
    {
        noteAccess(/*is_write=*/false);
        return shadow_;
    }
    void
    setShadow(bool shadow, SimTime now)
    {
        noteAccess(/*is_write=*/true);
        shadow_ = shadow;
        if (shadow)
            shadow_since_ = now;
    }
    SimTime shadowSince() const { return shadow_since_; }
    /** @} */

    /** Whether the app's manifest declares android:configChanges. */
    bool handlesConfigChanges() const { return handles_config_changes_; }
    void setHandlesConfigChanges(bool handles)
    { handles_config_changes_ = handles; }

    SimTime createdAt() const { return created_at_; }

  private:
    /** Report a record access to the race-detection hooks. */
    void
    noteAccess(bool is_write) const
    {
        if (auto *hooks = analysis::hooks())
            hooks->onSharedAccess(this, "ActivityRecord", component_,
                                  is_write);
    }

    ActivityToken token_;
    std::string component_;
    std::string process_;
    Configuration config_;
    RecordState state_ = RecordState::Launching;
    bool shadow_ = false;
    SimTime shadow_since_ = 0;
    bool handles_config_changes_ = false;
    SimTime created_at_ = 0;
};

} // namespace rchdroid

#endif // RCHDROID_AMS_ACTIVITY_RECORD_H
