#include "ams/activity_starter.h"

#include "ams/atms.h"
#include "platform/logging.h"
#include "platform/metrics.h"
#include "platform/tracing.h"

namespace rchdroid {

ActivityStarter::ActivityStarter(Atms &atms) : atms_(atms)
{
}

void
ActivityStarter::startActivityUnchecked(const Intent &intent)
{
    RCH_ASSERT(!intent.component.empty(), "intent without component");
    RCH_ASSERT(!intent.source_process.empty(), "intent without process");

    // Remember the outgoing foreground before any reordering: if a
    // different task comes to the front, its top activity is stopped
    // (which, under RCHDroid, also releases that process's shadow).
    const TaskRecord *previous_front = atms_.stack_.topTask();
    const ActivityToken previous_fg =
        previous_front ? previous_front->top() : kInvalidToken;
    const TaskId previous_front_id =
        previous_front ? previous_front->id() : 0;

    TaskRecord *task = atms_.stack_.taskForProcess(intent.source_process);
    if (!task || intent.hasFlag(kFlagNewTask)) {
        if (!task)
            task = &atms_.stack_.createTask(intent.source_process);
    }
    atms_.stack_.moveTaskToFront(task->id());

    const bool switched_task =
        previous_front && previous_front_id != task->id();
    if (switched_task && previous_fg != kInvalidToken) {
        if (ActivityRecord *prev = atms_.mutableRecordFor(previous_fg)) {
            if (prev->state() == RecordState::Resumed) {
                prev->setState(RecordState::Stopped);
                ActivityClient *prev_client = atms_.clientFor(prev->process());
                const ActivityToken token = previous_fg;
                if (prev_client) {
                    atms_.callClient(prev->process(), [prev_client, token] {
                        prev_client->scheduleStopActivity(token);
                    });
                }
            }
        }
    }

    if (intent.hasFlag(kFlagSunny)) {
        setTaskFromIntentActivity(*task, intent);
        return;
    }

    // Stock same-on-top suppression: with a default flag, creating an
    // activity identical to the current top finishes with creating
    // nothing (paper §3.4) — but a task switched back to the front must
    // still resume its stopped top activity.
    const ActivityRecord *top = atms_.recordFor(task->top());
    if (top && top->component() == intent.component) {
        ++stats_.suppressed_same_top;
        if (top->state() != RecordState::Resumed) {
            ActivityClient *client = atms_.clientFor(top->process());
            const ActivityToken token = top->token();
            if (client) {
                atms_.callClient(top->process(), [client, token] {
                    client->scheduleResumeActivity(token);
                });
            }
        }
        return;
    }

    // A new activity covers the task's previous top: stop it (which,
    // under RCHDroid, also releases that process's shadow instance —
    // the foreground switched).
    const ActivityToken covered = task->top();
    if (ActivityRecord *prev = atms_.mutableRecordFor(covered)) {
        if (prev->state() == RecordState::Resumed) {
            prev->setState(RecordState::Stopped);
            ActivityClient *prev_client = atms_.clientFor(prev->process());
            if (prev_client) {
                atms_.callClient(prev->process(), [prev_client, covered] {
                    prev_client->scheduleStopActivity(covered);
                });
            }
        }
    }

    ActivityRecord &record =
        atms_.createRecord(intent.component, intent.source_process);
    atms_.looper_.consumeCpu(atms_.costs_.record_create);
    task->push(record.token());
    ++stats_.normal_starts;

    LaunchArgs args;
    args.token = record.token();
    args.component = record.component();
    args.config = atms_.config_;
    ActivityClient *client = atms_.clientFor(intent.source_process);
    if (client) {
        atms_.callClient(intent.source_process,
                         [client, args] { client->scheduleLaunchActivity(args); });
    }
}

void
ActivityStarter::setTaskFromIntentActivity(TaskRecord &task,
                                           const Intent &intent)
{
    const ActivityToken previous_top = task.top();
    ActivityRecord *previous_record = atms_.mutableRecordFor(previous_top);
    RCH_TRACE_SCOPE_ARG("rch.coinFlip", intent.component, "rch");

    // Coin-flip probe: is there a live shadow record for this component
    // in the current task?
    int visited = 0;
    auto lookup = [this](ActivityToken token) -> const ActivityRecord * {
        return atms_.recordFor(token);
    };
    auto shadow_token = atms_.stack_.findShadowActivityLocked(
        task, intent.component, lookup, visited);
    atms_.looper_.consumeCpu(atms_.costs_.stack_search_per_record * visited);

    ActivityClient *client = atms_.clientFor(intent.source_process);

    if (shadow_token) {
        // Flip: the shadow record becomes the top (sunny) record and the
        // displaced foreground record takes the shadow flag (Fig. 6(2)).
        atms_.looper_.consumeCpu(atms_.costs_.flip_reorder);
        ActivityRecord *shadow_record = atms_.mutableRecordFor(*shadow_token);
        RCH_ASSERT(shadow_record, "shadow token without record");
        task.moveToTop(*shadow_token);
        shadow_record->setShadow(false, atms_.scheduler_.now());
        shadow_record->setConfiguration(atms_.config_);
        shadow_record->setState(RecordState::Launching);
        if (previous_record) {
            previous_record->setShadow(true, atms_.scheduler_.now());
            previous_record->setState(RecordState::Stopped);
        }
        ++stats_.coin_flips;
        metrics::add(metrics::Counter::kCoinFlipHit);
        atms_.emitEvent(kinds::kAtmsCoinFlip, intent.component,
                        static_cast<double>(*shadow_token));

        LaunchArgs args;
        args.token = *shadow_token;
        args.component = intent.component;
        args.config = atms_.config_;
        args.sunny = true;
        args.flipped = true;
        args.shadowed_token = previous_top;
        if (client) {
            atms_.callClient(intent.source_process, [client, args] {
                client->scheduleLaunchActivity(args);
            });
        }
        return;
    }

    // No live shadow record: create a second instance of the component
    // (permitted only under the sunny flag) and push it on the same task
    // stack; the displaced record enters the shadow state (Fig. 6(1)).
    ActivityRecord &record =
        atms_.createRecord(intent.component, intent.source_process);
    atms_.looper_.consumeCpu(atms_.costs_.record_create);
    task.push(record.token());
    if (previous_record) {
        previous_record->setShadow(true, atms_.scheduler_.now());
        previous_record->setState(RecordState::Stopped);
    }
    ++stats_.sunny_creates;
    metrics::add(metrics::Counter::kCoinFlipMiss);
    atms_.emitEvent(kinds::kAtmsSunnyCreate, intent.component,
                    static_cast<double>(record.token()));

    LaunchArgs args;
    args.token = record.token();
    args.component = record.component();
    args.config = atms_.config_;
    args.sunny = true;
    args.flipped = false;
    args.shadowed_token = previous_top;
    if (client) {
        atms_.callClient(intent.source_process, [client, args] {
            client->scheduleLaunchActivity(args);
        });
    }
}

} // namespace rchdroid
