/**
 * @file
 * Atms: the ActivityTaskManagerService of the simulated system_server,
 * mirroring com.android.server.wm.ActivityTaskManagerService.
 *
 * Owns the activity stack, the activity records, and the per-process
 * client bindings. Configuration updates enter the system here (the
 * `wm size` / rotation path), and the runtime-change handling mode
 * selects between the stock relaunch and RCHDroid's suppressed-relaunch
 * path (the paper's modified ensureActivityConfiguration).
 */
#ifndef RCHDROID_AMS_ATMS_H
#define RCHDROID_AMS_ATMS_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "ams/activity_record.h"
#include "ams/activity_stack.h"
#include "ams/activity_starter.h"
#include "ams/atms_costs.h"
#include "app/binder_interfaces.h"
#include "app/intent.h"
#include "os/ipc.h"
#include "os/looper.h"
#include "os/scheduler.h"
#include "platform/telemetry.h"

namespace rchdroid {

/** Which runtime-change handling the framework applies. */
enum class RuntimeChangeMode : std::uint8_t {
    /** Stock Android 10: destroy + recreate the foreground activity. */
    Restart,
    /** RCHDroid: shadow/sunny states, no restart. */
    RchDroid,
};

const char *runtimeChangeModeName(RuntimeChangeMode mode);

/** Manifest-declared properties of a component. */
struct ComponentInfo
{
    /** android:configChanges — the app handles changes itself. */
    bool handles_config_changes = false;
};

/**
 * The activity task manager service.
 */
class Atms final : public ActivityManager
{
  public:
    /**
     * @param scheduler Shared discrete-event core.
     * @param costs Server-side cost constants.
     * @param client_latency Binder latency towards app processes.
     * @param telemetry Event sink; null for the drop-everything sink.
     */
    Atms(SimScheduler &scheduler, const AtmsCosts &costs,
         const IpcLatencyModel &client_latency,
         TelemetrySink *telemetry = nullptr);
    ~Atms() override;

    Atms(const Atms &) = delete;
    Atms &operator=(const Atms &) = delete;

    /** @name Wiring
     * @{
     */
    Looper &looper() { return looper_; }
    void setMode(RuntimeChangeMode mode) { mode_ = mode; }
    RuntimeChangeMode mode() const { return mode_; }
    /** Bind an app process's client interface. */
    void registerProcess(const std::string &process, ActivityClient &client);
    /** Register a component's manifest info (PackageManager stand-in). */
    void declareComponent(const std::string &component, ComponentInfo info);
    /** @} */

    /** @name Device-facing entry points
     * @{
     */
    /**
     * Apply a new device configuration (`wm size`, rotation, locale).
     * Timestamped as the start of runtime-change handling.
     */
    void updateConfiguration(const Configuration &config);
    /**
     * User back press: destroy the foreground activity; the record
     * beneath it (if any) resumes once the destruction is reported.
     */
    void pressBack();
    const Configuration &currentConfiguration() const { return config_; }
    /**
     * Set the boot-time configuration directly (no change dispatch, no
     * telemetry); used once at system construction.
     */
    void setInitialConfiguration(const Configuration &config)
    { config_ = config; }
    /** @} */

    /** @name ActivityManager (transactions from app processes)
     * @{
     */
    void startActivity(const Intent &intent) override;
    void activityResumed(ActivityToken token) override;
    void activityPaused(ActivityToken token) override;
    void activityStopped(ActivityToken token) override;
    void activityDestroyed(ActivityToken token) override;
    void shadowActivityReclaimed(ActivityToken token) override;
    void processCrashed(const std::string &process,
                        const std::string &reason) override;
    /** @} */

    /** @name Introspection (tests, sim harness)
     * @{
     */
    const ActivityRecord *recordFor(ActivityToken token) const;
    const ActivityStack &stack() const { return stack_; }
    std::size_t recordCount() const { return records_.size(); }
    /** Token of the foreground record, or kInvalidToken. */
    ActivityToken foregroundToken() const;
    const AtmsCosts &costs() const { return costs_; }
    /** Launch-path counters (normal/sunny/flip), for tests and benches. */
    const StarterStats &starterStats() const;
    /** @} */

  private:
    friend class ActivityStarter;

    void handleConfigChange(const Configuration &config);
    /** Deliver fn to the process's client after the binder latency. */
    void callClient(const std::string &process, std::function<void()> fn,
                    std::size_t payload_bytes = 0);
    ActivityClient *clientFor(const std::string &process);
    ActivityRecord &createRecord(const std::string &component,
                                 const std::string &process);
    ActivityRecord *mutableRecordFor(ActivityToken token);
    void emitEvent(TelemetryKind kind, const std::string &detail,
                   double value = 0.0);
    ComponentInfo componentInfo(const std::string &component) const;

    SimScheduler &scheduler_;
    AtmsCosts costs_;
    IpcLatencyModel client_latency_;
    TelemetrySink *telemetry_;
    Looper looper_;
    RuntimeChangeMode mode_ = RuntimeChangeMode::Restart;
    Configuration config_;
    ActivityStack stack_;
    std::map<ActivityToken, ActivityRecord> records_;
    std::map<std::string, ActivityClient *> clients_;
    std::map<std::string, ComponentInfo> components_;
    std::unique_ptr<ActivityStarter> starter_;
    ActivityToken next_token_ = 1;
};

} // namespace rchdroid

#endif // RCHDROID_AMS_ATMS_H
