#include "view/list_view.h"

#include <utility>

#include "platform/logging.h"

namespace rchdroid {

AbsListView::AbsListView(std::string id) : View(std::move(id))
{
}

void
AbsListView::setItems(std::vector<std::string> items)
{
    requireAlive("setItems");
    items_ = std::move(items);
    const auto n = static_cast<int>(items_.size());
    if (selector_position_ >= n)
        selector_position_ = -1;
    if (checked_item_ >= n)
        checked_item_ = -1;
    if (first_visible_ >= n)
        first_visible_ = 0;
    invalidate();
}

void
AbsListView::setSelectorPosition(int position)
{
    requireAlive("setSelectorPosition");
    RCH_ASSERT(position >= -1 && position < static_cast<int>(items_.size()),
               "selector out of range: ", position);
    if (position == selector_position_)
        return;
    selector_position_ = position;
    invalidate();
}

void
AbsListView::setItemChecked(int position)
{
    requireAlive("setItemChecked");
    RCH_ASSERT(position >= 0 && position < static_cast<int>(items_.size()),
               "checked item out of range: ", position);
    if (position == checked_item_)
        return;
    checked_item_ = position;
    invalidate();
}

void
AbsListView::clearItemChecked()
{
    requireAlive("clearItemChecked");
    if (checked_item_ == -1)
        return;
    checked_item_ = -1;
    invalidate();
}

void
AbsListView::scrollToPosition(int position)
{
    requireAlive("scrollToPosition");
    RCH_ASSERT(position >= 0, "negative scroll position");
    if (position == first_visible_)
        return;
    first_visible_ = position;
    invalidate();
}

void
AbsListView::applyMigration(View &target) const
{
    auto *peer = dynamic_cast<AbsListView *>(&target);
    RCH_ASSERT(peer, "List migration onto ", target.typeName());
    // The sunny instance re-ran the app's adapter logic; items may differ
    // in count under the new configuration. Carry state defensively.
    if (selector_position_ >= 0 &&
        selector_position_ < static_cast<int>(peer->itemCount())) {
        peer->setSelectorPosition(selector_position_);
    }
    if (checked_item_ >= 0 &&
        checked_item_ < static_cast<int>(peer->itemCount())) {
        peer->setItemChecked(checked_item_);
    }
    if (first_visible_ < static_cast<int>(peer->itemCount()))
        peer->scrollToPosition(first_visible_);
}

std::size_t
AbsListView::memoryFootprintBytes() const
{
    std::size_t bytes = View::memoryFootprintBytes() + 512;
    for (const auto &item : items_)
        bytes += 64 + item.size();
    return bytes;
}

void
AbsListView::onSaveState(Bundle &state, bool full) const
{
    // Stock AbsListView freezes only the scroll position by default;
    // the selector and checked item — the paper's "state loss
    // (selection list)" class — survive only under the full snapshot.
    state.putInt("firstVisible", first_visible_);
    if (full) {
        state.putInt("selector", selector_position_);
        state.putInt("checked", checked_item_);
    }
}

void
AbsListView::onRestoreState(const Bundle &state)
{
    // Restoration happens before the adapter may have filled the new
    // instance; clamp on use rather than here, like AbsListView does.
    selector_position_ =
        static_cast<int>(state.getInt("selector", selector_position_));
    checked_item_ = static_cast<int>(state.getInt("checked", checked_item_));
    first_visible_ =
        static_cast<int>(state.getInt("firstVisible", first_visible_));
}

ListView::ListView(std::string id) : AbsListView(std::move(id))
{
}

GridView::GridView(std::string id, int columns)
    : AbsListView(std::move(id)), columns_(columns)
{
    RCH_ASSERT(columns > 0, "grid needs at least one column");
}

void
GridView::onSaveState(Bundle &state, bool full) const
{
    AbsListView::onSaveState(state, full);
    if (full)
        state.putInt("columns", columns_);
}

void
GridView::onRestoreState(const Bundle &state)
{
    AbsListView::onRestoreState(state);
    columns_ = static_cast<int>(state.getInt("columns", columns_));
}

} // namespace rchdroid
