/**
 * @file
 * The TextView family: TextView, Button, EditText, CheckBox — the widgets
 * whose Table 1 migration policy is setText (plus checked state for
 * compound buttons).
 *
 * The paper's most common top-100 issue class is "State loss (text box)"
 * (Table 5); EditText here is the widget that reproduces it.
 */
#ifndef RCHDROID_VIEW_TEXT_VIEW_H
#define RCHDROID_VIEW_TEXT_VIEW_H

#include <string>

#include "view/view.h"

namespace rchdroid {

/**
 * Displays text to the user, mirroring android.widget.TextView.
 */
class TextView : public View
{
  public:
    explicit TextView(std::string id);

    const char *typeName() const override { return "TextView"; }
    MigrationClass migrationClass() const override
    { return MigrationClass::Text; }

    const std::string &text() const { noteSharedRead(); return text_; }
    /** Set the displayed text; invalidates on change. */
    void setText(std::string text);

    /**
     * Set text resolved from a resource (used by the inflater). Such
     * text is configuration-derived, not user state: it is excluded
     * from snapshots and migration so a new instance shows the value
     * re-resolved under its own configuration (e.g. the new locale).
     * Any later programmatic setText() reclassifies the text as state.
     */
    void setTextFromResource(std::string text);
    bool isTextFromResource() const { return text_from_resource_; }

    double textSizeSp() const { return text_size_sp_; }
    void setTextSizeSp(double sp);

    void applyMigration(View &target) const override;
    std::size_t memoryFootprintBytes() const override;

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;

  private:
    std::string text_;
    double text_size_sp_ = 14.0;
    bool text_from_resource_ = false;
};

/**
 * A clickable TextView, mirroring android.widget.Button.
 */
class Button : public TextView
{
  public:
    explicit Button(std::string id);

    const char *typeName() const override { return "Button"; }

    /** Install the click handler; the simulated app's logic lives here. */
    void setOnClickListener(std::function<void()> listener);

    /** Deliver a user tap (the bench's "touching the button" event). */
    void performClick();

    bool hasClickListener() const { return listener_ != nullptr; }

  private:
    std::function<void()> listener_;
};

/**
 * Editable text with cursor state, mirroring android.widget.EditText.
 */
class EditText : public TextView
{
  public:
    explicit EditText(std::string id);

    const char *typeName() const override { return "EditText"; }

    const std::string &hint() const { return hint_; }
    void setHint(std::string hint);

    int cursorPosition() const { return cursor_; }
    void setCursorPosition(int position);

    /** Append user-typed characters, moving the cursor. */
    void typeText(const std::string &typed);

    void applyMigration(View &target) const override;

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;

  private:
    std::string hint_;
    int cursor_ = 0;
};

/**
 * A two-state button, mirroring android.widget.CheckBox
 * (CompoundButton). Reproduces the "check box setting is lost" issue of
 * DrWebAntiVirus (Table 3 #11).
 */
class CheckBox : public Button
{
  public:
    explicit CheckBox(std::string id);

    const char *typeName() const override { return "CheckBox"; }

    bool isChecked() const { noteSharedRead(); return checked_; }
    void setChecked(bool checked);
    void toggle() { setChecked(!checked_); }

    void applyMigration(View &target) const override;

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;

  private:
    bool checked_ = false;
};

} // namespace rchdroid

#endif // RCHDROID_VIEW_TEXT_VIEW_H
