/**
 * @file
 * The AbsListView family: AbsListView, ListView, GridView, mirroring
 * android.widget.AbsListView and subclasses.
 *
 * Table 1 migration policy: positionSelector + setItemChecked — the
 * selector position and the checked item are read from the shadow view
 * and re-applied on the sunny view. Reproduces every "State loss
 * (selection list)" entry of Table 5 and the Orbot bridge-selection
 * example of Fig. 13(d).
 */
#ifndef RCHDROID_VIEW_LIST_VIEW_H
#define RCHDROID_VIEW_LIST_VIEW_H

#include <string>
#include <vector>

#include "view/view.h"

namespace rchdroid {

/**
 * Displays a scrollable collection of item views.
 *
 * Items are modelled as strings (an adapter's rendered labels); what the
 * migration machinery needs is the selection/checked/scroll state, not
 * the item rendering.
 */
class AbsListView : public View
{
  public:
    explicit AbsListView(std::string id);

    const char *typeName() const override { return "AbsListView"; }
    MigrationClass migrationClass() const override
    { return MigrationClass::List; }

    /** Replace the adapter contents; resets selection if out of range. */
    void setItems(std::vector<std::string> items);
    const std::vector<std::string> &items() const { return items_; }
    std::size_t itemCount() const { return items_.size(); }

    /** @name Selector position (Table 1: positionSelector)
     * @{
     */
    int selectorPosition() const { return selector_position_; }
    void setSelectorPosition(int position);
    /** @} */

    /** @name Checked item (Table 1: setItemChecked)
     * @{
     */
    int checkedItem() const { noteSharedRead(); return checked_item_; }
    void setItemChecked(int position);
    void clearItemChecked();
    /** @} */

    /** First visible row (scroll state). */
    int firstVisiblePosition() const { return first_visible_; }
    void scrollToPosition(int position);

    void applyMigration(View &target) const override;
    std::size_t memoryFootprintBytes() const override;

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;

  private:
    std::vector<std::string> items_;
    int selector_position_ = -1;
    int checked_item_ = -1;
    int first_visible_ = 0;
};

/**
 * A vertical list, mirroring android.widget.ListView.
 */
class ListView : public AbsListView
{
  public:
    explicit ListView(std::string id);
    const char *typeName() const override { return "ListView"; }
};

/**
 * A grid of items, mirroring android.widget.GridView.
 */
class GridView : public AbsListView
{
  public:
    GridView(std::string id, int columns);

    const char *typeName() const override { return "GridView"; }
    int columns() const { return columns_; }

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;

  private:
    int columns_;
};

} // namespace rchdroid

#endif // RCHDROID_VIEW_LIST_VIEW_H
