#include "view/image_view.h"

#include <utility>

#include "platform/logging.h"

namespace rchdroid {

ImageView::ImageView(std::string id) : View(std::move(id))
{
}

void
ImageView::setDrawable(DrawableValue drawable)
{
    requireAlive("setDrawable");
    drawable_ = std::move(drawable);
    drawable_from_resource_ = false;
    invalidate();
}

void
ImageView::setDrawableFromResource(DrawableValue drawable)
{
    requireAlive("setDrawableFromResource");
    drawable_ = std::move(drawable);
    drawable_from_resource_ = true;
    invalidate();
}

void
ImageView::clearDrawable()
{
    requireAlive("clearDrawable");
    drawable_.reset();
    drawable_from_resource_ = false;
    invalidate();
}

std::string
ImageView::assetName() const
{
    return drawable_ ? drawable_->asset_name : std::string{};
}

void
ImageView::applyMigration(View &target) const
{
    auto *peer = dynamic_cast<ImageView *>(&target);
    RCH_ASSERT(peer, "Image migration onto ", target.typeName());
    if (drawable_from_resource_) {
        // The peer decoded its own configuration's variant already.
        peer->invalidate();
        return;
    }
    if (drawable_)
        peer->setDrawable(*drawable_);
    else
        peer->clearDrawable();
}

std::size_t
ImageView::memoryFootprintBytes() const
{
    std::size_t bytes = View::memoryFootprintBytes() + 128;
    if (drawable_)
        bytes += drawable_->byteSize();
    return bytes;
}

void
ImageView::onSaveState(Bundle &state, bool full) const
{
    // Stock ImageView saves nothing; RCHDroid's explicit snapshot keeps
    // the asset identity (never bitmap pixels — the sunny instance
    // re-decodes, as the migration policy setDrawable implies).
    // Resource-derived drawables are skipped: the new instance decodes
    // its own configuration's variant.
    if (full && drawable_ && !drawable_from_resource_) {
        state.putString("asset", drawable_->asset_name);
        state.putInt("w", drawable_->width_px);
        state.putInt("h", drawable_->height_px);
    }
}

void
ImageView::onRestoreState(const Bundle &state)
{
    if (state.contains("asset")) {
        DrawableValue v;
        v.asset_name = state.getString("asset");
        v.width_px = static_cast<int>(state.getInt("w"));
        v.height_px = static_cast<int>(state.getInt("h"));
        drawable_ = std::move(v);
        drawable_from_resource_ = false;
    }
}

} // namespace rchdroid
