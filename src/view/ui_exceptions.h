/**
 * @file
 * Exceptions that model *application* crashes.
 *
 * These are the two failure signatures the paper attributes to the
 * restarting-based handler (§2.3 App Crash): an asynchronous task returns
 * after the restart, touches a view of the destroyed activity, and the
 * process dies with a NullPointerException or WindowLeaked error. The
 * simulated framework never throws for its own errors (it uses Status);
 * a UiException crossing the ActivityThread dispatch boundary means the
 * simulated app crashed, and the process is torn down exactly as Android
 * would.
 */
#ifndef RCHDROID_VIEW_UI_EXCEPTIONS_H
#define RCHDROID_VIEW_UI_EXCEPTIONS_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rchdroid {

/** Which Android failure a UiException models. */
enum class UiFailureKind : std::uint8_t {
    /** Dereference of a released view (java.lang.NullPointerException). */
    NullPointer,
    /** Window with a dead token (android.view.WindowLeaked). */
    WindowLeaked,
    /** View mutation from a non-UI thread (CalledFromWrongThreadException). */
    WrongThread,
};

/** Name string for logs: "NullPointerException" etc. */
const char *uiFailureKindName(UiFailureKind kind);

/**
 * A simulated uncaught app exception.
 */
class UiException : public std::runtime_error
{
  public:
    UiException(UiFailureKind kind, const std::string &detail)
        : std::runtime_error(std::string(uiFailureKindName(kind)) + ": " +
                             detail),
          kind_(kind)
    {
    }

    UiFailureKind kind() const { return kind_; }

  private:
    UiFailureKind kind_;
};

inline const char *
uiFailureKindName(UiFailureKind kind)
{
    switch (kind) {
      case UiFailureKind::NullPointer:
        return "NullPointerException";
      case UiFailureKind::WindowLeaked:
        return "WindowLeaked";
      case UiFailureKind::WrongThread:
        return "CalledFromWrongThreadException";
    }
    return "UnknownUiException";
}

} // namespace rchdroid

#endif // RCHDROID_VIEW_UI_EXCEPTIONS_H
