#include "view/extra_widgets.h"

#include <algorithm>
#include <utility>

#include "platform/logging.h"

namespace rchdroid {

Spinner::Spinner(std::string id) : AbsListView(std::move(id))
{
}

Switch::Switch(std::string id) : CheckBox(std::move(id))
{
}

RatingBar::RatingBar(std::string id, int num_stars)
    : SeekBar(std::move(id)), num_stars_(num_stars)
{
    RCH_ASSERT(num_stars > 0, "rating bar needs at least one star");
    setMax(num_stars_ * 2); // half-star steps
}

double
RatingBar::rating() const
{
    return static_cast<double>(progress()) / 2.0;
}

void
RatingBar::setRating(double stars)
{
    const double clamped =
        std::clamp(stars, 0.0, static_cast<double>(num_stars_));
    setProgress(static_cast<int>(clamped * 2.0 + 0.5));
}

} // namespace rchdroid
