#include "view/text_view.h"

#include <utility>

#include "platform/logging.h"

namespace rchdroid {

TextView::TextView(std::string id) : View(std::move(id))
{
}

void
TextView::setText(std::string text)
{
    requireAlive("setText");
    text_from_resource_ = false;
    if (text == text_)
        return;
    text_ = std::move(text);
    invalidate();
}

void
TextView::setTextFromResource(std::string text)
{
    requireAlive("setTextFromResource");
    text_ = std::move(text);
    text_from_resource_ = true;
    invalidate();
}

void
TextView::setTextSizeSp(double sp)
{
    requireAlive("setTextSize");
    if (sp == text_size_sp_)
        return;
    text_size_sp_ = sp;
    invalidate();
}

void
TextView::applyMigration(View &target) const
{
    auto *peer = dynamic_cast<TextView *>(&target);
    RCH_ASSERT(peer, "Text migration onto ", target.typeName());
    if (text_from_resource_) {
        // Configuration-derived text: the peer already resolved its own
        // variant; carrying ours across would undo a locale switch.
        peer->invalidate();
        return;
    }
    peer->setText(text_);
}

std::size_t
TextView::memoryFootprintBytes() const
{
    // TextView carries a text layout cache proportional to content.
    return View::memoryFootprintBytes() + 256 + text_.size() * 2;
}

void
TextView::onSaveState(Bundle &state, bool full) const
{
    // Stock Android TextView does not freeze its text by default (only
    // EditText does) — this is the mechanism behind the paper's "state
    // loss (text)" issue class. RCHDroid's explicit snapshot saves it —
    // unless the text came straight from a resource, in which case the
    // new instance must re-resolve it under its own configuration.
    if (full && !text_from_resource_)
        state.putString("text", text_);
}

void
TextView::onRestoreState(const Bundle &state)
{
    if (state.contains("text")) {
        text_ = state.getString("text");
        text_from_resource_ = false; // restored text is user state
    }
}

Button::Button(std::string id) : TextView(std::move(id))
{
}

void
Button::setOnClickListener(std::function<void()> listener)
{
    listener_ = std::move(listener);
}

void
Button::performClick()
{
    requireAlive("performClick");
    if (listener_)
        listener_();
}

EditText::EditText(std::string id) : TextView(std::move(id))
{
}

void
EditText::setHint(std::string hint)
{
    requireAlive("setHint");
    hint_ = std::move(hint);
    invalidate();
}

void
EditText::setCursorPosition(int position)
{
    requireAlive("setCursorPosition");
    RCH_ASSERT(position >= 0, "negative cursor");
    cursor_ = position;
}

void
EditText::typeText(const std::string &typed)
{
    requireAlive("typeText");
    std::string current = text();
    current.insert(static_cast<std::size_t>(
                       std::min<std::size_t>(static_cast<std::size_t>(cursor_),
                                             current.size())),
                   typed);
    cursor_ += static_cast<int>(typed.size());
    setText(std::move(current));
}

void
EditText::applyMigration(View &target) const
{
    TextView::applyMigration(target);
    if (auto *peer = dynamic_cast<EditText *>(&target))
        peer->setCursorPosition(cursor_);
}

void
EditText::onSaveState(Bundle &state, bool full) const
{
    (void)full;
    // EditText freezes its text by default on Android (freezesText).
    state.putString("text", text());
    state.putInt("cursor", cursor_);
}

void
EditText::onRestoreState(const Bundle &state)
{
    TextView::onRestoreState(state);
    cursor_ = static_cast<int>(state.getInt("cursor", cursor_));
}

CheckBox::CheckBox(std::string id) : Button(std::move(id))
{
}

void
CheckBox::setChecked(bool checked)
{
    requireAlive("setChecked");
    if (checked == checked_)
        return;
    checked_ = checked;
    invalidate();
}

void
CheckBox::applyMigration(View &target) const
{
    Button::applyMigration(target);
    if (auto *peer = dynamic_cast<CheckBox *>(&target))
        peer->setChecked(checked_);
}

void
CheckBox::onSaveState(Bundle &state, bool full) const
{
    Button::onSaveState(state, full);
    // CompoundButton saves its checked state by default.
    state.putBool("checked", checked_);
}

void
CheckBox::onRestoreState(const Bundle &state)
{
    Button::onRestoreState(state);
    checked_ = state.getBool("checked", checked_);
}

} // namespace rchdroid
