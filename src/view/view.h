/**
 * @file
 * View: the base class of the widget hierarchy, mirroring
 * android.view.View with the RCHDroid additions from Table 2 — the
 * Shadow/Sunny state flags, the sunny-peer pointer, and the modified
 * invalidate() that lets the framework catch the "final update step" of
 * any app logic (paper §3.3).
 */
#ifndef RCHDROID_VIEW_VIEW_H
#define RCHDROID_VIEW_VIEW_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "os/bundle.h"
#include "platform/time.h"
#include "view/ui_exceptions.h"

namespace rchdroid {

class Looper;
class View;
class ViewGroup;

/**
 * The "basic types of views" of Table 1; every widget — including
 * user-defined subclasses — belongs to one class, which selects its
 * migration policy.
 */
enum class MigrationClass : std::uint8_t {
    /** Plain container/decoration; nothing beyond base state migrates. */
    Generic,
    /** TextView family: migrate via setText. */
    Text,
    /** ImageView family: migrate via setDrawable. */
    Image,
    /** AbsListView family: migrate selector position + checked item. */
    List,
    /** Scrolling containers: migrate scroll offset. */
    Scroll,
    /** VideoView: migrate via setVideoURI (+ playback position). */
    Video,
    /** ProgressBar family: migrate via setProgress. */
    Progress,
};

const char *migrationClassName(MigrationClass cls);

/**
 * Host interface the owning activity implements; plays the role of
 * Android's ViewRootImpl/AttachInfo callbacks. The RCHDroid lazy
 * migrator observes invalidations through onViewInvalidated.
 */
class ViewTreeHost
{
  public:
    virtual ~ViewTreeHost() = default;

    /** A view in this tree was invalidated (the final update step). */
    virtual void onViewInvalidated(View &view) = 0;

    /** True when this tree belongs to a shadow-state activity. */
    virtual bool isShadowTree() const = 0;

    /** Trace label, usually the activity name. */
    virtual std::string hostName() const = 0;

    /**
     * The thread allowed to mutate this tree, or null when the host
     * enforces no thread affinity (bare test hosts). Mutating a view
     * from another looper throws CalledFromWrongThreadException, as on
     * Android ("updating the user interface can only be done by the
     * activity thread", paper §2.1).
     */
    virtual Looper *uiLooper() const { return nullptr; }
};

/**
 * Base widget.
 *
 * Ownership: children are owned by their parent ViewGroup; the root is
 * owned by the activity's Window. A destroyed tree keeps its objects
 * (simulating Java references held by async callbacks) but any mutation
 * throws UiException, reproducing the post-restart crash.
 */
class View
{
  public:
    /** @param id View id (may be empty = no id, like android:id absent). */
    explicit View(std::string id);
    virtual ~View();

    View(const View &) = delete;
    View &operator=(const View &) = delete;

    /** @name Identity and hierarchy
     * @{
     */
    const std::string &id() const { return id_; }
    ViewGroup *parent() { return parent_; }
    const ViewGroup *parent() const { return parent_; }
    /** Widget class name, e.g. "TextView". */
    virtual const char *typeName() const { return "View"; }
    /** Basic type selecting the Table 1 migration policy. */
    virtual MigrationClass migrationClass() const
    { return MigrationClass::Generic; }
    /** @} */

    /** @name Attachment and liveness
     * @{
     */
    void attachToHost(ViewTreeHost *host);
    void detachFromHost();
    /** Mark the whole subtree released (activity destroyed). */
    void markDestroyed();
    bool isDestroyed() const { return destroyed_; }
    ViewTreeHost *host() { return host_; }
    /** @} */

    /** @name RCHDroid state (Table 2: View modifications)
     * @{
     */
    bool isShadow() const { return shadow_; }
    bool isSunny() const { return sunny_; }
    virtual void setShadow(bool shadow) { shadow_ = shadow; }
    virtual void setSunny(bool sunny) { sunny_ = sunny; }
    /** Peer view in the sunny-state tree; null outside a migration pair. */
    View *sunnyPeer() { return sunny_peer_; }
    const View *sunnyPeer() const { return sunny_peer_; }
    void setSunnyPeer(View *peer) { sunny_peer_ = peer; }
    /** @} */

    /**
     * Invalidate: the generic final step of every view update. Marks the
     * view dirty and notifies the host — where RCHDroid's lazy migration
     * hooks in (paper §3.3: "any updates to views will finally trigger a
     * generic invalidate function").
     */
    void invalidate();

    bool isDirty() const { return dirty_; }
    void clearDirty() { dirty_ = false; }

    /** Generation counter: bumps on every invalidate (test observability). */
    std::uint64_t invalidateCount() const { return invalidate_count_; }

    /** @name Instance state (onSaveInstanceState plumbing)
     * Mirrors View.saveHierarchyState / restoreHierarchyState with one
     * crucial distinction the effectiveness results rest on:
     *
     *  - Default mode (`full == false`, stock Android): only views with
     *    an id participate, and each widget saves only what AOSP's
     *    default onSaveInstanceState saves (EditText text yes, TextView
     *    text no, ProgressBar progress no, ...). This partial coverage
     *    is why the Table 3 / Table 5 apps lose state across restarts.
     *
     *  - Full mode (`full == true`, RCHDroid's explicit snapshot, part
     *    of the paper's 79-LoC View patch): every widget saves its
     *    complete migratable state, and id-less views are keyed by
     *    their structural path so nothing is skipped.
     * @{
     */
    /**
     * Save this view's state into `container`.
     * @param full Full (RCHDroid) vs default (stock) coverage.
     * @param path Structural path of this view, e.g. "0/2"; used as the
     *        key fallback for id-less views in full mode.
     */
    void saveHierarchyState(Bundle &container, bool full = false,
                            const std::string &path = {}) const;
    /** Restore from `container`, trying the id key then the path key. */
    void restoreHierarchyState(const Bundle &container,
                               const std::string &path = {});
    /** Key this view's state is stored under, or "" to skip. */
    std::string stateKey(bool full, const std::string &path) const;
    /** @} */

    /**
     * Apply this view's migratable attributes onto `target`, the Table 1
     * policy for this widget's migration class. `target` must be the
     * same basic type.
     */
    virtual void applyMigration(View &target) const;

    /** @name Geometry (assigned by the layout pass)
     * @{
     */
    void setFrame(int left, int top, int width, int height);
    int frameLeft() const { return left_; }
    int frameTop() const { return top_; }
    int frameWidth() const { return width_; }
    int frameHeight() const { return height_; }
    /** @} */

    /** Approximate heap footprint of this view object (not children). */
    virtual std::size_t memoryFootprintBytes() const;

    /** Decoded drawable bytes held by this view (ImageView overrides). */
    virtual std::size_t drawableBytes() const { return 0; }

    /** Visit this subtree pre-order. */
    virtual void visit(const std::function<void(View &)> &fn);
    /** Const pre-order visit (distinct name avoids overload ambiguity). */
    virtual void visitConst(const std::function<void(const View &)> &fn) const;

    /** Number of views in this subtree. */
    int countViews() const;

    /** Find a descendant (or self) by id; null when absent. */
    virtual View *findViewById(const std::string &id);

  protected:
    /** Throw NullPointer when this view has been released. */
    void requireAlive(const char *operation) const;

    /**
     * Report a read of this view's migratable state to the analysis
     * hooks (no-op when analysis is off). Widget getters whose values
     * feed app logic call this so the race detector sees cross-thread
     * reads — the silent half of the concurrent-update bugs the paper's
     * async scenarios produce.
     */
    void noteSharedRead() const;

    /** Subclass hooks for typed state.
     * @param full Full (RCHDroid) vs default (stock Android) coverage. */
    virtual void onSaveState(Bundle &state, bool full) const;
    virtual void onRestoreState(const Bundle &state);

    /** Container recursion hooks (overridden by ViewGroup). */
    virtual void dispatchSaveChildren(Bundle &container, bool full,
                                      const std::string &path) const;
    virtual void dispatchRestoreChildren(const Bundle &container,
                                         const std::string &path);

    /** ViewGroup wires parents through this. */
    void setParent(ViewGroup *parent) { parent_ = parent; }
    friend class ViewGroup;

  private:
    std::string id_;
    ViewGroup *parent_ = nullptr;
    ViewTreeHost *host_ = nullptr;
    bool destroyed_ = false;
    bool dirty_ = false;
    bool shadow_ = false;
    bool sunny_ = false;
    View *sunny_peer_ = nullptr;
    std::uint64_t invalidate_count_ = 0;
    int left_ = 0, top_ = 0, width_ = 0, height_ = 0;
};

} // namespace rchdroid

#endif // RCHDROID_VIEW_VIEW_H
