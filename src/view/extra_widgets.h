/**
 * @file
 * Additional stock widgets: Spinner, Switch, RatingBar — further
 * members of the Table 1 basic-type families, demonstrating that the
 * migration policy dispatch extends across the widget zoo without new
 * framework code (each inherits its family's save/migrate behaviour).
 */
#ifndef RCHDROID_VIEW_EXTRA_WIDGETS_H
#define RCHDROID_VIEW_EXTRA_WIDGETS_H

#include <string>

#include "view/list_view.h"
#include "view/progress_bar.h"
#include "view/text_view.h"

namespace rchdroid {

/**
 * A dropdown selector, mirroring android.widget.Spinner. An
 * AdapterView like AbsListView: the migratable essence is the selected
 * position (the Orbot bridge-selector of Fig. 13(d) is a Spinner).
 */
class Spinner : public AbsListView
{
  public:
    explicit Spinner(std::string id);

    const char *typeName() const override { return "Spinner"; }

    /** Convenience over the AbsListView selector. */
    void select(int position) { setSelectorPosition(position); }
    int selected() const { return selectorPosition(); }
};

/**
 * A two-state toggle, mirroring android.widget.Switch: a
 * CompoundButton, so the checked state persists by default and
 * migrates with the Text-family policy plus checked state.
 */
class Switch : public CheckBox
{
  public:
    explicit Switch(std::string id);

    const char *typeName() const override { return "Switch"; }
};

/**
 * A star-rating bar, mirroring android.widget.RatingBar: an AbsSeekBar
 * under the hood, so it belongs to the Progress family. Rating is
 * stored as progress in half-star steps.
 */
class RatingBar : public SeekBar
{
  public:
    /** @param num_stars Star count (default 5, like Android). */
    explicit RatingBar(std::string id, int num_stars = 5);

    const char *typeName() const override { return "RatingBar"; }

    int numStars() const { return num_stars_; }
    double rating() const;
    /** Set the rating in stars (clamped; half-star resolution). */
    void setRating(double stars);

  private:
    int num_stars_;
};

} // namespace rchdroid

#endif // RCHDROID_VIEW_EXTRA_WIDGETS_H
