/**
 * @file
 * VideoView: plays a video file, mirroring android.widget.VideoView.
 * Table 1 migration policy: setVideoURI (we also carry the playback
 * position, which is the state users actually notice losing).
 */
#ifndef RCHDROID_VIEW_VIDEO_VIEW_H
#define RCHDROID_VIEW_VIDEO_VIEW_H

#include <string>

#include "platform/time.h"
#include "view/view.h"

namespace rchdroid {

/**
 * A video playback surface.
 */
class VideoView : public View
{
  public:
    explicit VideoView(std::string id);

    const char *typeName() const override { return "VideoView"; }
    MigrationClass migrationClass() const override
    { return MigrationClass::Video; }

    const std::string &videoUri() const { return video_uri_; }
    void setVideoUri(std::string uri);

    bool isPlaying() const { return playing_; }
    void start();
    void pause();

    /** Playback position in milliseconds. */
    std::int64_t positionMs() const { return position_ms_; }
    void seekTo(std::int64_t position_ms);

    void applyMigration(View &target) const override;
    std::size_t memoryFootprintBytes() const override;

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;

  private:
    std::string video_uri_;
    bool playing_ = false;
    std::int64_t position_ms_ = 0;
};

} // namespace rchdroid

#endif // RCHDROID_VIEW_VIDEO_VIEW_H
