/**
 * @file
 * ImageView: displays a drawable, mirroring android.widget.ImageView.
 * Table 1 migration policy: setDrawable.
 *
 * The §5.1 benchmark apps are "a set of ImageViews and a Button"; an
 * AsyncTask later replaces each ImageView's drawable — the update the
 * lazy migrator must carry from the shadow tree to the sunny tree.
 */
#ifndef RCHDROID_VIEW_IMAGE_VIEW_H
#define RCHDROID_VIEW_IMAGE_VIEW_H

#include <optional>
#include <string>

#include "resources/resource_table.h"
#include "view/view.h"

namespace rchdroid {

/**
 * A widget that renders one bitmap drawable.
 */
class ImageView : public View
{
  public:
    explicit ImageView(std::string id);

    const char *typeName() const override { return "ImageView"; }
    MigrationClass migrationClass() const override
    { return MigrationClass::Image; }

    /** The decoded drawable currently shown, if any. */
    const std::optional<DrawableValue> &drawable() const { return drawable_; }

    /** Replace the shown drawable; invalidates. */
    void setDrawable(DrawableValue drawable);

    /**
     * Install a drawable resolved from a resource (inflater use). Like
     * TextView's resource text, it is configuration-derived: excluded
     * from snapshots/migration so a new instance decodes the variant
     * matching its own configuration (drawable-land vs -port).
     */
    void setDrawableFromResource(DrawableValue drawable);
    bool isDrawableFromResource() const { return drawable_from_resource_; }

    /** Drop the drawable (e.g. trimMemory); invalidates. */
    void clearDrawable();

    /** Asset name, or "" when empty (trace/diff helper). */
    std::string assetName() const;

    void applyMigration(View &target) const override;
    std::size_t memoryFootprintBytes() const override;
    std::size_t drawableBytes() const override
    { return drawable_ ? drawable_->byteSize() : 0; }

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;

  private:
    std::optional<DrawableValue> drawable_;
    bool drawable_from_resource_ = false;
};

} // namespace rchdroid

#endif // RCHDROID_VIEW_IMAGE_VIEW_H
