#include "view/view.h"

#include <utility>

#include "os/analysis_hooks.h"
#include "os/looper.h"
#include "platform/logging.h"
#include "view/view_group.h"

namespace rchdroid {

const char *
migrationClassName(MigrationClass cls)
{
    switch (cls) {
      case MigrationClass::Generic: return "Generic";
      case MigrationClass::Text: return "Text";
      case MigrationClass::Image: return "Image";
      case MigrationClass::List: return "List";
      case MigrationClass::Scroll: return "Scroll";
      case MigrationClass::Video: return "Video";
      case MigrationClass::Progress: return "Progress";
    }
    return "Unknown";
}

View::View(std::string id) : id_(std::move(id))
{
}

View::~View()
{
    if (auto *hooks = analysis::hooks())
        hooks->onObjectGone(this);
}

void
View::attachToHost(ViewTreeHost *host)
{
    host_ = host;
}

void
View::detachFromHost()
{
    host_ = nullptr;
}

void
View::markDestroyed()
{
    visit([](View &v) {
        v.destroyed_ = true;
        v.host_ = nullptr;
        v.sunny_peer_ = nullptr;
    });
}

void
View::invalidate()
{
    auto *hooks = analysis::hooks();
    if (destroyed_ && hooks)
        hooks->onDestroyedViewMutation(this, typeName(), id_);
    requireAlive("invalidate");
    // Android's thread-affinity rule: only the activity (UI) thread may
    // mutate the tree. Mutations outside any dispatch (direct test
    // drivers) are exempt, as are hosts without an affinity.
    if (host_) {
        Looper *ui = host_->uiLooper();
        Looper *running = Looper::current();
        if (ui && running && running != ui) {
            throw UiException(UiFailureKind::WrongThread,
                              std::string(typeName()) + " '" + id_ +
                                  "' mutated from thread " +
                                  running->name());
        }
    }
    // Report the write only after the affinity check: a wrong-thread
    // mutation is already rejected (and studied) as a simulated crash,
    // so the race detector's job is the accesses Android permits but
    // does not order — above all wrong-thread *reads*.
    if (hooks)
        hooks->onSharedAccess(this, typeName(), id_, /*is_write=*/true);
    dirty_ = true;
    ++invalidate_count_;
    if (host_)
        host_->onViewInvalidated(*this);
}

void
View::noteSharedRead() const
{
    if (auto *hooks = analysis::hooks())
        hooks->onSharedAccess(this, typeName(), id_, /*is_write=*/false);
}

void
View::requireAlive(const char *operation) const
{
    if (destroyed_) {
        throw UiException(UiFailureKind::NullPointer,
                          std::string(operation) + " on released " +
                              typeName() + " '" + id_ + "'");
    }
}

std::string
View::stateKey(bool full, const std::string &path) const
{
    if (!id_.empty())
        return id_;
    // Stock Android skips id-less views; RCHDroid's explicit snapshot
    // keys them by structural path instead.
    if (full && !path.empty())
        return "@" + path;
    return {};
}

void
View::saveHierarchyState(Bundle &container, bool full,
                         const std::string &path) const
{
    const std::string key = stateKey(full, path);
    if (!key.empty()) {
        Bundle state;
        onSaveState(state, full);
        if (!state.empty())
            container.putBundle(key, std::move(state));
    }
    // Children always participate, whether or not this view has a key —
    // Android's dispatchSaveInstanceState recurses unconditionally.
    dispatchSaveChildren(container, full, path);
}

void
View::restoreHierarchyState(const Bundle &container, const std::string &path)
{
    // Try the id key first, then the structural-path key a full-mode
    // save may have used.
    if (!id_.empty() && container.contains(id_)) {
        onRestoreState(container.getBundle(id_));
    } else {
        const std::string path_key = "@" + path;
        if (!path.empty() && container.contains(path_key))
            onRestoreState(container.getBundle(path_key));
    }
    dispatchRestoreChildren(container, path);
}

void
View::dispatchSaveChildren(Bundle &container, bool full,
                           const std::string &path) const
{
    (void)container;
    (void)full;
    (void)path;
}

void
View::dispatchRestoreChildren(const Bundle &container, const std::string &path)
{
    (void)container;
    (void)path;
}

void
View::onSaveState(Bundle &state, bool full) const
{
    (void)state;
    (void)full;
}

void
View::onRestoreState(const Bundle &state)
{
    (void)state;
}

void
View::applyMigration(View &target) const
{
    // The Generic policy: nothing type-specific to carry over. Dirtiness
    // still propagates so the sunny tree redraws.
    target.invalidate();
}

void
View::setFrame(int left, int top, int width, int height)
{
    left_ = left;
    top_ = top;
    width_ = width;
    height_ = height;
}

std::size_t
View::memoryFootprintBytes() const
{
    // Rough parity with a bare android.view.View instance.
    return 512 + id_.size();
}

void
View::visit(const std::function<void(View &)> &fn)
{
    fn(*this);
}

void
View::visitConst(const std::function<void(const View &)> &fn) const
{
    fn(*this);
}

int
View::countViews() const
{
    int n = 0;
    visitConst([&n](const View &) { ++n; });
    return n;
}

View *
View::findViewById(const std::string &id)
{
    return id_ == id ? this : nullptr;
}

} // namespace rchdroid
