#include "view/view_group.h"

#include <utility>

#include "platform/logging.h"

namespace rchdroid {

ViewGroup::ViewGroup(std::string id) : View(std::move(id))
{
}

View &
ViewGroup::addChild(std::unique_ptr<View> child)
{
    RCH_ASSERT(child != nullptr, "null child");
    RCH_ASSERT(child->parent() == nullptr, "child already has a parent");
    child->setParent(this);
    if (host())
        child->attachToHost(host());
    children_.push_back(std::move(child));
    return *children_.back();
}

void
ViewGroup::removeChildAt(std::size_t index)
{
    RCH_ASSERT(index < children_.size(), "child index out of range");
    children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(index));
}

std::unique_ptr<View>
ViewGroup::detachChildAt(std::size_t index)
{
    RCH_ASSERT(index < children_.size(), "child index out of range");
    std::unique_ptr<View> child = std::move(children_[index]);
    children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(index));
    child->setParent(nullptr);
    child->detachFromHost();
    return child;
}

View &
ViewGroup::childAt(std::size_t index)
{
    RCH_ASSERT(index < children_.size(), "child index out of range");
    return *children_[index];
}

const View &
ViewGroup::childAt(std::size_t index) const
{
    RCH_ASSERT(index < children_.size(), "child index out of range");
    return *children_[index];
}

void
ViewGroup::dispatchShadowStateChanged(bool shadow)
{
    visit([shadow](View &v) { v.setShadow(shadow); });
}

void
ViewGroup::dispatchSunnyStateChanged(bool sunny)
{
    visit([sunny](View &v) { v.setSunny(sunny); });
}

void
ViewGroup::visit(const std::function<void(View &)> &fn)
{
    fn(*this);
    for (auto &child : children_)
        child->visit(fn);
}

void
ViewGroup::visitConst(const std::function<void(const View &)> &fn) const
{
    fn(*this);
    for (const auto &child : children_)
        child->visitConst(fn);
}

View *
ViewGroup::findViewById(const std::string &view_id)
{
    if (id() == view_id)
        return this;
    for (auto &child : children_) {
        if (View *found = child->findViewById(view_id))
            return found;
    }
    return nullptr;
}

std::size_t
ViewGroup::memoryFootprintBytes() const
{
    // Children accounted separately by tree walkers; charge the slots.
    return View::memoryFootprintBytes() + 64 +
           children_.size() * sizeof(void *);
}

void
ViewGroup::layoutSubtree(int left, int top, int width, int height)
{
    setFrame(left, top, width, height);
    for (auto &child : children_) {
        if (auto *group = dynamic_cast<ViewGroup *>(child.get()))
            group->layoutSubtree(left, top, width, height);
        else
            child->setFrame(left, top, width, height);
    }
}

void
ViewGroup::onSaveState(Bundle &state, bool full) const
{
    // Groups carry no own state by default; subclasses (ScrollView) add
    // theirs on top. Children are handled by dispatchSaveChildren.
    (void)state;
    (void)full;
}

void
ViewGroup::onRestoreState(const Bundle &state)
{
    (void)state;
}

void
ViewGroup::dispatchSaveChildren(Bundle &container, bool full,
                                const std::string &path) const
{
    for (std::size_t i = 0; i < children_.size(); ++i) {
        const std::string child_path =
            path.empty() ? std::to_string(i) : path + "/" + std::to_string(i);
        children_[i]->saveHierarchyState(container, full, child_path);
    }
}

void
ViewGroup::dispatchRestoreChildren(const Bundle &container,
                                   const std::string &path)
{
    for (std::size_t i = 0; i < children_.size(); ++i) {
        const std::string child_path =
            path.empty() ? std::to_string(i) : path + "/" + std::to_string(i);
        children_[i]->restoreHierarchyState(container, child_path);
    }
}

LinearLayout::LinearLayout(std::string id, Direction direction)
    : ViewGroup(std::move(id)), direction_(direction)
{
}

void
LinearLayout::layoutSubtree(int left, int top, int width, int height)
{
    setFrame(left, top, width, height);
    const auto n = static_cast<int>(childCount());
    if (n == 0)
        return;
    if (direction_ == Direction::Vertical) {
        const int slot = height / n;
        for (int i = 0; i < n; ++i) {
            auto &child = childAt(static_cast<std::size_t>(i));
            if (auto *group = dynamic_cast<ViewGroup *>(&child))
                group->layoutSubtree(left, top + i * slot, width, slot);
            else
                child.setFrame(left, top + i * slot, width, slot);
        }
    } else {
        const int slot = width / n;
        for (int i = 0; i < n; ++i) {
            auto &child = childAt(static_cast<std::size_t>(i));
            if (auto *group = dynamic_cast<ViewGroup *>(&child))
                group->layoutSubtree(left + i * slot, top, slot, height);
            else
                child.setFrame(left + i * slot, top, slot, height);
        }
    }
}

FrameLayout::FrameLayout(std::string id) : ViewGroup(std::move(id))
{
}

ScrollView::ScrollView(std::string id) : ViewGroup(std::move(id))
{
}

void
ScrollView::scrollTo(int y)
{
    requireAlive("scrollTo");
    if (y == scroll_y_)
        return;
    scroll_y_ = y;
    invalidate();
}

void
ScrollView::applyMigration(View &target) const
{
    auto *peer = dynamic_cast<ScrollView *>(&target);
    RCH_ASSERT(peer, "Scroll migration onto ", target.typeName());
    peer->scrollTo(scroll_y_);
}

void
ScrollView::onSaveState(Bundle &state, bool full) const
{
    ViewGroup::onSaveState(state, full);
    // ScrollView persists its offset by default on Android too.
    state.putInt("scrollY", scroll_y_);
}

void
ScrollView::onRestoreState(const Bundle &state)
{
    ViewGroup::onRestoreState(state);
    scroll_y_ = static_cast<int>(state.getInt("scrollY", scroll_y_));
}

DecorView::DecorView() : ViewGroup("decor")
{
}

std::size_t
DecorView::memoryFootprintBytes() const
{
    // The decor view carries the window background and frame chrome.
    return ViewGroup::memoryFootprintBytes() + 4096;
}

} // namespace rchdroid
