/**
 * @file
 * ViewGroup and the container widgets: LinearLayout, FrameLayout,
 * ScrollView, and DecorView, mirroring android.view.ViewGroup and
 * android.widget containers.
 *
 * Carries the Table 2 RCHDroid additions: dispatchShadowStateChanged and
 * dispatchSunnyStateChanged, which propagate the new states down the
 * tree.
 */
#ifndef RCHDROID_VIEW_VIEW_GROUP_H
#define RCHDROID_VIEW_VIEW_GROUP_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "view/view.h"

namespace rchdroid {

/**
 * A view that owns an ordered list of children.
 */
class ViewGroup : public View
{
  public:
    explicit ViewGroup(std::string id);

    const char *typeName() const override { return "ViewGroup"; }

    /** Append a child; the group takes ownership. */
    View &addChild(std::unique_ptr<View> child);

    /** Remove (and destroy) the child at index. */
    void removeChildAt(std::size_t index);

    /** Detach and return the child at index without destroying it. */
    std::unique_ptr<View> detachChildAt(std::size_t index);

    std::size_t childCount() const { return children_.size(); }
    View &childAt(std::size_t index);
    const View &childAt(std::size_t index) const;

    /** @name RCHDroid state dispatch (Table 2: ViewGroup modifications)
     * @{
     */
    /** Set the shadow flag on this subtree. */
    void dispatchShadowStateChanged(bool shadow);
    /** Set the sunny flag on this subtree. */
    void dispatchSunnyStateChanged(bool sunny);
    /** @} */

    void visit(const std::function<void(View &)> &fn) override;
    void visitConst(
        const std::function<void(const View &)> &fn) const override;
    View *findViewById(const std::string &id) override;

    std::size_t memoryFootprintBytes() const override;

    /**
     * Lay out children within the given frame. Containers override to
     * implement their arrangement; the base stacks children like
     * FrameLayout.
     */
    virtual void layoutSubtree(int left, int top, int width, int height);

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;
    void dispatchSaveChildren(Bundle &container, bool full,
                              const std::string &path) const override;
    void dispatchRestoreChildren(const Bundle &container,
                                 const std::string &path) override;

    const std::vector<std::unique_ptr<View>> &children() const
    { return children_; }

  private:
    std::vector<std::unique_ptr<View>> children_;
};

/**
 * Stacks children vertically or horizontally, like
 * android.widget.LinearLayout.
 */
class LinearLayout : public ViewGroup
{
  public:
    enum class Direction : std::uint8_t { Vertical, Horizontal };

    LinearLayout(std::string id, Direction direction);

    const char *typeName() const override { return "LinearLayout"; }
    Direction direction() const { return direction_; }

    void layoutSubtree(int left, int top, int width, int height) override;

  private:
    Direction direction_;
};

/**
 * Overlays children, like android.widget.FrameLayout.
 */
class FrameLayout : public ViewGroup
{
  public:
    explicit FrameLayout(std::string id);
    const char *typeName() const override { return "FrameLayout"; }
};

/**
 * A scrolling container with a persisted vertical offset. The paper's
 * Disney+ example (Fig. 13b: "the scroll location is reset after the
 * restart") is exactly this state.
 */
class ScrollView : public ViewGroup
{
  public:
    explicit ScrollView(std::string id);

    const char *typeName() const override { return "ScrollView"; }
    MigrationClass migrationClass() const override
    { return MigrationClass::Scroll; }

    int scrollY() const { return scroll_y_; }
    void scrollTo(int y);

    void applyMigration(View &target) const override;

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;

  private:
    int scroll_y_ = 0;
};

/**
 * The root of an activity's view tree, mirroring
 * com.android.internal.policy.DecorView (paper §2.1: "The root of the
 * view tree is called decor view").
 */
class DecorView : public ViewGroup
{
  public:
    DecorView();
    const char *typeName() const override { return "DecorView"; }

    std::size_t memoryFootprintBytes() const override;
};

} // namespace rchdroid

#endif // RCHDROID_VIEW_VIEW_GROUP_H
