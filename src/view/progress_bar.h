/**
 * @file
 * ProgressBar and SeekBar, mirroring android.widget.ProgressBar /
 * SeekBar. Table 1 migration policy: setProgress.
 *
 * Reproduces the "percentage set by the user is lost" issue of
 * DiskDiggerPro (Table 3 #9) and the "zoom bar"/"volume bar" losses in
 * the top-100 study (Table 5 #22, #57).
 */
#ifndef RCHDROID_VIEW_PROGRESS_BAR_H
#define RCHDROID_VIEW_PROGRESS_BAR_H

#include <string>

#include "view/view.h"

namespace rchdroid {

/**
 * Indicates progress of an operation.
 */
class ProgressBar : public View
{
  public:
    explicit ProgressBar(std::string id);

    const char *typeName() const override { return "ProgressBar"; }
    MigrationClass migrationClass() const override
    { return MigrationClass::Progress; }

    int progress() const { noteSharedRead(); return progress_; }
    int max() const { return max_; }

    /** Clamp to [0, max]; invalidates on change. */
    void setProgress(int progress);
    void setMax(int max);

    void applyMigration(View &target) const override;

  protected:
    void onSaveState(Bundle &state, bool full) const override;
    void onRestoreState(const Bundle &state) override;

  private:
    int progress_ = 0;
    int max_ = 100;
};

/**
 * A user-draggable ProgressBar.
 */
class SeekBar : public ProgressBar
{
  public:
    explicit SeekBar(std::string id);

    const char *typeName() const override { return "SeekBar"; }

    /** Simulated user drag to a position. */
    void dragTo(int progress) { setProgress(progress); }

  protected:
    void onSaveState(Bundle &state, bool full) const override;
};

} // namespace rchdroid

#endif // RCHDROID_VIEW_PROGRESS_BAR_H
