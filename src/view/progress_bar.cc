#include "view/progress_bar.h"

#include <algorithm>
#include <utility>

#include "platform/logging.h"

namespace rchdroid {

ProgressBar::ProgressBar(std::string id) : View(std::move(id))
{
}

void
ProgressBar::setProgress(int progress)
{
    requireAlive("setProgress");
    const int clamped = std::clamp(progress, 0, max_);
    if (clamped == progress_)
        return;
    progress_ = clamped;
    invalidate();
}

void
ProgressBar::setMax(int max)
{
    requireAlive("setMax");
    RCH_ASSERT(max > 0, "max must be positive");
    max_ = max;
    progress_ = std::min(progress_, max_);
    invalidate();
}

void
ProgressBar::applyMigration(View &target) const
{
    auto *peer = dynamic_cast<ProgressBar *>(&target);
    RCH_ASSERT(peer, "Progress migration onto ", target.typeName());
    peer->setMax(max_);
    peer->setProgress(progress_);
}

void
ProgressBar::onSaveState(Bundle &state, bool full) const
{
    // Plain ProgressBar progress is app-driven transient state that a
    // stock restart loses (Table 3 #9's "percentage set by the user");
    // the full snapshot keeps it. SeekBar overrides: user-set positions
    // persist by default, as on Android.
    if (full) {
        state.putInt("progress", progress_);
        state.putInt("max", max_);
    }
}

void
ProgressBar::onRestoreState(const Bundle &state)
{
    max_ = static_cast<int>(state.getInt("max", max_));
    progress_ = static_cast<int>(state.getInt("progress", progress_));
}

SeekBar::SeekBar(std::string id) : ProgressBar(std::move(id))
{
}

void
SeekBar::onSaveState(Bundle &state, bool full) const
{
    (void)full;
    // AbsSeekBar persists the user-set position by default.
    state.putInt("progress", progress());
    state.putInt("max", max());
}

} // namespace rchdroid
