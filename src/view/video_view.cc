#include "view/video_view.h"

#include <utility>

#include "platform/logging.h"

namespace rchdroid {

VideoView::VideoView(std::string id) : View(std::move(id))
{
}

void
VideoView::setVideoUri(std::string uri)
{
    requireAlive("setVideoURI");
    if (uri == video_uri_)
        return;
    video_uri_ = std::move(uri);
    position_ms_ = 0;
    playing_ = false;
    invalidate();
}

void
VideoView::start()
{
    requireAlive("start");
    RCH_ASSERT(!video_uri_.empty(), "start without a video URI");
    playing_ = true;
    invalidate();
}

void
VideoView::pause()
{
    requireAlive("pause");
    playing_ = false;
    invalidate();
}

void
VideoView::seekTo(std::int64_t position_ms)
{
    requireAlive("seekTo");
    RCH_ASSERT(position_ms >= 0, "negative seek");
    position_ms_ = position_ms;
    invalidate();
}

void
VideoView::applyMigration(View &target) const
{
    auto *peer = dynamic_cast<VideoView *>(&target);
    RCH_ASSERT(peer, "Video migration onto ", target.typeName());
    if (!video_uri_.empty() && peer->videoUri() != video_uri_)
        peer->setVideoUri(video_uri_);
    peer->seekTo(position_ms_);
    if (playing_)
        peer->start();
}

std::size_t
VideoView::memoryFootprintBytes() const
{
    // Surface + codec buffers dominate a live VideoView.
    std::size_t bytes = View::memoryFootprintBytes() + 1024;
    if (!video_uri_.empty())
        bytes += 2 * 1024 * 1024;
    return bytes;
}

void
VideoView::onSaveState(Bundle &state, bool full) const
{
    // Stock VideoView loses the playback session on restart; only the
    // full snapshot carries it (the KJVBible timer-style losses).
    if (full) {
        state.putString("uri", video_uri_);
        state.putInt("positionMs", position_ms_);
        state.putBool("playing", playing_);
    }
}

void
VideoView::onRestoreState(const Bundle &state)
{
    video_uri_ = state.getString("uri", video_uri_);
    position_ms_ = state.getInt("positionMs", position_ms_);
    playing_ = state.getBool("playing", playing_);
}

} // namespace rchdroid
