#include "view/layout_inflater.h"

#include <cstdlib>
#include <utility>

#include "platform/logging.h"
#include "platform/strings.h"
#include "view/extra_widgets.h"
#include "view/image_view.h"
#include "view/list_view.h"
#include "view/progress_bar.h"
#include "view/text_view.h"
#include "view/video_view.h"
#include "view/view_group.h"

namespace rchdroid {

namespace {

const char *kBuiltinElements[] = {
    "View",       "ViewGroup",  "LinearLayout", "FrameLayout",
    "ScrollView", "TextView",   "Button",       "EditText",
    "CheckBox",   "ImageView",  "ProgressBar",  "SeekBar",
    "ListView",   "GridView",   "AbsListView",  "VideoView",
    "Spinner",    "Switch",     "RatingBar",
};

bool
isBuiltinElement(const std::string &element)
{
    for (const char *name : kBuiltinElements) {
        if (element == name)
            return true;
    }
    return false;
}

std::string
attrOr(const std::map<std::string, std::string> &attrs,
       const std::string &key, const std::string &fallback)
{
    auto it = attrs.find(key);
    return it != attrs.end() ? it->second : fallback;
}

int
attrInt(const std::map<std::string, std::string> &attrs,
        const std::string &key, int fallback)
{
    auto it = attrs.find(key);
    if (it == attrs.end())
        return fallback;
    return std::atoi(it->second.c_str());
}

} // namespace

LayoutInflater::LayoutInflater(ResourceManager &resources,
                               SimDuration per_node_inflate_cost)
    : resources_(resources), per_node_inflate_cost_(per_node_inflate_cost)
{
}

Status
LayoutInflater::registerFactory(const std::string &element,
                                ViewFactory factory)
{
    if (isBuiltinElement(element)) {
        return Status::invalidArgument("cannot override builtin element " +
                                       element);
    }
    if (!factory)
        return Status::invalidArgument("null factory for " + element);
    custom_factories_[element] = std::move(factory);
    return Status::ok();
}

Result<Loaded<std::unique_ptr<View>>>
LayoutInflater::inflate(ResourceId layout_id, const Configuration &config)
{
    auto layout = resources_.loadLayout(layout_id, config);
    if (!layout)
        return layout.status();
    auto inflated = inflateNode(layout.value().value.root, config);
    if (!inflated)
        return inflated.status();
    inflated.value().cost += layout.value().cost;
    return inflated;
}

Result<Loaded<std::unique_ptr<View>>>
LayoutInflater::inflateNode(const LayoutNode &node, const Configuration &config)
{
    SimDuration cost = 0;
    auto view = buildView(node, config, cost);
    if (!view)
        return view.status();
    return Loaded<std::unique_ptr<View>>{std::move(view).value(), cost};
}

Result<std::string>
LayoutInflater::resolveText(const std::string &raw, const Configuration &config,
                            SimDuration &cost)
{
    if (!startsWith(raw, "@string/"))
        return raw;
    const std::string name = raw.substr(8);
    auto id = resources_.table().idForName(ResourceType::String, name);
    if (!id)
        return id.status();
    auto loaded = resources_.loadString(id.value(), config);
    if (!loaded)
        return loaded.status();
    cost += loaded.value().cost;
    return loaded.value().value.text;
}

Result<std::unique_ptr<View>>
LayoutInflater::buildView(const LayoutNode &node, const Configuration &config,
                          SimDuration &cost)
{
    cost += per_node_inflate_cost_;
    const std::string id = attrOr(node.attrs, "id", "");
    std::unique_ptr<View> view;

    if (auto it = custom_factories_.find(node.element);
        it != custom_factories_.end()) {
        view = it->second(id, node.attrs);
        if (!view)
            return Status::internal("factory for " + node.element +
                                    " returned null");
    } else if (node.element == "View") {
        view = std::make_unique<View>(id);
    } else if (node.element == "ViewGroup" || node.element == "FrameLayout") {
        view = std::make_unique<FrameLayout>(id);
    } else if (node.element == "LinearLayout") {
        const auto dir = attrOr(node.attrs, "orientation", "vertical");
        view = std::make_unique<LinearLayout>(
            id, dir == "horizontal" ? LinearLayout::Direction::Horizontal
                                    : LinearLayout::Direction::Vertical);
    } else if (node.element == "ScrollView") {
        view = std::make_unique<ScrollView>(id);
    } else if (node.element == "TextView" || node.element == "Button" ||
               node.element == "EditText" || node.element == "CheckBox" ||
               node.element == "Switch") {
        std::unique_ptr<TextView> text_view;
        if (node.element == "TextView")
            text_view = std::make_unique<TextView>(id);
        else if (node.element == "Button")
            text_view = std::make_unique<Button>(id);
        else if (node.element == "EditText")
            text_view = std::make_unique<EditText>(id);
        else if (node.element == "Switch")
            text_view = std::make_unique<Switch>(id);
        else
            text_view = std::make_unique<CheckBox>(id);
        if (auto it = node.attrs.find("text"); it != node.attrs.end()) {
            auto text = resolveText(it->second, config, cost);
            if (!text)
                return text.status();
            if (startsWith(it->second, "@string/")) {
                text_view->setTextFromResource(std::move(text).value());
            } else {
                text_view->setText(std::move(text).value());
            }
        }
        if (auto it = node.attrs.find("hint"); it != node.attrs.end()) {
            if (auto *edit = dynamic_cast<EditText *>(text_view.get())) {
                auto hint = resolveText(it->second, config, cost);
                if (!hint)
                    return hint.status();
                edit->setHint(std::move(hint).value());
            }
        }
        if (attrOr(node.attrs, "checked", "false") == "true") {
            if (auto *box = dynamic_cast<CheckBox *>(text_view.get()))
                box->setChecked(true);
        }
        view = std::move(text_view);
    } else if (node.element == "ImageView") {
        auto image = std::make_unique<ImageView>(id);
        const std::string src = attrOr(node.attrs, "src", "");
        if (startsWith(src, "@drawable/")) {
            auto drawable_id = resources_.table().idForName(
                ResourceType::Drawable, src.substr(10));
            if (!drawable_id)
                return drawable_id.status();
            auto loaded = resources_.loadDrawable(drawable_id.value(), config);
            if (!loaded)
                return loaded.status();
            cost += loaded.value().cost;
            image->setDrawableFromResource(std::move(loaded).value().value);
        }
        view = std::move(image);
    } else if (node.element == "ProgressBar" || node.element == "SeekBar") {
        std::unique_ptr<ProgressBar> bar;
        if (node.element == "ProgressBar")
            bar = std::make_unique<ProgressBar>(id);
        else
            bar = std::make_unique<SeekBar>(id);
        bar->setMax(attrInt(node.attrs, "max", 100));
        bar->setProgress(attrInt(node.attrs, "progress", 0));
        view = std::move(bar);
    } else if (node.element == "RatingBar") {
        auto rating = std::make_unique<RatingBar>(
            id, attrInt(node.attrs, "stars", 5));
        rating->setRating(attrInt(node.attrs, "rating", 0));
        view = std::move(rating);
    } else if (node.element == "ListView" || node.element == "GridView" ||
               node.element == "AbsListView" || node.element == "Spinner") {
        std::unique_ptr<AbsListView> list;
        if (node.element == "GridView") {
            list = std::make_unique<GridView>(
                id, attrInt(node.attrs, "columns", 2));
        } else if (node.element == "ListView") {
            list = std::make_unique<ListView>(id);
        } else if (node.element == "Spinner") {
            list = std::make_unique<Spinner>(id);
        } else {
            list = std::make_unique<AbsListView>(id);
        }
        if (auto it = node.attrs.find("items"); it != node.attrs.end()) {
            auto raw = resolveText(it->second, config, cost);
            if (!raw)
                return raw.status();
            list->setItems(splitString(raw.value(), '|'));
        }
        view = std::move(list);
    } else if (node.element == "VideoView") {
        auto video = std::make_unique<VideoView>(id);
        const std::string uri = attrOr(node.attrs, "video", "");
        if (!uri.empty())
            video->setVideoUri(uri);
        view = std::move(video);
    } else {
        return Status::notFound("unknown layout element " + node.element);
    }

    if (!node.children.empty()) {
        auto *group = dynamic_cast<ViewGroup *>(view.get());
        if (!group) {
            return Status::invalidArgument(node.element +
                                           " cannot have children");
        }
        for (const auto &child_node : node.children) {
            auto child = buildView(child_node, config, cost);
            if (!child)
                return child.status();
            group->addChild(std::move(child).value());
        }
    }
    return view;
}

} // namespace rchdroid
