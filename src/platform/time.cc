#include "platform/time.h"

#include <cstdio>

namespace rchdroid {

std::string
formatSimTime(SimTime t)
{
    if (t == kSimTimeNever)
        return "never";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(t) / 1e6);
    return buf;
}

} // namespace rchdroid
