#include "platform/logging.h"

#include "platform/compiler.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rchdroid {

namespace {

// The minimum level is process-wide (set once at startup, read from any
// worker thread of a parallel experiment run), so it is atomic. The quiet
// flag is thread-local: ScopedLogSilencer is inherently scope-confined,
// and a silencer on one worker must not mute the others.
std::atomic<LogLevel> g_min_level{LogLevel::Warn};
thread_local bool g_quiet = false;

// All g_quiet access goes through these two (see RCHDROID_NO_SANITIZE_NULL
// in platform/compiler.h for the GCC 12 TLS miscompile they work around).
RCHDROID_NO_SANITIZE_NULL bool
readQuiet()
{
    return g_quiet;
}

RCHDROID_NO_SANITIZE_NULL void
writeQuiet(bool quiet)
{
    g_quiet = quiet;
}

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "D";
      case LogLevel::Info: return "I";
      case LogLevel::Warn: return "W";
      case LogLevel::Error: return "E";
    }
    return "?";
}

} // namespace

LogLevel
LogConfig::minLevel()
{
    return g_min_level.load(std::memory_order_relaxed);
}

void
LogConfig::setMinLevel(LogLevel level)
{
    g_min_level.store(level, std::memory_order_relaxed);
}

bool
LogConfig::quiet()
{
    return readQuiet();
}

void
LogConfig::setQuiet(bool quiet)
{
    writeQuiet(quiet);
}

ScopedLogSilencer::ScopedLogSilencer() : previous_(readQuiet())
{
    writeQuiet(true);
}

ScopedLogSilencer::~ScopedLogSilencer()
{
    writeQuiet(previous_);
}

void
logMessage(LogLevel level, const std::string &tag, const std::string &text)
{
    if (readQuiet() || level < g_min_level.load(std::memory_order_relaxed))
        return;
    std::fprintf(stderr, "%s/%s: %s\n", levelTag(level), tag.c_str(),
                 text.c_str());
}

void
panicImpl(const char *file, int line, const std::string &text)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", text.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &text)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", text.c_str(), file, line);
    std::exit(1);
}

} // namespace rchdroid
