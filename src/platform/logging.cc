#include "platform/logging.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rchdroid {

namespace {

LogLevel g_min_level = LogLevel::Warn;
bool g_quiet = false;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "D";
      case LogLevel::Info: return "I";
      case LogLevel::Warn: return "W";
      case LogLevel::Error: return "E";
    }
    return "?";
}

} // namespace

LogLevel
LogConfig::minLevel()
{
    return g_min_level;
}

void
LogConfig::setMinLevel(LogLevel level)
{
    g_min_level = level;
}

bool
LogConfig::quiet()
{
    return g_quiet;
}

void
LogConfig::setQuiet(bool quiet)
{
    g_quiet = quiet;
}

ScopedLogSilencer::ScopedLogSilencer() : previous_(g_quiet)
{
    g_quiet = true;
}

ScopedLogSilencer::~ScopedLogSilencer()
{
    g_quiet = previous_;
}

void
logMessage(LogLevel level, const std::string &tag, const std::string &text)
{
    if (g_quiet || level < g_min_level)
        return;
    std::fprintf(stderr, "%s/%s: %s\n", levelTag(level), tag.c_str(),
                 text.c_str());
}

void
panicImpl(const char *file, int line, const std::string &text)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", text.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &text)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", text.c_str(), file, line);
    std::exit(1);
}

} // namespace rchdroid
