/**
 * @file
 * Telemetry: a minimal event bus the framework layers report into and the
 * experiment harness records from.
 *
 * The paper's headline metric — "the time between the configuration
 * change arriving at the ATMS and the corresponding activity resumed" —
 * is computed by the sim layer from events emitted here by the ATMS and
 * the ActivityThread.
 *
 * Event kinds are interned: the framework's well-known dotted names
 * ("atms.configChange", "app.resumed", ...) carry fixed ids the hot
 * emission paths pass around as 4-byte handles, so emitting an event no
 * longer allocates a std::string per occurrence. The dotted-name API
 * survives at the edges — any string converts to a TelemetryKind (and
 * back via str()) through a process-wide intern table.
 */
#ifndef RCHDROID_PLATFORM_TELEMETRY_H
#define RCHDROID_PLATFORM_TELEMETRY_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "platform/time.h"

namespace rchdroid {

/**
 * An interned event-kind handle: 4 bytes, trivially copyable, backed by
 * a process-wide string table. Construction from a string interns (hash
 * lookup, no allocation for known names); the well-known framework kinds
 * in rchdroid::kinds are pre-interned constants, so hot emitters pay
 * nothing at all.
 */
class TelemetryKind
{
  public:
    constexpr TelemetryKind() = default;
    /** Intern a dotted name (edge API; prefer the kinds:: constants). */
    TelemetryKind(const char *name) : id_(intern(name)) {}
    TelemetryKind(const std::string &name) : id_(intern(name)) {}
    /** Wrap a known id (the kinds:: constants). */
    constexpr explicit TelemetryKind(std::uint32_t id) : id_(id) {}

    std::uint32_t id() const { return id_; }
    /** The dotted name this id was interned from. */
    const std::string &str() const;

    bool operator==(const TelemetryKind &other) const
    {
        return id_ == other.id_;
    }
    bool operator!=(const TelemetryKind &other) const
    {
        return id_ != other.id_;
    }

  private:
    static std::uint32_t intern(std::string_view name);

    std::uint32_t id_ = 0;
};

/** gtest/iostream support: prints the dotted name. */
std::ostream &operator<<(std::ostream &os, const TelemetryKind &kind);

/**
 * Pre-interned ids of every kind the framework emits. The table in
 * telemetry.cc seeds these names at the matching indices; telemetry
 * tests assert the two stay in sync.
 */
namespace kinds {
inline constexpr TelemetryKind kNone{std::uint32_t{0}};
inline constexpr TelemetryKind kAtmsConfigChange{std::uint32_t{1}};
inline constexpr TelemetryKind kAtmsActivityResumed{std::uint32_t{2}};
inline constexpr TelemetryKind kAtmsRelaunch{std::uint32_t{3}};
inline constexpr TelemetryKind kAtmsShadowHandling{std::uint32_t{4}};
inline constexpr TelemetryKind kAtmsBack{std::uint32_t{5}};
inline constexpr TelemetryKind kAtmsActivityDestroyed{std::uint32_t{6}};
inline constexpr TelemetryKind kAtmsShadowReclaimed{std::uint32_t{7}};
inline constexpr TelemetryKind kAtmsProcessCrashed{std::uint32_t{8}};
inline constexpr TelemetryKind kAtmsCoinFlip{std::uint32_t{9}};
inline constexpr TelemetryKind kAtmsSunnyCreate{std::uint32_t{10}};
inline constexpr TelemetryKind kAppResumed{std::uint32_t{11}};
inline constexpr TelemetryKind kAppCrash{std::uint32_t{12}};
inline constexpr TelemetryKind kAppAsyncStarted{std::uint32_t{13}};
inline constexpr TelemetryKind kAppAsyncFinished{std::uint32_t{14}};
inline constexpr TelemetryKind kAppWindowLeaked{std::uint32_t{15}};
inline constexpr TelemetryKind kActivityResumed{std::uint32_t{16}};
inline constexpr TelemetryKind kActivityDestroyed{std::uint32_t{17}};
inline constexpr TelemetryKind kActivityEnterShadow{std::uint32_t{18}};
inline constexpr TelemetryKind kActivityFlipToSunny{std::uint32_t{19}};
/** First id handed out to dynamically interned names. */
inline constexpr std::uint32_t kFirstDynamicId = 20;
} // namespace kinds

/** One timestamped occurrence. */
struct TelemetryEvent
{
    SimTime time = 0;
    /** Interned kind, e.g. kinds::kAtmsConfigChange ("atms.configChange"). */
    TelemetryKind kind;
    /** Free-form detail, e.g. the component name or exception kind. */
    std::string detail;
    /** Optional numeric payload (bytes, counts). */
    double value = 0.0;

    /** Dotted name of the kind (edge convenience). */
    const std::string &kindName() const { return kind.str(); }
};

/**
 * Receiver interface; the sim layer's TraceRecorder implements it.
 */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    virtual void record(const TelemetryEvent &event) = 0;
};

/** A sink that drops everything (default when none installed). */
class NullTelemetrySink final : public TelemetrySink
{
  public:
    void record(const TelemetryEvent &event) override { (void)event; }

    /** Shared instance. */
    static NullTelemetrySink &instance();
};

inline NullTelemetrySink &
NullTelemetrySink::instance()
{
    static NullTelemetrySink sink;
    return sink;
}

} // namespace rchdroid

#endif // RCHDROID_PLATFORM_TELEMETRY_H
