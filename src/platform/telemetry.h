/**
 * @file
 * Telemetry: a minimal event bus the framework layers report into and the
 * experiment harness records from.
 *
 * The paper's headline metric — "the time between the configuration
 * change arriving at the ATMS and the corresponding activity resumed" —
 * is computed by the sim layer from events emitted here by the ATMS and
 * the ActivityThread.
 */
#ifndef RCHDROID_PLATFORM_TELEMETRY_H
#define RCHDROID_PLATFORM_TELEMETRY_H

#include <string>

#include "platform/time.h"

namespace rchdroid {

/** One timestamped occurrence. */
struct TelemetryEvent
{
    SimTime time = 0;
    /** Dotted kind, e.g. "atms.configChange", "app.resumed", "app.crash". */
    std::string kind;
    /** Free-form detail, e.g. the component name or exception kind. */
    std::string detail;
    /** Optional numeric payload (bytes, counts). */
    double value = 0.0;
};

/**
 * Receiver interface; the sim layer's TraceRecorder implements it.
 */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    virtual void record(const TelemetryEvent &event) = 0;
};

/** A sink that drops everything (default when none installed). */
class NullTelemetrySink final : public TelemetrySink
{
  public:
    void record(const TelemetryEvent &event) override { (void)event; }

    /** Shared instance. */
    static NullTelemetrySink &instance();
};

inline NullTelemetrySink &
NullTelemetrySink::instance()
{
    static NullTelemetrySink sink;
    return sink;
}

} // namespace rchdroid

#endif // RCHDROID_PLATFORM_TELEMETRY_H
