#include "platform/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "platform/strings.h"

namespace rchdroid::metrics {

thread_local MetricsRegistry *MetricsRegistry::current_ = nullptr;

const char *
counterName(Counter c)
{
    static constexpr const char *kNames[] = {
        "config_changes",
        "relaunches",
        "coin_flip_hit",
        "coin_flip_miss",
        "shadow_entered",
        "gc_collected",
        "gc_kept_young",
        "gc_kept_frequent",
        "map_wired",
        "map_unmatched",
        "views_migrated",
        "migrate_batches",
        "messages_dispatched",
        "app_crashes",
        "episodes_completed",
        "episodes_aborted",
    };
    static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                  static_cast<std::size_t>(Counter::kCount));
    return kNames[static_cast<std::size_t>(c)];
}

const char *
gaugeName(Gauge g)
{
    static constexpr const char *kNames[] = {
        "live_activities",
        "heap_bytes",
        "pending_messages",
    };
    static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                  static_cast<std::size_t>(Gauge::kCount));
    return kNames[static_cast<std::size_t>(g)];
}

const char *
histogramName(Histogram h)
{
    static constexpr const char *kNames[] = {
        "dispatch_latency_us",
        "dispatch_cost_us",
        "queue_depth",
        "handling_ms",
        "mapped_views_per_build",
    };
    static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                  static_cast<std::size_t>(Histogram::kCount));
    return kNames[static_cast<std::size_t>(h)];
}

void
LogHistogram::observe(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    ++buckets_[bucketIndex(value)];
}

std::size_t
LogHistogram::bucketIndex(double value)
{
    // Bucket 0 catches everything below 1 (including 0 and negatives —
    // the instrumented quantities are non-negative, so sub-unit values
    // are all "effectively zero" at the resolutions we care about).
    if (!(value >= 1.0))
        return 0;
    int exp = 0;
    const double mantissa = std::frexp(value, &exp); // value = m * 2^exp
    const int octave = exp - 1;                      // [2^octave, 2^(octave+1))
    if (octave >= kOctaves)
        return kBucketCount - 1;
    auto sub = static_cast<int>((mantissa - 0.5) * 2.0 * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    return 1 + static_cast<std::size_t>(octave) * kSubBuckets +
           static_cast<std::size_t>(sub);
}

double
LogHistogram::bucketLo(std::size_t index)
{
    if (index == 0)
        return 0.0;
    const std::size_t octave = (index - 1) / kSubBuckets;
    const std::size_t sub = (index - 1) % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                      static_cast<int>(octave));
}

double
LogHistogram::bucketHi(std::size_t index)
{
    if (index == 0)
        return 1.0;
    const std::size_t octave = (index - 1) / kSubBuckets;
    const std::size_t sub = (index - 1) % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                      static_cast<int>(octave));
}

double
LogHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p <= 0.0)
        return min_;
    if (p >= 100.0)
        return max_;
    const double target = p / 100.0 * static_cast<double>(count_);
    double cum = 0.0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        const auto n = static_cast<double>(buckets_[i]);
        if (n == 0.0)
            continue;
        if (cum + n >= target) {
            const double frac = (target - cum) / n;
            const double value =
                bucketLo(i) + frac * (bucketHi(i) - bucketLo(i));
            return std::clamp(value, min_, max_);
        }
        cum += n;
    }
    return max_;
}

void
MetricsRegistry::addLabeled(Counter c, std::string_view label, std::uint64_t n)
{
    add(c, n);
    std::string key(counterName(c));
    key += '/';
    key += label;
    labeled_[key] += n;
}

std::uint64_t
MetricsRegistry::labeled(Counter c, std::string_view label) const
{
    std::string key(counterName(c));
    key += '/';
    key += label;
    const auto it = labeled_.find(key);
    return it == labeled_.end() ? 0 : it->second;
}

void
MetricsRegistry::reset()
{
    counters_.fill(0);
    gauges_.fill(0.0);
    histograms_.fill(LogHistogram{});
    labeled_.clear();
}

namespace {

std::string
histogramLine(const LogHistogram &h)
{
    std::ostringstream os;
    os << "count=" << h.count() << " min=" << formatDouble(h.min(), 3)
       << " p50=" << formatDouble(h.percentile(50), 3)
       << " p95=" << formatDouble(h.percentile(95), 3)
       << " p99=" << formatDouble(h.percentile(99), 3)
       << " max=" << formatDouble(h.max(), 3)
       << " mean=" << formatDouble(h.mean(), 3);
    return os.str();
}

} // namespace

std::string
MetricsRegistry::toText() const
{
    std::ostringstream os;
    os << "Counters:\n";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount);
         ++i) {
        if (counters_[i] == 0)
            continue; // dumpsys readability: elide never-hit counters
        os << "  " << padRight(counterName(static_cast<Counter>(i)), 24)
           << counters_[i] << '\n';
    }
    if (!labeled_.empty()) {
        os << "Labeled counters:\n";
        for (const auto &[key, value] : labeled_) {
            os << "  " << padRight(key, 36) << value << '\n';
        }
    }
    os << "Gauges:\n";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Gauge::kCount); ++i) {
        os << "  " << padRight(gaugeName(static_cast<Gauge>(i)), 24)
           << formatDouble(gauges_[i], 1) << '\n';
    }
    os << "Histograms:\n";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Histogram::kCount);
         ++i) {
        const LogHistogram &h = histograms_[i];
        if (h.count() == 0)
            continue;
        os << "  " << padRight(histogramName(static_cast<Histogram>(i)), 24)
           << histogramLine(h) << '\n';
    }
    return os.str();
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"rchdroid_metrics/1\",\n  \"counters\": {";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount);
         ++i) {
        os << (i ? ",\n    \"" : "\n    \"")
           << counterName(static_cast<Counter>(i)) << "\": " << counters_[i];
    }
    os << "\n  },\n  \"labeled\": {";
    bool first = true;
    for (const auto &[key, value] : labeled_) {
        os << (first ? "\n    \"" : ",\n    \"") << key << "\": " << value;
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Gauge::kCount); ++i) {
        os << (i ? ",\n    \"" : "\n    \"")
           << gaugeName(static_cast<Gauge>(i))
           << "\": " << formatDouble(gauges_[i], 3);
    }
    os << "\n  },\n  \"histograms\": {";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Histogram::kCount);
         ++i) {
        const LogHistogram &h = histograms_[i];
        os << (i ? ",\n    \"" : "\n    \"")
           << histogramName(static_cast<Histogram>(i)) << "\": {"
           << "\"count\": " << h.count()
           << ", \"sum\": " << formatDouble(h.sum(), 3)
           << ", \"min\": " << formatDouble(h.min(), 3)
           << ", \"p50\": " << formatDouble(h.percentile(50), 3)
           << ", \"p95\": " << formatDouble(h.percentile(95), 3)
           << ", \"p99\": " << formatDouble(h.percentile(99), 3)
           << ", \"max\": " << formatDouble(h.max(), 3)
           << ", \"mean\": " << formatDouble(h.mean(), 3) << "}";
    }
    os << "\n  }\n}\n";
    return os.str();
}

} // namespace rchdroid::metrics
