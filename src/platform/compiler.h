/**
 * @file
 * Compiler-specific attribute shims.
 */
#ifndef RCHDROID_PLATFORM_COMPILER_H
#define RCHDROID_PLATFORM_COMPILER_H

/**
 * Disable -fsanitize=null instrumentation for one function.
 *
 * Applied to the tiny accessors that read/write the simulator's
 * thread-local seams (Looper::current_, analysis::detail::g_hooks, the
 * log quiet flag). The address of a thread_local can never be null, so
 * the check is vacuous — and GCC 12 miscompiles it: the address test
 * is emitted as `lea` (which leaves EFLAGS untouched) followed by a
 * conditional jump, so the branch consumes stale flags from whatever
 * compare preceded it. For a constant-initialized extern thread_local
 * the preceding compare is `cmp $0, _ZTH...@GOT` (null — no dynamic
 * init exists), making the bogus "null pointer load" fire every time.
 */
#if defined(RCHDROID_SANITIZING) && defined(__GNUC__) && !defined(__clang__)
// noinline matters: GCC drops the attribute when it inlines the accessor
// into an instrumented caller, re-adding the broken check at the use site.
// Only sanitized builds pay the call; plain builds keep the accessors
// inline (the define comes from the RCHDROID_SANITIZE CMake preset).
#define RCHDROID_NO_SANITIZE_NULL __attribute__((no_sanitize("null"), noinline))
#elif defined(RCHDROID_SANITIZING) && defined(__clang__)
#define RCHDROID_NO_SANITIZE_NULL __attribute__((no_sanitize("null")))
#else
#define RCHDROID_NO_SANITIZE_NULL
#endif

#endif // RCHDROID_PLATFORM_COMPILER_H
