/**
 * @file
 * Small string helpers shared by the framework layers and the bench
 * harness's table printer.
 */
#ifndef RCHDROID_PLATFORM_STRINGS_H
#define RCHDROID_PLATFORM_STRINGS_H

#include <string>
#include <vector>

namespace rchdroid {

/** Split on a single-character delimiter; keeps empty fields. */
std::vector<std::string> splitString(const std::string &text, char delim);

/** Join with a separator. */
std::string joinStrings(const std::vector<std::string> &parts,
                        const std::string &sep);

/** True if text begins with prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Fixed-point formatting, e.g. formatDouble(1.2345, 2) == "1.23". */
std::string formatDouble(double value, int decimals);

/** Left-pad/truncate to a column width (ASCII). */
std::string padRight(const std::string &text, std::size_t width);
std::string padLeft(const std::string &text, std::size_t width);

/**
 * Minimal fixed-width table printer used by every bench binary so the
 * reproduced tables share one look.
 */
class TablePrinter
{
  public:
    /** Define the header row; column widths auto-size to content. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one data row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with a rule under the header. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rchdroid

#endif // RCHDROID_PLATFORM_STRINGS_H
