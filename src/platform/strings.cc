#include "platform/strings.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "platform/logging.h"

namespace rchdroid {

std::vector<std::string>
splitString(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : text) {
        if (c == delim) {
            out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    out.push_back(current);
    return out;
}

std::string
joinStrings(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
padRight(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return text + std::string(width - text.size(), ' ');
}

std::string
padLeft(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return std::string(width - text.size(), ' ') + text;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    RCH_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    RCH_ASSERT(cells.size() == headers_.size(),
               "row arity ", cells.size(), " vs header ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << padRight(row[c], widths[c]);
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace rchdroid
