/**
 * @file
 * Statistics accumulators used by the experiment harness.
 *
 * The paper reports "the mean of at least five runs" with "standard
 * deviation ... less than 5% of the mean"; these helpers compute exactly
 * those aggregates plus the percentiles the trace benches plot.
 */
#ifndef RCHDROID_PLATFORM_STATS_H
#define RCHDROID_PLATFORM_STATS_H

#include <cstddef>
#include <vector>

namespace rchdroid {

/**
 * Online accumulator of count / mean / variance / min / max.
 *
 * Uses Welford's algorithm so long traces stay numerically stable.
 */
class RunningStat
{
  public:
    /** Fold one sample into the aggregate. */
    void add(double x);
    /** Fold an entire other accumulator in. */
    void merge(const RunningStat &other);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Sample standard deviation (n-1 denominator). */
    double stddev() const;
    /** Population variance helper used by stddev(). */
    double variance() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Stddev as a fraction of the mean (the paper's <5% criterion). */
    double coefficientOfVariation() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A stored sample set supporting percentiles.
 */
class SampleSet
{
  public:
    void add(double x) { samples_.push_back(x); }
    std::size_t count() const { return samples_.size(); }
    double mean() const;
    double stddev() const;
    /** Linear-interpolated percentile; p in [0, 100]. */
    double percentile(double p) const;
    double min() const;
    double max() const;
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace rchdroid

#endif // RCHDROID_PLATFORM_STATS_H
