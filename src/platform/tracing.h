/**
 * @file
 * Span-based tracer exporting Chrome trace-event JSON, the simulator's
 * answer to atrace/Perfetto.
 *
 * Model:
 *  - one Tracer per diagnostic run, installed on the simulation thread
 *    with ScopedTracer (same idiom as the analysis layer);
 *  - a "process" (pid) per AndroidSystem instance — sequential systems
 *    in one binary (e.g. quickstart runs Restart then RchDroid) restart
 *    sim time at zero, and separate pids keep every lane's timestamps
 *    monotonic;
 *  - a "thread" lane (tid) per Looper, plus a default lane for harness
 *    code running outside any dispatch;
 *  - B/E duration events, i instants, b/e async spans that follow a
 *    config-change episode across Looper hops, and s/t/f flow events
 *    stitching cross-thread causal edges (post site -> dispatch begin)
 *    that the src/profiling/ critical-path analyzer walks backwards.
 *
 * Timestamps are virtual nanoseconds, serialised as microseconds the
 * way chrome://tracing and Perfetto expect. Sim time does not advance
 * while a callback runs, so the tracer reads a *cost-aware* clock
 * (installed by AndroidSystem): inside a dispatch, "now" is the current
 * message's accumulated-cost end, which gives nested spans real
 * durations instead of zero-width ticks.
 *
 * Hot-path instrumentation goes through the RCH_TRACE_* macros below,
 * which vanish under RCHDROID_TRACING=0; the classes themselves stay
 * compiled so the shell/example plumbing builds in every configuration.
 */
#ifndef RCHDROID_PLATFORM_TRACING_H
#define RCHDROID_PLATFORM_TRACING_H

#ifndef RCHDROID_TRACING
#define RCHDROID_TRACING 1
#endif

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "platform/compiler.h"
#include "platform/time.h"

namespace rchdroid::trace {

/** Chrome trace-event phases we emit. */
enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kInstant = 'i',
    kAsyncBegin = 'b',
    kAsyncEnd = 'e',
    kFlowStart = 's',
    kFlowStep = 't',
    kFlowEnd = 'f',
};

/** One recorded event; serialised by Tracer::toChromeJson(). */
struct TraceEvent
{
    Phase phase = Phase::kInstant;
    /** Lane (process+thread pair) the event belongs to. */
    std::uint32_t lane = 0;
    /** Virtual time, nanoseconds. */
    SimTime ts = 0;
    /** Pairing id for async (b/e) and flow (s/t/f) events. */
    std::uint64_t async_id = 0;
    std::string name;
    /** Optional detail, serialised as args.detail. */
    std::string arg;
    /** Static category string ("sim", "rch", "episode", "flow", ...). */
    const char *cat = "sim";
    /**
     * Flow events only: bind to the *enclosing* slice (`"bp":"e"`).
     * Set on consumer-side steps emitted at dispatch begin, so the
     * profiler can tell an incoming edge (the message that caused this
     * dispatch) from an outgoing one (a post made during it).
     */
    bool bind_enclosing = false;
};

/**
 * Event collector + Chrome JSON exporter.
 */
class Tracer
{
  public:
    Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Open a new trace "process" (one per AndroidSystem). Subsequent
     * laneId() calls create lanes under it; returns the pid.
     */
    std::uint32_t beginProcess(const std::string &label);

    /** Lane for `name` under the current process, created on demand. */
    std::uint32_t laneId(const std::string &name);

    std::uint32_t currentLane() const { return current_lane_; }
    void setCurrentLane(std::uint32_t lane) { current_lane_ = lane; }
    std::uint32_t currentPid() const { return current_pid_; }

    /**
     * Install the virtual-time source (cost-aware; see file comment).
     * The installer must clearClock() before dying: the tracer may
     * outlive the AndroidSystem whose scheduler the closure reads.
     */
    void setClock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
    void clearClock() { clock_ = nullptr; }
    /** Current virtual time: the installed clock, or 0 without one. */
    SimTime now() const { return clock_ ? clock_() : 0; }

    /** Open a duration span on the current lane. */
    void begin(const std::string &name, const char *cat = "sim",
               std::string arg = {})
    {
        beginOnAt(current_lane_, now(), name, cat, std::move(arg));
    }
    void beginOnAt(std::uint32_t lane, SimTime ts, const std::string &name,
                   const char *cat = "sim", std::string arg = {});
    /** Close the most recent open span on the lane. */
    void end() { endOnAt(current_lane_, now()); }
    void endOnAt(std::uint32_t lane, SimTime ts);

    /** Zero-duration marker on the current lane. */
    void instant(const std::string &name, std::string arg = {})
    {
        instantAt(now(), name, std::move(arg));
    }
    void instantAt(SimTime ts, const std::string &name, std::string arg = {});

    /** Async span endpoints, paired by (cat, id) across lanes. */
    void asyncBegin(const char *cat, std::uint64_t id, const std::string &name,
                    SimTime ts, std::string arg = {});
    void asyncEnd(const char *cat, std::uint64_t id, SimTime ts,
                  std::string arg = {});

    /** @name Causal flow edges (s/t/f), walked by src/profiling/.
     *
     * A flow id names one cross-thread hand-off chain. The producer
     * emits kFlowStart at the post site (inside its dispatch span); the
     * consumer emits kFlowStep/kFlowEnd with bind_enclosing at its
     * dispatch begin. Id 0 is reserved for "no causal edge".
     * @{
     */
    std::uint64_t newFlowId() { return next_flow_id_++; }
    void flowAt(Phase phase, std::uint32_t lane, SimTime ts, std::uint64_t id,
                const std::string &name, bool bind_enclosing,
                const char *cat = "flow");
    /**
     * Ambient causal id carried across a raw scheduler hop (the binder
     * legs, which bypass MessageQueue): SimScheduler sets it around an
     * event whose slot carries a causal id, and Looper::enqueue lets a
     * message posted under it inherit the id silently — the flow-start
     * was already emitted at the binder send site.
     */
    std::uint64_t pendingCausal() const { return pending_causal_; }
    void setPendingCausal(std::uint64_t id) { pending_causal_ = id; }
    /** @} */

    std::size_t eventCount() const { return events_.size(); }
    const std::vector<TraceEvent> &events() const { return events_; }

    /** One trace lane: a (pid, tid) pair with its display name. */
    struct Lane
    {
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        std::string name;
    };

    /** All lanes, indexed by TraceEvent::lane (src/profiling/ input). */
    const std::vector<Lane> &lanes() const { return lanes_; }

    /**
     * Serialise as {"traceEvents": [...], "displayTimeUnit": "ms"} with
     * process_name/thread_name metadata — loadable in Perfetto and
     * chrome://tracing, validated by tools/check_trace.py.
     */
    std::string toChromeJson() const;
    /** Write toChromeJson() to a file; false on I/O failure. */
    bool writeChromeJson(const std::string &path) const;

    /** Tracer installed on this thread, or null. */
    RCHDROID_NO_SANITIZE_NULL static Tracer *current() { return current_; }

  private:
    friend class ScopedTracer;
    RCHDROID_NO_SANITIZE_NULL static void setCurrent(Tracer *tracer)
    {
        current_ = tracer;
    }

    std::vector<TraceEvent> events_;
    std::vector<Lane> lanes_;
    /** (pid, lane name) -> index into lanes_. */
    std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> lane_ids_;
    /** pid -> process label. */
    std::map<std::uint32_t, std::string> process_names_;
    std::function<SimTime()> clock_;
    std::uint32_t current_pid_ = 0;
    std::uint32_t current_lane_ = 0;
    std::uint32_t next_pid_ = 0;
    /** Flow ids start at 1: 0 means "no causal edge" everywhere. */
    std::uint64_t next_flow_id_ = 1;
    std::uint64_t pending_causal_ = 0;

    /**
     * Thread-local install, like Looper::current_: each parallel bench
     * worker simulates on its own thread and must not see another
     * worker's tracer.
     */
    static thread_local Tracer *current_;
};

/** RAII install/restore of the thread's tracer (nestable). */
class ScopedTracer
{
  public:
    explicit ScopedTracer(Tracer *tracer) : previous_(Tracer::current())
    {
        Tracer::setCurrent(tracer);
    }
    ~ScopedTracer() { Tracer::setCurrent(previous_); }

    ScopedTracer(const ScopedTracer &) = delete;
    ScopedTracer &operator=(const ScopedTracer &) = delete;

  private:
    Tracer *previous_;
};

/**
 * RAII duration span on whatever lane is current at construction; a
 * no-op (one thread-local load) when no tracer is installed. The end
 * event lands on the *same* lane even if the current lane changed.
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *name, const char *cat = "sim")
        : tracer_(Tracer::current())
    {
        if (tracer_) {
            lane_ = tracer_->currentLane();
            tracer_->beginOnAt(lane_, tracer_->now(), name, cat);
        }
    }
    TraceScope(const char *name, std::string arg, const char *cat = "sim")
        : tracer_(Tracer::current())
    {
        if (tracer_) {
            lane_ = tracer_->currentLane();
            tracer_->beginOnAt(lane_, tracer_->now(), name, cat,
                               std::move(arg));
        }
    }
    ~TraceScope()
    {
        if (tracer_)
            tracer_->endOnAt(lane_, tracer_->now());
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    Tracer *tracer_;
    std::uint32_t lane_ = 0;
};

} // namespace rchdroid::trace

// Instrumentation macros: the only tracer touchpoints on framework hot
// paths. They disappear entirely under RCHDROID_TRACING=0.
#define RCH_TRACE_CAT2_(a, b) a##b
#define RCH_TRACE_CAT_(a, b) RCH_TRACE_CAT2_(a, b)

#if RCHDROID_TRACING
/** Span covering the rest of the enclosing block. */
#define RCH_TRACE_SCOPE(name, cat)                                            \
    ::rchdroid::trace::TraceScope RCH_TRACE_CAT_(rch_trace_scope_,            \
                                                 __COUNTER__)(name, cat)
/** Same, with a free-form detail arg. */
#define RCH_TRACE_SCOPE_ARG(name, arg, cat)                                   \
    ::rchdroid::trace::TraceScope RCH_TRACE_CAT_(rch_trace_scope_,            \
                                                 __COUNTER__)(name, arg, cat)
/** Instant marker at the cost-aware now. */
#define RCH_TRACE_INSTANT(name, arg)                                          \
    do {                                                                      \
        if (::rchdroid::trace::Tracer *rch_trace_t_ =                         \
                ::rchdroid::trace::Tracer::current())                         \
            rch_trace_t_->instant(name, arg);                                 \
    } while (0)
#else
#define RCH_TRACE_SCOPE(name, cat) ((void)0)
#define RCH_TRACE_SCOPE_ARG(name, arg, cat) ((void)0)
#define RCH_TRACE_INSTANT(name, arg) ((void)0)
#endif

#endif // RCHDROID_PLATFORM_TRACING_H
