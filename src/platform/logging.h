/**
 * @file
 * Logging and error-termination helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user errors that prevent continuing, and
 * warn()/inform() for advisory output. Log output is tagged, logcat-style,
 * because the system under simulation is Android.
 */
#ifndef RCHDROID_PLATFORM_LOGGING_H
#define RCHDROID_PLATFORM_LOGGING_H

#include <cstdint>
#include <sstream>
#include <string>

namespace rchdroid {

/** Severity of a log record. */
enum class LogLevel : std::uint8_t {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global log configuration.
 *
 * Tests silence the logger; benches keep Info so harness progress shows.
 * The minimum level is process-wide (atomic, safe to read from parallel
 * experiment workers); the quiet flag is thread-local so a silencer on
 * one worker thread never mutes the others.
 */
class LogConfig
{
  public:
    /** Minimum level that is actually emitted (process-wide). */
    static LogLevel minLevel();
    /** Raise/lower the emission threshold. */
    static void setMinLevel(LogLevel level);
    /** True while a scoped silencer is active on this thread. */
    static bool quiet();
    static void setQuiet(bool quiet);
};

/** RAII guard that silences all logging on this thread within a scope. */
class ScopedLogSilencer
{
  public:
    ScopedLogSilencer();
    ~ScopedLogSilencer();

    ScopedLogSilencer(const ScopedLogSilencer &) = delete;
    ScopedLogSilencer &operator=(const ScopedLogSilencer &) = delete;

  private:
    bool previous_;
};

/** Emit one log record (implementation detail of the macros below). */
void logMessage(LogLevel level, const std::string &tag, const std::string &text);

/** Abort the process for an internal invariant violation. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &text);

/** Exit the process for an unrecoverable user/configuration error. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &text);

namespace detail {

/** Build a string from stream-style arguments. */
template <typename... Args>
std::string
concatLog(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace rchdroid

/** Log at Debug level with a logcat-style tag. */
#define RCH_LOGD(tag, ...) \
    ::rchdroid::logMessage(::rchdroid::LogLevel::Debug, (tag), \
                           ::rchdroid::detail::concatLog(__VA_ARGS__))

/** Log at Info level with a logcat-style tag. */
#define RCH_LOGI(tag, ...) \
    ::rchdroid::logMessage(::rchdroid::LogLevel::Info, (tag), \
                           ::rchdroid::detail::concatLog(__VA_ARGS__))

/** Log at Warn level with a logcat-style tag. */
#define RCH_LOGW(tag, ...) \
    ::rchdroid::logMessage(::rchdroid::LogLevel::Warn, (tag), \
                           ::rchdroid::detail::concatLog(__VA_ARGS__))

/** Log at Error level with a logcat-style tag. */
#define RCH_LOGE(tag, ...) \
    ::rchdroid::logMessage(::rchdroid::LogLevel::Error, (tag), \
                           ::rchdroid::detail::concatLog(__VA_ARGS__))

/** Abort: something happened that must never happen (simulator bug). */
#define RCH_PANIC(...) \
    ::rchdroid::panicImpl(__FILE__, __LINE__, \
                          ::rchdroid::detail::concatLog(__VA_ARGS__))

/** Exit: the simulation cannot continue due to a user error. */
#define RCH_FATAL(...) \
    ::rchdroid::fatalImpl(__FILE__, __LINE__, \
                          ::rchdroid::detail::concatLog(__VA_ARGS__))

/** Cheap always-on invariant check that panics with context on failure. */
#define RCH_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            RCH_PANIC("assertion failed: " #cond " ", \
                      ::rchdroid::detail::concatLog(__VA_ARGS__)); \
        } \
    } while (false)

#endif // RCHDROID_PLATFORM_LOGGING_H
