#include "platform/stats.h"

#include <algorithm>
#include <cmath>

#include "platform/logging.h"

namespace rchdroid {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::coefficientOfVariation() const
{
    if (count_ == 0 || mean_ == 0.0)
        return 0.0;
    return stddev() / std::abs(mean_);
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
SampleSet::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double
SampleSet::percentile(double p) const
{
    RCH_ASSERT(p >= 0.0 && p <= 100.0, "percentile p=", p);
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
SampleSet::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleSet::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

} // namespace rchdroid
