/**
 * @file
 * Metrics registry: process-wide counters, gauges and log-bucketed
 * histograms instrumented at every RCH decision point — coin-flip
 * hit/miss, shadow-GC reclaim reasons, view-map hit rate, lazy-migration
 * counts per view type, message-queue depth and dispatch latency.
 *
 * Usage mirrors the analysis layer's scoped-install idiom: a consumer
 * (shell, example, test) creates a MetricsRegistry and installs it with
 * ScopedMetricsRegistry; instrumented framework code reports through the
 * null-safe free helpers (metrics::add, metrics::observe, ...), which
 * are a single thread-local load + branch when no registry is installed
 * and compile out entirely under RCHDROID_TRACING=0. The thread-local
 * seam keeps independent simulations isolated under the bench
 * ParallelRunner, exactly like Looper::current().
 */
#ifndef RCHDROID_PLATFORM_METRICS_H
#define RCHDROID_PLATFORM_METRICS_H

#ifndef RCHDROID_TRACING
#define RCHDROID_TRACING 1
#endif

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "platform/compiler.h"

namespace rchdroid::metrics {

/** Monotonic event tallies. Names in counterName(). */
enum class Counter : std::uint8_t {
    kConfigChanges = 0,   ///< atms.updateConfiguration calls
    kRelaunches,          ///< classic destroy/recreate relaunches
    kCoinFlipHit,         ///< intent resolved to a flippable shadow
    kCoinFlipMiss,        ///< no shadow matched; sunny create instead
    kShadowEntered,       ///< activities demoted to shadow state
    kGcCollected,         ///< shadows reclaimed by Algorithm 1
    kGcKeptYoung,         ///< GC keep: shadow age <= THRESH_T
    kGcKeptFrequent,      ///< GC keep: shadow frequency >= THRESH_F
    kMapWired,            ///< essence view-map lookups that wired a view
    kMapUnmatched,        ///< essence view-map lookups that found nothing
    kViewsMigrated,       ///< views lazily migrated on invalidate
    kMigrateBatches,      ///< lazy-migration batches executed
    kMessagesDispatched,  ///< looper messages dispatched
    kAppCrashes,          ///< uncaught exceptions in app code
    kEpisodesCompleted,   ///< config-change episodes that reached resume
    kEpisodesAborted,     ///< episodes cut short by the next change
    kCount
};

/** Point-in-time values. Names in gaugeName(). */
enum class Gauge : std::uint8_t {
    kLiveActivities = 0,  ///< activity instances alive in the process
    kHeapBytes,           ///< simulated app heap occupancy
    kPendingMessages,     ///< queued messages across loopers (last sample)
    kCount
};

/** Distributions. Names in histogramName(). */
enum class Histogram : std::uint8_t {
    kDispatchLatencyUs = 0,  ///< enqueue `when` -> dispatch start
    kDispatchCostUs,         ///< per-message executed CPU cost
    kQueueDepth,             ///< looper queue depth sampled at enqueue
    kHandlingMs,             ///< config-change handling time (the paper's §5.1 metric)
    kMappedViewsPerBuild,    ///< views wired per essence-map build
    kCount
};

const char *counterName(Counter c);
const char *gaugeName(Gauge g);
const char *histogramName(Histogram h);

/**
 * A log-bucketed histogram: 4 sub-buckets per power-of-two octave (via
 * frexp), giving <= 12% relative bucket width across the full range of
 * non-negative doubles, with exact count/sum/min/max on the side.
 * Percentiles interpolate linearly inside the containing bucket and are
 * clamped to the observed [min, max].
 */
class LogHistogram
{
  public:
    /** Sub-buckets per octave; bucket 0 catches values < 1. */
    static constexpr int kSubBuckets = 4;
    /** Octaves covered: values in [1, 2^kOctaves); larger values clamp. */
    static constexpr int kOctaves = 62;
    static constexpr std::size_t kBucketCount =
        1 + static_cast<std::size_t>(kOctaves) * kSubBuckets;

    void observe(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    /** @param p Percentile in [0, 100]. 0 with no samples. */
    double percentile(double p) const;

    /** Bucket index a value falls into (exposed for tests). */
    static std::size_t bucketIndex(double value);
    /** Inclusive lower / exclusive upper bound of a bucket. */
    static double bucketLo(std::size_t index);
    static double bucketHi(std::size_t index);

    const std::array<std::uint64_t, kBucketCount> &buckets() const
    {
        return buckets_;
    }

  private:
    std::array<std::uint64_t, kBucketCount> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * The registry: fixed enum-indexed slots plus a string-labeled overflow
 * map for low-rate dimensional counters (per-view-type migrations,
 * per-reason GC keeps). Single-threaded by design — one registry per
 * simulation thread, installed via ScopedMetricsRegistry.
 */
class MetricsRegistry
{
  public:
    void add(Counter c, std::uint64_t n = 1)
    {
        counters_[static_cast<std::size_t>(c)] += n;
    }
    /** Tally under "<counter>/<label>" as well as the plain counter. */
    void addLabeled(Counter c, std::string_view label, std::uint64_t n = 1);
    void set(Gauge g, double value)
    {
        gauges_[static_cast<std::size_t>(g)] = value;
    }
    void observe(Histogram h, double value)
    {
        histograms_[static_cast<std::size_t>(h)].observe(value);
    }

    std::uint64_t counter(Counter c) const
    {
        return counters_[static_cast<std::size_t>(c)];
    }
    std::uint64_t labeled(Counter c, std::string_view label) const;
    double gauge(Gauge g) const
    {
        return gauges_[static_cast<std::size_t>(g)];
    }
    const LogHistogram &histogram(Histogram h) const
    {
        return histograms_[static_cast<std::size_t>(h)];
    }
    const std::map<std::string, std::uint64_t> &labeledCounters() const
    {
        return labeled_;
    }

    void reset();

    /** dumpsys-style pretty print (zero-valued slots elided). */
    std::string toText() const;
    /** Machine-readable twin: one JSON object, schema rchdroid_metrics/1. */
    std::string toJson() const;

    /** Registry installed on this thread, or null. */
    RCHDROID_NO_SANITIZE_NULL static MetricsRegistry *current()
    {
        return current_;
    }

  private:
    friend class ScopedMetricsRegistry;
    RCHDROID_NO_SANITIZE_NULL static void setCurrent(MetricsRegistry *registry)
    {
        current_ = registry;
    }

    std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)>
        counters_{};
    std::array<double, static_cast<std::size_t>(Gauge::kCount)> gauges_{};
    std::array<LogHistogram, static_cast<std::size_t>(Histogram::kCount)>
        histograms_{};
    /** "<counter>/<label>" -> tally; ordered for stable dumps. */
    std::map<std::string, std::uint64_t> labeled_;

    static thread_local MetricsRegistry *current_;
};

/**
 * RAII install/restore of the thread's registry (nestable; the previous
 * registry is restored on destruction).
 */
class ScopedMetricsRegistry
{
  public:
    explicit ScopedMetricsRegistry(MetricsRegistry *registry)
        : previous_(MetricsRegistry::current())
    {
        MetricsRegistry::setCurrent(registry);
    }
    ~ScopedMetricsRegistry() { MetricsRegistry::setCurrent(previous_); }

    ScopedMetricsRegistry(const ScopedMetricsRegistry &) = delete;
    ScopedMetricsRegistry &operator=(const ScopedMetricsRegistry &) = delete;

  private:
    MetricsRegistry *previous_;
};

// Null-safe reporting helpers: the instrumentation sites call these.
// With RCHDROID_TRACING=0 they are empty inline functions the optimiser
// deletes; built in but with no registry installed they cost one
// thread-local load and a predictable branch.
#if RCHDROID_TRACING

inline void
add(Counter c, std::uint64_t n = 1)
{
    if (MetricsRegistry *r = MetricsRegistry::current())
        r->add(c, n);
}

inline void
addLabeled(Counter c, std::string_view label, std::uint64_t n = 1)
{
    if (MetricsRegistry *r = MetricsRegistry::current())
        r->addLabeled(c, label, n);
}

inline void
set(Gauge g, double value)
{
    if (MetricsRegistry *r = MetricsRegistry::current())
        r->set(g, value);
}

inline void
observe(Histogram h, double value)
{
    if (MetricsRegistry *r = MetricsRegistry::current())
        r->observe(h, value);
}

#else // !RCHDROID_TRACING

inline void add(Counter, std::uint64_t = 1) {}
inline void addLabeled(Counter, std::string_view, std::uint64_t = 1) {}
inline void set(Gauge, double) {}
inline void observe(Histogram, double) {}

#endif // RCHDROID_TRACING

} // namespace rchdroid::metrics

#endif // RCHDROID_PLATFORM_METRICS_H
