#include "platform/telemetry.h"

#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>

namespace rchdroid {
namespace {

/**
 * Process-wide intern table. The deque gives names stable addresses so
 * str() can hand out references without holding the lock across the
 * caller's use. Seeded with the well-known framework kinds at the exact
 * indices the kinds:: constants wrap; a unit test cross-checks the two.
 *
 * The mutex makes interning and lookup safe under the bench
 * ParallelRunner, which runs independent simulated systems on real
 * threads; the hot emission paths never touch it because they pass the
 * pre-interned constants around by value.
 */
struct InternTable
{
    std::mutex mu;
    std::deque<std::string> names;
    std::unordered_map<std::string_view, std::uint32_t> ids;

    InternTable()
    {
        static constexpr const char *kSeed[] = {
            "",
            "atms.configChange",
            "atms.activityResumed",
            "atms.relaunch",
            "atms.shadowHandling",
            "atms.back",
            "atms.activityDestroyed",
            "atms.shadowReclaimed",
            "atms.processCrashed",
            "atms.coinFlip",
            "atms.sunnyCreate",
            "app.resumed",
            "app.crash",
            "app.asyncStarted",
            "app.asyncFinished",
            "app.windowLeaked",
            "activity.resumed",
            "activity.destroyed",
            "activity.enterShadow",
            "activity.flipToSunny",
        };
        static_assert(sizeof(kSeed) / sizeof(kSeed[0]) ==
                          kinds::kFirstDynamicId,
                      "seed table must match the kinds:: id block");
        for (const char *name : kSeed) {
            names.emplace_back(name);
            // Key views into the deque-owned strings: stable storage.
            ids.emplace(names.back(), static_cast<std::uint32_t>(names.size() - 1));
        }
    }

    static InternTable &instance()
    {
        static InternTable table;
        return table;
    }
};

} // namespace

std::uint32_t
TelemetryKind::intern(std::string_view name)
{
    InternTable &table = InternTable::instance();
    std::lock_guard<std::mutex> lock(table.mu);
    auto it = table.ids.find(name);
    if (it != table.ids.end()) {
        return it->second;
    }
    table.names.emplace_back(name);
    const auto id = static_cast<std::uint32_t>(table.names.size() - 1);
    table.ids.emplace(table.names.back(), id);
    return id;
}

const std::string &
TelemetryKind::str() const
{
    InternTable &table = InternTable::instance();
    std::lock_guard<std::mutex> lock(table.mu);
    if (id_ < table.names.size()) {
        return table.names[id_];
    }
    static const std::string kUnknown = "<unknown-kind>";
    return kUnknown;
}

std::ostream &
operator<<(std::ostream &os, const TelemetryKind &kind)
{
    return os << kind.str();
}

} // namespace rchdroid
