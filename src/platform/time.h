/**
 * @file
 * Virtual time types for the discrete-event simulation.
 *
 * All framework latencies in this reproduction are expressed in virtual
 * nanoseconds. Nothing in the simulator reads the host clock, which keeps
 * every experiment bit-reproducible.
 */
#ifndef RCHDROID_PLATFORM_TIME_H
#define RCHDROID_PLATFORM_TIME_H

#include <cstdint>
#include <string>

namespace rchdroid {

/** Virtual simulation time, in nanoseconds since simulation start. */
using SimTime = std::int64_t;

/** A span of virtual time, in nanoseconds. */
using SimDuration = std::int64_t;

/** Sentinel for "no deadline / never". */
inline constexpr SimTime kSimTimeNever = INT64_MAX;

/** @name Duration constructors
 * Readable literals for building durations.
 * @{
 */
constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t us) { return us * 1'000; }
constexpr SimDuration milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr SimDuration seconds(std::int64_t s) { return s * 1'000'000'000; }
constexpr SimDuration minutes(std::int64_t m) { return m * 60'000'000'000; }
/** @} */

/** @name Duration accessors
 * Convert a duration (or absolute time) to coarser units.
 * @{
 */
constexpr double toMillisF(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double toSecondsF(SimDuration d) { return static_cast<double>(d) / 1e9; }
constexpr std::int64_t toMillis(SimDuration d) { return d / 1'000'000; }
/** @} */

/** Format a virtual time as "123.456ms" for traces and logs. */
std::string formatSimTime(SimTime t);

} // namespace rchdroid

#endif // RCHDROID_PLATFORM_TIME_H
