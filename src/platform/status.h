/**
 * @file
 * Lightweight Status / Result error propagation.
 *
 * The framework layers report recoverable errors (e.g. a resource id that
 * does not resolve under the active configuration) through Status rather
 * than exceptions; simulated *app* crashes are modelled explicitly by the
 * app layer (see app/exceptions.h), not by C++ exceptions.
 */
#ifndef RCHDROID_PLATFORM_STATUS_H
#define RCHDROID_PLATFORM_STATUS_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace rchdroid {

/** Machine-readable error category. */
enum class StatusCode : std::uint8_t {
    Ok,
    NotFound,
    InvalidArgument,
    FailedPrecondition,
    AlreadyExists,
    Internal,
};

/** Human-readable name for a StatusCode. */
const char *statusCodeName(StatusCode code);

/**
 * An error code plus message; cheap to copy, truthy when OK.
 */
class Status
{
  public:
    /** Default status is success. */
    Status() : code_(StatusCode::Ok) {}
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    static Status ok() { return Status(); }
    static Status notFound(std::string m)
    { return Status(StatusCode::NotFound, std::move(m)); }
    static Status invalidArgument(std::string m)
    { return Status(StatusCode::InvalidArgument, std::move(m)); }
    static Status failedPrecondition(std::string m)
    { return Status(StatusCode::FailedPrecondition, std::move(m)); }
    static Status alreadyExists(std::string m)
    { return Status(StatusCode::AlreadyExists, std::move(m)); }
    static Status internal(std::string m)
    { return Status(StatusCode::Internal, std::move(m)); }

    bool isOk() const { return code_ == StatusCode::Ok; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "NotFound: some message". */
    std::string toString() const;

  private:
    StatusCode code_;
    std::string message_;
};

/**
 * A value or a Status error.
 *
 * @tparam T The success payload.
 */
template <typename T>
class Result
{
  public:
    /** Implicit from a value: success. */
    Result(T value) : value_(std::move(value)) {}
    /** Implicit from a non-OK status: failure. */
    Result(Status status) : status_(std::move(status)) {}

    bool isOk() const { return value_.has_value(); }
    explicit operator bool() const { return isOk(); }

    /** Error status; Ok when the result holds a value. */
    const Status &status() const { return status_; }

    /** Access the payload; must only be called when isOk(). */
    const T &value() const & { return *value_; }
    T &value() & { return *value_; }
    T &&value() && { return std::move(*value_); }

    /** Payload if present, otherwise the fallback. */
    T valueOr(T fallback) const { return value_ ? *value_ : fallback; }

  private:
    std::optional<T> value_;
    Status status_;
};

} // namespace rchdroid

#endif // RCHDROID_PLATFORM_STATUS_H
