#include "platform/rng.h"

#include <cmath>

#include "platform/logging.h"

namespace rchdroid {

namespace {

/** SplitMix64 used for seeding, per the xoshiro reference implementation. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t
Rng::nextInt(std::int64_t lo, std::int64_t hi)
{
    RCH_ASSERT(lo <= hi, "nextInt range [", lo, ", ", hi, "]");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    // Box-Muller; one draw per call keeps the stream position predictable.
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace rchdroid
