#include "platform/tracing.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "platform/strings.h"

namespace rchdroid::trace {

thread_local Tracer *Tracer::current_ = nullptr;

Tracer::Tracer()
{
    // pid 0 / lane 0: harness code running before any system exists.
    process_names_[0] = "harness";
    lanes_.push_back(Lane{0, 0, "main"});
    lane_ids_[{0, "main"}] = 0;
    next_pid_ = 1;
}

std::uint32_t
Tracer::beginProcess(const std::string &label)
{
    current_pid_ = next_pid_++;
    process_names_[current_pid_] = label;
    // A default lane so instants/asyncs emitted outside any Looper
    // dispatch still land inside the new process.
    current_lane_ = laneId("main");
    return current_pid_;
}

std::uint32_t
Tracer::laneId(const std::string &name)
{
    const auto key = std::make_pair(current_pid_, name);
    const auto it = lane_ids_.find(key);
    if (it != lane_ids_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(lanes_.size());
    std::uint32_t tid = 0;
    for (const Lane &lane : lanes_) {
        if (lane.pid == current_pid_)
            ++tid;
    }
    lanes_.push_back(Lane{current_pid_, tid, name});
    lane_ids_.emplace(key, id);
    return id;
}

void
Tracer::beginOnAt(std::uint32_t lane, SimTime ts, const std::string &name,
                  const char *cat, std::string arg)
{
    events_.push_back(
        TraceEvent{Phase::kBegin, lane, ts, 0, name, std::move(arg), cat});
}

void
Tracer::endOnAt(std::uint32_t lane, SimTime ts)
{
    events_.push_back(TraceEvent{Phase::kEnd, lane, ts, 0, {}, {}, "sim"});
}

void
Tracer::instantAt(SimTime ts, const std::string &name, std::string arg)
{
    events_.push_back(TraceEvent{Phase::kInstant, current_lane_, ts, 0, name,
                                 std::move(arg), "sim"});
}

void
Tracer::asyncBegin(const char *cat, std::uint64_t id, const std::string &name,
                   SimTime ts, std::string arg)
{
    events_.push_back(TraceEvent{Phase::kAsyncBegin, current_lane_, ts, id,
                                 name, std::move(arg), cat});
}

void
Tracer::asyncEnd(const char *cat, std::uint64_t id, SimTime ts,
                 std::string arg)
{
    events_.push_back(
        TraceEvent{Phase::kAsyncEnd, current_lane_, ts, id, {}, std::move(arg),
                   cat});
}

void
Tracer::flowAt(Phase phase, std::uint32_t lane, SimTime ts, std::uint64_t id,
               const std::string &name, bool bind_enclosing, const char *cat)
{
    events_.push_back(
        TraceEvent{phase, lane, ts, id, name, {}, cat, bind_enclosing});
}

namespace {

/** JSON string escaping: quotes, backslashes, control characters. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Nanoseconds -> the microsecond "ts" field Chrome expects. */
std::string
tsMicros(SimTime ns)
{
    return formatDouble(static_cast<double>(ns) / 1000.0, 3);
}

} // namespace

std::string
Tracer::toChromeJson() const
{
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&]() -> std::ostringstream & {
        os << (first ? "\n" : ",\n");
        first = false;
        return os;
    };
    // Metadata: name every process and lane so Perfetto's track labels
    // read "system_server.atms", not "tid 3".
    for (const auto &[pid, label] : process_names_) {
        sep() << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
              << ",\"tid\":0,\"args\":{\"name\":\"" << jsonEscape(label)
              << "\"}}";
    }
    for (const Lane &lane : lanes_) {
        sep() << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << lane.pid
              << ",\"tid\":" << lane.tid << ",\"args\":{\"name\":\""
              << jsonEscape(lane.name) << "\"}}";
    }
    for (const TraceEvent &event : events_) {
        const Lane &lane = lanes_[event.lane];
        sep() << "{\"ph\":\"" << static_cast<char>(event.phase)
              << "\",\"pid\":" << lane.pid << ",\"tid\":" << lane.tid
              << ",\"ts\":" << tsMicros(event.ts);
        if (event.phase != Phase::kEnd || !event.name.empty())
            os << ",\"name\":\"" << jsonEscape(event.name) << "\"";
        os << ",\"cat\":\"" << event.cat << "\"";
        if (event.phase == Phase::kAsyncBegin ||
            event.phase == Phase::kAsyncEnd ||
            event.phase == Phase::kFlowStart ||
            event.phase == Phase::kFlowStep || event.phase == Phase::kFlowEnd)
            os << ",\"id\":" << event.async_id;
        if (event.bind_enclosing)
            os << ",\"bp\":\"e\""; // bind to the enclosing slice
        if (event.phase == Phase::kInstant)
            os << ",\"s\":\"t\""; // thread-scoped instant
        if (!event.arg.empty())
            os << ",\"args\":{\"detail\":\"" << jsonEscape(event.arg)
               << "\"}";
        os << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return os.str();
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toChromeJson();
    return static_cast<bool>(out);
}

} // namespace rchdroid::trace
