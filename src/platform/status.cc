#include "platform/status.h"

namespace rchdroid {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "OK";
      case StatusCode::NotFound: return "NotFound";
      case StatusCode::InvalidArgument: return "InvalidArgument";
      case StatusCode::FailedPrecondition: return "FailedPrecondition";
      case StatusCode::AlreadyExists: return "AlreadyExists";
      case StatusCode::Internal: return "Internal";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "OK";
    std::string out = statusCodeName(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

} // namespace rchdroid
