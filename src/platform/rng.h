/**
 * @file
 * Seeded pseudo-random number generation.
 *
 * Every stochastic element of the simulation (per-app latency jitter, the
 * "five runs" replication of the paper's methodology) draws from an Rng
 * owned by the experiment, never from global entropy, so all results are
 * reproducible from a seed.
 */
#ifndef RCHDROID_PLATFORM_RNG_H
#define RCHDROID_PLATFORM_RNG_H

#include <cstdint>

namespace rchdroid {

/**
 * A small, fast, deterministic generator (xoshiro256**).
 *
 * Chosen over std::mt19937 so that streams are identical across standard
 * library implementations.
 */
class Rng
{
  public:
    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

    /** Gaussian with the given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /** Fork a statistically independent child stream. */
    Rng fork();

  private:
    std::uint64_t state_[4];
};

} // namespace rchdroid

#endif // RCHDROID_PLATFORM_RNG_H
