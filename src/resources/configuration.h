/**
 * @file
 * Configuration: the device configuration whose runtime changes this
 * whole system is about, mirroring android.content.res.Configuration.
 *
 * A *runtime change* is any mutation of this struct while an app is in
 * the foreground — rotation, `wm size` resize, locale switch, keyboard
 * attach (paper §1). The ATMS diffs old vs new configurations and
 * dispatches the change to the foreground activity.
 */
#ifndef RCHDROID_RESOURCES_CONFIGURATION_H
#define RCHDROID_RESOURCES_CONFIGURATION_H

#include <cstdint>
#include <string>

namespace rchdroid {

/** Screen orientation. */
enum class Orientation : std::uint8_t {
    Portrait,
    Landscape,
};

/** Hardware keyboard presence. */
enum class KeyboardState : std::uint8_t {
    None,
    Attached,
};

/** Bitmask of configuration dimensions that differ between two configs. */
enum ConfigChangeBits : std::uint32_t {
    kConfigNone = 0,
    kConfigOrientation = 1u << 0,
    kConfigScreenSize = 1u << 1,
    kConfigLocale = 1u << 2,
    kConfigDensity = 1u << 3,
    kConfigKeyboard = 1u << 4,
    kConfigFontScale = 1u << 5,
};

/**
 * A complete device configuration snapshot.
 */
struct Configuration
{
    Orientation orientation = Orientation::Portrait;
    /** Physical screen size in pixels (as set by `wm size`). */
    int screen_width_px = 1080;
    int screen_height_px = 1920;
    /** BCP-47-ish locale tag. */
    std::string locale = "en-US";
    int density_dpi = 320;
    KeyboardState keyboard = KeyboardState::None;
    double font_scale = 1.0;

    /** Bits in ConfigChangeBits that differ from `other`. */
    std::uint32_t diff(const Configuration &other) const;

    bool operator==(const Configuration &other) const;
    bool operator!=(const Configuration &other) const
    { return !(*this == other); }

    /** "land 1920x1080 en-US 320dpi" for traces. */
    std::string toString() const;

    /** The stock portrait configuration of the RK3399 eval board. */
    static Configuration defaultPortrait();

    /** The same device rotated to landscape (dimensions swapped). */
    static Configuration defaultLandscape();

    /** This config rotated (dimensions swapped, orientation flipped). */
    Configuration rotated() const;

    /** This config with a different locale. */
    Configuration withLocale(std::string locale) const;

    /** This config resized, deriving orientation from the aspect ratio. */
    Configuration resized(int width_px, int height_px) const;
};

/** Human-readable list of set change bits, e.g. "orientation|screenSize". */
std::string configChangeBitsToString(std::uint32_t bits);

} // namespace rchdroid

#endif // RCHDROID_RESOURCES_CONFIGURATION_H
