#include "resources/configuration.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "platform/strings.h"

namespace rchdroid {

std::uint32_t
Configuration::diff(const Configuration &other) const
{
    std::uint32_t bits = kConfigNone;
    if (orientation != other.orientation)
        bits |= kConfigOrientation;
    if (screen_width_px != other.screen_width_px ||
        screen_height_px != other.screen_height_px) {
        bits |= kConfigScreenSize;
    }
    if (locale != other.locale)
        bits |= kConfigLocale;
    if (density_dpi != other.density_dpi)
        bits |= kConfigDensity;
    if (keyboard != other.keyboard)
        bits |= kConfigKeyboard;
    if (std::abs(font_scale - other.font_scale) > 1e-9)
        bits |= kConfigFontScale;
    return bits;
}

bool
Configuration::operator==(const Configuration &other) const
{
    return diff(other) == kConfigNone;
}

std::string
Configuration::toString() const
{
    std::ostringstream os;
    os << (orientation == Orientation::Portrait ? "port" : "land") << ' '
       << screen_width_px << 'x' << screen_height_px << ' ' << locale << ' '
       << density_dpi << "dpi";
    if (keyboard == KeyboardState::Attached)
        os << " kbd";
    if (font_scale != 1.0)
        os << " font" << font_scale;
    return os.str();
}

Configuration
Configuration::defaultPortrait()
{
    return Configuration{};
}

Configuration
Configuration::defaultLandscape()
{
    return Configuration{}.rotated();
}

Configuration
Configuration::rotated() const
{
    Configuration out = *this;
    out.orientation = orientation == Orientation::Portrait
                          ? Orientation::Landscape
                          : Orientation::Portrait;
    out.screen_width_px = screen_height_px;
    out.screen_height_px = screen_width_px;
    return out;
}

Configuration
Configuration::withLocale(std::string new_locale) const
{
    Configuration out = *this;
    out.locale = std::move(new_locale);
    return out;
}

Configuration
Configuration::resized(int width_px, int height_px) const
{
    Configuration out = *this;
    out.screen_width_px = width_px;
    out.screen_height_px = height_px;
    out.orientation = width_px > height_px ? Orientation::Landscape
                                           : Orientation::Portrait;
    return out;
}

std::string
configChangeBitsToString(std::uint32_t bits)
{
    if (bits == kConfigNone)
        return "none";
    std::vector<std::string> names;
    if (bits & kConfigOrientation)
        names.push_back("orientation");
    if (bits & kConfigScreenSize)
        names.push_back("screenSize");
    if (bits & kConfigLocale)
        names.push_back("locale");
    if (bits & kConfigDensity)
        names.push_back("density");
    if (bits & kConfigKeyboard)
        names.push_back("keyboard");
    if (bits & kConfigFontScale)
        names.push_back("fontScale");
    return joinStrings(names, "|");
}

} // namespace rchdroid
