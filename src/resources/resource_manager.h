/**
 * @file
 * ResourceManager: per-app resource access with a load-cost model,
 * mirroring android.content.res.Resources backed by AssetManager.
 *
 * Every resolution reports the virtual CPU cost the caller must charge to
 * its looper; drawables decode proportionally to their pixel count,
 * layouts parse proportionally to node count. These costs are what make
 * an activity restart expensive — and what RCHDroid's flip path avoids
 * re-paying.
 */
#ifndef RCHDROID_RESOURCES_RESOURCE_MANAGER_H
#define RCHDROID_RESOURCES_RESOURCE_MANAGER_H

#include <cstdint>
#include <memory>

#include "platform/status.h"
#include "platform/time.h"
#include "resources/configuration.h"
#include "resources/resource_table.h"

namespace rchdroid {

/** Cost parameters of resource resolution (values from sim::DeviceModel). */
struct ResourceCostModel
{
    /** Table lookup + qualifier match for any resource. */
    SimDuration lookup_cost = 0;
    /** Fixed cost of opening/decoding a drawable asset. */
    SimDuration drawable_base_cost = 0;
    /** Incremental decode cost per KiB of bitmap data. */
    SimDuration drawable_per_kib = 0;
    /** Parse cost per layout node. */
    SimDuration layout_per_node = 0;
};

/** A resolved value plus the CPU cost of having resolved it. */
template <typename T>
struct Loaded
{
    T value;
    SimDuration cost = 0;
};

/** Running counters of what an app has loaded (telemetry for benches). */
struct ResourceLoadStats
{
    std::uint64_t string_loads = 0;
    std::uint64_t drawable_loads = 0;
    std::uint64_t layout_loads = 0;
    std::uint64_t dimension_loads = 0;
    /** Total bitmap bytes decoded. */
    std::uint64_t drawable_bytes = 0;
    /** Total virtual CPU spent resolving. */
    SimDuration total_cost = 0;
};

/**
 * Cost-aware façade over one app's ResourceTable.
 */
class ResourceManager
{
  public:
    /**
     * @param table The app's declared resources (shared; immutable after
     *              app construction).
     * @param cost_model Device-calibrated load costs.
     */
    ResourceManager(std::shared_ptr<const ResourceTable> table,
                    ResourceCostModel cost_model);

    const ResourceTable &table() const { return *table_; }
    const ResourceCostModel &costModel() const { return cost_model_; }

    /** @name Cost-reporting resolution
     * @{
     */
    Result<Loaded<StringValue>> loadString(ResourceId id,
                                           const Configuration &config);
    Result<Loaded<DrawableValue>> loadDrawable(ResourceId id,
                                               const Configuration &config);
    Result<Loaded<LayoutValue>> loadLayout(ResourceId id,
                                           const Configuration &config);
    Result<Loaded<DimensionValue>> loadDimension(ResourceId id,
                                                 const Configuration &config);
    /** @} */

    const ResourceLoadStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    std::shared_ptr<const ResourceTable> table_;
    ResourceCostModel cost_model_;
    ResourceLoadStats stats_;
};

} // namespace rchdroid

#endif // RCHDROID_RESOURCES_RESOURCE_MANAGER_H
