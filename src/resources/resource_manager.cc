#include "resources/resource_manager.h"

#include <utility>

#include "platform/logging.h"

namespace rchdroid {

ResourceManager::ResourceManager(std::shared_ptr<const ResourceTable> table,
                                 ResourceCostModel cost_model)
    : table_(std::move(table)), cost_model_(cost_model)
{
    RCH_ASSERT(table_ != nullptr, "resource table required");
}

Result<Loaded<StringValue>>
ResourceManager::loadString(ResourceId id, const Configuration &config)
{
    auto resolved = table_->resolveString(id, config);
    if (!resolved)
        return resolved.status();
    const SimDuration cost = cost_model_.lookup_cost;
    ++stats_.string_loads;
    stats_.total_cost += cost;
    return Loaded<StringValue>{std::move(resolved).value(), cost};
}

Result<Loaded<DrawableValue>>
ResourceManager::loadDrawable(ResourceId id, const Configuration &config)
{
    auto resolved = table_->resolveDrawable(id, config);
    if (!resolved)
        return resolved.status();
    const auto kib =
        static_cast<SimDuration>((resolved.value().byteSize() + 1023) / 1024);
    const SimDuration cost = cost_model_.lookup_cost +
                             cost_model_.drawable_base_cost +
                             cost_model_.drawable_per_kib * kib;
    ++stats_.drawable_loads;
    stats_.drawable_bytes += resolved.value().byteSize();
    stats_.total_cost += cost;
    return Loaded<DrawableValue>{std::move(resolved).value(), cost};
}

Result<Loaded<LayoutValue>>
ResourceManager::loadLayout(ResourceId id, const Configuration &config)
{
    auto resolved = table_->resolveLayout(id, config);
    if (!resolved)
        return resolved.status();
    const int nodes = resolved.value().root.countNodes();
    const SimDuration cost =
        cost_model_.lookup_cost + cost_model_.layout_per_node * nodes;
    ++stats_.layout_loads;
    stats_.total_cost += cost;
    return Loaded<LayoutValue>{std::move(resolved).value(), cost};
}

Result<Loaded<DimensionValue>>
ResourceManager::loadDimension(ResourceId id, const Configuration &config)
{
    auto resolved = table_->resolveDimension(id, config);
    if (!resolved)
        return resolved.status();
    const SimDuration cost = cost_model_.lookup_cost;
    ++stats_.dimension_loads;
    stats_.total_cost += cost;
    return Loaded<DimensionValue>{std::move(resolved).value(), cost};
}

} // namespace rchdroid
