#include "resources/resource_table.h"

#include <algorithm>
#include <sstream>

#include "platform/logging.h"

namespace rchdroid {

bool
ResourceQualifier::matches(const Configuration &config) const
{
    if (orientation && *orientation != config.orientation)
        return false;
    if (locale && *locale != config.locale)
        return false;
    if (min_smallest_width_px) {
        const int smallest =
            std::min(config.screen_width_px, config.screen_height_px);
        if (smallest < *min_smallest_width_px)
            return false;
    }
    if (keyboard && *keyboard != config.keyboard)
        return false;
    return true;
}

int
ResourceQualifier::specificity() const
{
    int score = 0;
    score += orientation.has_value();
    score += locale.has_value();
    score += min_smallest_width_px.has_value();
    score += keyboard.has_value();
    return score;
}

std::string
ResourceQualifier::toString() const
{
    std::ostringstream os;
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ',';
        first = false;
    };
    if (orientation) {
        sep();
        os << (*orientation == Orientation::Portrait ? "port" : "land");
    }
    if (locale) {
        sep();
        os << *locale;
    }
    if (min_smallest_width_px) {
        sep();
        os << "sw" << *min_smallest_width_px;
    }
    if (keyboard) {
        sep();
        os << (*keyboard == KeyboardState::Attached ? "kbd" : "nokbd");
    }
    if (first)
        os << "any";
    return os.str();
}

ResourceQualifier
ResourceQualifier::forOrientation(Orientation o)
{
    ResourceQualifier q;
    q.orientation = o;
    return q;
}

ResourceQualifier
ResourceQualifier::forLocale(std::string locale)
{
    ResourceQualifier q;
    q.locale = std::move(locale);
    return q;
}

int
LayoutNode::countNodes() const
{
    int n = 1;
    for (const auto &child : children)
        n += child.countNodes();
    return n;
}

template <typename T>
ResourceId
ResourceTable::add(EntrySet<T> &set, ResourceType type,
                   const std::string &name, ResourceQualifier qual, T value)
{
    RCH_ASSERT(!name.empty(), "resource name must be non-empty");
    ResourceId id;
    auto it = set.ids.find(name);
    if (it != set.ids.end()) {
        id = it->second;
    } else {
        id = makeResourceId(type, set.next_index++);
        set.ids.emplace(name, id);
    }
    set.variants[id].push_back(Variant<T>{std::move(qual), std::move(value)});
    return id;
}

template <typename T>
Result<T>
ResourceTable::resolve(const EntrySet<T> &set, ResourceId id,
                       const Configuration &config) const
{
    auto it = set.variants.find(id);
    if (it == set.variants.end())
        return Status::notFound("unknown resource id");
    const Variant<T> *best = nullptr;
    for (const auto &variant : it->second) {
        if (!variant.qualifier.matches(config))
            continue;
        if (!best ||
            variant.qualifier.specificity() > best->qualifier.specificity()) {
            best = &variant;
        }
    }
    if (!best) {
        return Status::notFound("no variant matches config " +
                                config.toString());
    }
    return best->value;
}

ResourceId
ResourceTable::addString(const std::string &name, ResourceQualifier qual,
                         StringValue value)
{
    return add(strings_, ResourceType::String, name, std::move(qual),
               std::move(value));
}

ResourceId
ResourceTable::addDrawable(const std::string &name, ResourceQualifier qual,
                           DrawableValue value)
{
    return add(drawables_, ResourceType::Drawable, name, std::move(qual),
               std::move(value));
}

ResourceId
ResourceTable::addLayout(const std::string &name, ResourceQualifier qual,
                         LayoutValue value)
{
    return add(layouts_, ResourceType::Layout, name, std::move(qual),
               std::move(value));
}

ResourceId
ResourceTable::addDimension(const std::string &name, ResourceQualifier qual,
                            DimensionValue value)
{
    return add(dimensions_, ResourceType::Dimension, name, std::move(qual),
               std::move(value));
}

Result<ResourceId>
ResourceTable::idForName(ResourceType type, const std::string &name) const
{
    const std::map<std::string, ResourceId> *ids = nullptr;
    switch (type) {
      case ResourceType::String: ids = &strings_.ids; break;
      case ResourceType::Drawable: ids = &drawables_.ids; break;
      case ResourceType::Layout: ids = &layouts_.ids; break;
      case ResourceType::Dimension: ids = &dimensions_.ids; break;
    }
    RCH_ASSERT(ids, "bad resource type");
    auto it = ids->find(name);
    if (it == ids->end())
        return Status::notFound("no resource named " + name);
    return it->second;
}

Result<StringValue>
ResourceTable::resolveString(ResourceId id, const Configuration &config) const
{
    return resolve(strings_, id, config);
}

Result<DrawableValue>
ResourceTable::resolveDrawable(ResourceId id,
                               const Configuration &config) const
{
    return resolve(drawables_, id, config);
}

Result<LayoutValue>
ResourceTable::resolveLayout(ResourceId id, const Configuration &config) const
{
    return resolve(layouts_, id, config);
}

Result<DimensionValue>
ResourceTable::resolveDimension(ResourceId id,
                                const Configuration &config) const
{
    return resolve(dimensions_, id, config);
}

std::size_t
ResourceTable::countOfType(ResourceType type) const
{
    switch (type) {
      case ResourceType::String: return strings_.ids.size();
      case ResourceType::Drawable: return drawables_.ids.size();
      case ResourceType::Layout: return layouts_.ids.size();
      case ResourceType::Dimension: return dimensions_.ids.size();
    }
    return 0;
}

} // namespace rchdroid
