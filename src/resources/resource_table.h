/**
 * @file
 * ResourceTable: qualifier-matched resource storage, mirroring the AOSP
 * resource system (res/layout-land, res/values-fr, res/drawable-hdpi ...).
 *
 * The restarting-based handler's latency is dominated by re-resolving and
 * re-loading resources under the new configuration (paper §2.3 "new
 * resources must be loaded"); this table is what gets re-queried, and the
 * per-resource costs it reports are what the latency model charges.
 */
#ifndef RCHDROID_RESOURCES_RESOURCE_TABLE_H
#define RCHDROID_RESOURCES_RESOURCE_TABLE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "platform/status.h"
#include "resources/configuration.h"

namespace rchdroid {

/** Opaque resource identifier, like R.layout.activity_main. */
using ResourceId = std::uint32_t;

/** Resource kind; encoded in the top byte of generated ids. */
enum class ResourceType : std::uint8_t {
    String = 1,
    Drawable = 2,
    Layout = 3,
    Dimension = 4,
};

/** Compose a resource id from a type and an index. */
constexpr ResourceId
makeResourceId(ResourceType type, std::uint32_t index)
{
    return (static_cast<std::uint32_t>(type) << 24) | (index & 0xffffffu);
}

/** Extract the type from a resource id. */
constexpr ResourceType
resourceIdType(ResourceId id)
{
    return static_cast<ResourceType>(id >> 24);
}

/**
 * The configuration axes a resource variant can be qualified on.
 * Unset fields match any configuration (like an unqualified res/ dir).
 */
struct ResourceQualifier
{
    std::optional<Orientation> orientation;
    std::optional<std::string> locale;
    /** Matches when the screen's smaller dimension (px) is >= this. */
    std::optional<int> min_smallest_width_px;
    std::optional<KeyboardState> keyboard;

    /** True when every set axis matches `config`. */
    bool matches(const Configuration &config) const;

    /**
     * Specificity score: number of set axes. Among matching variants the
     * highest score wins (a simplification of AOSP's ordered-axis rule
     * that behaves identically for the qualifiers used here).
     */
    int specificity() const;

    /** "land,fr,sw600" for traces. */
    std::string toString() const;

    /** Convenience builders. */
    static ResourceQualifier any() { return {}; }
    static ResourceQualifier forOrientation(Orientation o);
    static ResourceQualifier forLocale(std::string locale);
};

/** A localised string value. */
struct StringValue
{
    std::string text;
};

/**
 * A drawable asset; memory footprint and decode cost derive from the
 * bitmap dimensions (ARGB_8888, as Android decodes by default).
 */
struct DrawableValue
{
    std::string asset_name;
    int width_px = 0;
    int height_px = 0;

    std::size_t
    byteSize() const
    {
        return static_cast<std::size_t>(width_px) *
               static_cast<std::size_t>(height_px) * 4;
    }
};

/** One node of a layout resource: element name + attributes, like XML. */
struct LayoutNode
{
    /** Element name the inflater maps to a widget, e.g. "TextView". */
    std::string element;
    /** Attributes, e.g. {"id", "title"}, {"text", "@string/hello"}. */
    std::map<std::string, std::string> attrs;
    std::vector<LayoutNode> children;

    /** Total nodes in this subtree, including this one. */
    int countNodes() const;
};

/** A layout resource: a parsed element tree. */
struct LayoutValue
{
    LayoutNode root;
};

/** A dimension in pixels. */
struct DimensionValue
{
    double pixels = 0;
};

/**
 * Qualifier-matched storage of every resource an app declares.
 */
class ResourceTable
{
  public:
    ResourceTable() = default;

    /** @name Declaration (build-time of the simulated app)
     * Declaring a name twice returns the same id; each call adds one
     * qualified variant.
     * @{
     */
    ResourceId addString(const std::string &name, ResourceQualifier qual,
                         StringValue value);
    ResourceId addDrawable(const std::string &name, ResourceQualifier qual,
                           DrawableValue value);
    ResourceId addLayout(const std::string &name, ResourceQualifier qual,
                         LayoutValue value);
    ResourceId addDimension(const std::string &name, ResourceQualifier qual,
                            DimensionValue value);
    /** @} */

    /** Resolve a declared name to its id. */
    Result<ResourceId> idForName(ResourceType type,
                                 const std::string &name) const;

    /** @name Resolution under a configuration
     * Picks the most specific matching variant; NotFound when no variant
     * matches (an app bug Android would surface as Resources$NotFound).
     * @{
     */
    Result<StringValue> resolveString(ResourceId id,
                                      const Configuration &config) const;
    Result<DrawableValue> resolveDrawable(ResourceId id,
                                          const Configuration &config) const;
    Result<LayoutValue> resolveLayout(ResourceId id,
                                      const Configuration &config) const;
    Result<DimensionValue> resolveDimension(ResourceId id,
                                            const Configuration &config) const;
    /** @} */

    /** Number of distinct resource names of a type. */
    std::size_t countOfType(ResourceType type) const;

  private:
    template <typename T>
    struct Variant
    {
        ResourceQualifier qualifier;
        T value;
    };

    template <typename T>
    struct EntrySet
    {
        std::map<std::string, ResourceId> ids;
        std::map<ResourceId, std::vector<Variant<T>>> variants;
        std::uint32_t next_index = 1;
    };

    template <typename T>
    ResourceId add(EntrySet<T> &set, ResourceType type,
                   const std::string &name, ResourceQualifier qual, T value);

    template <typename T>
    Result<T> resolve(const EntrySet<T> &set, ResourceId id,
                      const Configuration &config) const;

    EntrySet<StringValue> strings_;
    EntrySet<DrawableValue> drawables_;
    EntrySet<LayoutValue> layouts_;
    EntrySet<DimensionValue> dimensions_;
};

} // namespace rchdroid

#endif // RCHDROID_RESOURCES_RESOURCE_TABLE_H
