/**
 * @file
 * FrameworkCosts: every virtual-CPU cost constant the client-side
 * framework charges, in one calibratable bag.
 *
 * sim::DeviceModel produces the values (calibrated against the paper's
 * RK3399 measurements, DESIGN.md §5); the app layer only consumes them.
 */
#ifndef RCHDROID_APP_FRAMEWORK_COSTS_H
#define RCHDROID_APP_FRAMEWORK_COSTS_H

#include "platform/time.h"

namespace rchdroid {

/** Client-process (ActivityThread) cost constants. */
struct FrameworkCosts
{
    /** @name Activity construction / lifecycle callbacks
     * @{
     */
    /** Instantiate the Activity object + attach context. */
    SimDuration activity_construct = 0;
    /** Framework share of onCreate (window setup, theme). */
    SimDuration on_create_base = 0;
    SimDuration on_start = 0;
    SimDuration on_resume = 0;
    SimDuration on_pause = 0;
    SimDuration on_stop = 0;
    /** Fixed part of tearing an activity down. */
    SimDuration on_destroy_base = 0;
    /** Per-view teardown (release drawables, detach). */
    SimDuration destroy_per_view = 0;
    /** @} */

    /** @name Layout / render passes
     * @{
     */
    /** Per-node view construction during inflate (LayoutInflater). */
    SimDuration inflate_per_node = 0;
    /** Measure+layout per view. */
    SimDuration layout_per_view = 0;
    /** First-frame draw per view. */
    SimDuration draw_per_view = 0;
    /**
     * First-frame draw per KiB of decoded drawable content: complex,
     * image-heavy UIs redraw slower. Dominates the flip-vs-restart gap
     * on the heavyweight top-100 apps (Fig. 14a).
     */
    SimDuration draw_per_kib = 0;
    /** @} */

    /** @name Instance state
     * @{
     */
    /** onSaveInstanceState fixed part. */
    SimDuration save_state_base = 0;
    /** Per-view saveHierarchyState. */
    SimDuration save_state_per_view = 0;
    /** Per-view restoreHierarchyState. */
    SimDuration restore_state_per_view = 0;
    /** @} */

    /** @name RCHDroid client machinery (paper §3.3)
     * @{
     */
    /** getAllSunnyViews: hash-table insert per sunny view. */
    SimDuration mapping_insert_per_view = 0;
    /** setSunnyViews: lookup + peer-pointer store per shadow view. */
    SimDuration mapping_wire_per_view = 0;
    /** Flip path: fixed cost to re-foreground the shadow instance. */
    SimDuration flip_fixed = 0;
    /** Flip path: per-view state sync from outgoing to incoming tree. */
    SimDuration flip_sync_per_view = 0;
    /** Lazy migration: fixed interception overhead per async batch. */
    SimDuration migrate_batch_base = 0;
    /** Lazy migration: per migrated view. */
    SimDuration migrate_per_view = 0;
    /** doGcForShadowIfNeeded check. */
    SimDuration gc_check = 0;
    /** @} */

    /** @name Process-level
     * @{
     */
    /** Dispatch overhead of any binder transaction handler. */
    SimDuration transaction_handle = 0;
    /** @} */
};

} // namespace rchdroid

#endif // RCHDROID_APP_FRAMEWORK_COSTS_H
