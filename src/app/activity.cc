#include "app/activity.h"

#include <algorithm>
#include <utility>

#include "os/analysis_hooks.h"
#include "platform/logging.h"

namespace rchdroid {

std::atomic<std::uint64_t> Activity::next_instance_id_{1};

Activity::Activity(std::string component)
    : component_(std::move(component)),
      instance_id_(next_instance_id_.fetch_add(1, std::memory_order_relaxed))
{
}

Activity::~Activity()
{
    if (auto *hooks = analysis::hooks())
        hooks->onActivityGone(this);
}

void
Activity::attachContext(ActivityContext context)
{
    RCH_ASSERT(context.resources != nullptr, "context needs resources");
    RCH_ASSERT(context.inflater != nullptr, "context needs an inflater");
    context_ = std::move(context);
}

void
Activity::chargeCpu(SimDuration cost)
{
    if (cost <= 0)
        return;
    if (context_.ui_looper && context_.ui_looper->isDispatching())
        context_.ui_looper->consumeCpu(cost);
}

void
Activity::emitEvent(TelemetryKind kind, double value)
{
    if (!context_.telemetry)
        return;
    TelemetryEvent event;
    event.time = context_.ui_looper ? context_.ui_looper->now() : 0;
    event.kind = kind;
    event.detail = component_;
    event.value = value;
    context_.telemetry->record(event);
}

void
Activity::transitionTo(LifecycleState next)
{
    // Reported before validity is enforced so the protocol checker can
    // record an illegal attempt even when the assert below is the thing
    // that stops it.
    if (auto *hooks = analysis::hooks()) {
        hooks->onLifecycleTransition(this, context_.thread, component_,
                                     instance_id_,
                                     static_cast<std::uint8_t>(state_),
                                     static_cast<std::uint8_t>(next));
    }
    RCH_ASSERT(isValidTransition(state_, next), component_, " instance ",
               instance_id_, ": illegal lifecycle transition ",
               lifecycleStateName(state_), " -> ", lifecycleStateName(next));
    state_ = next;
}

void
Activity::performCreate(const Configuration &config, const Bundle *saved)
{
    transitionTo(LifecycleState::Created);
    config_ = config;
    window_.decorView().attachToHost(this);
    chargeCpu(context_.costs.activity_construct);
    chargeCpu(context_.costs.on_create_base);
    onCreate(saved);
    // Views inflated during onCreate were attached under the decor; make
    // sure the whole tree points back at this host.
    window_.decorView().visit(
        [this](View &v) { v.attachToHost(this); });
}

void
Activity::performStart()
{
    transitionTo(LifecycleState::Started);
    chargeCpu(context_.costs.on_start);
    onStart();
}

void
Activity::performRestoreInstanceState(const Bundle &saved)
{
    RCH_ASSERT(state_ == LifecycleState::Started,
               "restore outside Started: ", lifecycleStateName(state_));
    const Bundle views = saved.getBundle("views");
    const int n = window_.countViews();
    chargeCpu(context_.costs.restore_state_per_view * n);
    if (!views.empty())
        window_.decorView().restoreHierarchyState(views, "r");
    if (saved.contains("fragments")) {
        // Fragment state is replayed when the app re-attaches each
        // fragment (by tag), as on Android.
        fragmentManager().setPendingRestoredState(
            saved.getBundle("fragments"));
    }
    onRestoreInstanceState(saved.getBundle("app"));
}

void
Activity::performResume(bool as_sunny)
{
    transitionTo(as_sunny ? LifecycleState::Sunny : LifecycleState::Resumed);
    chargeCpu(context_.costs.on_resume);
    const int n = window_.countViews();
    chargeCpu((context_.costs.layout_per_view + context_.costs.draw_per_view) *
              n);
    chargeCpu(context_.costs.draw_per_kib *
              static_cast<SimDuration>(drawableBytesInTree() / 1024));
    window_.layout(config_.screen_width_px, config_.screen_height_px);
    if (as_sunny)
        window_.decorView().dispatchSunnyStateChanged(true);
    onResume();
    emitEvent(kinds::kActivityResumed);
}

void
Activity::performPause()
{
    transitionTo(LifecycleState::Paused);
    chargeCpu(context_.costs.on_pause);
    onPause();
}

void
Activity::performStop()
{
    transitionTo(LifecycleState::Stopped);
    chargeCpu(context_.costs.on_stop);
    onStop();
}

void
Activity::performDestroy()
{
    const int n = window_.countViews();
    // Fast-path teardown used by relaunch and shadow GC: Android funnels
    // these through pause/stop internally. The intermediate hops follow
    // the Fig. 4 edges (Shadow goes straight to Destroyed, its only exit
    // besides the coin flip); costs are charged as one destroy below.
    if (state_ == LifecycleState::Resumed || state_ == LifecycleState::Sunny)
        transitionTo(LifecycleState::Paused);
    if (state_ == LifecycleState::Paused)
        transitionTo(LifecycleState::Stopped);
    transitionTo(LifecycleState::Destroyed);
    chargeCpu(context_.costs.on_destroy_base +
              context_.costs.destroy_per_view * n);
    // Dialogs still attached to this window token leak: Android logs
    // the leak and force-closes them (the process survives).
    for (Dialog *dialog : dialogs_) {
        if (dialog->isShowing()) {
            emitEvent(kinds::kAppWindowLeaked);
            dialog->onOwnerDestroyed();
        }
    }
    onDestroy();
    window_.decorView().markDestroyed();
    shadow_snapshot_ = Bundle{};
    has_shadow_snapshot_ = false;
    emitEvent(kinds::kActivityDestroyed);
}

void
Activity::performConfigurationChanged(const Configuration &config)
{
    config_ = config;
    window_.layout(config.screen_width_px, config.screen_height_px);
    // Full relayout + redraw under the new geometry.
    chargeCpu((context_.costs.layout_per_view + context_.costs.draw_per_view) *
              window_.countViews());
    chargeCpu(context_.costs.draw_per_kib *
              static_cast<SimDuration>(drawableBytesInTree() / 1024));
    onConfigurationChanged(config);
}

Bundle
Activity::saveInstanceStateNow(bool full)
{
    Bundle out;
    Bundle views;
    const int n = window_.countViews();
    chargeCpu(context_.costs.save_state_base +
              context_.costs.save_state_per_view * n);
    window_.decorView().saveHierarchyState(views, full, "r");
    out.putBundle("views", std::move(views));
    if (fragment_manager_ && fragment_manager_->attachedCount() > 0) {
        Bundle fragments;
        fragment_manager_->saveAllState(fragments);
        out.putBundle("fragments", std::move(fragments));
    }
    Bundle app;
    onSaveInstanceState(app);
    out.putBundle("app", std::move(app));
    return out;
}

Bundle
Activity::enterShadowState()
{
    RCH_ASSERT(state_ == LifecycleState::Resumed ||
                   state_ == LifecycleState::Sunny,
               "enterShadowState from ", lifecycleStateName(state_));
    // The explicit RCHDroid snapshot: full per-view coverage.
    Bundle snapshot = saveInstanceStateNow(/*full=*/true);
    shadow_snapshot_ = snapshot;
    has_shadow_snapshot_ = true;
    transitionTo(LifecycleState::Shadow);
    window_.decorView().dispatchSunnyStateChanged(false);
    window_.decorView().dispatchShadowStateChanged(true);
    shadow_entered_at_ =
        context_.ui_looper ? context_.ui_looper->now() : 0;
    emitEvent(kinds::kActivityEnterShadow);
    return snapshot;
}

void
Activity::enterSunnyStateFromShadow()
{
    transitionTo(LifecycleState::Sunny);
    window_.decorView().dispatchShadowStateChanged(false);
    window_.decorView().dispatchSunnyStateChanged(true);
    shadow_snapshot_ = Bundle{};
    has_shadow_snapshot_ = false;
    emitEvent(kinds::kActivityFlipToSunny);
}

void
Activity::degradeSunnyToResumed()
{
    transitionTo(LifecycleState::Resumed);
    window_.decorView().dispatchSunnyStateChanged(false);
}

std::unordered_map<std::string, View *>
Activity::getAllSunnyViews()
{
    std::unordered_map<std::string, View *> table;
    int n = 0;
    window_.decorView().visit([&table, &n](View &v) {
        ++n;
        if (!v.id().empty())
            table.emplace(v.id(), &v);
    });
    chargeCpu(context_.costs.mapping_insert_per_view * n);
    return table;
}

int
Activity::setSunnyViews(const std::unordered_map<std::string, View *> &sunny)
{
    int wired = 0;
    int n = 0;
    window_.decorView().visit([&sunny, &wired, &n](View &v) {
        ++n;
        if (v.id().empty())
            return;
        auto it = sunny.find(v.id());
        if (it == sunny.end())
            return;
        v.setSunnyPeer(it->second);
        it->second->setSunnyPeer(&v); // reverse link: free coin-flips
        ++wired;
    });
    chargeCpu(context_.costs.mapping_wire_per_view * n);
    return wired;
}

View &
Activity::setContentView(ResourceId layout_id)
{
    RCH_ASSERT(context_.inflater, "setContentView before attachContext");
    auto inflated = context_.inflater->inflate(layout_id, config_);
    if (!inflated) {
        RCH_FATAL(component_, ": setContentView failed: ",
                  inflated.status().toString());
    }
    chargeCpu(inflated.value().cost);
    View &content = window_.setContent(std::move(inflated).value().value);
    window_.decorView().visit([this](View &v) { v.attachToHost(this); });
    return content;
}

View &
Activity::setContentView(std::unique_ptr<View> content)
{
    chargeCpu(context_.costs.inflate_per_node * content->countViews());
    View &installed = window_.setContent(std::move(content));
    window_.decorView().visit([this](View &v) { v.attachToHost(this); });
    return installed;
}

View *
Activity::findViewById(const std::string &id)
{
    return window_.decorView().findViewById(id);
}

int
Activity::showingDialogCount() const
{
    int n = 0;
    for (const Dialog *dialog : dialogs_)
        n += dialog->isShowing();
    return n;
}

void
Activity::registerDialog(Dialog *dialog)
{
    dialogs_.push_back(dialog);
}

void
Activity::unregisterDialog(Dialog *dialog)
{
    dialogs_.erase(std::remove(dialogs_.begin(), dialogs_.end(), dialog),
                   dialogs_.end());
}

FragmentManager &
Activity::fragmentManager()
{
    if (!fragment_manager_)
        fragment_manager_ = std::make_unique<FragmentManager>(*this);
    return *fragment_manager_;
}

void
Activity::startActivity(const std::string &target_component)
{
    RCH_ASSERT(context_.thread, "startActivity before attach");
    // Declared in activity_thread.h; the indirection avoids a circular
    // include (the thread knows its process name and ATMS binding).
    detail::sendStartActivity(*context_.thread, target_component);
}

ResourceManager &
Activity::resources()
{
    RCH_ASSERT(context_.resources, "resources before attachContext");
    return *context_.resources;
}

std::size_t
Activity::memoryFootprintBytes() const
{
    std::size_t bytes = 2048; // Activity object + context plumbing.
    bytes += window_.memoryFootprintBytes();
    bytes += private_heap_bytes_;
    if (has_shadow_snapshot_)
        bytes += shadow_snapshot_.approximateSizeBytes();
    return bytes;
}

std::size_t
Activity::drawableBytesInTree() const
{
    std::size_t total = 0;
    window_.decorView().visitConst(
        [&total](const View &v) { total += v.drawableBytes(); });
    return total;
}

void
Activity::onViewInvalidated(View &view)
{
    if (invalidation_listener_)
        invalidation_listener_->onViewInvalidated(*this, view);
}

} // namespace rchdroid
