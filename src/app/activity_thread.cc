#include "app/activity_thread.h"

#include <algorithm>
#include <utility>

#include "os/analysis_hooks.h"
#include "platform/logging.h"
#include "platform/metrics.h"
#include "platform/tracing.h"

namespace rchdroid {

namespace detail {

void
sendStartActivity(ActivityThread &thread, const std::string &component)
{
    ActivityManager *am = thread.activityManager();
    if (!am)
        return;
    Intent intent;
    intent.component = component;
    intent.source_process = thread.processName();
    am->startActivity(intent);
}

} // namespace detail

ActivityThread::ActivityThread(SimScheduler &scheduler, ProcessParams params,
                               std::shared_ptr<const ResourceTable> resources,
                               const ResourceCostModel &resource_costs,
                               const FrameworkCosts &costs,
                               TelemetrySink *telemetry)
    : scheduler_(scheduler),
      params_(std::move(params)),
      resources_(std::move(resources), resource_costs),
      inflater_(resources_, costs.inflate_per_node),
      costs_(costs),
      telemetry_(telemetry ? telemetry : &NullTelemetrySink::instance()),
      ui_looper_(scheduler, params_.process_name + ".main"),
      worker_looper_(scheduler, params_.process_name + ".async")
{
}

void
ActivityThread::registerActivityFactory(const std::string &component,
                                        ActivityFactory factory)
{
    RCH_ASSERT(factory != nullptr, "null factory for ", component);
    factories_[component] = std::move(factory);
}

void
ActivityThread::emitEvent(TelemetryKind kind, const std::string &detail,
                          double value)
{
    TelemetryEvent event;
    event.time = scheduler_.now();
    event.kind = kind;
    event.detail = detail;
    event.value = value;
    telemetry_->record(event);
}

std::shared_ptr<Activity>
ActivityThread::activityForToken(ActivityToken token)
{
    auto it = activities_.find(token);
    return it != activities_.end() ? it->second : nullptr;
}

std::shared_ptr<Activity>
ActivityThread::foregroundActivity()
{
    for (auto &[token, activity] : activities_) {
        (void)token;
        if (isForeground(activity->lifecycleState()))
            return activity;
    }
    return nullptr;
}

std::shared_ptr<Activity>
ActivityThread::shadowActivity()
{
    for (auto &[token, activity] : activities_) {
        (void)token;
        if (activity->isShadow())
            return activity;
    }
    return nullptr;
}

void
ActivityThread::dropActivity(ActivityToken token)
{
    activities_.erase(token);
}

std::shared_ptr<Activity>
ActivityThread::createInstance(const std::string &component,
                               ActivityToken token)
{
    auto it = factories_.find(component);
    if (it == factories_.end())
        RCH_FATAL(params_.process_name, ": no factory for ", component);
    std::shared_ptr<Activity> activity = it->second();
    RCH_ASSERT(activity != nullptr, "factory returned null for ", component);
    activity->setToken(token);
    ActivityContext context;
    context.ui_looper = &ui_looper_;
    context.resources = &resources_;
    context.inflater = &inflater_;
    context.costs = costs_;
    context.telemetry = telemetry_;
    context.thread = this;
    activity->attachContext(std::move(context));
    return activity;
}

std::shared_ptr<Activity>
ActivityThread::performLaunchActivity(const LaunchArgs &args,
                                      const Bundle *saved, bool as_sunny)
{
    RCH_TRACE_SCOPE_ARG("app.performLaunch", args.component, "app");
    auto activity = createInstance(args.component, args.token);
    activities_[args.token] = activity;
    metrics::set(metrics::Gauge::kLiveActivities,
                 static_cast<double>(activities_.size()));
    runAppCode([&] {
        activity->performCreate(args.config, saved);
        activity->performStart();
        if (saved)
            activity->performRestoreInstanceState(*saved);
        activity->performResume(as_sunny);
    });
    return activity;
}

void
ActivityThread::notifyResumedAtCostEnd(ActivityToken token)
{
    // Posted with zero delay on the UI looper, the continuation runs when
    // the in-flight dispatch's accumulated cost window closes — i.e. when
    // the launch work actually finishes on the simulated thread.
    ui_looper_.post([this, token] {
        emitEvent(kinds::kAppResumed, params_.process_name,
                  static_cast<double>(token));
        if (am_)
            am_->activityResumed(token);
    },
                    0, 0, "notifyResumed");
}

void
ActivityThread::scheduleLaunchActivity(const LaunchArgs &args)
{
    if (crashed())
        return;
    ui_looper_.post(
        [this, args] {
            if (args.sunny && handler_) {
                handler_->onSunnyLaunch(*this, args);
                return;
            }
            performLaunchActivity(args, nullptr, /*as_sunny=*/false);
            notifyResumedAtCostEnd(args.token);
        },
        0, costs_.transaction_handle, "scheduleLaunchActivity");
}

void
ActivityThread::scheduleRelaunchActivity(ActivityToken token,
                                         const Configuration &config)
{
    if (crashed())
        return;
    ui_looper_.post(
        [this, token, config] {
            auto activity = activityForToken(token);
            if (!activity)
                return;
            // The stock restart: save state, tear the instance down, and
            // recreate it under the new configuration — all on the UI
            // thread, which stays busy (frozen) for the whole sequence.
            Bundle saved;
            runAppCode([&] {
                // Stock Android: the default, partial per-widget save.
                saved = activity->saveInstanceStateNow(/*full=*/false);
                activity->performPause();
                activity->performStop();
                activity->performDestroy();
            });
            activities_.erase(token);
            // In-flight async tasks keep the dead instance (and its view
            // tree) reachable, exactly like a leaked Java reference.
            for (const auto &task : in_flight_) {
                if (task->owner() && task->owner().get() == activity.get()) {
                    leaked_.push_back(activity);
                    break;
                }
            }
            LaunchArgs args;
            args.token = token;
            args.component = activity->component();
            args.config = config;
            performLaunchActivity(args, &saved, /*as_sunny=*/false);
            notifyResumedAtCostEnd(token);
        },
        0, costs_.transaction_handle, "scheduleRelaunchActivity");
}

void
ActivityThread::scheduleConfigurationChanged(ActivityToken token,
                                             const Configuration &config)
{
    if (crashed())
        return;
    ui_looper_.post(
        [this, token, config] {
            if (handler_) {
                // performActivityConfigurationChanged, as modified by
                // RCHDroid (Table 2): delegate to the handler.
                handler_->onConfigurationChanged(*this, token, config);
                return;
            }
            // No handler: the app declared it handles changes itself.
            if (auto activity = activityForToken(token)) {
                runAppCode(
                    [&] { activity->performConfigurationChanged(config); });
                notifyResumedAtCostEnd(token);
            }
        },
        0, costs_.transaction_handle, "scheduleConfigurationChanged");
}

void
ActivityThread::scheduleDestroyActivity(ActivityToken token)
{
    if (crashed())
        return;
    ui_looper_.post(
        [this, token] {
            auto activity = activityForToken(token);
            if (!activity)
                return;
            const bool was_foreground =
                isForeground(activity->lifecycleState());
            runAppCode([&] { activity->performDestroy(); });
            activities_.erase(token);
            if (was_foreground && handler_)
                handler_->onForegroundGone(*this, token);
            if (am_)
                am_->activityDestroyed(token);
        },
        0, costs_.transaction_handle, "scheduleDestroyActivity");
}

void
ActivityThread::scheduleStopActivity(ActivityToken token)
{
    if (crashed())
        return;
    ui_looper_.post(
        [this, token] {
            auto activity = activityForToken(token);
            if (!activity || !isForeground(activity->lifecycleState()))
                return;
            if (activity->isSunny())
                activity->degradeSunnyToResumed();
            runAppCode([&] {
                activity->performPause();
                activity->performStop();
            });
            if (handler_)
                handler_->onForegroundGone(*this, token);
            if (am_)
                am_->activityStopped(token);
        },
        0, costs_.transaction_handle, "scheduleStopActivity");
}

void
ActivityThread::scheduleResumeActivity(ActivityToken token)
{
    if (crashed())
        return;
    ui_looper_.post(
        [this, token] {
            auto activity = activityForToken(token);
            if (!activity)
                return;
            if (activity->lifecycleState() == LifecycleState::Stopped) {
                runAppCode([&] {
                    activity->performStart();
                    activity->performResume();
                });
            }
            notifyResumedAtCostEnd(token);
        },
        0, costs_.transaction_handle, "scheduleResumeActivity");
}

void
ActivityThread::runAppCode(const std::function<void()> &fn)
{
    if (crashed())
        return;
    // The app-code scope tells the analysis layer that destroyed-view
    // touches in here are the simulated app bug under study (absorbed by
    // this crash guard), not the framework breaking its own protocol.
    auto *hooks = analysis::hooks();
    if (hooks)
        hooks->onAppCodeBegin();
    try {
        fn();
    } catch (const UiException &e) {
        handleCrash(e);
    }
    if (hooks)
        hooks->onAppCodeEnd();
}

void
ActivityThread::handleCrash(const UiException &e)
{
    CrashInfo info;
    info.kind = e.kind();
    info.reason = e.what();
    info.time = scheduler_.now();
    crash_ = info;
    RCH_LOGE("ActivityThread", params_.process_name,
             " FATAL EXCEPTION: ", e.what());
    metrics::add(metrics::Counter::kAppCrashes);
    emitEvent(kinds::kAppCrash, e.what());
    // Process death releases everything.
    activities_.clear();
    leaked_.clear();
    in_flight_.clear();
    if (am_)
        am_->processCrashed(params_.process_name, e.what());
}

void
ActivityThread::postAppCallback(std::function<void()> fn, SimDuration cost,
                                std::string tag)
{
    postAppCallbackAt(scheduler_.now(), std::move(fn), cost, std::move(tag));
}

void
ActivityThread::postAppCallbackAt(SimTime when, std::function<void()> fn,
                                  SimDuration cost, std::string tag,
                                  std::uint64_t causal_id)
{
    Message msg;
    msg.callback = [this, fn = std::move(fn)] { runAppCode(fn); };
    msg.when = when;
    msg.cost = cost;
    msg.tag = tag.empty() ? "appCallback" : std::move(tag);
    msg.causal_id = causal_id;
    ui_looper_.enqueue(std::move(msg));
}

void
ActivityThread::noteAsyncStarted(const std::shared_ptr<AsyncTask> &task)
{
    in_flight_.push_back(task);
    emitEvent(kinds::kAppAsyncStarted, task->name());
}

void
ActivityThread::noteAsyncFinished(const std::shared_ptr<AsyncTask> &task)
{
    in_flight_.erase(
        std::remove(in_flight_.begin(), in_flight_.end(), task),
        in_flight_.end());
    emitEvent(kinds::kAppAsyncFinished, task->name());
    // Drop leaked activities no longer pinned by any in-flight task.
    auto still_pinned = [this](const std::shared_ptr<Activity> &activity) {
        for (const auto &t : in_flight_) {
            if (t->owner() && t->owner().get() == activity.get())
                return true;
        }
        return false;
    };
    leaked_.erase(std::remove_if(leaked_.begin(), leaked_.end(),
                                 [&](const auto &a) {
                                     return !still_pinned(a);
                                 }),
                  leaked_.end());
}

std::size_t
ActivityThread::totalHeapBytes() const
{
    if (crashed())
        return 0;
    std::size_t total = params_.base_heap_bytes;
    for (const auto &[token, activity] : activities_) {
        (void)token;
        total += activity->memoryFootprintBytes();
    }
    for (const auto &activity : leaked_)
        total += activity->memoryFootprintBytes();
    return total;
}

} // namespace rchdroid
