#include "app/lifecycle.h"

namespace rchdroid {

const char *
lifecycleStateName(LifecycleState state)
{
    switch (state) {
      case LifecycleState::Initial: return "Initial";
      case LifecycleState::Created: return "Created";
      case LifecycleState::Started: return "Started";
      case LifecycleState::Resumed: return "Resumed";
      case LifecycleState::Paused: return "Paused";
      case LifecycleState::Stopped: return "Stopped";
      case LifecycleState::Destroyed: return "Destroyed";
      case LifecycleState::Shadow: return "Shadow";
      case LifecycleState::Sunny: return "Sunny";
    }
    return "Unknown";
}

bool
isAlive(LifecycleState state)
{
    return state != LifecycleState::Initial &&
           state != LifecycleState::Destroyed;
}

bool
isForeground(LifecycleState state)
{
    return state == LifecycleState::Resumed || state == LifecycleState::Sunny;
}

bool
isValidTransition(LifecycleState from, LifecycleState to)
{
    using S = LifecycleState;
    switch (from) {
      case S::Initial:
        return to == S::Created;
      case S::Created:
        // Created → Started is the stock path; Created → Sunny is the
        // "created and resumed with the sunny flag" dotted edge.
        return to == S::Started || to == S::Sunny;
      case S::Started:
        return to == S::Resumed || to == S::Sunny || to == S::Stopped;
      case S::Resumed:
        // Resumed → Shadow is "stopped with the shadow flag".
        return to == S::Paused || to == S::Shadow;
      case S::Paused:
        return to == S::Resumed || to == S::Stopped;
      case S::Stopped:
        return to == S::Started || to == S::Destroyed;
      case S::Destroyed:
        return false;
      case S::Shadow:
        // Coin-flip back to the foreground, or reclaimed by the GC.
        return to == S::Sunny || to == S::Destroyed;
      case S::Sunny:
        // Sunny behaves as Resumed: it can pause (app swap), flip back to
        // shadow at the next runtime change, or degrade to plain Resumed
        // once its shadow partner is collected.
        return to == S::Paused || to == S::Shadow || to == S::Resumed;
    }
    return false;
}

} // namespace rchdroid
