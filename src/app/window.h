/**
 * @file
 * Window: the activity's top-level surface owning the decor view,
 * mirroring android.view.Window / PhoneWindow.
 */
#ifndef RCHDROID_APP_WINDOW_H
#define RCHDROID_APP_WINDOW_H

#include <memory>

#include "view/view_group.h"

namespace rchdroid {

/**
 * Owns the decor view and the content view slot beneath it.
 */
class Window
{
  public:
    Window();

    Window(const Window &) = delete;
    Window &operator=(const Window &) = delete;

    /** The tree root. */
    DecorView &decorView() { return *decor_; }
    const DecorView &decorView() const { return *decor_; }

    /**
     * Install the content view (replacing any previous content), like
     * Activity.setContentView. The window takes ownership.
     */
    View &setContent(std::unique_ptr<View> content);

    /** The content view, or null before setContent. */
    View *content() { return content_; }
    const View *content() const { return content_; }

    /** Total views in the window (decor + content subtree). */
    int countViews() const { return decor_->countViews(); }

    /** Run the layout pass for the given surface size. */
    void layout(int width_px, int height_px);

    /** Sum of view memory footprints in this window. */
    std::size_t memoryFootprintBytes() const;

  private:
    std::unique_ptr<DecorView> decor_;
    View *content_ = nullptr;
};

} // namespace rchdroid

#endif // RCHDROID_APP_WINDOW_H
