/**
 * @file
 * The activity lifecycle state machine of Fig. 4: the six stock Android
 * states (Created, Started, Resumed, Paused, Stopped, Destroyed) plus the
 * two states RCHDroid adds (Shadow, Sunny).
 *
 * The transition table encodes the solid arrows of the stock lifecycle
 * and the dotted arrows of the paper: Resumed → Shadow (stop with the
 * shadow flag at a runtime change), Created/Started → Sunny (resume with
 * the sunny flag), Shadow → Sunny (coin-flip), Sunny → Shadow (coin-flip
 * of the displaced foreground instance), Shadow → Destroyed (GC), and
 * Sunny behaving as Resumed for all stock transitions.
 */
#ifndef RCHDROID_APP_LIFECYCLE_H
#define RCHDROID_APP_LIFECYCLE_H

#include <cstdint>
#include <string>

namespace rchdroid {

/** Activity lifecycle states, Fig. 4. */
enum class LifecycleState : std::uint8_t {
    /** Not yet created (pre-onCreate). */
    Initial,
    Created,
    Started,
    Resumed,
    Paused,
    Stopped,
    Destroyed,
    /** RCHDroid: alive, invisible, still serving async callbacks. */
    Shadow,
    /** RCHDroid: foreground, equivalent to Resumed + migration duties. */
    Sunny,
};

/** "Resumed", "Shadow", ... */
const char *lifecycleStateName(LifecycleState state);

/** True for states where the instance is alive (not Destroyed/Initial). */
bool isAlive(LifecycleState state);

/** True for the two foreground states (Resumed, Sunny). */
bool isForeground(LifecycleState state);

/** True when the Fig. 4 diagram contains an edge from → to. */
bool isValidTransition(LifecycleState from, LifecycleState to);

} // namespace rchdroid

#endif // RCHDROID_APP_LIFECYCLE_H
