#include "app/fragment.h"

#include <algorithm>
#include <utility>

#include "app/activity.h"
#include "platform/logging.h"

namespace rchdroid {

Fragment::Fragment(std::string tag) : tag_(std::move(tag))
{
    RCH_ASSERT(!tag_.empty(), "fragment tag must be non-empty");
}

FragmentManager::FragmentManager(Activity &activity) : activity_(activity)
{
}

Status
FragmentManager::attach(const std::string &container_id,
                        std::shared_ptr<Fragment> fragment)
{
    if (!fragment)
        return Status::invalidArgument("null fragment");
    if (fragment->isAttached())
        return Status::failedPrecondition("fragment '" + fragment->tag() +
                                          "' already attached");
    if (findByTag(fragment->tag()))
        return Status::alreadyExists("tag '" + fragment->tag() + "' in use");

    View *container_view = activity_.findViewById(container_id);
    auto *container = dynamic_cast<ViewGroup *>(container_view);
    if (!container)
        return Status::notFound("no container view group '" + container_id +
                                "'");

    std::unique_ptr<View> view = fragment->onCreateView();
    if (!view)
        return Status::internal("onCreateView returned null for '" +
                                fragment->tag() + "'");
    fragment->view_ = &container->addChild(std::move(view));
    fragment->container_id_ = container_id;
    // Keep the tree host-consistent (new views must report invalidations
    // to the activity, or lazy migration would miss them).
    fragment->view_->visit(
        [this](View &v) { v.attachToHost(&activity_); });
    // Match the activity's current RCHDroid flags.
    if (activity_.isShadow()) {
        fragment->view_->visit([](View &v) { v.setShadow(true); });
    } else if (activity_.isSunny()) {
        fragment->view_->visit([](View &v) { v.setSunny(true); });
    }

    // Replay saved state captured before a restart / shadow snapshot.
    if (pending_restored_.contains(fragment->tag())) {
        const Bundle state = pending_restored_.getBundle(fragment->tag());
        fragment->view_->restoreHierarchyState(state.getBundle("views"),
                                               "f");
        fragment->onRestoreState(state.getBundle("own"));
        pending_restored_.remove(fragment->tag());
    }

    fragments_.push_back(Entry{container_id, std::move(fragment)});
    return Status::ok();
}

Status
FragmentManager::detach(const std::string &tag)
{
    auto it = std::find_if(fragments_.begin(), fragments_.end(),
                           [&tag](const Entry &entry) {
                               return entry.fragment->tag() == tag;
                           });
    if (it == fragments_.end())
        return Status::notFound("no attached fragment '" + tag + "'");

    Fragment &fragment = *it->fragment;
    auto *container = dynamic_cast<ViewGroup *>(
        activity_.findViewById(it->container_id));
    if (container) {
        for (std::size_t i = 0; i < container->childCount(); ++i) {
            if (&container->childAt(i) == fragment.view_) {
                container->removeChildAt(i);
                break;
            }
        }
    }
    fragment.view_ = nullptr;
    fragment.container_id_.clear();
    fragments_.erase(it);
    return Status::ok();
}

std::shared_ptr<Fragment>
FragmentManager::findByTag(const std::string &tag)
{
    for (const auto &entry : fragments_) {
        if (entry.fragment->tag() == tag)
            return entry.fragment;
    }
    return nullptr;
}

void
FragmentManager::saveAllState(Bundle &container) const
{
    for (const auto &entry : fragments_) {
        Bundle state;
        Bundle views;
        if (entry.fragment->view_) {
            // Fragment views are saved in full: this rides on the same
            // explicit-snapshot machinery as the activity tree.
            entry.fragment->view_->saveHierarchyState(views, /*full=*/true,
                                                      "f");
        }
        state.putBundle("views", std::move(views));
        Bundle own;
        entry.fragment->onSaveState(own);
        state.putBundle("own", std::move(own));
        state.putString("container", entry.container_id);
        container.putBundle(entry.fragment->tag(), std::move(state));
    }
}

void
FragmentManager::setPendingRestoredState(Bundle state)
{
    pending_restored_ = std::move(state);
}

} // namespace rchdroid
