/**
 * @file
 * Intent: an activity start request, mirroring android.content.Intent.
 *
 * Carries the RCHDroid addition from Table 2: the FLAG_SUNNY bit (4 LoC
 * in the paper's patch) that tells the ActivityStarter this start is the
 * sunny half of a runtime-change handling, so a second instance of the
 * top activity is permitted and the coin-flip search should run.
 */
#ifndef RCHDROID_APP_INTENT_H
#define RCHDROID_APP_INTENT_H

#include <cstdint>
#include <string>

namespace rchdroid {

/** Intent launch flags (subset used by the launch paths modelled here). */
enum IntentFlags : std::uint32_t {
    kFlagNone = 0,
    /** Start in a new task. */
    kFlagNewTask = 1u << 0,
    /** Reuse the top activity if it matches. */
    kFlagSingleTop = 1u << 1,
    /**
     * RCHDroid: this start creates/flips the sunny-state instance of a
     * runtime change; bypass the same-activity-on-top suppression.
     */
    kFlagSunny = 1u << 2,
};

/**
 * An activity start request.
 */
struct Intent
{
    /** Target component, e.g. "com.example.photos/.GalleryActivity". */
    std::string component;
    /** Requesting process (used for task affinity). */
    std::string source_process;
    std::uint32_t flags = kFlagNone;

    bool hasFlag(IntentFlags flag) const { return (flags & flag) != 0; }

    Intent
    withFlag(IntentFlags flag) const
    {
        Intent out = *this;
        out.flags |= flag;
        return out;
    }
};

} // namespace rchdroid

#endif // RCHDROID_APP_INTENT_H
