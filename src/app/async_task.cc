#include "app/async_task.h"

#include <utility>

#include "app/activity.h"
#include "app/activity_thread.h"
#include "os/looper.h"
#include "platform/logging.h"
#include "platform/tracing.h"

namespace rchdroid {

AsyncTask::AsyncTask(ActivityThread &thread, std::shared_ptr<Activity> owner,
                     std::string name)
    : thread_(thread), owner_(std::move(owner)), name_(std::move(name))
{
}

void
AsyncTask::execute(SimDuration background_duration,
                   std::function<void()> on_post_execute, SimDuration ui_cost)
{
    RCH_ASSERT(state_ == TaskState::Pending, "execute() called twice on ",
               name_);
    RCH_ASSERT(background_duration >= 0, "negative background duration");
    state_ = TaskState::Running;
    auto self = shared_from_this();
    thread_.noteAsyncStarted(self);
    // One tracer flow id follows the whole task: flow-start here at the
    // execute site, a step at the worker dispatch (causal_continues), a
    // step at the result post, and the flow-end at onPostExecute.
    std::uint64_t causal_id = 0;
#if RCHDROID_TRACING
    if (trace::Tracer *tracer = trace::Tracer::current()) {
        if (Looper *producer = Looper::current();
            producer != nullptr && producer->isDispatching()) {
            causal_id = tracer->newFlowId();
            tracer->flowAt(trace::Phase::kFlowStart, tracer->currentLane(),
                           tracer->now(), causal_id, name_,
                           /*bind_enclosing=*/false);
        }
    }
#endif
    Message work;
    work.callback =
        [self, on_post = std::move(on_post_execute), ui_cost, causal_id] {
            // The background work occupies the worker thread until the
            // cost window closes; the result message is delivered to the
            // UI thread at that moment, like AsyncTask's internal
            // handler message.
            const SimTime done = self->thread_.workerLooper().currentCostEnd();
            self->thread_.postAppCallbackAt(
                done,
                [self, on_post] {
                    if (self->state_ == TaskState::Cancelled) {
                        self->thread_.noteAsyncFinished(self);
                        return;
                    }
                    self->state_ = TaskState::Finished;
                    // onPostExecute runs app logic; if the owning
                    // activity was restarted underneath it, the view
                    // accesses inside throw and the crash guard in
                    // postAppCallbackAt ends the process.
                    on_post();
                    self->thread_.noteAsyncFinished(self);
                },
                ui_cost, self->name_ + ".onPostExecute", causal_id);
        };
    work.when = thread_.workerLooper().now();
    work.cost = background_duration;
    work.tag = name_ + ".doInBackground";
    work.causal_id = causal_id;
    work.causal_continues = true;
    thread_.workerLooper().enqueue(std::move(work));
}

void
AsyncTask::cancel()
{
    if (state_ == TaskState::Pending || state_ == TaskState::Running)
        state_ = TaskState::Cancelled;
}

} // namespace rchdroid
