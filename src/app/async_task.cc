#include "app/async_task.h"

#include <utility>

#include "app/activity.h"
#include "app/activity_thread.h"
#include "platform/logging.h"

namespace rchdroid {

AsyncTask::AsyncTask(ActivityThread &thread, std::shared_ptr<Activity> owner,
                     std::string name)
    : thread_(thread), owner_(std::move(owner)), name_(std::move(name))
{
}

void
AsyncTask::execute(SimDuration background_duration,
                   std::function<void()> on_post_execute, SimDuration ui_cost)
{
    RCH_ASSERT(state_ == TaskState::Pending, "execute() called twice on ",
               name_);
    RCH_ASSERT(background_duration >= 0, "negative background duration");
    state_ = TaskState::Running;
    auto self = shared_from_this();
    thread_.noteAsyncStarted(self);
    thread_.workerLooper().post(
        [self, on_post = std::move(on_post_execute), ui_cost] {
            // The background work occupies the worker thread until the
            // cost window closes; the result message is delivered to the
            // UI thread at that moment, like AsyncTask's internal
            // handler message.
            const SimTime done = self->thread_.workerLooper().currentCostEnd();
            self->thread_.postAppCallbackAt(
                done,
                [self, on_post] {
                    if (self->state_ == TaskState::Cancelled) {
                        self->thread_.noteAsyncFinished(self);
                        return;
                    }
                    self->state_ = TaskState::Finished;
                    // onPostExecute runs app logic; if the owning
                    // activity was restarted underneath it, the view
                    // accesses inside throw and the crash guard in
                    // postAppCallbackAt ends the process.
                    on_post();
                    self->thread_.noteAsyncFinished(self);
                },
                ui_cost, self->name_ + ".onPostExecute");
        },
        0, background_duration, name_ + ".doInBackground");
}

void
AsyncTask::cancel()
{
    if (state_ == TaskState::Pending || state_ == TaskState::Running)
        state_ = TaskState::Cancelled;
}

} // namespace rchdroid
