/**
 * @file
 * AsyncTask: background work with a UI-thread completion callback,
 * mirroring android.os.AsyncTask.
 *
 * This is the protagonist of the paper's crash scenario (§1, Fig. 1): an
 * app fires an AsyncTask, a runtime change restarts the activity while
 * the task runs, and onPostExecute then touches released views. The
 * task holds a strong reference to its owning activity — exactly the
 * Java reference that keeps a destroyed activity (and its whole view
 * tree) in memory until the task completes.
 */
#ifndef RCHDROID_APP_ASYNC_TASK_H
#define RCHDROID_APP_ASYNC_TASK_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "platform/time.h"

namespace rchdroid {

class Activity;
class ActivityThread;

/**
 * One background task instance. Create via std::make_shared; the thread
 * keeps it alive while in flight.
 */
class AsyncTask : public std::enable_shared_from_this<AsyncTask>
{
  public:
    /** Execution status. */
    enum class TaskState : std::uint8_t {
        Pending,
        Running,
        Finished,
        Cancelled,
    };

    /**
     * @param thread Hosting process.
     * @param owner The activity this task updates; held strongly.
     * @param name Trace label.
     */
    AsyncTask(ActivityThread &thread, std::shared_ptr<Activity> owner,
              std::string name);

    /**
     * Start the task: occupy a worker thread for `background_duration`,
     * then run `on_post_execute` on the UI thread (crash-guarded).
     * @param ui_cost Virtual CPU the completion callback charges.
     */
    void execute(SimDuration background_duration,
                 std::function<void()> on_post_execute,
                 SimDuration ui_cost = 0);

    /**
     * Request cancellation: a cancelled task's onPostExecute is skipped
     * (the mitigation well-written apps apply in onPause/onDestroy).
     */
    void cancel();

    TaskState state() const { return state_; }
    bool isCancelled() const { return state_ == TaskState::Cancelled; }
    const std::string &name() const { return name_; }
    const std::shared_ptr<Activity> &owner() const { return owner_; }

  private:
    ActivityThread &thread_;
    std::shared_ptr<Activity> owner_;
    std::string name_;
    TaskState state_ = TaskState::Pending;
};

} // namespace rchdroid

#endif // RCHDROID_APP_ASYNC_TASK_H
