/**
 * @file
 * ActivityThread: the app process's main-thread dispatcher, mirroring
 * android.app.ActivityThread.
 *
 * Owns the UI looper, the async worker looper, the app's resources and
 * inflater, the live activity instances, and the crash guard that turns
 * an uncaught UiException into a simulated process death. The runtime-
 * change behaviour is pluggable (ClientRuntimeChangeHandler) — the
 * paper's Table 2 modifications to this class are implemented by
 * rch::RchClientHandler hooking these methods.
 */
#ifndef RCHDROID_APP_ACTIVITY_THREAD_H
#define RCHDROID_APP_ACTIVITY_THREAD_H

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/activity.h"
#include "app/async_task.h"
#include "app/binder_interfaces.h"
#include "app/framework_costs.h"
#include "app/runtime_change_handler.h"
#include "os/looper.h"
#include "os/scheduler.h"
#include "platform/telemetry.h"
#include "view/ui_exceptions.h"

namespace rchdroid {

/** Factory producing a fresh instance of an app's activity subclass. */
using ActivityFactory = std::function<std::unique_ptr<Activity>()>;

/** Static parameters of a simulated app process. */
struct ProcessParams
{
    /** Process name, e.g. "com.example.photos". */
    std::string process_name;
    /**
     * Baseline heap of the process outside activity objects (code, art
     * heap, caches). Dominates the Fig. 8 / Fig. 14b absolute numbers.
     */
    std::size_t base_heap_bytes = 0;
};

/** Details of a simulated process crash. */
struct CrashInfo
{
    UiFailureKind kind = UiFailureKind::NullPointer;
    std::string reason;
    SimTime time = 0;
};

/**
 * The client side of the activity runtime.
 */
class ActivityThread final : public ActivityClient
{
  public:
    /**
     * @param scheduler Shared discrete-event core.
     * @param params Process identity and memory baseline.
     * @param resources The app's declared resources.
     * @param resource_costs Load-cost model (from sim::DeviceModel).
     * @param costs Framework cost constants (from sim::DeviceModel).
     * @param telemetry Event sink; null for the drop-everything sink.
     */
    ActivityThread(SimScheduler &scheduler, ProcessParams params,
                   std::shared_ptr<const ResourceTable> resources,
                   const ResourceCostModel &resource_costs,
                   const FrameworkCosts &costs,
                   TelemetrySink *telemetry = nullptr);

    ActivityThread(const ActivityThread &) = delete;
    ActivityThread &operator=(const ActivityThread &) = delete;

    /** @name Wiring
     * @{
     */
    void setActivityManager(ActivityManager *am) { am_ = am; }
    ActivityManager *activityManager() { return am_; }
    void setClientHandler(ClientRuntimeChangeHandler *handler)
    { handler_ = handler; }
    ClientRuntimeChangeHandler *clientHandler() { return handler_; }
    void registerActivityFactory(const std::string &component,
                                 ActivityFactory factory);
    /** @} */

    /** @name Introspection
     * @{
     */
    const std::string &processName() const { return params_.process_name; }
    Looper &uiLooper() { return ui_looper_; }
    Looper &workerLooper() { return worker_looper_; }
    SimScheduler &scheduler() { return scheduler_; }
    ResourceManager &resources() { return resources_; }
    LayoutInflater &inflater() { return inflater_; }
    const FrameworkCosts &costs() const { return costs_; }
    TelemetrySink &telemetry() { return *telemetry_; }
    /** @} */

    /** @name Activity registry
     * @{
     */
    std::shared_ptr<Activity> activityForToken(ActivityToken token);
    /** The activity currently Resumed or Sunny, if any. */
    std::shared_ptr<Activity> foregroundActivity();
    /** The activity currently in the Shadow state, if any. */
    std::shared_ptr<Activity> shadowActivity();
    std::size_t liveActivityCount() const { return activities_.size(); }
    /** Live instances keyed by token (model-checker fingerprints). */
    const std::map<ActivityToken, std::shared_ptr<Activity>> &
    activities() const
    {
        return activities_;
    }
    /** Remove `token` from the registry without lifecycle side effects
     *  (used by handlers that already drove the lifecycle). */
    void dropActivity(ActivityToken token);
    /** @} */

    /** @name ActivityClient (transactions from the ATMS)
     * @{
     */
    void scheduleLaunchActivity(const LaunchArgs &args) override;
    void scheduleRelaunchActivity(ActivityToken token,
                                  const Configuration &config) override;
    void scheduleConfigurationChanged(ActivityToken token,
                                      const Configuration &config) override;
    void scheduleDestroyActivity(ActivityToken token) override;
    void scheduleStopActivity(ActivityToken token) override;
    void scheduleResumeActivity(ActivityToken token) override;
    /** @} */

    /** @name Launch machinery (used by handlers)
     * All run inside the current UI dispatch, accumulating cost.
     * @{
     */
    /**
     * Create, initialise and resume a fresh instance.
     * @param args Launch parameters (token, component, config).
     * @param saved Saved instance state to restore, or null.
     * @param as_sunny Resume into the Sunny state.
     * @return The new instance.
     */
    std::shared_ptr<Activity> performLaunchActivity(const LaunchArgs &args,
                                                    const Bundle *saved,
                                                    bool as_sunny);
    /** Report activityResumed to the ATMS once current costs settle. */
    void notifyResumedAtCostEnd(ActivityToken token);
    /** @} */

    /** @name App-code execution
     * @{
     */
    /**
     * Run app code under the crash guard: an escaping UiException kills
     * the process (Fig. 9's Android-10 trace).
     */
    void runAppCode(const std::function<void()> &fn);
    /** Post crash-guarded app code to the UI looper. */
    void postAppCallback(std::function<void()> fn, SimDuration cost = 0,
                         std::string tag = {});
    /**
     * Same, delivered no earlier than the absolute time `when`. A
     * non-zero `causal_id` threads an existing tracer flow through the
     * message (AsyncTask's result hop reuses its execute-site flow id);
     * the producer-side flow step is emitted by Looper::enqueue.
     */
    void postAppCallbackAt(SimTime when, std::function<void()> fn,
                           SimDuration cost = 0, std::string tag = {},
                           std::uint64_t causal_id = 0);
    /** @} */

    /** @name Async-task bookkeeping
     * @{
     */
    void noteAsyncStarted(const std::shared_ptr<AsyncTask> &task);
    void noteAsyncFinished(const std::shared_ptr<AsyncTask> &task);
    std::size_t inFlightAsyncTasks() const { return in_flight_.size(); }
    /** The in-flight tasks themselves (model-checker oracles). */
    const std::vector<std::shared_ptr<AsyncTask>> &inFlightAsyncList() const
    {
        return in_flight_;
    }
    /** @} */

    /** @name Process health and accounting
     * @{
     */
    bool crashed() const { return crash_.has_value(); }
    const std::optional<CrashInfo> &crashInfo() const { return crash_; }
    /**
     * Total simulated heap: base + live activities + activities kept
     * alive only by in-flight async references (the classic leak).
     * Zero after a crash (process gone).
     */
    std::size_t totalHeapBytes() const;
    /** @} */

  private:
    void emitEvent(TelemetryKind kind, const std::string &detail,
                   double value = 0.0);
    void handleCrash(const UiException &e);
    std::shared_ptr<Activity> createInstance(const std::string &component,
                                             ActivityToken token);

    SimScheduler &scheduler_;
    ProcessParams params_;
    ResourceManager resources_;
    LayoutInflater inflater_;
    FrameworkCosts costs_;
    TelemetrySink *telemetry_;
    Looper ui_looper_;
    Looper worker_looper_;
    ActivityManager *am_ = nullptr;
    ClientRuntimeChangeHandler *handler_ = nullptr;
    std::map<std::string, ActivityFactory> factories_;
    std::map<ActivityToken, std::shared_ptr<Activity>> activities_;
    /** Destroyed activities still referenced by in-flight tasks. */
    std::vector<std::shared_ptr<Activity>> leaked_;
    std::vector<std::shared_ptr<AsyncTask>> in_flight_;
    std::optional<CrashInfo> crash_;
};

} // namespace rchdroid

#endif // RCHDROID_APP_ACTIVITY_THREAD_H
