/**
 * @file
 * Dialog: a window attached to an activity's token, mirroring
 * android.app.Dialog.
 *
 * This models the paper's *other* crash signature (§2.3: "NullPointer
 * and WindowLeaked exceptions"): an AsyncTask that shows a progress or
 * result dialog after the restart finds its activity's window token
 * dead — android.view.WindowManager$BadTokenException / WindowLeaked.
 * Under RCHDroid the owning instance is alive in the shadow state, so
 * the show succeeds.
 */
#ifndef RCHDROID_APP_DIALOG_H
#define RCHDROID_APP_DIALOG_H

#include <memory>
#include <string>

#include "view/view_group.h"

namespace rchdroid {

class Activity;

/**
 * A modal surface owned by app code, attached to one activity.
 */
class Dialog
{
  public:
    /**
     * @param owner The activity whose window token the dialog uses; the
     *        dialog must not outlive it (it holds a plain reference,
     *        like the Java object graph would).
     * @param title Trace label.
     */
    Dialog(Activity &owner, std::string title);
    ~Dialog();

    Dialog(const Dialog &) = delete;
    Dialog &operator=(const Dialog &) = delete;

    const std::string &title() const { return title_; }
    bool isShowing() const { return showing_; }
    Activity &owner() { return owner_; }

    /** Install the dialog's content view (optional). */
    View &setContent(std::unique_ptr<View> content);
    View *content() { return content_root_ ? content_root_.get() : nullptr; }

    /**
     * Show the dialog. Throws UiException(WindowLeaked) when the owning
     * activity has been destroyed — the post-restart crash.
     */
    void show();

    /** Dismiss; safe to call when not showing. */
    void dismiss();

  private:
    friend class Activity;

    /** The owning activity is going away; called from performDestroy. */
    void onOwnerDestroyed();

    Activity &owner_;
    std::string title_;
    std::unique_ptr<View> content_root_;
    bool showing_ = false;
};

} // namespace rchdroid

#endif // RCHDROID_APP_DIALOG_H
