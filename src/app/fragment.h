/**
 * @file
 * Fragment and FragmentManager: dynamically attached UI modules,
 * mirroring androidx.fragment.app.Fragment.
 *
 * Fragments are the paper's §2.2 argument against app-level static
 * patching: "the views are distributed and assigned in different
 * fragments. The fragments can be dynamically attached to the main
 * activity, which causes dynamic changes to the view tree." RCHDroid
 * needs no special handling — fragment views are ordinary views in the
 * tree, so the id-keyed snapshot, essence mapping and lazy migration
 * cover them; this subsystem exists to prove exactly that in tests and
 * examples.
 */
#ifndef RCHDROID_APP_FRAGMENT_H
#define RCHDROID_APP_FRAGMENT_H

#include <memory>
#include <string>
#include <vector>

#include "os/bundle.h"
#include "platform/status.h"
#include "view/view_group.h"

namespace rchdroid {

class Activity;
class FragmentManager;

/**
 * One dynamically attachable UI module. Subclass and implement
 * onCreateView; the manager owns attachment.
 */
class Fragment
{
  public:
    /** @param tag Unique tag within the activity, like the AOSP tag. */
    explicit Fragment(std::string tag);
    virtual ~Fragment() = default;

    Fragment(const Fragment &) = delete;
    Fragment &operator=(const Fragment &) = delete;

    const std::string &tag() const { return tag_; }

    /** Root view while attached; null otherwise. */
    View *view() { return view_; }
    const View *view() const { return view_; }
    bool isAttached() const { return view_ != nullptr; }

    /** Id of the container this fragment sits in ("" when detached). */
    const std::string &containerId() const { return container_id_; }

  protected:
    /** Build this fragment's view tree (called at attach). */
    virtual std::unique_ptr<View> onCreateView() = 0;

    /** Persist fragment-private state (beyond its views). */
    virtual void onSaveState(Bundle &out_state) { (void)out_state; }
    virtual void onRestoreState(const Bundle &saved) { (void)saved; }

  private:
    friend class FragmentManager;

    std::string tag_;
    View *view_ = nullptr;
    std::string container_id_;
};

/**
 * Per-activity fragment registry, owned by Activity.
 */
class FragmentManager
{
  public:
    explicit FragmentManager(Activity &activity);

    FragmentManager(const FragmentManager &) = delete;
    FragmentManager &operator=(const FragmentManager &) = delete;

    /**
     * Attach a fragment's view tree under the container view with
     * `container_id`. Restores the fragment's saved state when the
     * activity was initialised from a snapshot containing its tag.
     */
    Status attach(const std::string &container_id,
                  std::shared_ptr<Fragment> fragment);

    /** Detach (and discard the view of) the fragment with `tag`. */
    Status detach(const std::string &tag);

    std::shared_ptr<Fragment> findByTag(const std::string &tag);
    std::size_t attachedCount() const { return fragments_.size(); }

    /** @name Framework plumbing (Activity snapshot integration)
     * @{
     */
    /** Save every attached fragment's private state, keyed by tag. */
    void saveAllState(Bundle &container) const;
    /** Stash restored state; consumed by later attach() calls. */
    void setPendingRestoredState(Bundle state);
    /** @} */

  private:
    struct Entry
    {
        std::string container_id;
        std::shared_ptr<Fragment> fragment;
    };

    Activity &activity_;
    std::vector<Entry> fragments_;
    Bundle pending_restored_;
};

} // namespace rchdroid

#endif // RCHDROID_APP_FRAGMENT_H
