/**
 * @file
 * Activity: one user-facing screen instance, mirroring
 * android.app.Activity with the RCHDroid additions of Table 2: the
 * Shadow/Sunny states with accessors, getAllSunnyViews (the essence-
 * mapping hash table), and setSunnyViews (peer-pointer wiring).
 *
 * App code subclasses Activity and overrides the lifecycle callbacks;
 * the framework drives instances exclusively through the perform*
 * methods, as AOSP's ActivityThread does via Instrumentation.
 */
#ifndef RCHDROID_APP_ACTIVITY_H
#define RCHDROID_APP_ACTIVITY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "app/dialog.h"
#include "app/fragment.h"
#include "app/framework_costs.h"
#include "app/lifecycle.h"
#include "app/window.h"
#include "os/bundle.h"
#include "os/looper.h"
#include "platform/telemetry.h"
#include "resources/configuration.h"
#include "resources/resource_manager.h"
#include "view/layout_inflater.h"

namespace rchdroid {

class Activity;
class ActivityThread;

namespace detail {
/** Bridge used by Activity::startActivity (defined with ActivityThread). */
void sendStartActivity(ActivityThread &thread, const std::string &component);
} // namespace detail

/**
 * Observer of invalidations on an activity's tree; RCHDroid's lazy
 * migrator implements this to catch the "final update step" of async
 * callbacks landing on a shadow-state activity (paper §3.3).
 */
class InvalidationListener
{
  public:
    virtual ~InvalidationListener() = default;

    virtual void onViewInvalidated(Activity &activity, View &view) = 0;
};

/**
 * Everything an activity needs from its hosting process. Supplied by
 * ActivityThread; built directly in unit tests.
 */
struct ActivityContext
{
    /** UI looper; costs are charged here when it is dispatching. */
    Looper *ui_looper = nullptr;
    ResourceManager *resources = nullptr;
    LayoutInflater *inflater = nullptr;
    FrameworkCosts costs;
    TelemetrySink *telemetry = nullptr;
    /** Hosting process; app code uses it to spawn AsyncTasks. */
    ActivityThread *thread = nullptr;
};

/**
 * Base class of all simulated app screens.
 */
class Activity : public ViewTreeHost
{
  public:
    /**
     * @param component Component name, e.g. "com.example/.Main".
     */
    explicit Activity(std::string component);
    ~Activity() override;

    /** @name Identity
     * @{
     */
    const std::string &component() const { return component_; }
    /** Process-unique instance number (new per construction). */
    std::uint64_t instanceId() const { return instance_id_; }
    std::uint64_t token() const { return token_; }
    void setToken(std::uint64_t token) { token_ = token; }
    /** @} */

    /** @name Wiring (framework-only)
     * @{
     */
    void attachContext(ActivityContext context);
    const ActivityContext &context() const { return context_; }
    void setInvalidationListener(InvalidationListener *listener)
    { invalidation_listener_ = listener; }
    InvalidationListener *invalidationListener()
    { return invalidation_listener_; }
    /** @} */

    /** @name State inspection
     * @{
     */
    LifecycleState lifecycleState() const { return state_; }
    const Configuration &configuration() const { return config_; }
    Window &window() { return window_; }
    const Window &window() const { return window_; }
    bool isDestroyed() const
    { return state_ == LifecycleState::Destroyed; }
    /** @} */

    /** @name RCHDroid state (Table 2: Activity modifications)
     * @{
     */
    bool isShadow() const { return state_ == LifecycleState::Shadow; }
    bool isSunny() const { return state_ == LifecycleState::Sunny; }
    /**
     * Enter the shadow state: snapshot instance state, flag the tree,
     * transition Resumed/Sunny → Shadow. Returns the snapshot.
     */
    Bundle enterShadowState();
    /** Leave shadow for the foreground (coin-flip target). */
    void enterSunnyStateFromShadow();
    /** Downgrade Sunny → Resumed (shadow partner collected). */
    void degradeSunnyToResumed();
    /**
     * Build the essence-mapping hash table of this (sunny) activity:
     * view id → view, for every id-bearing view (paper §3.3, Fig. 5).
     */
    std::unordered_map<std::string, View *> getAllSunnyViews();
    /**
     * Wire this (shadow) activity's views to their sunny peers through
     * the hash table built by getAllSunnyViews. Views whose id misses
     * the table keep a null peer (dynamically added views; they simply
     * do not migrate, like RuntimeDroid's unhandled cases — but unlike
     * RuntimeDroid this never crashes).
     * @return Number of views wired.
     */
    int setSunnyViews(const std::unordered_map<std::string, View *> &sunny);
    /** @} */

    /** @name Lifecycle driving (framework-only perform* methods)
     * Each charges its calibrated cost to the dispatching UI looper.
     * @{
     */
    void performCreate(const Configuration &config, const Bundle *saved);
    void performStart();
    void performRestoreInstanceState(const Bundle &saved);
    /** @param as_sunny Resume into the Sunny state (RCHDroid launch). */
    void performResume(bool as_sunny = false);
    void performPause();
    void performStop();
    void performDestroy();
    /** Deliver a configuration change without recreation. */
    void performConfigurationChanged(const Configuration &config);
    /** @} */

    /**
     * Snapshot instance state: the framework saves the view hierarchy
     * under "views" and the app's onSaveInstanceState output under
     * "app" — mirroring Activity.onSaveInstanceState's default
     * behaviour plus the user hook.
     *
     * @param full Stock Android saves the default (partial) per-widget
     *        state; RCHDroid's explicit snapshot (paper §3.3) saves the
     *        complete state of every view.
     */
    Bundle saveInstanceStateNow(bool full);

    /** @name App-facing helpers (called from lifecycle callbacks)
     * @{
     */
    /** Inflate a layout resource and install it as content. */
    View &setContentView(ResourceId layout_id);
    /** Install an already-built tree as content (dynamic UIs). */
    View &setContentView(std::unique_ptr<View> content);
    /** Find a view by id in the window; null when absent. */
    View *findViewById(const std::string &id);
    /** The activity's fragment registry (created on first use). */
    FragmentManager &fragmentManager();
    /**
     * Navigate to another activity of this app (Context.startActivity):
     * sends the start intent to the ATMS through the hosting process.
     */
    void startActivity(const std::string &component);
    /** Dialogs currently showing on this activity's window token. */
    int showingDialogCount() const;
    /** Dialog wiring (called by Dialog's ctor/dtor). */
    void registerDialog(Dialog *dialog);
    void unregisterDialog(Dialog *dialog);
    /** Typed findViewById; null when absent or wrong type. */
    template <typename T>
    T *
    findViewByIdAs(const std::string &id)
    {
        return dynamic_cast<T *>(findViewById(id));
    }
    ResourceManager &resources();
    /** @} */

    /** Time this instance last entered the shadow state. */
    SimTime shadowEnteredAt() const { return shadow_entered_at_; }

    /** Snapshot captured on the last enterShadowState(). */
    bool hasShadowSnapshot() const { return has_shadow_snapshot_; }
    const Bundle &shadowSnapshot() const { return shadow_snapshot_; }

    /** Approximate heap footprint: object + window tree + snapshots. */
    std::size_t memoryFootprintBytes() const;

    /** Total decoded drawable bytes in the window (redraw-cost input). */
    std::size_t drawableBytesInTree() const;

    /**
     * Extra per-instance heap beyond the view tree (app caches, in-flight
     * bitmaps); set from the AppSpec by the simulated app. A retained
     * shadow instance keeps this resident — the bulk of RCHDroid's
     * memory overhead in Fig. 8 / Fig. 14b.
     */
    std::size_t privateHeapBytes() const { return private_heap_bytes_; }
    void setPrivateHeapBytes(std::size_t bytes)
    { private_heap_bytes_ = bytes; }

    /** @name ViewTreeHost
     * @{
     */
    void onViewInvalidated(View &view) override;
    bool isShadowTree() const override { return isShadow(); }
    std::string hostName() const override { return component_; }
    Looper *uiLooper() const override { return context_.ui_looper; }
    /** @} */

  protected:
    /** @name App-overridable lifecycle callbacks
     * @{
     */
    virtual void onCreate(const Bundle *saved_state) { (void)saved_state; }
    virtual void onStart() {}
    virtual void onResume() {}
    virtual void onPause() {}
    virtual void onStop() {}
    virtual void onDestroy() {}
    /** Save app-private state (beyond view hierarchy) into out_state. */
    virtual void onSaveInstanceState(Bundle &out_state) { (void)out_state; }
    virtual void onRestoreInstanceState(const Bundle &saved)
    { (void)saved; }
    virtual void onConfigurationChanged(const Configuration &config)
    { (void)config; }
    /** @} */

    /** Charge virtual CPU to the UI looper when inside a dispatch. */
    void chargeCpu(SimDuration cost);

    /** Emit a telemetry event tagged with this component. */
    void emitEvent(TelemetryKind kind, double value = 0.0);

  private:
    void transitionTo(LifecycleState next);

    /**
     * Atomic because activities are constructed concurrently on parallel
     * experiment worker threads. The id only labels diagnostics (lifecycle
     * checker, panics), so cross-thread assignment order does not matter.
     */
    static std::atomic<std::uint64_t> next_instance_id_;

    std::string component_;
    std::uint64_t instance_id_;
    std::uint64_t token_ = 0;
    ActivityContext context_;
    Configuration config_;
    Window window_;
    LifecycleState state_ = LifecycleState::Initial;
    InvalidationListener *invalidation_listener_ = nullptr;
    SimTime shadow_entered_at_ = 0;
    /** Snapshot held while in the shadow state (memory-accounted). */
    Bundle shadow_snapshot_;
    bool has_shadow_snapshot_ = false;
    std::size_t private_heap_bytes_ = 0;
    std::unique_ptr<FragmentManager> fragment_manager_;
    std::vector<Dialog *> dialogs_;
};

} // namespace rchdroid

#endif // RCHDROID_APP_ACTIVITY_H
