#include "app/dialog.h"

#include <utility>

#include "app/activity.h"
#include "platform/logging.h"

namespace rchdroid {

Dialog::Dialog(Activity &owner, std::string title)
    : owner_(owner), title_(std::move(title))
{
    owner_.registerDialog(this);
}

Dialog::~Dialog()
{
    owner_.unregisterDialog(this);
}

View &
Dialog::setContent(std::unique_ptr<View> content)
{
    RCH_ASSERT(content != nullptr, "null dialog content");
    content_root_ = std::move(content);
    return *content_root_;
}

void
Dialog::show()
{
    if (owner_.isDestroyed()) {
        // android.view.WindowManager$BadTokenException: the activity's
        // window token died with the restart.
        throw UiException(UiFailureKind::WindowLeaked,
                          "show dialog '" + title_ +
                              "' on destroyed activity " +
                              owner_.component());
    }
    showing_ = true;
}

void
Dialog::dismiss()
{
    showing_ = false;
}

void
Dialog::onOwnerDestroyed()
{
    if (showing_) {
        // Android logs "Activity ... has leaked window" and force-closes
        // the window; the process survives, the dialog vanishes.
        RCH_LOGW("WindowManager", owner_.component(),
                 " has leaked window from dialog '", title_, "'");
        showing_ = false;
    }
}

} // namespace rchdroid
