#include "app/window.h"

#include <utility>

#include "platform/logging.h"

namespace rchdroid {

Window::Window() : decor_(std::make_unique<DecorView>())
{
}

View &
Window::setContent(std::unique_ptr<View> content)
{
    RCH_ASSERT(content != nullptr, "null content view");
    if (content_) {
        RCH_ASSERT(decor_->childCount() > 0, "content without decor child");
        decor_->removeChildAt(decor_->childCount() - 1);
        content_ = nullptr;
    }
    content_ = &decor_->addChild(std::move(content));
    return *content_;
}

void
Window::layout(int width_px, int height_px)
{
    decor_->layoutSubtree(0, 0, width_px, height_px);
}

std::size_t
Window::memoryFootprintBytes() const
{
    std::size_t total = 0;
    decor_->visitConst(
        [&total](const View &v) { total += v.memoryFootprintBytes(); });
    return total;
}

} // namespace rchdroid
