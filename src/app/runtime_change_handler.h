/**
 * @file
 * ClientRuntimeChangeHandler: the strategy interface through which the
 * ActivityThread delegates runtime-change handling.
 *
 * Two implementations exist:
 *  - baseline::RestartClientHandler — the stock Android 10 behaviour
 *    (relaunch the activity), and
 *  - rch::RchClientHandler — the paper's contribution (shadow/sunny
 *    states, lazy migration, GC).
 *
 * This mirrors how the prototype patches specific framework methods
 * (performActivityConfigurationChanged, performLaunchActivity,
 * handleResumeActivity — Table 2): the hook points are fixed, the
 * behaviour behind them is what RCHDroid replaces.
 */
#ifndef RCHDROID_APP_RUNTIME_CHANGE_HANDLER_H
#define RCHDROID_APP_RUNTIME_CHANGE_HANDLER_H

#include "app/binder_interfaces.h"
#include "resources/configuration.h"

namespace rchdroid {

class ActivityThread;

/**
 * Client-side runtime-change strategy.
 */
class ClientRuntimeChangeHandler
{
  public:
    virtual ~ClientRuntimeChangeHandler() = default;

    /**
     * The ATMS delivered a configuration change for `token` without a
     * relaunch (RCHDroid mode, or an app that handles changes itself
     * when no handler is installed).
     */
    virtual void onConfigurationChanged(ActivityThread &thread,
                                        ActivityToken token,
                                        const Configuration &config) = 0;

    /**
     * The ATMS scheduled a sunny-flagged launch (fresh record or a
     * coin-flip of an existing shadow record).
     */
    virtual void onSunnyLaunch(ActivityThread &thread,
                               const LaunchArgs &args) = 0;

    /**
     * The foreground activity is going away (destroy/switch); release
     * any shadow resources immediately (paper §3.5).
     */
    virtual void onForegroundGone(ActivityThread &thread,
                                  ActivityToken token) = 0;
};

} // namespace rchdroid

#endif // RCHDROID_APP_RUNTIME_CHANGE_HANDLER_H
