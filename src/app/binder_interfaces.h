/**
 * @file
 * The two binder-style interfaces between the app process and the
 * system_server, mirroring AOSP's IApplicationThread (server → client)
 * and IActivityTaskManager (client → server).
 *
 * The sim layer implements proxies that carry these calls over
 * IpcChannel with the modelled binder latency; unit tests may wire the
 * interfaces directly.
 */
#ifndef RCHDROID_APP_BINDER_INTERFACES_H
#define RCHDROID_APP_BINDER_INTERFACES_H

#include <cstdint>
#include <string>

#include "app/intent.h"
#include "resources/configuration.h"

namespace rchdroid {

/** Server-issued identifier of an ActivityRecord. */
using ActivityToken = std::uint64_t;

/** Sentinel for "no record". */
inline constexpr ActivityToken kInvalidToken = 0;

/** Arguments of a scheduleLaunchActivity transaction. */
struct LaunchArgs
{
    ActivityToken token = kInvalidToken;
    std::string component;
    Configuration config;
    /**
     * True when this launch is the sunny half of a runtime change
     * (intent carried kFlagSunny).
     */
    bool sunny = false;
    /**
     * True when the ATMS coin-flipped an existing shadow record instead
     * of creating a new one: the client must re-foreground its shadow
     * instance rather than construct a new activity.
     */
    bool flipped = false;
    /**
     * Token of the record that was moved to the shadow state by this
     * launch (the previous foreground), or kInvalidToken.
     */
    ActivityToken shadowed_token = kInvalidToken;
};

/**
 * What the system_server can ask the app process to do
 * (IApplicationThread).
 */
class ActivityClient
{
  public:
    virtual ~ActivityClient() = default;

    /** Create (or flip) and bring an activity to the foreground. */
    virtual void scheduleLaunchActivity(const LaunchArgs &args) = 0;

    /**
     * The stock restarting-based handling: destroy the instance and
     * recreate it under the new configuration, same record.
     */
    virtual void scheduleRelaunchActivity(ActivityToken token,
                                          const Configuration &config) = 0;

    /**
     * Deliver a configuration change without relaunch — either because
     * the app declared it handles changes itself, or because RCHDroid's
     * modified ensureActivityConfiguration suppressed the relaunch.
     */
    virtual void scheduleConfigurationChanged(ActivityToken token,
                                              const Configuration &config) = 0;

    /** Tear an activity down (back press, task removal, shadow GC). */
    virtual void scheduleDestroyActivity(ActivityToken token) = 0;

    /**
     * Move a foreground activity to the background (another task came
     * to the front): pause + stop. Under RCHDroid this also releases
     * the process's shadow instance immediately (§3.5: "If the
     * foreground activity instance is terminated or switched, the
     * corresponding shadow-state activity will be released
     * immediately").
     */
    virtual void scheduleStopActivity(ActivityToken token) = 0;

    /** Bring a stopped activity back to the foreground (task switch). */
    virtual void scheduleResumeActivity(ActivityToken token) = 0;
};

/**
 * What the app process can ask the system_server to do
 * (IActivityTaskManager).
 */
class ActivityManager
{
  public:
    virtual ~ActivityManager() = default;

    /** Request an activity start (normal or sunny-flagged). */
    virtual void startActivity(const Intent &intent) = 0;

    /** Lifecycle reports; the ATMS timestamps handling completion. */
    virtual void activityResumed(ActivityToken token) = 0;
    virtual void activityPaused(ActivityToken token) = 0;
    virtual void activityStopped(ActivityToken token) = 0;
    virtual void activityDestroyed(ActivityToken token) = 0;

    /**
     * RCHDroid GC: the client reclaimed its shadow instance; drop the
     * shadow record so later coin-flips do not find a dangling entry.
     */
    virtual void shadowActivityReclaimed(ActivityToken token) = 0;

    /** The app process died (uncaught exception). */
    virtual void processCrashed(const std::string &process,
                                const std::string &reason) = 0;
};

} // namespace rchdroid

#endif // RCHDROID_APP_BINDER_INTERFACES_H
