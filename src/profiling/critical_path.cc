#include "profiling/critical_path.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "platform/strings.h"
#include "platform/tracing.h"

namespace rchdroid::profiling {

namespace {

/** Backstop against malformed flow graphs (cycles via bad input). */
constexpr int kMaxHops = 100000;

/** One reconstructed B/E span with its nesting links. */
struct SpanNode
{
    std::uint32_t lane = 0;
    std::string name;
    SimTime begin = 0;
    SimTime end = 0;
    int parent = -1;
    /** Direct children, in chronological (emission) order. */
    std::vector<int> children;
    /** Event index of the incoming (bind_enclosing) flow edge, or -1. */
    int consumer_flow = -1;
};

/** One completed or aborted episode found in the stream. */
struct EpisodeRecord
{
    SimTime begin = 0;
    SimTime end = 0;
    /** Span enclosing the asyncEnd event (the closing dispatch). */
    int end_span = -1;
    bool aborted = false;
};

SegmentKind
classifySpanName(const std::string &name)
{
    if (name.find("gc") != std::string::npos ||
        name.find("Gc") != std::string::npos)
        return SegmentKind::kGc;
    if (name == "rch.flipSync" || name == "rch.buildMapping" ||
        name == "rch.shadowDemotion" ||
        name.find("migrat") != std::string::npos)
        return SegmentKind::kMigration;
    if (name == "rch.initLaunch" ||
        name.find("performLaunch") != std::string::npos ||
        name.find("LaunchActivity") != std::string::npos ||
        name.find("RelaunchActivity") != std::string::npos)
        return SegmentKind::kLaunch;
    return SegmentKind::kDispatch;
}

const std::string &
laneName(const std::vector<std::string> &lanes, std::uint32_t lane)
{
    static const std::string unknown = "?";
    return lane < lanes.size() ? lanes[lane] : unknown;
}

/**
 * Append the chronological segments covering [from, to] of span `idx`,
 * recursing into child spans so nested work (GC inside a launch, a
 * buildMapping inside initLaunch) is attributed at its deepest name.
 * The output exactly tiles [from, to].
 */
void
collectSpanSegments(const std::vector<SpanNode> &spans, int idx,
                    const std::vector<std::string> &lanes, SimTime from,
                    SimTime to, std::vector<Segment> &out)
{
    const SpanNode &s = spans[idx];
    const SegmentKind kind = classifySpanName(s.name);
    const std::string label = s.name + "@" + laneName(lanes, s.lane);
    SimTime pos = from;
    for (int child : s.children) {
        const SpanNode &c = spans[static_cast<std::size_t>(child)];
        const SimTime cb = std::max(c.begin, pos);
        const SimTime ce = std::min(c.end, to);
        if (ce <= pos)
            continue;
        if (cb >= to)
            break;
        if (cb > pos)
            out.push_back(Segment{kind, label, pos, cb});
        collectSpanSegments(spans, child, lanes, cb, ce, out);
        pos = ce;
        if (pos >= to)
            break;
    }
    if (pos < to)
        out.push_back(Segment{kind, label, pos, to});
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
pad(const std::string &text, std::size_t width)
{
    return text.size() >= width
               ? text
               : std::string(width - text.size(), ' ') + text;
}

} // namespace

const char *
segmentKindName(SegmentKind kind)
{
    switch (kind) {
      case SegmentKind::kDispatch: return "dispatch";
      case SegmentKind::kQueueWait: return "queue-wait";
      case SegmentKind::kGc: return "gc";
      case SegmentKind::kMigration: return "migration";
      case SegmentKind::kLaunch: return "launch";
      case SegmentKind::kIdle: return "idle";
    }
    return "unknown";
}

double
CriticalPath::segmentSumMs() const
{
    SimDuration sum = 0;
    for (const Segment &segment : segments)
        sum += segment.end - segment.begin;
    return toMillisF(sum);
}

const Segment *
CriticalPath::dominant() const
{
    const Segment *best = nullptr;
    for (const Segment &segment : segments) {
        if (!best || segment.end - segment.begin > best->end - best->begin)
            best = &segment;
    }
    return best;
}

ProfileInput
fromTracer(const trace::Tracer &tracer)
{
    ProfileInput input;
    input.lanes.reserve(tracer.lanes().size());
    for (const trace::Tracer::Lane &lane : tracer.lanes())
        input.lanes.push_back(lane.name);
    input.events.reserve(tracer.events().size());
    for (const trace::TraceEvent &event : tracer.events()) {
        ProfileEvent converted;
        converted.phase = static_cast<char>(event.phase);
        converted.lane = event.lane;
        converted.ts = event.ts;
        converted.id = event.async_id;
        converted.bind_enclosing = event.bind_enclosing;
        converted.name = event.name;
        converted.cat = event.cat ? event.cat : "";
        converted.arg = event.arg;
        input.events.push_back(std::move(converted));
    }
    return input;
}

std::vector<CriticalPath>
extractCriticalPaths(const ProfileInput &input)
{
    const std::vector<ProfileEvent> &events = input.events;

    // Pass 1: rebuild the span forest, per-event enclosing spans, flow
    // chains (per-id ordered event indices) and episode endpoints.
    std::vector<SpanNode> spans;
    std::vector<int> enclosing(events.size(), -1);
    std::map<std::uint64_t, std::vector<std::size_t>> flows;
    std::map<std::pair<std::string, std::uint64_t>, std::pair<SimTime, bool>>
        open_episodes;
    std::vector<EpisodeRecord> episodes;
    std::vector<std::vector<int>> stacks;
    SimTime last_ts = 0;

    auto stackFor = [&stacks](std::uint32_t lane) -> std::vector<int> & {
        if (lane >= stacks.size())
            stacks.resize(lane + 1);
        return stacks[lane];
    };

    for (std::size_t i = 0; i < events.size(); ++i) {
        const ProfileEvent &event = events[i];
        last_ts = std::max(last_ts, event.ts);
        std::vector<int> &stack = stackFor(event.lane);
        switch (event.phase) {
          case 'B': {
            SpanNode node;
            node.lane = event.lane;
            node.name = event.name;
            node.begin = event.ts;
            node.end = event.ts;
            node.parent = stack.empty() ? -1 : stack.back();
            const int idx = static_cast<int>(spans.size());
            if (node.parent >= 0)
                spans[static_cast<std::size_t>(node.parent)]
                    .children.push_back(idx);
            spans.push_back(std::move(node));
            stack.push_back(idx);
            enclosing[i] = idx;
            break;
          }
          case 'E': {
            if (!stack.empty()) {
                spans[static_cast<std::size_t>(stack.back())].end = event.ts;
                enclosing[i] = stack.back();
                stack.pop_back();
            }
            break;
          }
          case 's':
          case 't':
          case 'f': {
            const int span = stack.empty() ? -1 : stack.back();
            enclosing[i] = span;
            flows[event.id].push_back(i);
            if (event.bind_enclosing && span >= 0 &&
                spans[static_cast<std::size_t>(span)].consumer_flow < 0)
                spans[static_cast<std::size_t>(span)].consumer_flow =
                    static_cast<int>(i);
            break;
          }
          case 'b': {
            if (event.cat == "episode")
                open_episodes[{event.cat, event.id}] = {event.ts, true};
            break;
          }
          case 'e': {
            auto it = open_episodes.find({event.cat, event.id});
            if (it != open_episodes.end() && it->second.second) {
                EpisodeRecord record;
                record.begin = it->second.first;
                record.end = event.ts;
                record.end_span = stack.empty() ? -1 : stack.back();
                record.aborted = event.arg == "aborted";
                episodes.push_back(record);
                open_episodes.erase(it);
            }
            break;
          }
          default:
            enclosing[i] = stack.empty() ? -1 : stack.back();
            break;
        }
    }
    // Spans still open at the trace cut (e.g. the tracer read mid-run)
    // extend to the last timestamp so clipping stays well-defined.
    for (const std::vector<int> &stack : stacks) {
        for (int idx : stack)
            spans[static_cast<std::size_t>(idx)].end = last_ts;
    }

    // Pass 2: walk each completed episode's chain backwards from the
    // closing dispatch, alternating span segments and queue waits.
    std::vector<CriticalPath> paths;
    for (const EpisodeRecord &episode : episodes) {
        if (episode.aborted)
            continue;
        CriticalPath path;
        path.episode = paths.size();
        path.begin = episode.begin;
        path.end = episode.end;
        std::vector<Segment> reversed;
        int span = episode.end_span;
        SimTime cursor = path.end;
        int hops = 0;
        while (span >= 0 && cursor > path.begin && hops++ < kMaxHops) {
            const SpanNode &s = spans[static_cast<std::size_t>(span)];
            const SimTime seg_begin = std::max(s.begin, path.begin);
            if (seg_begin < cursor) {
                std::vector<Segment> chrono;
                collectSpanSegments(spans, span, input.lanes, seg_begin,
                                    cursor, chrono);
                reversed.insert(reversed.end(), chrono.rbegin(),
                                chrono.rend());
                cursor = seg_begin;
            }
            if (s.begin <= path.begin)
                break;
            if (s.consumer_flow < 0) {
                // No incoming edge on this span: a nested span (the
                // producer sat inside rch.initLaunch, say). The chain
                // continues through whatever caused the *parent*, whose
                // remaining time the next iteration attributes.
                span = s.parent;
                continue;
            }
            const ProfileEvent &edge =
                events[static_cast<std::size_t>(s.consumer_flow)];
            const std::vector<std::size_t> &chain = flows[edge.id];
            auto pos = std::lower_bound(
                chain.begin(), chain.end(),
                static_cast<std::size_t>(s.consumer_flow));
            if (pos == chain.begin())
                break;
            const std::size_t producer_index = *std::prev(pos);
            // Clamp the hand-off: the producer's cost-aware send ts can
            // sit *after* this dispatch's begin (see file comment).
            const SimTime handoff = std::max(
                path.begin, std::min(events[producer_index].ts, s.begin));
            if (handoff < cursor) {
                reversed.push_back(
                    Segment{SegmentKind::kQueueWait,
                            "queue-wait@" + laneName(input.lanes, s.lane),
                            handoff, cursor});
                cursor = handoff;
            }
            span = enclosing[producer_index];
        }
        if (cursor > path.begin)
            reversed.push_back(Segment{SegmentKind::kIdle, "idle@trigger",
                                       path.begin, cursor});
        path.segments.assign(reversed.rbegin(), reversed.rend());
        paths.push_back(std::move(path));
    }
    return paths;
}

ProfileSummary
summarize(const std::vector<CriticalPath> &paths)
{
    ProfileSummary summary;
    summary.episodes = paths.size();
    if (paths.empty())
        return summary;
    double total = 0;
    std::map<std::string, std::pair<SegmentKind, double>> sums;
    std::map<std::string, std::uint64_t> appearances;
    for (const CriticalPath &path : paths) {
        total += path.totalMs();
        std::map<std::string, double> per_path;
        for (const Segment &segment : path.segments) {
            per_path[segment.label] += segment.ms();
            sums[segment.label].first = segment.kind;
        }
        for (const auto &[label, ms] : per_path) {
            sums[label].second += ms;
            appearances[label] += 1;
        }
    }
    const double n = static_cast<double>(paths.size());
    summary.mean_total_ms = total / n;
    for (const auto &[label, entry] : sums) {
        SegmentStat stat;
        stat.kind = entry.first;
        stat.mean_ms = entry.second / n;
        stat.share = summary.mean_total_ms > 0
                         ? stat.mean_ms / summary.mean_total_ms
                         : 0;
        stat.episodes = appearances[label];
        summary.segments[label] = stat;
    }
    return summary;
}

std::string
renderText(const std::vector<CriticalPath> &paths, std::size_t top_k)
{
    std::string out;
    const ProfileSummary summary = summarize(paths);
    out += "causal profile: " + std::to_string(summary.episodes) +
           " completed episode(s), mean total " +
           formatDouble(summary.mean_total_ms, 3) + " ms\n";
    if (paths.empty())
        return out;

    // Episodes ranked by total latency, longest first.
    std::vector<const CriticalPath *> ranked;
    ranked.reserve(paths.size());
    for (const CriticalPath &path : paths)
        ranked.push_back(&path);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const CriticalPath *a, const CriticalPath *b) {
                         return a->end - a->begin > b->end - b->begin;
                     });
    if (ranked.size() > top_k)
        ranked.resize(top_k);

    for (const CriticalPath *path : ranked) {
        const Segment *dom = path->dominant();
        out += "\nepisode " + std::to_string(path->episode) + ": total " +
               formatDouble(path->totalMs(), 3) + " ms (t0 = " +
               formatDouble(toMillisF(path->begin), 3) + " ms)";
        if (dom && path->totalMs() > 0) {
            out += ", dominant " + dom->label + " (" +
                   formatDouble(100.0 * dom->ms() / path->totalMs(), 1) +
                   "%)";
        }
        out += "\n";
        for (const Segment &segment : path->segments) {
            const double pct = path->totalMs() > 0
                                   ? 100.0 * segment.ms() / path->totalMs()
                                   : 0;
            out += "  " + pad(formatDouble(segment.ms(), 3), 10) + " ms  " +
                   pad(formatDouble(pct, 1), 5) + "%  " +
                   pad(segmentKindName(segment.kind), 10) + "  " +
                   segment.label + "\n";
        }
    }

    out += "\nsegment means across episodes:\n";
    for (const auto &[label, stat] : summary.segments) {
        out += "  " + pad(formatDouble(stat.mean_ms, 3), 10) + " ms  " +
               pad(formatDouble(100.0 * stat.share, 1), 5) + "%  " +
               pad(segmentKindName(stat.kind), 10) + "  " + label + "\n";
    }
    return out;
}

std::string
renderJson(const std::vector<CriticalPath> &paths)
{
    std::string out = "{\n";
    out += "  \"schema\": \"rchdroid_profile/1\",\n";
    out += "  \"summary\": " + summaryJson(summarize(paths), 2) + ",\n";
    out += "  \"episodes\": [";
    for (std::size_t i = 0; i < paths.size(); ++i) {
        const CriticalPath &path = paths[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\n      \"episode\": " + std::to_string(path.episode) + ",";
        out += "\n      \"begin_ms\": " +
               formatDouble(toMillisF(path.begin), 6) + ",";
        out += "\n      \"total_ms\": " + formatDouble(path.totalMs(), 6) +
               ",";
        const Segment *dom = path.dominant();
        out += "\n      \"dominant\": \"" +
               jsonEscape(dom ? dom->label : "") + "\",";
        out += "\n      \"segments\": [";
        for (std::size_t j = 0; j < path.segments.size(); ++j) {
            const Segment &segment = path.segments[j];
            out += j ? ",\n        {" : "\n        {";
            out += "\"kind\": \"" + std::string(segmentKindName(segment.kind)) +
                   "\", \"label\": \"" + jsonEscape(segment.label) +
                   "\", \"begin_ms\": " +
                   formatDouble(toMillisF(segment.begin), 6) +
                   ", \"ms\": " + formatDouble(segment.ms(), 6) + "}";
        }
        out += path.segments.empty() ? "]" : "\n      ]";
        out += "\n    }";
    }
    out += paths.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
summaryJson(const ProfileSummary &summary, int base_indent)
{
    const std::string in0(static_cast<std::size_t>(base_indent), ' ');
    const std::string in1 = in0 + "  ";
    const std::string in2 = in1 + "  ";
    std::string out = "{\n";
    out += in1 + "\"episodes\": " + std::to_string(summary.episodes) + ",\n";
    out += in1 + "\"mean_total_ms\": " +
           formatDouble(summary.mean_total_ms, 6) + ",\n";
    out += in1 + "\"segments\": {";
    bool first = true;
    for (const auto &[label, stat] : summary.segments) {
        out += first ? "\n" : ",\n";
        first = false;
        out += in2 + "\"" + jsonEscape(label) + "\": {\"kind\": \"" +
               segmentKindName(stat.kind) + "\", \"mean_ms\": " +
               formatDouble(stat.mean_ms, 6) + ", \"share\": " +
               formatDouble(stat.share, 6) + ", \"episodes\": " +
               std::to_string(stat.episodes) + "}";
    }
    out += summary.segments.empty() ? "}" : "\n" + in1 + "}";
    out += "\n" + in0 + "}";
    return out;
}

} // namespace rchdroid::profiling
