#include "profiling/trace_reader.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace rchdroid::profiling {

namespace {

/** Minimal JSON document model: just enough for trace files. */
struct JsonValue
{
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *find(const std::string &key) const
    {
        for (const auto &[k, v] : object) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing data after document");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    bool fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return fail(std::string("expected '") + expected + "'");
    }

    bool parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.type = JsonValue::Type::kString;
            return parseString(out.str);
          case 't':
          case 'f': return parseBool(out);
          case 'n': return parseNull(out);
          default: return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::kObject;
        if (!consume('{'))
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::kArray;
        if (!consume('['))
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume(']');
        }
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              case 'r': out.push_back('\r'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The tracer only escapes control characters this way.
                out.push_back(static_cast<char>(code & 0x7f));
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseBool(JsonValue &out)
    {
        out.type = JsonValue::Type::kBool;
        if (text_.compare(pos_, 4, "true") == 0) {
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        return fail("bad literal");
    }

    bool parseNull(JsonValue &out)
    {
        out.type = JsonValue::Type::kNull;
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return true;
        }
        return fail("bad literal");
    }

    bool parseNumber(JsonValue &out)
    {
        out.type = JsonValue::Type::kNumber;
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                c == '-' || c == '+')
                ++pos_;
            else
                break;
        }
        if (pos_ == start)
            return fail("expected number");
        try {
            out.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return fail("bad number");
        }
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

double
numberOr(const JsonValue *value, double fallback)
{
    return value && value->type == JsonValue::Type::kNumber ? value->number
                                                            : fallback;
}

std::string
stringOr(const JsonValue *value, const std::string &fallback)
{
    return value && value->type == JsonValue::Type::kString ? value->str
                                                            : fallback;
}

} // namespace

ReadResult
parseChromeTrace(const std::string &json)
{
    ReadResult result;
    JsonValue doc;
    JsonParser parser(json);
    if (!parser.parse(doc)) {
        result.error = "JSON parse error: " + parser.error();
        return result;
    }
    const JsonValue *events = doc.find("traceEvents");
    if (!events || events->type != JsonValue::Type::kArray) {
        result.error = "missing traceEvents array";
        return result;
    }

    // Lanes are keyed (pid, tid); display names come from thread_name
    // metadata, which the tracer emits ahead of all events.
    std::map<std::pair<std::int64_t, std::int64_t>, std::uint32_t> lane_index;
    std::map<std::pair<std::int64_t, std::int64_t>, std::string> lane_names;
    auto laneFor = [&](std::int64_t pid,
                       std::int64_t tid) -> std::uint32_t {
        const auto key = std::make_pair(pid, tid);
        auto it = lane_index.find(key);
        if (it != lane_index.end())
            return it->second;
        const auto id =
            static_cast<std::uint32_t>(result.input.lanes.size());
        lane_index.emplace(key, id);
        auto name = lane_names.find(key);
        result.input.lanes.push_back(
            name != lane_names.end()
                ? name->second
                : "p" + std::to_string(pid) + ".t" + std::to_string(tid));
        return id;
    };

    for (const JsonValue &entry : events->array) {
        if (entry.type != JsonValue::Type::kObject)
            continue;
        const std::string ph = stringOr(entry.find("ph"), "");
        if (ph.size() != 1)
            continue;
        const auto pid =
            static_cast<std::int64_t>(numberOr(entry.find("pid"), 0));
        const auto tid =
            static_cast<std::int64_t>(numberOr(entry.find("tid"), 0));
        const JsonValue *args = entry.find("args");
        if (ph == "M") {
            if (stringOr(entry.find("name"), "") == "thread_name" && args)
                lane_names[{pid, tid}] = stringOr(args->find("name"), "");
            continue;
        }
        ProfileEvent event;
        event.phase = ph[0];
        event.lane = laneFor(pid, tid);
        // ts is microseconds with three decimals: an exact nanosecond
        // round-trip through llround.
        event.ts = static_cast<SimTime>(
            std::llround(numberOr(entry.find("ts"), 0) * 1000.0));
        event.id =
            static_cast<std::uint64_t>(numberOr(entry.find("id"), 0));
        event.bind_enclosing = stringOr(entry.find("bp"), "") == "e";
        event.name = stringOr(entry.find("name"), "");
        event.cat = stringOr(entry.find("cat"), "");
        if (args)
            event.arg = stringOr(args->find("detail"), "");
        result.input.events.push_back(std::move(event));
    }
    return result;
}

ReadResult
readChromeTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ReadResult result;
        result.error = "cannot open " + path;
        return result;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseChromeTrace(buffer.str());
}

} // namespace rchdroid::profiling
