/**
 * @file
 * Loader turning a Chrome trace-event JSON file (as written by
 * trace::Tracer::writeChromeJson) back into the analyzer's ProfileInput
 * — the offline half of the profiler, used by tools/rchdroid_profile.
 *
 * The parser is a small hand-rolled recursive-descent JSON reader (the
 * repo takes no third-party dependencies); it accepts general JSON but
 * only the fields the tracer emits are interpreted. Timestamps come
 * back as microseconds with three decimals and are converted to the
 * simulator's integer nanoseconds exactly.
 */
#ifndef RCHDROID_PROFILING_TRACE_READER_H
#define RCHDROID_PROFILING_TRACE_READER_H

#include <string>

#include "profiling/critical_path.h"

namespace rchdroid::profiling {

/** Result of loading a trace: input is valid iff error is empty. */
struct ReadResult
{
    ProfileInput input;
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Parse a trace JSON document held in memory. */
ReadResult parseChromeTrace(const std::string &json);

/** Read and parse a trace JSON file. */
ReadResult readChromeTraceFile(const std::string &path);

} // namespace rchdroid::profiling

#endif // RCHDROID_PROFILING_TRACE_READER_H
