/**
 * @file
 * Post-hoc critical-path extraction over causal flow events.
 *
 * The tracer records three ingredients (see platform/tracing.h):
 *  - B/E dispatch spans per Looper lane, with nested framework spans
 *    (rch.initLaunch, app.performLaunch, gc.*, ...) inside them;
 *  - b/e async endpoints per config-change handling episode; and
 *  - s/t/f flow events: a producer-side event at each post/binder send
 *    site and a bind_enclosing consumer-side event at the dispatch that
 *    the message caused.
 *
 * This module replays those events and, for every *completed* episode,
 * walks the causal chain backwards from the dispatch that closed the
 * episode: dispatch span -> consumer flow edge -> producer event ->
 * enclosing producer span -> ... until the episode start. The result is
 * a CriticalPath whose segments exactly tile [begin, end] — queue-wait
 * residues between a producer's send and the consumer's dispatch begin,
 * and dispatch time subdivided by the nested spans it ran (so GC,
 * migration and launch work get separate attribution).
 *
 * One subtlety: sim time freezes while a callback runs, but the tracer
 * clock is cost-aware, so a producer's send timestamp can exceed the
 * consumer's dispatch-begin timestamp (a zero-delay post delivered
 * "under" the still-accumulating producer cost). The walk clamps each
 * hand-off to min(producer ts, consumer begin) so segments never go
 * negative and the tiling stays exact.
 */
#ifndef RCHDROID_PROFILING_CRITICAL_PATH_H
#define RCHDROID_PROFILING_CRITICAL_PATH_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "platform/time.h"

namespace rchdroid::trace {
class Tracer;
}

namespace rchdroid::profiling {

/** What a critical-path segment's time was spent on. */
enum class SegmentKind : std::uint8_t {
    /** Framework/app code running inside a dispatch. */
    kDispatch,
    /** Message sat in a queue (includes binder latency). */
    kQueueWait,
    /** Garbage-collection work (gc.* spans). */
    kGc,
    /** Shadow/migration work (rch.flipSync, rch.buildMapping, ...). */
    kMigration,
    /** Activity launch/relaunch work. */
    kLaunch,
    /** Residue before the first attributable span. */
    kIdle,
};

/** Stable lowercase name, used in dumpsys and JSON output. */
const char *segmentKindName(SegmentKind kind);

/** One contiguous slice of an episode's critical path. */
struct Segment
{
    SegmentKind kind = SegmentKind::kDispatch;
    /** Attribution label, "span-name@lane" or "queue-wait@lane". */
    std::string label;
    SimTime begin = 0;
    SimTime end = 0;

    double ms() const { return toMillisF(end - begin); }
};

/** The longest-latency causal chain of one completed episode. */
struct CriticalPath
{
    /** Episode ordinal in extraction order (trace order). */
    std::uint64_t episode = 0;
    /** Episode endpoints: config change arrival -> activity resumed. */
    SimTime begin = 0;
    SimTime end = 0;
    /** Chronological segments; they exactly tile [begin, end]. */
    std::vector<Segment> segments;

    double totalMs() const { return toMillisF(end - begin); }
    /** Sum of segment durations — equals totalMs() by construction. */
    double segmentSumMs() const;
    /** The largest segment, or null if the path is empty. */
    const Segment *dominant() const;
};

/**
 * Self-contained analyzer input: a flat event list in emission order
 * plus lane display names. Buildable from a live Tracer (fromTracer)
 * or from a trace JSON on disk (profiling/trace_reader.h).
 */
struct ProfileEvent
{
    char phase = 'i';
    std::uint32_t lane = 0;
    SimTime ts = 0;
    /** Pairing id for async (b/e) and flow (s/t/f) phases. */
    std::uint64_t id = 0;
    bool bind_enclosing = false;
    std::string name;
    std::string cat;
    /** args.detail — "aborted" marks an abandoned episode end. */
    std::string arg;
};

struct ProfileInput
{
    std::vector<ProfileEvent> events;
    /** Display names indexed by ProfileEvent::lane. */
    std::vector<std::string> lanes;
};

/** Snapshot a live tracer's event stream into analyzer form. */
ProfileInput fromTracer(const trace::Tracer &tracer);

/**
 * Extract one CriticalPath per completed (non-aborted) episode, in
 * trace order. Episodes are paired positionally — an asyncBegin binds
 * to the *next* asyncEnd with the same (cat, id) — because sequential
 * AndroidSystems in one trace reuse episode ids.
 */
std::vector<CriticalPath> extractCriticalPaths(const ProfileInput &input);

/** Per-label aggregate across every extracted path. */
struct SegmentStat
{
    SegmentKind kind = SegmentKind::kDispatch;
    /** Mean ms per episode (episodes missing the label count as 0). */
    double mean_ms = 0;
    /** Share of mean episode time, 0..1. */
    double share = 0;
    /** Number of episodes the label appeared in. */
    std::uint64_t episodes = 0;
};

struct ProfileSummary
{
    std::size_t episodes = 0;
    double mean_total_ms = 0;
    /** Keyed by segment label; std::map for deterministic output. */
    std::map<std::string, SegmentStat> segments;
};

ProfileSummary summarize(const std::vector<CriticalPath> &paths);

/** Human-readable per-episode breakdown of the top `top_k` paths. */
std::string renderText(const std::vector<CriticalPath> &paths,
                       std::size_t top_k);

/** Machine-readable dump: summary plus every path's segments. */
std::string renderJson(const std::vector<CriticalPath> &paths);

/**
 * Just the summary as a JSON object (no trailing newline), indented
 * by `indent` spaces per level starting at `base_indent` — spliced
 * into bench reports and metricsJson().
 */
std::string summaryJson(const ProfileSummary &summary, int base_indent);

} // namespace rchdroid::profiling

#endif // RCHDROID_PROFILING_CRITICAL_PATH_H
