#include "rch/shadow_gc.h"

namespace rchdroid {

ShadowGcPolicy::ShadowGcPolicy(const RchConfig &config) : config_(config)
{
}

void
ShadowGcPolicy::noteShadowEntered(SimTime now)
{
    entries_.push_back(now);
    expireOld(now);
}

void
ShadowGcPolicy::expireOld(SimTime now)
{
    // The trailing window is (now - k, now]: an entry exactly k old is
    // expired (boundary semantics documented in shadow_gc.h).
    while (!entries_.empty() &&
           entries_.front() <= now - config_.frequency_window) {
        entries_.pop_front();
    }
}

int
ShadowGcPolicy::shadowFrequency(SimTime now)
{
    expireOld(now);
    return static_cast<int>(entries_.size());
}

GcDecision
ShadowGcPolicy::decide(SimTime now, SimTime shadow_entered_at)
{
    // Boundary semantics (documented in shadow_gc.h): age exactly
    // THRESH_T keeps; frequency exactly THRESH_F keeps.
    const SimDuration shadow_time = now - shadow_entered_at;
    if (shadow_time <= config_.thresh_t)
        return GcDecision::KeepYoung;
    if (shadowFrequency(now) >= config_.thresh_f)
        return GcDecision::KeepFrequent;
    return GcDecision::Collect;
}

const char *
gcDecisionName(GcDecision decision)
{
    switch (decision) {
      case GcDecision::Collect: return "collect";
      case GcDecision::KeepYoung: return "keep_young";
      case GcDecision::KeepFrequent: return "keep_frequent";
    }
    return "unknown";
}

} // namespace rchdroid
