#include "rch/shadow_gc.h"

namespace rchdroid {

ShadowGcPolicy::ShadowGcPolicy(const RchConfig &config) : config_(config)
{
}

void
ShadowGcPolicy::noteShadowEntered(SimTime now)
{
    entries_.push_back(now);
    expireOld(now);
}

void
ShadowGcPolicy::expireOld(SimTime now)
{
    while (!entries_.empty() &&
           entries_.front() < now - config_.frequency_window) {
        entries_.pop_front();
    }
}

int
ShadowGcPolicy::shadowFrequency(SimTime now)
{
    expireOld(now);
    return static_cast<int>(entries_.size());
}

bool
ShadowGcPolicy::shouldCollect(SimTime now, SimTime shadow_entered_at)
{
    const SimDuration shadow_time = now - shadow_entered_at;
    if (shadow_time <= config_.thresh_t)
        return false;
    if (shadowFrequency(now) >= config_.thresh_f)
        return false;
    return true;
}

} // namespace rchdroid
