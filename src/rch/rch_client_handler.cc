#include "rch/rch_client_handler.h"

#include <algorithm>

#include "os/analysis_hooks.h"
#include "platform/logging.h"
#include "platform/metrics.h"
#include "platform/tracing.h"

namespace rchdroid {

RchClientHandler::RchClientHandler(RchConfig config)
    : config_(config),
      mapper_(config_.mapping_strategy),
      migrator_(config_, stats_),
      gc_policy_(config_)
{
}

void
RchClientHandler::attach(ActivityThread &thread)
{
    thread.setClientHandler(this);
}

void
RchClientHandler::armGcTimer(ActivityThread &thread)
{
    // The doGcForShadowIfNeeded timer runs only while a shadow instance
    // exists; it disarms itself once there is nothing to collect, so an
    // idle process schedules no work.
    if (gc_timer_armed_)
        return;
    gc_timer_armed_ = true;
    // The handler owns the tick closure; posted copies capture only raw
    // pointers back to it (a self-capturing shared_ptr closure would
    // never be reclaimed).
    ActivityThread *thread_ptr = &thread;
    gc_tick_ = [this, thread_ptr] {
        if (thread_ptr->crashed() || !thread_ptr->shadowActivity()) {
            gc_timer_armed_ = false;
            return;
        }
        doGcForShadowIfNeeded(*thread_ptr);
        if (!thread_ptr->shadowActivity()) {
            gc_timer_armed_ = false;
            return;
        }
        thread_ptr->uiLooper().post(gc_tick_, config_.gc_interval,
                                    thread_ptr->costs().gc_check, "gcTick");
    };
    thread.uiLooper().post(gc_tick_, config_.gc_interval,
                           thread.costs().gc_check, "gcTick");
}

void
RchClientHandler::onConfigurationChanged(ActivityThread &thread,
                                         ActivityToken token,
                                         const Configuration &config)
{
    auto activity = thread.activityForToken(token);
    if (!activity)
        return;
    if (!isForeground(activity->lifecycleState())) {
        // A second change arrived while the previous one is still in
        // flight; the pending sunny launch already carries the newest
        // configuration from the ATMS, so this delivery is stale.
        return;
    }
    ++stats_.runtime_changes;
    RCH_TRACE_SCOPE_ARG("rch.shadowDemotion", activity->component(), "rch");

    // Detach any stale listener before the snapshot; the instance keeps
    // serving async callbacks in the shadow state, where the migrator
    // (re-installed below) catches the invalidations.
    activity->setInvalidationListener(nullptr);

    // Step 1 (Fig. 3): snapshot state and enter the shadow state.
    thread.runAppCode([&] { activity->enterShadowState(); });
    gc_policy_.noteShadowEntered(thread.scheduler().now());
    metrics::add(metrics::Counter::kShadowEntered);
    activity->setInvalidationListener(&migrator_);
    armGcTimer(thread);

    // Step 2: request the sunny-state start. The request departs when
    // the snapshot work completes; posting the IPC as a continuation on
    // the UI looper models that ordering.
    Intent intent;
    intent.component = activity->component();
    intent.source_process = thread.processName();
    intent.flags = kFlagSunny;
    ActivityManager *am = thread.activityManager();
    if (am) {
        thread.uiLooper().post([am, intent] { am->startActivity(intent); },
                               0, 0, "requestSunnyStart");
    }
    (void)config;
}

void
RchClientHandler::onSunnyLaunch(ActivityThread &thread,
                                const LaunchArgs &args)
{
    if (args.flipped)
        performFlip(thread, args);
    else
        performInitLaunch(thread, args);
}

void
RchClientHandler::performInitLaunch(ActivityThread &thread,
                                    const LaunchArgs &args)
{
    auto shadow = thread.activityForToken(args.shadowed_token);
    if (!shadow || !shadow->isShadow())
        shadow = thread.shadowActivity();

    // Step 3 (Fig. 3): create the sunny instance from the shadow
    // snapshot, then build the essence-based mapping.
    const Bundle *saved =
        (shadow && shadow->hasShadowSnapshot()) ? &shadow->shadowSnapshot()
                                                : nullptr;
    RCH_TRACE_SCOPE_ARG("rch.initLaunch", args.component, "rch");
    auto sunny = thread.performLaunchActivity(args, saved, /*as_sunny=*/true);
    ++stats_.init_launches;

    if (shadow) {
        RCH_TRACE_SCOPE("rch.buildMapping", "rch");
        const MappingResult mapping = mapper_.buildMapping(*sunny, *shadow);
        stats_.views_mapped += static_cast<std::uint64_t>(mapping.wired);
        stats_.views_unmatched +=
            static_cast<std::uint64_t>(std::max(mapping.unmatched, 0));
        metrics::add(metrics::Counter::kMapWired,
                     static_cast<std::uint64_t>(mapping.wired));
        metrics::add(metrics::Counter::kMapUnmatched,
                     static_cast<std::uint64_t>(std::max(mapping.unmatched, 0)));
        metrics::observe(metrics::Histogram::kMappedViewsPerBuild,
                         static_cast<double>(mapping.wired));
        shadow->setInvalidationListener(&migrator_);
    }
    thread.notifyResumedAtCostEnd(args.token);
}

void
RchClientHandler::performFlip(ActivityThread &thread, const LaunchArgs &args)
{
    auto incoming = thread.activityForToken(args.token);
    auto outgoing = thread.activityForToken(args.shadowed_token);
    RCH_ASSERT(incoming && incoming->isShadow(),
               "flip target is not a shadow instance");
    RCH_ASSERT(outgoing, "flip source instance missing");
    ++stats_.flips;
    RCH_TRACE_SCOPE_ARG("rch.flipSync", incoming->component(), "rch");
    // The flip is a full synchronisation point between the instances:
    // everything the displaced foreground did is ordered before anything
    // the incoming instance does from here on.
    if (auto *hooks = analysis::hooks())
        hooks->onSyncBarrier(&thread, "coinFlip");

    Looper &ui = thread.uiLooper();
    if (ui.isDispatching())
        ui.consumeCpu(thread.costs().flip_fixed);

    // The outgoing foreground normally entered the shadow state already
    // when the configuration change was delivered (onConfigurationChanged
    // snapshots and shadows before requesting the sunny start); cover
    // the direct sunny-start path too.
    outgoing->setInvalidationListener(nullptr);
    if (isForeground(outgoing->lifecycleState())) {
        thread.runAppCode([&] { outgoing->enterShadowState(); });
        gc_policy_.noteShadowEntered(thread.scheduler().now());
    }
    RCH_ASSERT(outgoing->isShadow(), "flip source is not shadowed");
    armGcTimer(thread);

    // Sync the freshest state outgoing → incoming through the peer
    // pointers wired at mapping time (no re-mapping needed: the links
    // were stored in both directions).
    incoming->setInvalidationListener(nullptr);
    int synced = 0;
    thread.runAppCode([&] {
        outgoing->window().decorView().visit([&synced](View &v) {
            if (View *peer = v.sunnyPeer(); peer && !peer->isDestroyed()) {
                v.applyMigration(*peer);
                ++synced;
            }
        });
    });
    if (ui.isDispatching())
        ui.consumeCpu(thread.costs().flip_sync_per_view * synced);

    // Bring the incoming instance to the foreground under the new
    // configuration.
    thread.runAppCode([&] {
        incoming->enterSunnyStateFromShadow();
        incoming->performConfigurationChanged(args.config);
    });
    outgoing->setInvalidationListener(&migrator_);
    thread.notifyResumedAtCostEnd(args.token);
}

void
RchClientHandler::onForegroundGone(ActivityThread &thread,
                                   ActivityToken token)
{
    (void)token;
    // Paper §3.5: "If the foreground activity instance is terminated or
    // switched, the corresponding shadow-state activity will be released
    // immediately."
    if (auto shadow = thread.shadowActivity())
        releaseShadow(thread, shadow);
}

bool
RchClientHandler::doGcForShadowIfNeeded(ActivityThread &thread)
{
    auto shadow = thread.shadowActivity();
    if (!shadow)
        return false;
    RCH_TRACE_SCOPE_ARG("rch.gcCheck", shadow->component(), "rch");
    const SimTime now = thread.scheduler().now();
    const GcDecision decision =
        gc_policy_.decide(now, shadow->shadowEnteredAt());
    if (decision != GcDecision::Collect) {
        ++stats_.gc_keeps;
        metrics::add(decision == GcDecision::KeepYoung
                         ? metrics::Counter::kGcKeptYoung
                         : metrics::Counter::kGcKeptFrequent);
        return false;
    }
    releaseShadow(thread, shadow);
    ++stats_.gc_collections;
    metrics::add(metrics::Counter::kGcCollected);
    return true;
}

void
RchClientHandler::releaseShadow(ActivityThread &thread,
                                const std::shared_ptr<Activity> &shadow)
{
    const ActivityToken token = shadow->token();
    shadow->setInvalidationListener(nullptr);
    // GC barrier: the collection orders every migration the shadow
    // instance performed before any later work observes its absence.
    if (auto *hooks = analysis::hooks())
        hooks->onSyncBarrier(&thread, "shadowGc");
    thread.runAppCode([&] { shadow->performDestroy(); });
    thread.dropActivity(token);
    if (auto foreground = thread.foregroundActivity()) {
        if (foreground->isSunny())
            foreground->degradeSunnyToResumed();
    }
    if (ActivityManager *am = thread.activityManager())
        am->shadowActivityReclaimed(token);
}

} // namespace rchdroid
