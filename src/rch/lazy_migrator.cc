#include "rch/lazy_migrator.h"

#include "platform/logging.h"
#include "platform/metrics.h"

namespace rchdroid {

LazyMigrator::LazyMigrator(const RchConfig &config, RchStats &stats)
    : config_(config), stats_(stats)
{
}

void
LazyMigrator::onViewInvalidated(Activity &activity, View &view)
{
    if (!config_.enable_lazy_migration)
        return;
    if (!activity.isShadow())
        return;
    if (migrating_)
        return;
    View *peer = view.sunnyPeer();
    if (!peer || peer->isDestroyed())
        return;

    migrating_ = true;
    // Charge the interception + typed attribute transfer (Table 1). The
    // fixed interception overhead applies once per UI dispatch (one
    // async-result batch), the per-view cost on every migrated view.
    Looper *looper = activity.context().ui_looper;
    if (looper && looper->isDispatching()) {
        const std::uint64_t dispatch_seq = looper->dispatchedMessages();
        if (dispatch_seq != last_dispatch_seq_ || !seen_dispatch_) {
            looper->consumeCpu(activity.context().costs.migrate_batch_base);
            last_dispatch_seq_ = dispatch_seq;
            seen_dispatch_ = true;
            metrics::add(metrics::Counter::kMigrateBatches);
        }
        looper->consumeCpu(activity.context().costs.migrate_per_view);
    }
    view.applyMigration(*peer);
    ++migrated_;
    ++stats_.views_migrated;
    // Which view types the lazy policy actually touches (Table 1 is
    // priced per typed attribute set, so the type mix matters).
    metrics::addLabeled(metrics::Counter::kViewsMigrated, view.typeName());
    migrating_ = false;
}

} // namespace rchdroid
