/**
 * @file
 * ShadowGcPolicy: the threshold-based reclamation policy for the shadow
 * activity instance (paper §3.5, Algorithm 1).
 *
 * A shadow instance is collected only when BOTH hold:
 *   shadow_time      > THRESH_T  (it has been shadowed for a while), and
 *   shadow_frequency < THRESH_F  (it is not being flipped back often),
 * where shadow_frequency counts shadow-state entries in the trailing
 * k-second window.
 *
 * Boundary semantics (normative — this comment is the one documented
 * place; tests/rch/shadow_gc_test.cc pins each row in a table test):
 *
 *   shadow_time == THRESH_T   → KEEP (KeepYoung). Collection requires
 *       strictly greater age: "exceeds the threshold" in Algorithm 1.
 *   shadow_frequency == THRESH_F → KEEP (KeepFrequent). The paper's
 *       "four times per minute is frequent" counts four entries as
 *       already frequent, so the keep test is >=.
 *   entry age == k (window)   → EXPIRED. The trailing window is the
 *       half-open interval (now - k, now]: an entry exactly k old has
 *       left the window and no longer counts towards the frequency.
 */
#ifndef RCHDROID_RCH_SHADOW_GC_H
#define RCHDROID_RCH_SHADOW_GC_H

#include <cstdint>
#include <deque>

#include "platform/time.h"
#include "rch/rch_config.h"

namespace rchdroid {

/** Outcome of one Algorithm 1 evaluation, with the keep reason. */
enum class GcDecision : std::uint8_t {
    Collect,      ///< both thresholds passed; reclaim the shadow
    KeepYoung,    ///< shadow_time <= THRESH_T
    KeepFrequent, ///< shadow_frequency >= THRESH_F
};

const char *gcDecisionName(GcDecision decision);

/**
 * Pure decision logic; the handler owns the timer and the destruction.
 */
class ShadowGcPolicy
{
  public:
    explicit ShadowGcPolicy(const RchConfig &config);

    /** Record that an activity entered the shadow state at `now`. */
    void noteShadowEntered(SimTime now);

    /**
     * Algorithm 1: should the current shadow instance be collected?
     * @param now Current virtual time.
     * @param shadow_entered_at When the instance entered the shadow
     *        state.
     */
    bool shouldCollect(SimTime now, SimTime shadow_entered_at)
    {
        return decide(now, shadow_entered_at) == GcDecision::Collect;
    }

    /** shouldCollect with the keep reason preserved (for metrics). */
    GcDecision decide(SimTime now, SimTime shadow_entered_at);

    /** shadow_frequency: entries within the trailing window at `now`. */
    int shadowFrequency(SimTime now);

    /** Forget history (process restart). */
    void reset() { entries_.clear(); }

  private:
    void expireOld(SimTime now);

    const RchConfig &config_;
    std::deque<SimTime> entries_;
};

} // namespace rchdroid

#endif // RCHDROID_RCH_SHADOW_GC_H
