/**
 * @file
 * LazyMigrator: catches the generic invalidate() step of updates landing
 * on a shadow-state activity and replays them onto the mapped sunny view
 * (paper §3.3, "lazy-migration").
 *
 * Installed as the shadow activity's InvalidationListener; the sunny
 * activity never carries one, so migrated updates do not echo back.
 */
#ifndef RCHDROID_RCH_LAZY_MIGRATOR_H
#define RCHDROID_RCH_LAZY_MIGRATOR_H

#include "app/activity.h"
#include "rch/rch_config.h"

namespace rchdroid {

/**
 * The invalidate-hook half of the view-tree migration scheme.
 */
class LazyMigrator final : public InvalidationListener
{
  public:
    /**
     * @param config Ablation switches (enable_lazy_migration).
     * @param stats Shared counter sink (owned by the handler).
     */
    LazyMigrator(const RchConfig &config, RchStats &stats);

    /**
     * A view of `activity` was invalidated. When the activity is in the
     * shadow state and the view has a sunny peer, the view's typed
     * migration policy (Table 1) is applied to the peer and the
     * calibrated migration cost is charged to the UI looper.
     */
    void onViewInvalidated(Activity &activity, View &view) override;

    /** Views migrated since construction (also mirrored into stats). */
    std::uint64_t migratedViews() const { return migrated_; }

  private:
    const RchConfig &config_;
    RchStats &stats_;
    std::uint64_t migrated_ = 0;
    /** Re-entrancy latch: applyMigration may cascade invalidations. */
    bool migrating_ = false;
    /** Batch detection: UI-looper dispatch the last migration ran in. */
    std::uint64_t last_dispatch_seq_ = 0;
    bool seen_dispatch_ = false;
};

} // namespace rchdroid

#endif // RCHDROID_RCH_LAZY_MIGRATOR_H
