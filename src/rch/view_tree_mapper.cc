#include "rch/view_tree_mapper.h"

#include "os/analysis_hooks.h"
#include "platform/logging.h"

namespace rchdroid {

MappingResult
ViewTreeMapper::buildMapping(Activity &sunny, Activity &shadow) const
{
    // The mapping rewires peer pointers across both whole trees; report
    // it as a write on each tree so a concurrent traversal elsewhere is
    // caught as a race.
    if (auto *hooks = analysis::hooks()) {
        hooks->onSharedAccess(&sunny.window().decorView(), "ViewTree",
                              sunny.component(), /*is_write=*/true);
        hooks->onSharedAccess(&shadow.window().decorView(), "ViewTree",
                              shadow.component(), /*is_write=*/true);
    }
    switch (strategy_) {
      case MappingStrategy::HashTable:
        return buildWithHashTable(sunny, shadow);
      case MappingStrategy::LinearScan:
        return buildWithLinearScan(sunny, shadow);
    }
    RCH_PANIC("unknown mapping strategy");
}

MappingResult
ViewTreeMapper::buildWithHashTable(Activity &sunny, Activity &shadow) const
{
    MappingResult result;
    // Step 1 (Fig. 5): hash table of view ids over the sunny tree —
    // getAllSunnyViews, charged at mapping_insert_per_view.
    auto table = sunny.getAllSunnyViews();
    result.sunny_ids = static_cast<int>(table.size());
    // Step 2: traverse the shadow tree, look each id up, store the
    // pointer — setSunnyViews, charged at mapping_wire_per_view.
    result.wired = shadow.setSunnyViews(table);
    int shadow_ids = 0;
    shadow.window().decorView().visitConst([&shadow_ids](const View &v) {
        if (!v.id().empty())
            ++shadow_ids;
    });
    result.unmatched = shadow_ids - result.wired;
    return result;
}

MappingResult
ViewTreeMapper::buildWithLinearScan(Activity &sunny, Activity &shadow) const
{
    // Ablation: no hash table — each shadow view searches the sunny tree
    // by id. The per-lookup cost is proportional to the nodes visited,
    // so the total is O(n²); charged through the same per-view constant
    // multiplied by the visit count.
    MappingResult result;
    View &sunny_root = sunny.window().decorView();
    sunny_root.visitConst([&result](const View &v) {
        if (!v.id().empty())
            ++result.sunny_ids;
    });

    const int sunny_nodes = sunny_root.countViews();
    const SimDuration per_probe =
        shadow.context().costs.mapping_wire_per_view;
    Looper *looper = shadow.context().ui_looper;

    int shadow_ids = 0;
    shadow.window().decorView().visit([&](View &v) {
        if (v.id().empty())
            return;
        ++shadow_ids;
        // findViewById walks the tree: charge a visit-proportional cost.
        if (looper && looper->isDispatching())
            looper->consumeCpu(per_probe * sunny_nodes);
        if (View *peer = sunny_root.findViewById(v.id())) {
            v.setSunnyPeer(peer);
            peer->setSunnyPeer(&v);
            ++result.wired;
        }
    });
    result.unmatched = shadow_ids - result.wired;
    return result;
}

} // namespace rchdroid
