/**
 * @file
 * RchConfig / RchStats: tuning knobs and counters of the RCHDroid client
 * machinery.
 *
 * Defaults follow the paper: THRESH_T = 50 s (chosen by the Fig. 11
 * sweep as the latency/memory sweet spot), THRESH_F = 4 entries per
 * minute ("if a user changes the configuration four times per minute, it
 * is frequent"), measured over the trailing k = 60 s window.
 */
#ifndef RCHDROID_RCH_RCH_CONFIG_H
#define RCHDROID_RCH_RCH_CONFIG_H

#include <cstdint>

#include "platform/time.h"

namespace rchdroid {

/** How the essence mapping between the two view trees is built. */
enum class MappingStrategy : std::uint8_t {
    /** Paper default: hash table of view ids, O(n) build (§3.3). */
    HashTable,
    /**
     * Ablation: per-view linear search of the sunny tree, O(n²). The
     * Fig. 10 bench shows why the paper bounds init cost with the hash
     * table.
     */
    LinearScan,
};

/** Tuning knobs of the client-side RCHDroid machinery. */
struct RchConfig
{
    /** GC: minimum shadow age before collection (paper: 50 s). */
    SimDuration thresh_t = seconds(50);
    /** GC: shadow-entry frequency at/above which we keep (paper: 4). */
    int thresh_f = 4;
    /** GC: trailing window for the frequency count (paper: "k seconds",
     *  one minute at THRESH_F = 4/min). */
    SimDuration frequency_window = seconds(60);
    /** How often doGcForShadowIfNeeded runs on the UI looper. */
    SimDuration gc_interval = seconds(5);
    /** Essence-mapping construction strategy. */
    MappingStrategy mapping_strategy = MappingStrategy::HashTable;
    /**
     * Ablation: disable lazy migration (async updates then stay on the
     * shadow tree and the sunny tree goes stale — never crashes, but
     * reproduces *why* migration is needed).
     */
    bool enable_lazy_migration = true;
};

/** Counters of everything the handler did (benches read these). */
struct RchStats
{
    std::uint64_t runtime_changes = 0;
    /** Sunny launches that created a fresh instance (RCHDroid-init). */
    std::uint64_t init_launches = 0;
    /** Sunny launches satisfied by a coin flip. */
    std::uint64_t flips = 0;
    /** Views wired into essence mappings. */
    std::uint64_t views_mapped = 0;
    /** Views whose id had no sunny counterpart. */
    std::uint64_t views_unmatched = 0;
    /** Individual view migrations performed by the lazy migrator. */
    std::uint64_t views_migrated = 0;
    /** Shadow instances reclaimed by the GC. */
    std::uint64_t gc_collections = 0;
    /** GC checks that decided to keep the shadow. */
    std::uint64_t gc_keeps = 0;
};

} // namespace rchdroid

#endif // RCHDROID_RCH_RCH_CONFIG_H
