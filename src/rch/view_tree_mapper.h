/**
 * @file
 * ViewTreeMapper: builds the essence-based mapping between the shadow
 * tree and the sunny tree (paper §3.3, Fig. 5).
 *
 * "Although a button may have a different shape and display on a
 * different position [after the change], they are still the same button
 * and use the same view id" — so the mapping keys on view ids: a hash
 * table of the sunny tree's ids is built first, then the shadow tree is
 * traversed and each view stores a pointer to its sunny counterpart.
 */
#ifndef RCHDROID_RCH_VIEW_TREE_MAPPER_H
#define RCHDROID_RCH_VIEW_TREE_MAPPER_H

#include "app/activity.h"
#include "rch/rch_config.h"

namespace rchdroid {

/** Outcome of one mapping build. */
struct MappingResult
{
    /** Views in the sunny tree carrying an id. */
    int sunny_ids = 0;
    /** Shadow views successfully wired to a sunny peer. */
    int wired = 0;
    /** Shadow id-bearing views with no sunny counterpart. */
    int unmatched = 0;
};

/**
 * Stateless mapping builder; strategy selects hash-table (paper) or
 * linear-scan (ablation).
 */
class ViewTreeMapper
{
  public:
    explicit ViewTreeMapper(MappingStrategy strategy
                            = MappingStrategy::HashTable)
        : strategy_(strategy)
    {
    }

    /**
     * Wire every id-matched pair between the trees: shadow views point
     * at sunny views and vice versa (the reverse links are what make a
     * later coin-flip free of re-mapping).
     */
    MappingResult buildMapping(Activity &sunny, Activity &shadow) const;

    MappingStrategy strategy() const { return strategy_; }

  private:
    MappingResult buildWithHashTable(Activity &sunny, Activity &shadow) const;
    MappingResult buildWithLinearScan(Activity &sunny, Activity &shadow) const;

    MappingStrategy strategy_;
};

} // namespace rchdroid

#endif // RCHDROID_RCH_VIEW_TREE_MAPPER_H
