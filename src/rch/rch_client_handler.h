/**
 * @file
 * RchClientHandler: the client-side orchestration of RCHDroid — the
 * behaviour the paper patches into ActivityThread (Table 2:
 * performActivityConfigurationChanged, performLaunchActivity,
 * handleResumeActivity, doGcForShadowIfNeeded).
 *
 * On a configuration change it shadows the foreground instance and
 * requests a sunny start; on the sunny launch it either creates the
 * sunny instance and builds the essence mapping (RCHDroid-init) or flips
 * the existing shadow instance back to the foreground (steady state).
 * It also owns the lazy migrator and the shadow GC timer.
 */
#ifndef RCHDROID_RCH_RCH_CLIENT_HANDLER_H
#define RCHDROID_RCH_RCH_CLIENT_HANDLER_H

#include <functional>
#include <memory>

#include "app/activity_thread.h"
#include "app/runtime_change_handler.h"
#include "rch/lazy_migrator.h"
#include "rch/rch_config.h"
#include "rch/shadow_gc.h"
#include "rch/view_tree_mapper.h"

namespace rchdroid {

/**
 * The RCHDroid runtime-change strategy for one app process.
 */
class RchClientHandler final : public ClientRuntimeChangeHandler
{
  public:
    explicit RchClientHandler(RchConfig config = {});

    /**
     * Install on a thread: becomes its client handler and arms the GC
     * timer on the UI looper.
     */
    void attach(ActivityThread &thread);

    /** @name ClientRuntimeChangeHandler
     * @{
     */
    void onConfigurationChanged(ActivityThread &thread, ActivityToken token,
                                const Configuration &config) override;
    void onSunnyLaunch(ActivityThread &thread,
                       const LaunchArgs &args) override;
    void onForegroundGone(ActivityThread &thread,
                          ActivityToken token) override;
    /** @} */

    /**
     * doGcForShadowIfNeeded: run one GC check now (also invoked by the
     * periodic timer). Returns true when a shadow instance was
     * collected.
     */
    bool doGcForShadowIfNeeded(ActivityThread &thread);

    const RchConfig &config() const { return config_; }
    const RchStats &stats() const { return stats_; }
    ShadowGcPolicy &gcPolicy() { return gc_policy_; }

  private:
    void performInitLaunch(ActivityThread &thread, const LaunchArgs &args);
    void performFlip(ActivityThread &thread, const LaunchArgs &args);
    void releaseShadow(ActivityThread &thread,
                       const std::shared_ptr<Activity> &shadow);
    void armGcTimer(ActivityThread &thread);

    RchConfig config_;
    RchStats stats_;
    ViewTreeMapper mapper_;
    LazyMigrator migrator_;
    ShadowGcPolicy gc_policy_;
    bool gc_timer_armed_ = false;
    std::function<void()> gc_tick_;
};

} // namespace rchdroid

#endif // RCHDROID_RCH_RCH_CLIENT_HANDLER_H
