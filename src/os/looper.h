/**
 * @file
 * Looper: a simulated thread with a serialised message loop, mirroring
 * android.os.Looper.
 *
 * Each simulated process owns loopers for its threads: the app has the
 * activity (UI) thread plus async worker loopers; the system_server has
 * the ATMS looper. A looper executes one message at a time; a message's
 * declared (plus dynamically consumed) CPU cost keeps the looper busy,
 * delaying the next dispatch — exactly the "UI thread frozen during
 * restart" effect the paper's Poor Responsiveness issue describes.
 */
#ifndef RCHDROID_OS_LOOPER_H
#define RCHDROID_OS_LOOPER_H

#include <functional>
#include <memory>
#include <string>

#include "os/message_queue.h"
#include "os/scheduler.h"
#include "platform/compiler.h"
#include "platform/time.h"

namespace rchdroid {

/**
 * Callback interface for CPU accounting: receives every busy interval a
 * looper executes. The sim::CpuTracker implements this to produce the
 * CPU-usage-over-time series in Fig. 9.
 */
class BusyObserver
{
  public:
    virtual ~BusyObserver() = default;

    /** A message with `tag` occupied [start, end) of thread time. */
    virtual void onBusyInterval(const std::string &looper_name, SimTime start,
                                SimTime end, const std::string &tag) = 0;
};

/**
 * A serialised virtual thread on top of SimScheduler.
 */
class Looper
{
  public:
    /**
     * @param scheduler Event core this looper runs on (not owned).
     * @param name Thread name, e.g. "app.main", "system_server.atms".
     */
    Looper(SimScheduler &scheduler, std::string name);
    ~Looper();

    Looper(const Looper &) = delete;
    Looper &operator=(const Looper &) = delete;

    const std::string &name() const { return name_; }
    SimScheduler &scheduler() { return scheduler_; }
    SimTime now() const { return scheduler_.now(); }

    /** Enqueue a message; delivery respects both `when` and busy time. */
    void enqueue(Message msg);

    /**
     * Convenience: post a callback.
     * @param fn Work to run.
     * @param delay Earliest start relative to now.
     * @param cost Declared CPU cost of the work.
     * @param tag Trace label.
     */
    void post(std::function<void()> fn, SimDuration delay = 0,
              SimDuration cost = 0, std::string tag = {});

    /**
     * Extend the cost of the *currently dispatching* message. Framework
     * operations whose cost is computed mid-flight (e.g. inflating a view
     * tree whose size is only known after resource resolution) use this.
     * Panics when no message is dispatching.
     */
    void consumeCpu(SimDuration extra);

    /** True while a message is being dispatched on this looper. */
    bool isDispatching() const { return dispatching_; }

    /**
     * The looper whose message is currently executing, or null outside
     * any dispatch — the simulation's analogue of Looper.myLooper().
     * Used to enforce Android's UI-thread-only view mutation rule.
     */
    RCHDROID_NO_SANITIZE_NULL static Looper *current() { return current_; }

    /**
     * Virtual time at which the current message's cost window ends; only
     * valid while dispatching. Continuations posted with delay 0 run no
     * earlier than this.
     */
    SimTime currentCostEnd() const;

    /** Remove queued messages owned by the token. */
    std::size_t removeByToken(const void *token);
    std::size_t removeByWhat(const void *token, int what);

    /** Attach/detach the CPU accounting observer (not owned). */
    void setBusyObserver(BusyObserver *observer) { observer_ = observer; }

    /** Queue depth (diagnostics). */
    std::size_t queuedMessages() const { return queue_.size(); }

    /** Read-only pending queue (model-checker fingerprints, dumpsys). */
    const MessageQueue &queue() const { return queue_; }

    /** Tag of the message currently dispatching ("" outside dispatch). */
    const std::string &currentTag() const { return current_tag_; }

    /** Total messages dispatched (diagnostics). */
    std::uint64_t dispatchedMessages() const { return dispatched_; }

    /** Cumulative busy time executed by this looper. */
    SimDuration totalBusyTime() const { return total_busy_; }

  private:
    void armWakeup();
    void onWakeup();

    /** Write the dispatch-owner seam (see current()). */
    RCHDROID_NO_SANITIZE_NULL static void setCurrent(Looper *looper)
    {
        current_ = looper;
    }

    SimScheduler &scheduler_;
    std::string name_;
    MessageQueue queue_;
    BusyObserver *observer_ = nullptr;

    /** End of the most recent message's cost window. */
    SimTime busy_until_ = 0;
    /** Outstanding scheduler wakeup, if armed. */
    EventId wakeup_event_ = kInvalidEventId;
    bool dispatching_ = false;
    /** Start time and accumulated cost of the in-flight dispatch. */
    SimTime current_start_ = 0;
    SimDuration current_cost_ = 0;
    std::string current_tag_;
    std::uint64_t dispatched_ = 0;
    SimDuration total_busy_ = 0;
    /** Source of per-message analysis ids (see Message::analysis_id). */
    std::uint64_t next_msg_id_ = 0;

    /**
     * The looper currently dispatching. Thread-local: each parallel
     * experiment worker runs its own single-threaded simulation, and
     * the "current thread" notion must not leak across workers.
     */
    static thread_local Looper *current_;
};

} // namespace rchdroid

#endif // RCHDROID_OS_LOOPER_H
