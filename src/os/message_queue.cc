#include "os/message_queue.h"

#include <algorithm>

#include "platform/logging.h"

namespace rchdroid {

void
MessageQueue::enqueue(Message msg)
{
    RCH_ASSERT(msg.callback != nullptr, "message without callback: ", msg.tag);
    msg.seq = next_seq_++;
    const SimTime when = msg.when;
    const std::uint64_t seq = msg.seq;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(msg);
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(msg));
    }
    heap_.push_back(HeapEntry{when, seq, slot});
    std::push_heap(heap_.begin(), heap_.end(), laterThan);
}

std::optional<SimTime>
MessageQueue::nextWhen() const
{
    if (heap_.empty())
        return std::nullopt;
    return heap_.front().when;
}

std::optional<Message>
MessageQueue::popDue(SimTime now_or_later)
{
    if (heap_.empty() || heap_.front().when > now_or_later)
        return std::nullopt;
    return takeHead();
}

std::optional<Message>
MessageQueue::popFront()
{
    if (heap_.empty())
        return std::nullopt;
    return takeHead();
}

Message
MessageQueue::takeHead()
{
    std::uint32_t slot;
    if (heap_.size() == 1) {
        slot = heap_.front().slot;
        heap_.clear();
    } else {
        std::pop_heap(heap_.begin(), heap_.end(), laterThan);
        slot = heap_.back().slot;
        heap_.pop_back();
    }
    Message msg = std::move(slots_[slot]);
    if (heap_.empty()) {
        // Quiescent: drop the (moved-from) slab shells so long-lived
        // queues do not accumulate slots; capacity is retained.
        slots_.clear();
        free_slots_.clear();
    } else {
        free_slots_.push_back(slot);
    }
    return msg;
}

void
MessageQueue::forEachPendingInOrder(
    const std::function<void(const Message &)> &fn) const
{
    std::vector<HeapEntry> ordered = heap_;
    std::sort(ordered.begin(), ordered.end(),
              [](const HeapEntry &a, const HeapEntry &b) {
                  return dispatch_order::firesBefore({a.when, a.seq},
                                                     {b.when, b.seq});
              });
    for (const HeapEntry &entry : ordered)
        fn(slots_[entry.slot]);
}

template <typename Pred>
std::size_t
MessageQueue::removeMatching(Pred &&matches)
{
    // Single-pass filter over the heap keys; delivery order of survivors
    // is unaffected because their (when, seq) keys are, so one re-heapify
    // restores the invariant. The old per-match erase loop was O(n²).
    std::size_t out = 0;
    for (const HeapEntry &entry : heap_) {
        if (matches(slots_[entry.slot])) {
            // Release the payload now: removal must drop whatever the
            // callback closure keeps alive, exactly like the old erase.
            slots_[entry.slot] = Message();
            free_slots_.push_back(entry.slot);
        } else {
            heap_[out++] = entry;
        }
    }
    const std::size_t removed = heap_.size() - out;
    if (removed == 0)
        return 0;
    heap_.resize(out);
    if (heap_.empty()) {
        slots_.clear();
        free_slots_.clear();
    } else {
        std::make_heap(heap_.begin(), heap_.end(), laterThan);
    }
    return removed;
}

std::size_t
MessageQueue::removeByToken(const void *token)
{
    return removeMatching(
        [token](const Message &m) { return m.token == token; });
}

std::size_t
MessageQueue::removeByWhat(const void *token, int what)
{
    return removeMatching([token, what](const Message &m) {
        return m.token == token && m.what == what;
    });
}

} // namespace rchdroid
