#include "os/message_queue.h"

#include <algorithm>

#include "platform/logging.h"

namespace rchdroid {

void
MessageQueue::enqueue(Message msg)
{
    RCH_ASSERT(msg.callback != nullptr, "message without callback: ", msg.tag);
    const std::uint64_t seq = next_seq_++;
    // Find the insertion point: strictly after every message with an
    // earlier-or-equal `when` (FIFO among equals).
    std::size_t pos = messages_.size();
    while (pos > 0 && messages_[pos - 1].when > msg.when)
        --pos;
    messages_.insert(messages_.begin() + static_cast<std::ptrdiff_t>(pos),
                     std::move(msg));
    seqs_.insert(seqs_.begin() + static_cast<std::ptrdiff_t>(pos), seq);
}

std::optional<SimTime>
MessageQueue::nextWhen() const
{
    if (messages_.empty())
        return std::nullopt;
    return messages_.front().when;
}

std::optional<Message>
MessageQueue::popDue(SimTime now_or_later)
{
    if (messages_.empty() || messages_.front().when > now_or_later)
        return std::nullopt;
    return popFront();
}

std::optional<Message>
MessageQueue::popFront()
{
    if (messages_.empty())
        return std::nullopt;
    Message msg = std::move(messages_.front());
    messages_.erase(messages_.begin());
    seqs_.erase(seqs_.begin());
    return msg;
}

std::size_t
MessageQueue::removeByToken(const void *token)
{
    std::size_t removed = 0;
    for (std::size_t i = messages_.size(); i-- > 0;) {
        if (messages_[i].token == token) {
            messages_.erase(messages_.begin() + static_cast<std::ptrdiff_t>(i));
            seqs_.erase(seqs_.begin() + static_cast<std::ptrdiff_t>(i));
            ++removed;
        }
    }
    return removed;
}

std::size_t
MessageQueue::removeByWhat(const void *token, int what)
{
    std::size_t removed = 0;
    for (std::size_t i = messages_.size(); i-- > 0;) {
        if (messages_[i].token == token && messages_[i].what == what) {
            messages_.erase(messages_.begin() + static_cast<std::ptrdiff_t>(i));
            seqs_.erase(seqs_.begin() + static_cast<std::ptrdiff_t>(i));
            ++removed;
        }
    }
    return removed;
}

} // namespace rchdroid
