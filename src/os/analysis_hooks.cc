#include "os/analysis_hooks.h"

namespace rchdroid::analysis {

namespace detail {
thread_local Hooks *g_hooks = nullptr;
} // namespace detail

RCHDROID_NO_SANITIZE_NULL void
setHooks(Hooks *hooks)
{
    detail::g_hooks = hooks;
}

} // namespace rchdroid::analysis
