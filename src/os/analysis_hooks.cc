#include "os/analysis_hooks.h"

namespace rchdroid::analysis {

namespace detail {
Hooks *g_hooks = nullptr;
} // namespace detail

void
setHooks(Hooks *hooks)
{
    detail::g_hooks = hooks;
}

} // namespace rchdroid::analysis
