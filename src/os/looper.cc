#include "os/looper.h"

#include <algorithm>
#include <utility>

#include "os/analysis_hooks.h"
#include "platform/logging.h"
#include "platform/metrics.h"
#include "platform/tracing.h"

namespace rchdroid {

thread_local Looper *Looper::current_ = nullptr;

Looper::Looper(SimScheduler &scheduler, std::string name)
    : scheduler_(scheduler), name_(std::move(name))
{
    if (auto *hooks = analysis::hooks())
        hooks->onLooperCreated(*this);
}

Looper::~Looper()
{
    if (wakeup_event_ != kInvalidEventId)
        scheduler_.cancel(wakeup_event_);
    if (auto *hooks = analysis::hooks())
        hooks->onLooperDestroyed(*this);
}

void
Looper::enqueue(Message msg)
{
    msg.when = std::max(msg.when, scheduler_.now());
    msg.analysis_id = ++next_msg_id_;
    if (auto *hooks = analysis::hooks())
        hooks->onMessageSend(*this, msg.analysis_id, msg.when, msg.tag);
#if RCHDROID_TRACING
    // Producer side of the causal flow edge. Three cases:
    //  - posted from inside some looper's dispatch: fresh flow id, and
    //    the flow-start lands at the post site inside the producer's
    //    dispatch span (cost-aware clock);
    //  - pre-set id (explicitly threaded chain, e.g. AsyncTask): the
    //    producer already emitted its own start, mark the hand-off with
    //    a step when we are inside a span to land it in;
    //  - posted from a raw scheduler event carrying a pending causal id
    //    (a binder leg): inherit silently — the edge spans the binder
    //    send site to this message's dispatch, so the binder latency
    //    counts as queue wait.
    if (trace::Tracer *tracer = trace::Tracer::current()) {
        Looper *producer = current();
        const bool in_dispatch = producer != nullptr &&
                                 producer->isDispatching();
        if (msg.causal_id != 0) {
            if (in_dispatch)
                tracer->flowAt(trace::Phase::kFlowStep, tracer->currentLane(),
                               tracer->now(), msg.causal_id,
                               msg.tag.empty() ? "post" : msg.tag,
                               /*bind_enclosing=*/false);
        } else if (in_dispatch) {
            msg.causal_id = tracer->newFlowId();
            tracer->flowAt(trace::Phase::kFlowStart, tracer->currentLane(),
                           tracer->now(), msg.causal_id,
                           msg.tag.empty() ? "post" : msg.tag,
                           /*bind_enclosing=*/false);
        } else if (tracer->pendingCausal() != 0) {
            msg.causal_id = tracer->pendingCausal();
        }
    }
#endif
    queue_.enqueue(std::move(msg));
    metrics::observe(metrics::Histogram::kQueueDepth,
                     static_cast<double>(queue_.size()));
    armWakeup();
}

void
Looper::post(std::function<void()> fn, SimDuration delay, SimDuration cost,
             std::string tag)
{
    Message msg;
    msg.callback = std::move(fn);
    msg.when = scheduler_.now() + delay;
    msg.cost = cost;
    msg.tag = std::move(tag);
    enqueue(std::move(msg));
}

void
Looper::consumeCpu(SimDuration extra)
{
    RCH_ASSERT(dispatching_, "consumeCpu outside a dispatch on ", name_);
    RCH_ASSERT(extra >= 0, "negative cpu cost ", extra);
    current_cost_ += extra;
}

SimTime
Looper::currentCostEnd() const
{
    RCH_ASSERT(dispatching_, "currentCostEnd outside a dispatch on ", name_);
    return current_start_ + current_cost_;
}

std::size_t
Looper::removeByToken(const void *token)
{
    return queue_.removeByToken(token);
}

std::size_t
Looper::removeByWhat(const void *token, int what)
{
    return queue_.removeByWhat(token, what);
}

void
Looper::armWakeup()
{
    if (dispatching_) {
        // Re-armed after the in-flight dispatch finishes.
        return;
    }
    auto next = queue_.nextWhen();
    if (!next) {
        if (wakeup_event_ != kInvalidEventId) {
            scheduler_.cancel(wakeup_event_);
            wakeup_event_ = kInvalidEventId;
        }
        return;
    }
    const SimTime target =
        std::max({*next, busy_until_, scheduler_.now()});
    if (wakeup_event_ != kInvalidEventId)
        scheduler_.cancel(wakeup_event_);
    // The label makes this wakeup visible to the model checker's
    // NondetSeam as "this looper is runnable": a looper has at most one
    // armed wakeup, so the label names the simulated thread uniquely.
    wakeup_event_ = scheduler_.scheduleAt(target, [this] { onWakeup(); },
                                          EventLabel{this, name_.c_str()});
}

void
Looper::onWakeup()
{
    wakeup_event_ = kInvalidEventId;
    auto msg = queue_.popDue(scheduler_.now());
    if (!msg) {
        // The head message moved (removed or re-ordered); re-arm.
        armWakeup();
        return;
    }

    dispatching_ = true;
    current_start_ = scheduler_.now();
    current_cost_ = msg->cost;
    current_tag_ = std::move(msg->tag);
    Looper *previous_current = current();
    setCurrent(this);
    if (auto *hooks = analysis::hooks())
        hooks->onDispatchBegin(*this, msg->analysis_id, current_tag_);
#if RCHDROID_TRACING
    // One thread-local load each for the registry and the tracer; the
    // pointers are reused after the callback so the per-dispatch cost
    // of disabled instrumentation stays at two loads + two branches.
    metrics::MetricsRegistry *registry = metrics::MetricsRegistry::current();
    if (registry) {
        registry->add(metrics::Counter::kMessagesDispatched);
        registry->observe(
            metrics::Histogram::kDispatchLatencyUs,
            static_cast<double>(current_start_ - msg->when) / 1000.0);
    }
    // Mirror the dispatch as a span on this looper's trace lane. The B
    // lands at the dispatch start; nested TraceScopes inside the
    // callback stamp themselves with the cost-aware clock, so they nest
    // inside [start, cost end] with real widths.
    trace::Tracer *tracer = trace::Tracer::current();
    std::uint32_t previous_lane = 0;
    if (tracer) {
        previous_lane = tracer->currentLane();
        tracer->setCurrentLane(tracer->laneId(name_));
        tracer->beginOnAt(tracer->currentLane(), current_start_,
                          current_tag_.empty() ? "message" : current_tag_,
                          "dispatch");
        // Consumer side of the causal edge: bound to the dispatch span
        // just opened, at its begin, so the profiler reads queue wait
        // as (consumer span begin - producer flow ts).
        if (msg->causal_id != 0) {
            tracer->flowAt(msg->causal_continues ? trace::Phase::kFlowStep
                                                 : trace::Phase::kFlowEnd,
                           tracer->currentLane(), current_start_,
                           msg->causal_id,
                           current_tag_.empty() ? "message" : current_tag_,
                           /*bind_enclosing=*/true);
        }
    }
#endif

    msg->callback();

    if (auto *hooks = analysis::hooks())
        hooks->onDispatchEnd(*this);
    setCurrent(previous_current);
    busy_until_ = current_start_ + current_cost_;
    total_busy_ += current_cost_;
    ++dispatched_;
#if RCHDROID_TRACING
    if (registry) {
        registry->observe(metrics::Histogram::kDispatchCostUs,
                          static_cast<double>(current_cost_) / 1000.0);
    }
    if (tracer) {
        tracer->endOnAt(tracer->currentLane(), busy_until_);
        tracer->setCurrentLane(previous_lane);
    }
#endif
    if (observer_ && current_cost_ > 0) {
        observer_->onBusyInterval(name_, current_start_, busy_until_,
                                  current_tag_);
    }
    dispatching_ = false;
    current_tag_.clear();
    armWakeup();
}

} // namespace rchdroid
