#include "os/scheduler.h"

#include <utility>

#include "platform/logging.h"

namespace rchdroid {

namespace {

/** Hard cap so a buggy self-rescheduling event cannot hang a test run. */
constexpr std::uint64_t kMaxEventsPerRun = 200'000'000;

} // namespace

EventId
SimScheduler::schedule(SimDuration delay, std::function<void()> fn)
{
    RCH_ASSERT(delay >= 0, "negative delay ", delay);
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
SimScheduler::scheduleAt(SimTime when, std::function<void()> fn)
{
    RCH_ASSERT(when >= now_, "scheduleAt in the past: when=", when,
               " now=", now_);
    RCH_ASSERT(fn != nullptr, "null event function");
    const EventId id = next_id_++;
    queue_.push(Event{when, next_seq_++, id, std::move(fn)});
    return id;
}

bool
SimScheduler::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    // Lazy cancellation: mark a tombstone; runNext() skips it.
    if (id >= next_id_)
        return false;
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    return inserted;
}

bool
SimScheduler::runNext()
{
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        auto cancelled_it = cancelled_.find(ev.id);
        if (cancelled_it != cancelled_.end()) {
            cancelled_.erase(cancelled_it);
            continue;
        }
        RCH_ASSERT(ev.when >= now_, "time went backwards");
        now_ = ev.when;
        ++executed_;
        ev.fn();
        return true;
    }
    return false;
}

void
SimScheduler::runUntil(SimTime limit)
{
    std::uint64_t guard = 0;
    while (!queue_.empty() && queue_.top().when <= limit) {
        if (!runNext())
            break;
        RCH_ASSERT(++guard < kMaxEventsPerRun, "event storm before ",
                   formatSimTime(limit));
    }
    if (now_ < limit)
        now_ = limit;
}

void
SimScheduler::runUntilIdle()
{
    std::uint64_t guard = 0;
    while (runNext()) {
        RCH_ASSERT(++guard < kMaxEventsPerRun, "runUntilIdle event storm");
    }
}

bool
SimScheduler::step()
{
    return runNext();
}

std::size_t
SimScheduler::pendingEvents() const
{
    return queue_.size();
}

void
SimScheduler::advanceTo(SimTime when)
{
    RCH_ASSERT(when >= now_, "advanceTo in the past");
    RCH_ASSERT(queue_.empty() || queue_.top().when >= when,
               "advanceTo would skip a pending event");
    now_ = when;
}

} // namespace rchdroid
