#include "os/scheduler.h"

#include <algorithm>
#include <utility>

#include "platform/logging.h"

namespace rchdroid {

namespace {

/** Hard cap so a buggy self-rescheduling event cannot hang a test run. */
constexpr std::uint64_t kMaxEventsPerRun = 200'000'000;

} // namespace

EventId
SimScheduler::schedule(SimDuration delay, std::function<void()> fn)
{
    RCH_ASSERT(delay >= 0, "negative delay ", delay);
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
SimScheduler::scheduleAt(SimTime when, std::function<void()> fn)
{
    RCH_ASSERT(when >= now_, "scheduleAt in the past: when=", when,
               " now=", now_);
    RCH_ASSERT(fn != nullptr, "null event function");
    const EventId id = next_id_++;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(fn);
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(fn));
    }
    heap_.push_back(HeapEntry{when, next_seq_++, id, slot});
    std::push_heap(heap_.begin(), heap_.end(), laterThan);
    return id;
}

bool
SimScheduler::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    // Lazy cancellation: mark a tombstone; the dispatch loop skips it.
    if (id >= next_id_)
        return false;
    if (heap_.empty()) {
        // Nothing pending, so the event already ran (or was reclaimed).
        return false;
    }
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    return inserted;
}

std::uint32_t
SimScheduler::popHeadSlot()
{
    std::uint32_t slot;
    if (heap_.size() == 1) {
        slot = heap_.front().slot;
        heap_.clear();
    } else {
        std::pop_heap(heap_.begin(), heap_.end(), laterThan);
        slot = heap_.back().slot;
        heap_.pop_back();
    }
    return slot;
}

void
SimScheduler::releaseSlot(std::uint32_t slot)
{
    if (heap_.empty()) {
        // Quiescent: drop the slab shells so long-lived schedulers do
        // not accumulate slots; capacity is retained.
        slots_.clear();
        free_slots_.clear();
    } else {
        free_slots_.push_back(slot);
    }
}

void
SimScheduler::dropCancelledHead()
{
    while (!cancelled_.empty() && !heap_.empty()) {
        auto cancelled_it = cancelled_.find(heap_.front().id);
        if (cancelled_it == cancelled_.end())
            return;
        cancelled_.erase(cancelled_it);
        const std::uint32_t slot = popHeadSlot();
        // Release the closure now: cancellation must drop whatever it
        // keeps alive, exactly like the old pop-and-discard.
        slots_[slot] = nullptr;
        releaseSlot(slot);
    }
    if (heap_.empty()) {
        // Queue drained: any remaining tombstones name events that
        // already ran (cancel raced the dispatch); purge them.
        cancelled_.clear();
    }
}

bool
SimScheduler::runNext()
{
    dropCancelledHead();
    if (heap_.empty())
        return false;
    const SimTime when = heap_.front().when;
    RCH_ASSERT(when >= now_, "time went backwards");
    const std::uint32_t slot = popHeadSlot();
    std::function<void()> fn = std::move(slots_[slot]);
    releaseSlot(slot);
    now_ = when;
    ++executed_;
    fn();
    return true;
}

void
SimScheduler::runUntil(SimTime limit)
{
    std::uint64_t guard = 0;
    for (;;) {
        dropCancelledHead();
        if (heap_.empty() || heap_.front().when > limit)
            break;
        if (!runNext())
            break;
        RCH_ASSERT(++guard < kMaxEventsPerRun, "event storm before ",
                   formatSimTime(limit));
    }
    if (now_ < limit)
        now_ = limit;
}

void
SimScheduler::runUntilIdle()
{
    std::uint64_t guard = 0;
    while (runNext()) {
        RCH_ASSERT(++guard < kMaxEventsPerRun, "runUntilIdle event storm");
    }
}

bool
SimScheduler::step()
{
    return runNext();
}

std::size_t
SimScheduler::pendingEvents() const
{
    if (cancelled_.empty())
        return heap_.size();
    return static_cast<std::size_t>(
        std::count_if(heap_.begin(), heap_.end(),
                      [this](const HeapEntry &entry) {
                          return cancelled_.find(entry.id) ==
                                 cancelled_.end();
                      }));
}

void
SimScheduler::advanceTo(SimTime when)
{
    RCH_ASSERT(when >= now_, "advanceTo in the past");
    dropCancelledHead();
    RCH_ASSERT(heap_.empty() || heap_.front().when >= when,
               "advanceTo would skip a pending event");
    now_ = when;
}

} // namespace rchdroid
