#include "os/scheduler.h"

#include <algorithm>
#include <utility>

#include "platform/logging.h"
#include "platform/tracing.h"

namespace rchdroid {

namespace {

/** Hard cap so a buggy self-rescheduling event cannot hang a test run. */
constexpr std::uint64_t kMaxEventsPerRun = 200'000'000;

} // namespace

EventId
SimScheduler::schedule(SimDuration delay, std::function<void()> fn,
                       EventLabel label, std::uint64_t causal_id)
{
    RCH_ASSERT(delay >= 0, "negative delay ", delay);
    return scheduleAt(now_ + delay, std::move(fn), label, causal_id);
}

EventId
SimScheduler::scheduleAt(SimTime when, std::function<void()> fn,
                         EventLabel label, std::uint64_t causal_id)
{
    RCH_ASSERT(when >= now_, "scheduleAt in the past: when=", when,
               " now=", now_);
    RCH_ASSERT(fn != nullptr, "null event function");
    const EventId id = next_id_++;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot].fn = std::move(fn);
        slots_[slot].label = label;
        slots_[slot].causal_id = causal_id;
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(EventSlot{std::move(fn), label, causal_id});
    }
    heap_.push_back(HeapEntry{when, next_seq_++, id, slot});
    std::push_heap(heap_.begin(), heap_.end(), laterThan);
    return id;
}

bool
SimScheduler::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    // Lazy cancellation: mark a tombstone; the dispatch loop skips it.
    if (id >= next_id_)
        return false;
    if (heap_.empty()) {
        // Nothing pending, so the event already ran (or was reclaimed).
        return false;
    }
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    return inserted;
}

std::uint32_t
SimScheduler::popHeadSlot()
{
    std::uint32_t slot;
    if (heap_.size() == 1) {
        slot = heap_.front().slot;
        heap_.clear();
    } else {
        std::pop_heap(heap_.begin(), heap_.end(), laterThan);
        slot = heap_.back().slot;
        heap_.pop_back();
    }
    return slot;
}

void
SimScheduler::releaseSlot(std::uint32_t slot)
{
    if (heap_.empty()) {
        // Quiescent: drop the slab shells so long-lived schedulers do
        // not accumulate slots; capacity is retained.
        slots_.clear();
        free_slots_.clear();
    } else {
        free_slots_.push_back(slot);
    }
}

void
SimScheduler::dropCancelledHead()
{
    while (!cancelled_.empty() && !heap_.empty()) {
        auto cancelled_it = cancelled_.find(heap_.front().id);
        if (cancelled_it == cancelled_.end())
            return;
        cancelled_.erase(cancelled_it);
        const std::uint32_t slot = popHeadSlot();
        // Release the closure now: cancellation must drop whatever it
        // keeps alive, exactly like the old pop-and-discard.
        slots_[slot].fn = nullptr;
        slots_[slot].label = EventLabel{};
        slots_[slot].causal_id = 0;
        releaseSlot(slot);
    }
    if (heap_.empty()) {
        // Queue drained: any remaining tombstones name events that
        // already ran (cancel raced the dispatch); purge them.
        cancelled_.clear();
    }
}

void
SimScheduler::dispatchSlot(std::uint32_t slot, SimTime when)
{
    std::function<void()> fn = std::move(slots_[slot].fn);
    slots_[slot].label = EventLabel{};
    const std::uint64_t causal_id = slots_[slot].causal_id;
    slots_[slot].causal_id = 0;
    releaseSlot(slot);
    now_ = when;
    ++executed_;
#if RCHDROID_TRACING
    if (causal_id != 0) {
        if (trace::Tracer *tracer = trace::Tracer::current()) {
            // Carry the flow id across the raw hop: any message a
            // looper accepts inside this callback inherits it (see
            // Looper::enqueue). Save/restore keeps nesting safe.
            const std::uint64_t previous = tracer->pendingCausal();
            tracer->setPendingCausal(causal_id);
            fn();
            tracer->setPendingCausal(previous);
            return;
        }
    }
#else
    (void)causal_id;
#endif
    fn();
}

bool
SimScheduler::runNext()
{
    dropCancelledHead();
    if (heap_.empty())
        return false;
    const SimTime when = heap_.front().when;
    RCH_ASSERT(when >= now_, "time went backwards");
    const std::uint32_t slot = popHeadSlot();
    dispatchSlot(slot, when);
    return true;
}

std::vector<RunnableEvent>
SimScheduler::runnableNow() const
{
    std::vector<RunnableEvent> runnable;
    if (heap_.empty())
        return runnable;
    // The head may be a tombstone (dropCancelledHead is non-const, and
    // this is a pure query), so scan for the live minimum instead.
    bool found = false;
    SimTime min_when = 0;
    for (const HeapEntry &entry : heap_) {
        if (!cancelled_.empty() &&
            cancelled_.find(entry.id) != cancelled_.end())
            continue;
        if (!found || entry.when < min_when) {
            found = true;
            min_when = entry.when;
        }
    }
    if (!found)
        return runnable;
    for (const HeapEntry &entry : heap_) {
        if (entry.when != min_when)
            continue;
        if (!cancelled_.empty() &&
            cancelled_.find(entry.id) != cancelled_.end())
            continue;
        runnable.push_back(RunnableEvent{entry.id, entry.when, entry.seq,
                                         slots_[entry.slot].label});
    }
    std::sort(runnable.begin(), runnable.end(),
              [](const RunnableEvent &a, const RunnableEvent &b) {
                  return dispatch_order::firesBefore({a.when, a.seq},
                                                     {b.when, b.seq});
              });
    return runnable;
}

std::vector<RunnableEvent>
SimScheduler::pendingInOrder() const
{
    std::vector<RunnableEvent> pending;
    pending.reserve(heap_.size());
    for (const HeapEntry &entry : heap_) {
        if (!cancelled_.empty() &&
            cancelled_.find(entry.id) != cancelled_.end())
            continue;
        pending.push_back(RunnableEvent{entry.id, entry.when, entry.seq,
                                        slots_[entry.slot].label});
    }
    std::sort(pending.begin(), pending.end(),
              [](const RunnableEvent &a, const RunnableEvent &b) {
                  return dispatch_order::firesBefore({a.when, a.seq},
                                                     {b.when, b.seq});
              });
    return pending;
}

bool
SimScheduler::runEventById(EventId id)
{
    dropCancelledHead();
    if (id == kInvalidEventId || heap_.empty())
        return false;
    if (cancelled_.find(id) != cancelled_.end())
        return false;
    auto it = std::find_if(
        heap_.begin(), heap_.end(),
        [id](const HeapEntry &entry) { return entry.id == id; });
    if (it == heap_.end())
        return false;
    RCH_ASSERT(it->when == heap_.front().when,
               "runEventById would run the future early: when=", it->when,
               " head=", heap_.front().when);
    const SimTime when = it->when;
    const std::uint32_t slot = it->slot;
    // O(n) removal + re-heapify: the seam only runs under the explorer,
    // where pending sets are tiny and wall-clock is dominated by the
    // schedule fan-out, not by one heap rebuild.
    *it = heap_.back();
    heap_.pop_back();
    std::make_heap(heap_.begin(), heap_.end(), laterThan);
    dispatchSlot(slot, when);
    return true;
}

void
SimScheduler::runUntil(SimTime limit)
{
    std::uint64_t guard = 0;
    for (;;) {
        dropCancelledHead();
        if (heap_.empty() || heap_.front().when > limit)
            break;
        if (!runNext())
            break;
        RCH_ASSERT(++guard < kMaxEventsPerRun, "event storm before ",
                   formatSimTime(limit));
    }
    if (now_ < limit)
        now_ = limit;
}

void
SimScheduler::runUntilIdle()
{
    std::uint64_t guard = 0;
    while (runNext()) {
        RCH_ASSERT(++guard < kMaxEventsPerRun, "runUntilIdle event storm");
    }
}

bool
SimScheduler::step()
{
    return runNext();
}

std::size_t
SimScheduler::pendingEvents() const
{
    if (cancelled_.empty())
        return heap_.size();
    return static_cast<std::size_t>(
        std::count_if(heap_.begin(), heap_.end(),
                      [this](const HeapEntry &entry) {
                          return cancelled_.find(entry.id) ==
                                 cancelled_.end();
                      }));
}

void
SimScheduler::advanceTo(SimTime when)
{
    RCH_ASSERT(when >= now_, "advanceTo in the past");
    dropCancelledHead();
    RCH_ASSERT(heap_.empty() || heap_.front().when >= when,
               "advanceTo would skip a pending event");
    now_ = when;
}

} // namespace rchdroid
