/**
 * @file
 * Handler: the posting façade bound to one Looper, mirroring
 * android.os.Handler.
 *
 * App code (AsyncTask result delivery, view update callbacks) and
 * framework code both talk to loopers through handlers; the handler's
 * identity doubles as the removal token, exactly like Android.
 */
#ifndef RCHDROID_OS_HANDLER_H
#define RCHDROID_OS_HANDLER_H

#include <functional>
#include <string>

#include "os/looper.h"

namespace rchdroid {

/**
 * Posts work to a Looper and supports selective removal of its own
 * pending messages.
 */
class Handler
{
  public:
    /**
     * @param looper Target looper (not owned; must outlive the handler).
     * @param name Trace label prefix for posted messages.
     */
    Handler(Looper &looper, std::string name = {});

    Looper &looper() { return looper_; }
    const std::string &name() const { return name_; }

    /** Post work to run as soon as the looper is free. */
    void post(std::function<void()> fn, SimDuration cost = 0,
              std::string tag = {});

    /** Post work to run no earlier than `delay` from now. */
    void postDelayed(std::function<void()> fn, SimDuration delay,
                     SimDuration cost = 0, std::string tag = {});

    /** Post a message with a `what` id for later selective removal. */
    void sendMessage(int what, std::function<void()> fn,
                     SimDuration delay = 0, SimDuration cost = 0,
                     std::string tag = {});

    /** Remove pending messages posted by this handler with `what`. */
    std::size_t removeMessages(int what);

    /** Remove all pending messages posted by this handler. */
    std::size_t removeCallbacksAndMessages();

  private:
    Looper &looper_;
    std::string name_;
};

} // namespace rchdroid

#endif // RCHDROID_OS_HANDLER_H
