/**
 * @file
 * The discrete-event core that stands in for real threads and clocks.
 *
 * Everything in the simulated Android stack — the app's UI thread, its
 * async worker threads, the system_server, binder IPC latency — executes
 * as events on one SimScheduler in virtual time. This makes the
 * message-ordering phenomena the paper studies (an AsyncTask result
 * arriving after the activity restarted) exactly reproducible.
 */
#ifndef RCHDROID_OS_SCHEDULER_H
#define RCHDROID_OS_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "platform/time.h"

namespace rchdroid {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel returned when scheduling fails (never by this implementation). */
inline constexpr EventId kInvalidEventId = 0;

/**
 * A single-owner discrete-event scheduler over virtual time.
 *
 * Events at equal timestamps run in schedule order (FIFO), which is the
 * property Android's MessageQueue relies on and the lazy-migration logic
 * depends on for determinism.
 */
class SimScheduler
{
  public:
    SimScheduler() = default;

    SimScheduler(const SimScheduler &) = delete;
    SimScheduler &operator=(const SimScheduler &) = delete;

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /** Schedule fn to run after delay (>= 0) from now. */
    EventId schedule(SimDuration delay, std::function<void()> fn);

    /** Schedule fn at an absolute virtual time (>= now). */
    EventId scheduleAt(SimTime when, std::function<void()> fn);

    /**
     * Cancel a pending event.
     * @return true if the event existed and had not yet run.
     */
    bool cancel(EventId id);

    /** Run all events up to and including time limit. */
    void runUntil(SimTime limit);

    /** Run until no events remain (or the safety cap trips). */
    void runUntilIdle();

    /**
     * Run exactly one event if any is pending.
     * @return true if an event ran.
     */
    bool step();

    /** Number of events waiting (including cancelled tombstones). */
    std::size_t pendingEvents() const;

    /** Total events executed since construction (for tests/telemetry). */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Advance the clock with no event execution side effects. Only legal
     * when nothing is pending before the target time; used by harnesses
     * to model idle gaps precisely.
     */
    void advanceTo(SimTime when);

  private:
    struct Event
    {
        SimTime when;
        std::uint64_t seq;
        EventId id;
        std::function<void()> fn;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    bool runNext();

    SimTime now_ = 0;
    std::uint64_t next_seq_ = 1;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    std::unordered_set<EventId> cancelled_;
};

} // namespace rchdroid

#endif // RCHDROID_OS_SCHEDULER_H
