/**
 * @file
 * The discrete-event core that stands in for real threads and clocks.
 *
 * Everything in the simulated Android stack — the app's UI thread, its
 * async worker threads, the system_server, binder IPC latency — executes
 * as events on one SimScheduler in virtual time. This makes the
 * message-ordering phenomena the paper studies (an AsyncTask result
 * arriving after the activity restarted) exactly reproducible.
 */
#ifndef RCHDROID_OS_SCHEDULER_H
#define RCHDROID_OS_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "os/dispatch_order.h"
#include "os/nondet_seam.h"
#include "platform/time.h"

namespace rchdroid {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel returned when scheduling fails (never by this implementation). */
inline constexpr EventId kInvalidEventId = 0;

/**
 * One live scheduler event tied at the minimum `when`, as enumerated by
 * the NondetSeam (SimScheduler::runnableNow). Candidates are listed in
 * dispatch_order (FIFO) order, so index 0 is the event the production
 * scheduler would run next.
 */
struct RunnableEvent
{
    EventId id = kInvalidEventId;
    SimTime when = 0;
    std::uint64_t seq = 0;
    EventLabel label;
};

/**
 * A single-owner discrete-event scheduler over virtual time.
 *
 * Events at equal timestamps run in schedule order (FIFO), the named
 * os/dispatch_order.h contract Android's MessageQueue relies on and the
 * lazy-migration logic depends on for determinism.
 *
 * The pending set is an indexed binary min-heap on (when, seq) rather
 * than a std::priority_queue: the heap orders 32-byte POD keys pointing
 * into a stable slab of closures, so sifts never move a std::function,
 * the dispatch loop moves each closure out exactly once instead of
 * copying it, runUntil() peeks past cancelled tombstones, and
 * pendingEvents() counts live events.
 */
class SimScheduler
{
  public:
    SimScheduler() = default;

    SimScheduler(const SimScheduler &) = delete;
    SimScheduler &operator=(const SimScheduler &) = delete;

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /**
     * Schedule fn to run after delay (>= 0) from now.
     *
     * A non-zero `causal_id` (a trace::Tracer flow id) rides in the
     * event's slab slot and is installed as the tracer's pending causal
     * for the duration of the callback: a Looper message enqueued from
     * inside it inherits the id, stitching a raw-scheduler hop (the
     * binder legs) into the cross-thread flow graph. Opt-in and
     * explicit — wakeups and other infrastructure events pass 0.
     */
    EventId schedule(SimDuration delay, std::function<void()> fn,
                     EventLabel label = {}, std::uint64_t causal_id = 0);

    /** Schedule fn at an absolute virtual time (>= now). */
    EventId scheduleAt(SimTime when, std::function<void()> fn,
                       EventLabel label = {}, std::uint64_t causal_id = 0);

    /**
     * Cancel a pending event.
     * @return true if the event existed and had not yet run.
     */
    bool cancel(EventId id);

    /** Run all events up to and including time limit. */
    void runUntil(SimTime limit);

    /** Run until no events remain (or the safety cap trips). */
    void runUntilIdle();

    /**
     * Run exactly one event if any is pending.
     * @return true if an event ran.
     */
    bool step();

    /** @name NondetSeam (model-checker control; see os/nondet_seam.h)
     * @{
     */
    /**
     * The live events tied at the minimum pending `when`, in
     * dispatch_order (FIFO) order. Empty when nothing is pending.
     * These are exactly the candidates of one scheduling choice: the
     * production scheduler always runs index 0.
     */
    std::vector<RunnableEvent> runnableNow() const;
    /**
     * Every live pending event in delivery (dispatch_order) order, not
     * just the tied head set. O(n log n); used by the model checker to
     * fingerprint the pending set canonically.
     */
    std::vector<RunnableEvent> pendingInOrder() const;
    /**
     * Dispatch one specific event from the current runnableNow() set,
     * advancing the clock to its `when`. Asserts the event is tied at
     * the minimum `when` (an explorer must not run the future early).
     * @return false when the id is unknown or cancelled.
     */
    bool runEventById(EventId id);
    /** @} */

    /** Number of live (non-cancelled) events waiting. */
    std::size_t pendingEvents() const;

    /**
     * Cancelled events still occupying heap slots. Tombstones are
     * reclaimed as the heap pops past them and purged wholesale whenever
     * the queue drains; exposed for tests and telemetry.
     */
    std::size_t cancelledTombstones() const { return cancelled_.size(); }

    /** Total events executed since construction (for tests/telemetry). */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Advance the clock with no event execution side effects. Only legal
     * when nothing is pending before the target time; used by harnesses
     * to model idle gaps precisely.
     */
    void advanceTo(SimTime when);

  private:
    /** Heap key: firing order + the slab slot holding the closure. */
    struct HeapEntry
    {
        SimTime when;
        std::uint64_t seq;
        EventId id;
        std::uint32_t slot;
    };

    /** Slab cell: the closure plus its (optional) NondetSeam label. */
    struct EventSlot
    {
        std::function<void()> fn;
        EventLabel label;
        /** Flow id threaded across this event (see schedule()); 0=none.
         *  Cleared on dispatch and cancellation so a recycled slot can
         *  never leak a stale causal edge to its next occupant. */
        std::uint64_t causal_id = 0;
    };

    /** Heap predicate: the os/dispatch_order.h (when, seq) contract. */
    static bool
    laterThan(const HeapEntry &a, const HeapEntry &b)
    {
        return dispatch_order::firesAfter({a.when, a.seq}, {b.when, b.seq});
    }

    bool runNext();
    /** Pop cancelled events off the heap top; reclaim their tombstones. */
    void dropCancelledHead();
    /** Pop the heap head and return its slab slot. */
    std::uint32_t popHeadSlot();
    /** Return a slot to the free list (or reset the slab on drain). */
    void releaseSlot(std::uint32_t slot);
    /** Take the closure out of `slot`, release it, advance and run. */
    void dispatchSlot(std::uint32_t slot, SimTime when);

    SimTime now_ = 0;
    std::uint64_t next_seq_ = 1;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::vector<HeapEntry> heap_;
    /** Closure slab; slots listed in free_slots_ are vacant. */
    std::vector<EventSlot> slots_;
    std::vector<std::uint32_t> free_slots_;
    std::unordered_set<EventId> cancelled_;
};

} // namespace rchdroid

#endif // RCHDROID_OS_SCHEDULER_H
