/**
 * @file
 * Bundle: the typed key/value state container used for activity state
 * snapshots, mirroring android.os.Bundle.
 *
 * RCHDroid snapshots the shadow-state activity through
 * onSaveInstanceState into a Bundle and replays that Bundle when
 * initialising the sunny-state instance (paper §3.3); the Android-10
 * baseline uses the same mechanism across a restart.
 */
#ifndef RCHDROID_OS_BUNDLE_H
#define RCHDROID_OS_BUNDLE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace rchdroid {

class Bundle;

/** The value types a Bundle can hold. */
using BundleValue = std::variant<std::int64_t,
                                 double,
                                 bool,
                                 std::string,
                                 std::vector<std::int64_t>,
                                 std::vector<std::string>,
                                 std::shared_ptr<Bundle>>;

/**
 * Recursive, typed key/value map.
 *
 * Getter misses return the supplied default, matching android.os.Bundle
 * semantics (this forgiving behaviour matters: the paper's unfixable apps
 * are exactly the ones whose state never lands in any bundle or view).
 */
class Bundle
{
  public:
    Bundle() = default;

    /** @name Typed setters
     * @{
     */
    void putInt(const std::string &key, std::int64_t value);
    void putDouble(const std::string &key, double value);
    void putBool(const std::string &key, bool value);
    void putString(const std::string &key, std::string value);
    void putIntVector(const std::string &key, std::vector<std::int64_t> value);
    void putStringVector(const std::string &key, std::vector<std::string> value);
    void putBundle(const std::string &key, Bundle value);
    /** @} */

    /** @name Typed getters with defaults
     * @{
     */
    std::int64_t getInt(const std::string &key, std::int64_t fallback = 0) const;
    double getDouble(const std::string &key, double fallback = 0.0) const;
    bool getBool(const std::string &key, bool fallback = false) const;
    std::string getString(const std::string &key,
                          const std::string &fallback = {}) const;
    std::vector<std::int64_t> getIntVector(const std::string &key) const;
    std::vector<std::string> getStringVector(const std::string &key) const;
    /** Nested bundle; empty bundle when missing. */
    Bundle getBundle(const std::string &key) const;
    /** @} */

    bool contains(const std::string &key) const;
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    void remove(const std::string &key);
    void clear() { entries_.clear(); }

    /** Keys in sorted order (map iteration order), for diffing in tests. */
    std::vector<std::string> keys() const;

    /**
     * Approximate serialized footprint in bytes, used by the memory model
     * to charge for retained saved-state.
     */
    std::size_t approximateSizeBytes() const;

    /** Deep structural equality. */
    bool operator==(const Bundle &other) const;

    /** Raw entry access for Parcel serialization. */
    const std::map<std::string, BundleValue> &entries() const
    { return entries_; }

  private:
    std::map<std::string, BundleValue> entries_;
};

} // namespace rchdroid

#endif // RCHDROID_OS_BUNDLE_H
