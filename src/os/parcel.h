/**
 * @file
 * Parcel: flat binary serialization for Bundle, mirroring android.os.Parcel.
 *
 * Activity state crosses the simulated binder boundary (ActivityThread ↔
 * ATMS) in parcel form; parcel size also feeds the IPC latency model, so
 * bigger saved state costs proportionally more to ship, as on real
 * Android.
 */
#ifndef RCHDROID_OS_PARCEL_H
#define RCHDROID_OS_PARCEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "platform/status.h"

namespace rchdroid {

class Bundle;

/**
 * A growable byte buffer with typed read/write cursors.
 */
class Parcel
{
  public:
    Parcel() = default;

    /** @name Writers (append at the end)
     * @{
     */
    void writeInt32(std::int32_t v);
    void writeInt64(std::int64_t v);
    void writeDouble(double v);
    void writeBool(bool v);
    void writeString(const std::string &s);
    /** @} */

    /** @name Readers (advance the read cursor)
     * Readers return Internal status on truncated data.
     * @{
     */
    Result<std::int32_t> readInt32();
    Result<std::int64_t> readInt64();
    Result<double> readDouble();
    Result<bool> readBool();
    Result<std::string> readString();
    /** @} */

    std::size_t sizeBytes() const { return data_.size(); }
    std::size_t remaining() const { return data_.size() - read_pos_; }
    void rewind() { read_pos_ = 0; }
    const std::vector<std::uint8_t> &data() const { return data_; }

    /** Serialize a bundle (recursively) into this parcel. */
    void writeBundle(const Bundle &bundle);

    /** Deserialize a bundle previously written by writeBundle. */
    Result<Bundle> readBundle();

  private:
    Status checkAvailable(std::size_t n) const;
    void writeRaw(const void *p, std::size_t n);
    Status readRaw(void *p, std::size_t n);

    std::vector<std::uint8_t> data_;
    std::size_t read_pos_ = 0;
};

/** Convenience: bundle → parcel byte count (memory/IPC sizing). */
std::size_t parcelledSize(const Bundle &bundle);

/** Convenience: deep-copy a bundle through serialization (tests). */
Result<Bundle> roundTripBundle(const Bundle &bundle);

} // namespace rchdroid

#endif // RCHDROID_OS_PARCEL_H
