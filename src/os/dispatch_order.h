/**
 * @file
 * DispatchOrder: the named tie-break contract of the discrete-event
 * core.
 *
 * Every pending-work container in the simulator — SimScheduler's event
 * heap and each Looper's MessageQueue — orders work by the pair
 * (when, seq): earliest virtual delivery time first, FIFO among equal
 * times by arrival ticket. Android's MessageQueue guarantees exactly
 * this (messages posted at the same uptime run in post order), and the
 * lazy-migration and coin-flip logic depend on it for determinism.
 *
 * The contract lives here, in one header, so the production heaps and
 * the model checker's NondetSeam (which enumerates the events tied at
 * the minimum `when` as explicit scheduling choices) can never silently
 * diverge: both compare through these functions, and
 * tests/os/dispatch_order_test.cc pins the semantics.
 */
#ifndef RCHDROID_OS_DISPATCH_ORDER_H
#define RCHDROID_OS_DISPATCH_ORDER_H

#include <cstdint>

#include "platform/time.h"

namespace rchdroid::dispatch_order {

/** The ordering key: virtual delivery time + FIFO arrival ticket. */
struct Key
{
    SimTime when = 0;
    std::uint64_t seq = 0;
};

/**
 * Strict total order "a is delivered before b". (when, seq) pairs are
 * unique within one container because seq is a monotone ticket.
 */
constexpr bool
firesBefore(const Key &a, const Key &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    return a.seq < b.seq;
}

/** Heap predicate "a is delivered after b" (for std min-heaps). */
constexpr bool
firesAfter(const Key &a, const Key &b)
{
    return firesBefore(b, a);
}

/** Two keys are tied when they share a delivery time; FIFO breaks it. */
constexpr bool
tied(const Key &a, const Key &b)
{
    return a.when == b.when;
}

} // namespace rchdroid::dispatch_order

#endif // RCHDROID_OS_DISPATCH_ORDER_H
