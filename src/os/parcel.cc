#include "os/parcel.h"

#include <cstring>

#include "os/bundle.h"
#include "platform/logging.h"

namespace rchdroid {

namespace {

/** Type tags used on the wire for bundle values. */
enum class WireTag : std::int32_t {
    Int = 1,
    Double = 2,
    Bool = 3,
    String = 4,
    IntVector = 5,
    StringVector = 6,
    NestedBundle = 7,
};

} // namespace

void
Parcel::writeRaw(const void *p, std::size_t n)
{
    const auto *bytes = static_cast<const std::uint8_t *>(p);
    data_.insert(data_.end(), bytes, bytes + n);
}

Status
Parcel::checkAvailable(std::size_t n) const
{
    if (read_pos_ + n > data_.size())
        return Status::internal("parcel truncated");
    return Status::ok();
}

Status
Parcel::readRaw(void *p, std::size_t n)
{
    if (auto st = checkAvailable(n); !st)
        return st;
    std::memcpy(p, data_.data() + read_pos_, n);
    read_pos_ += n;
    return Status::ok();
}

void
Parcel::writeInt32(std::int32_t v)
{
    writeRaw(&v, sizeof(v));
}

void
Parcel::writeInt64(std::int64_t v)
{
    writeRaw(&v, sizeof(v));
}

void
Parcel::writeDouble(double v)
{
    writeRaw(&v, sizeof(v));
}

void
Parcel::writeBool(bool v)
{
    const std::uint8_t byte = v ? 1 : 0;
    writeRaw(&byte, 1);
}

void
Parcel::writeString(const std::string &s)
{
    writeInt32(static_cast<std::int32_t>(s.size()));
    writeRaw(s.data(), s.size());
}

Result<std::int32_t>
Parcel::readInt32()
{
    std::int32_t v = 0;
    if (auto st = readRaw(&v, sizeof(v)); !st)
        return st;
    return v;
}

Result<std::int64_t>
Parcel::readInt64()
{
    std::int64_t v = 0;
    if (auto st = readRaw(&v, sizeof(v)); !st)
        return st;
    return v;
}

Result<double>
Parcel::readDouble()
{
    double v = 0;
    if (auto st = readRaw(&v, sizeof(v)); !st)
        return st;
    return v;
}

Result<bool>
Parcel::readBool()
{
    std::uint8_t byte = 0;
    if (auto st = readRaw(&byte, 1); !st)
        return st;
    return byte != 0;
}

Result<std::string>
Parcel::readString()
{
    auto len = readInt32();
    if (!len)
        return len.status();
    if (len.value() < 0)
        return Status::internal("negative string length");
    std::string s(static_cast<std::size_t>(len.value()), '\0');
    if (auto st = readRaw(s.data(), s.size()); !st)
        return st;
    return s;
}

void
Parcel::writeBundle(const Bundle &bundle)
{
    writeInt32(static_cast<std::int32_t>(bundle.entries().size()));
    for (const auto &[key, value] : bundle.entries()) {
        writeString(key);
        struct Writer
        {
            Parcel &p;
            void
            operator()(std::int64_t v) const
            {
                p.writeInt32(static_cast<std::int32_t>(WireTag::Int));
                p.writeInt64(v);
            }
            void
            operator()(double v) const
            {
                p.writeInt32(static_cast<std::int32_t>(WireTag::Double));
                p.writeDouble(v);
            }
            void
            operator()(bool v) const
            {
                p.writeInt32(static_cast<std::int32_t>(WireTag::Bool));
                p.writeBool(v);
            }
            void
            operator()(const std::string &v) const
            {
                p.writeInt32(static_cast<std::int32_t>(WireTag::String));
                p.writeString(v);
            }
            void
            operator()(const std::vector<std::int64_t> &v) const
            {
                p.writeInt32(static_cast<std::int32_t>(WireTag::IntVector));
                p.writeInt32(static_cast<std::int32_t>(v.size()));
                for (auto x : v)
                    p.writeInt64(x);
            }
            void
            operator()(const std::vector<std::string> &v) const
            {
                p.writeInt32(static_cast<std::int32_t>(WireTag::StringVector));
                p.writeInt32(static_cast<std::int32_t>(v.size()));
                for (const auto &x : v)
                    p.writeString(x);
            }
            void
            operator()(const std::shared_ptr<Bundle> &v) const
            {
                p.writeInt32(static_cast<std::int32_t>(WireTag::NestedBundle));
                p.writeBundle(v ? *v : Bundle{});
            }
        };
        std::visit(Writer{*this}, value);
    }
}

Result<Bundle>
Parcel::readBundle()
{
    auto count = readInt32();
    if (!count)
        return count.status();
    if (count.value() < 0)
        return Status::internal("negative bundle entry count");

    Bundle out;
    for (std::int32_t i = 0; i < count.value(); ++i) {
        auto key = readString();
        if (!key)
            return key.status();
        auto tag = readInt32();
        if (!tag)
            return tag.status();
        switch (static_cast<WireTag>(tag.value())) {
          case WireTag::Int: {
            auto v = readInt64();
            if (!v)
                return v.status();
            out.putInt(key.value(), v.value());
            break;
          }
          case WireTag::Double: {
            auto v = readDouble();
            if (!v)
                return v.status();
            out.putDouble(key.value(), v.value());
            break;
          }
          case WireTag::Bool: {
            auto v = readBool();
            if (!v)
                return v.status();
            out.putBool(key.value(), v.value());
            break;
          }
          case WireTag::String: {
            auto v = readString();
            if (!v)
                return v.status();
            out.putString(key.value(), v.value());
            break;
          }
          case WireTag::IntVector: {
            auto n = readInt32();
            if (!n)
                return n.status();
            std::vector<std::int64_t> vec;
            vec.reserve(static_cast<std::size_t>(std::max(n.value(), 0)));
            for (std::int32_t j = 0; j < n.value(); ++j) {
                auto v = readInt64();
                if (!v)
                    return v.status();
                vec.push_back(v.value());
            }
            out.putIntVector(key.value(), std::move(vec));
            break;
          }
          case WireTag::StringVector: {
            auto n = readInt32();
            if (!n)
                return n.status();
            std::vector<std::string> vec;
            vec.reserve(static_cast<std::size_t>(std::max(n.value(), 0)));
            for (std::int32_t j = 0; j < n.value(); ++j) {
                auto v = readString();
                if (!v)
                    return v.status();
                vec.push_back(v.value());
            }
            out.putStringVector(key.value(), std::move(vec));
            break;
          }
          case WireTag::NestedBundle: {
            auto v = readBundle();
            if (!v)
                return v.status();
            out.putBundle(key.value(), std::move(v).value());
            break;
          }
          default:
            return Status::internal("unknown wire tag");
        }
    }
    return out;
}

std::size_t
parcelledSize(const Bundle &bundle)
{
    Parcel p;
    p.writeBundle(bundle);
    return p.sizeBytes();
}

Result<Bundle>
roundTripBundle(const Bundle &bundle)
{
    Parcel p;
    p.writeBundle(bundle);
    return p.readBundle();
}

} // namespace rchdroid
