/**
 * @file
 * NondetSeam: the scheduler-level seam that exposes scheduling
 * nondeterminism to an external explorer (src/mc/).
 *
 * The production simulator is deterministic: SimScheduler resolves ties
 * at equal virtual times FIFO (os/dispatch_order.h). Real Android makes
 * no such promise across threads — two loopers whose next messages are
 * due "now" may run in either order. The model checker needs to drive
 * both orders, so:
 *
 *  - every scheduled event may carry an EventLabel naming its logical
 *    owner (a looper wakeup, a binder leg, a harness timer); labels are
 *    stored in the closure slab, not in the 32-byte heap keys, so the
 *    hot sift path is unchanged;
 *  - SimScheduler::runnableNow() enumerates the live events tied at the
 *    minimum `when` — the candidate set of one scheduling choice;
 *  - SimScheduler::runEventById() dispatches one chosen candidate,
 *    overriding the FIFO default.
 *
 * Production code never calls the last two; when nobody does, behaviour
 * is byte-for-byte the FIFO contract. The explorer replays a schedule
 * as the sequence of indices it picked at each choice point, which is
 * deterministic because candidate enumeration follows dispatch_order.
 */
#ifndef RCHDROID_OS_NONDET_SEAM_H
#define RCHDROID_OS_NONDET_SEAM_H

namespace rchdroid {

/**
 * Optional identity of a scheduled event, for the explorer only.
 *
 * `name` must outlive the event (loopers pass their own name storage;
 * static strings otherwise). Events without a label are treated by the
 * explorer as conservatively dependent on everything (never commuted
 * away by partial-order reduction).
 */
struct EventLabel
{
    /** The owning object (e.g. the Looper), for grouping; may be null. */
    const void *owner = nullptr;
    /** Stable human-readable owner name; null for unlabeled events. */
    const char *name = nullptr;
};

} // namespace rchdroid

#endif // RCHDROID_OS_NONDET_SEAM_H
