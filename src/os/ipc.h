/**
 * @file
 * IpcChannel: a modelled binder transaction path between two simulated
 * processes (the app's ActivityThread and the system_server's ATMS).
 *
 * The paper measures "the time between the configuration change arriving
 * at the ATMS and the corresponding activity resumed"; every leg of that
 * path crosses this channel, so its latency model (fixed cost plus a
 * per-byte term for parcelled payloads) is part of the calibration in
 * sim::DeviceModel.
 */
#ifndef RCHDROID_OS_IPC_H
#define RCHDROID_OS_IPC_H

#include <cstdint>
#include <functional>
#include <string>

#include "os/looper.h"
#include "platform/time.h"

namespace rchdroid {

/** Latency parameters of a binder-like transport. */
struct IpcLatencyModel
{
    /** Fixed one-way transaction cost (syscall + binder driver). */
    SimDuration base_latency = 0;
    /** Additional cost per KiB of parcelled payload. */
    SimDuration per_kib = 0;

    /** One-way latency for a payload of `bytes`. */
    SimDuration
    oneWay(std::size_t bytes) const
    {
        const auto kib = static_cast<SimDuration>((bytes + 1023) / 1024);
        return base_latency + per_kib * kib;
    }
};

/**
 * A one-direction message path into a destination looper.
 *
 * Callers never block: the simulated binder is used oneway/async in the
 * launch path (as on modern Android), with replies travelling on the
 * opposite channel.
 */
class IpcChannel
{
  public:
    /**
     * @param destination Looper of the receiving process/thread.
     * @param model Latency parameters.
     * @param name Trace label, e.g. "app->atms".
     */
    IpcChannel(Looper &destination, IpcLatencyModel model, std::string name);

    /**
     * Deliver fn to the destination after the modelled latency.
     * @param fn Work to run on the destination looper.
     * @param payload_bytes Parcel size for the per-byte latency term.
     * @param handler_cost CPU cost of handling the call at the receiver.
     * @param tag Trace label of this transaction.
     */
    void call(std::function<void()> fn, std::size_t payload_bytes = 0,
              SimDuration handler_cost = 0, std::string tag = {});

    const std::string &name() const { return name_; }
    std::uint64_t transactionCount() const { return transactions_; }
    const IpcLatencyModel &model() const { return model_; }

  private:
    Looper &destination_;
    IpcLatencyModel model_;
    std::string name_;
    std::uint64_t transactions_ = 0;
};

} // namespace rchdroid

#endif // RCHDROID_OS_IPC_H
