#include "os/handler.h"

#include <utility>

namespace rchdroid {

Handler::Handler(Looper &looper, std::string name)
    : looper_(looper), name_(std::move(name))
{
}

void
Handler::post(std::function<void()> fn, SimDuration cost, std::string tag)
{
    postDelayed(std::move(fn), 0, cost, std::move(tag));
}

void
Handler::postDelayed(std::function<void()> fn, SimDuration delay,
                     SimDuration cost, std::string tag)
{
    Message msg;
    msg.callback = std::move(fn);
    msg.when = looper_.now() + delay;
    msg.cost = cost;
    msg.token = this;
    msg.tag = tag.empty() ? name_ : std::move(tag);
    looper_.enqueue(std::move(msg));
}

void
Handler::sendMessage(int what, std::function<void()> fn, SimDuration delay,
                     SimDuration cost, std::string tag)
{
    Message msg;
    msg.callback = std::move(fn);
    msg.when = looper_.now() + delay;
    msg.cost = cost;
    msg.what = what;
    msg.token = this;
    msg.tag = tag.empty() ? name_ : std::move(tag);
    looper_.enqueue(std::move(msg));
}

std::size_t
Handler::removeMessages(int what)
{
    return looper_.removeByWhat(this, what);
}

std::size_t
Handler::removeCallbacksAndMessages()
{
    return looper_.removeByToken(this);
}

} // namespace rchdroid
