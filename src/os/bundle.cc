#include "os/bundle.h"

namespace rchdroid {

void
Bundle::putInt(const std::string &key, std::int64_t value)
{
    entries_[key] = value;
}

void
Bundle::putDouble(const std::string &key, double value)
{
    entries_[key] = value;
}

void
Bundle::putBool(const std::string &key, bool value)
{
    entries_[key] = value;
}

void
Bundle::putString(const std::string &key, std::string value)
{
    entries_[key] = std::move(value);
}

void
Bundle::putIntVector(const std::string &key, std::vector<std::int64_t> value)
{
    entries_[key] = std::move(value);
}

void
Bundle::putStringVector(const std::string &key, std::vector<std::string> value)
{
    entries_[key] = std::move(value);
}

void
Bundle::putBundle(const std::string &key, Bundle value)
{
    entries_[key] = std::make_shared<Bundle>(std::move(value));
}

namespace {

template <typename T>
const T *
lookup(const std::map<std::string, BundleValue> &entries, const std::string &key)
{
    auto it = entries.find(key);
    if (it == entries.end())
        return nullptr;
    return std::get_if<T>(&it->second);
}

} // namespace

std::int64_t
Bundle::getInt(const std::string &key, std::int64_t fallback) const
{
    const auto *v = lookup<std::int64_t>(entries_, key);
    return v ? *v : fallback;
}

double
Bundle::getDouble(const std::string &key, double fallback) const
{
    const auto *v = lookup<double>(entries_, key);
    return v ? *v : fallback;
}

bool
Bundle::getBool(const std::string &key, bool fallback) const
{
    const auto *v = lookup<bool>(entries_, key);
    return v ? *v : fallback;
}

std::string
Bundle::getString(const std::string &key, const std::string &fallback) const
{
    const auto *v = lookup<std::string>(entries_, key);
    return v ? *v : fallback;
}

std::vector<std::int64_t>
Bundle::getIntVector(const std::string &key) const
{
    const auto *v = lookup<std::vector<std::int64_t>>(entries_, key);
    return v ? *v : std::vector<std::int64_t>{};
}

std::vector<std::string>
Bundle::getStringVector(const std::string &key) const
{
    const auto *v = lookup<std::vector<std::string>>(entries_, key);
    return v ? *v : std::vector<std::string>{};
}

Bundle
Bundle::getBundle(const std::string &key) const
{
    const auto *v = lookup<std::shared_ptr<Bundle>>(entries_, key);
    return (v && *v) ? **v : Bundle{};
}

bool
Bundle::contains(const std::string &key) const
{
    return entries_.count(key) > 0;
}

void
Bundle::remove(const std::string &key)
{
    entries_.erase(key);
}

std::vector<std::string>
Bundle::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[key, value] : entries_) {
        (void)value;
        out.push_back(key);
    }
    return out;
}

namespace {

std::size_t
valueSize(const BundleValue &value)
{
    struct Sizer
    {
        std::size_t operator()(std::int64_t) const { return 8; }
        std::size_t operator()(double) const { return 8; }
        std::size_t operator()(bool) const { return 1; }
        std::size_t
        operator()(const std::string &s) const
        {
            return 4 + s.size();
        }
        std::size_t
        operator()(const std::vector<std::int64_t> &v) const
        {
            return 4 + v.size() * 8;
        }
        std::size_t
        operator()(const std::vector<std::string> &v) const
        {
            std::size_t n = 4;
            for (const auto &s : v)
                n += 4 + s.size();
            return n;
        }
        std::size_t
        operator()(const std::shared_ptr<Bundle> &b) const
        {
            return b ? b->approximateSizeBytes() : 0;
        }
    };
    return std::visit(Sizer{}, value);
}

bool
valueEquals(const BundleValue &a, const BundleValue &b)
{
    if (a.index() != b.index())
        return false;
    // Nested bundles are held by shared_ptr; compare structurally.
    if (const auto *pa = std::get_if<std::shared_ptr<Bundle>>(&a)) {
        const auto *pb = std::get_if<std::shared_ptr<Bundle>>(&b);
        if (!*pa || !*pb)
            return *pa == *pb;
        return **pa == **pb;
    }
    return a == b;
}

} // namespace

std::size_t
Bundle::approximateSizeBytes() const
{
    std::size_t total = 8;
    for (const auto &[key, value] : entries_)
        total += 4 + key.size() + 1 + valueSize(value);
    return total;
}

bool
Bundle::operator==(const Bundle &other) const
{
    if (entries_.size() != other.entries_.size())
        return false;
    auto it = entries_.begin();
    auto jt = other.entries_.begin();
    for (; it != entries_.end(); ++it, ++jt) {
        if (it->first != jt->first || !valueEquals(it->second, jt->second))
            return false;
    }
    return true;
}

} // namespace rchdroid
