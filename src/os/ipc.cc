#include "os/ipc.h"

#include <utility>

namespace rchdroid {

IpcChannel::IpcChannel(Looper &destination, IpcLatencyModel model,
                       std::string name)
    : destination_(destination), model_(model), name_(std::move(name))
{
}

void
IpcChannel::call(std::function<void()> fn, std::size_t payload_bytes,
                 SimDuration handler_cost, std::string tag)
{
    ++transactions_;
    Message msg;
    msg.callback = std::move(fn);
    // Transactions issued from inside a costly dispatch depart when the
    // sender's logical work completes, not at dispatch start; senders
    // model that by posting continuations — here we only add wire time.
    msg.when = destination_.now() + model_.oneWay(payload_bytes);
    msg.cost = handler_cost;
    msg.tag = tag.empty() ? name_ : std::move(tag);
    destination_.enqueue(std::move(msg));
}

} // namespace rchdroid
