/**
 * @file
 * The instrumentation seam between the simulated framework and the
 * analysis subsystem (src/analysis/).
 *
 * Lower layers (os/, view/, app/, ams/, rch/) report notable events —
 * looper message sends and dispatches, shared-state accesses, lifecycle
 * transitions, synchronisation barriers — through the Hooks interface
 * installed here. When no hooks are installed every call site reduces to
 * one pointer load and a branch, so release-mode simulation pays
 * essentially nothing.
 *
 * The seam deliberately lives in os/ (the lowest instrumented layer) and
 * speaks in opaque identities (`const void *`) plus raw enum values, so
 * that os/ never depends on the higher layers whose objects it reports
 * about. The analysis library casts identities back to the types it
 * knows (it links against all instrumented layers).
 */
#ifndef RCHDROID_OS_ANALYSIS_HOOKS_H
#define RCHDROID_OS_ANALYSIS_HOOKS_H

#include <cstdint>
#include <string>

#include "platform/compiler.h"
#include "platform/time.h"

namespace rchdroid {

class Looper;

namespace analysis {

/**
 * Receiver of framework instrumentation events. All methods default to
 * no-ops so implementations override only what they consume.
 *
 * Identity conventions:
 *  - loopers are passed as Looper& (os-level type, always available);
 *  - shared objects (views, records, trees) as `const void *` plus a
 *    human-readable kind/label;
 *  - lifecycle states as their raw std::uint8_t enum values (os/ cannot
 *    see app/lifecycle.h; the analysis layer casts back).
 */
class Hooks
{
  public:
    virtual ~Hooks() = default;

    /** @name Looper (simulated thread) events
     * @{
     */
    virtual void onLooperCreated(Looper &looper) { (void)looper; }
    virtual void onLooperDestroyed(Looper &looper) { (void)looper; }
    /**
     * A message was enqueued to `target`. The sending thread, if any, is
     * Looper::current() at call time; enqueues from outside any dispatch
     * (harness code, raw scheduler events) have no sender and create no
     * happens-before edge. `when` is the (clamped) due time the queue
     * will order it by and `tag` its debug tag — the model checker uses
     * both to recognise same-slot post collisions (DESIGN.md §14).
     */
    virtual void onMessageSend(Looper &target, std::uint64_t msg_id,
                               SimTime when, const std::string &tag)
    { (void)target; (void)msg_id; (void)when; (void)tag; }
    /** `looper` began dispatching the message `msg_id`. */
    virtual void onDispatchBegin(Looper &looper, std::uint64_t msg_id,
                                 const std::string &tag)
    { (void)looper; (void)msg_id; (void)tag; }
    /** The in-flight dispatch on `looper` completed. */
    virtual void onDispatchEnd(Looper &looper) { (void)looper; }
    /** @} */

    /**
     * A framework-level synchronisation barrier on `scope` (e.g. the
     * shadow GC collecting an instance, or a coin flip handing the
     * foreground over): orders everything the current thread did before
     * the barrier with everything any thread does after its next
     * barrier on the same scope.
     */
    virtual void onSyncBarrier(const void *scope, const char *label)
    { (void)scope; (void)label; }

    /**
     * A read or write of shared framework state (a view property, the
     * view-tree map, an activity record). Ignored when no simulated
     * thread is executing (Looper::current() == nullptr), since such
     * accesses come from the test harness, which is outside the
     * concurrency model.
     */
    virtual void onSharedAccess(const void *object, const char *kind,
                                const std::string &label, bool is_write)
    { (void)object; (void)kind; (void)label; (void)is_write; }

    /** `object` was destructed; any tracked access history is stale. */
    virtual void onObjectGone(const void *object) { (void)object; }

    /** @name Activity lifecycle events
     * @{
     */
    /**
     * An activity is about to transition `from` → `to` (raw
     * LifecycleState values). Reported before validity is enforced so a
     * checker observes illegal attempts too. `scope` groups activities
     * of one process (the hosting ActivityThread), null for bare test
     * instances.
     */
    virtual void onLifecycleTransition(const void *activity,
                                       const void *scope,
                                       const std::string &component,
                                       std::uint64_t instance_id,
                                       std::uint8_t from, std::uint8_t to)
    {
        (void)activity; (void)scope; (void)component;
        (void)instance_id; (void)from; (void)to;
    }
    /** An activity instance was destructed. */
    virtual void onActivityGone(const void *activity) { (void)activity; }
    /** @} */

    /**
     * A mutation was attempted on a view whose tree is already
     * destroyed. Whether this is a simulated app bug (the crash
     * scenario under study, absorbed by the crash guard) or the
     * framework violating its own protocol is decided by the receiver
     * from the app-code scope events below.
     */
    virtual void onDestroyedViewMutation(const void *view, const char *kind,
                                         const std::string &label)
    { (void)view; (void)kind; (void)label; }

    /** @name App-code scope (ActivityThread crash guard)
     * @{
     */
    virtual void onAppCodeBegin() {}
    virtual void onAppCodeEnd() {}
    /** @} */
};

namespace detail {
/** The installed hooks, or null. Use hooks()/setHooks(), not this. */
extern thread_local Hooks *g_hooks;
} // namespace detail

/** The installed hooks instance, or null when analysis is off. */
RCHDROID_NO_SANITIZE_NULL inline Hooks *
hooks()
{
    return detail::g_hooks;
}

/**
 * Install (or, with null, remove) this thread's hooks. The seam is
 * thread-local so independent simulations on parallel experiment worker
 * threads each see only their own analyzer; one simulation is still
 * single-threaded. Callers are expected to scope installation RAII-
 * style (see analysis::ScopedAnalyzer).
 */
void setHooks(Hooks *hooks);

} // namespace analysis
} // namespace rchdroid

#endif // RCHDROID_OS_ANALYSIS_HOOKS_H
