/**
 * @file
 * MessageQueue: the ordered pending-work list behind each Looper,
 * mirroring android.os.MessageQueue.
 *
 * Messages are ordered by delivery time, FIFO among equal times. Each
 * message carries a virtual CPU cost: the owning looper is busy for that
 * long after dispatch, which serialises the simulated thread and feeds
 * the CPU-usage traces of Fig. 9.
 */
#ifndef RCHDROID_OS_MESSAGE_QUEUE_H
#define RCHDROID_OS_MESSAGE_QUEUE_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "os/dispatch_order.h"
#include "platform/time.h"

namespace rchdroid {

/**
 * One unit of work queued to a looper.
 *
 * Modelled on android.os.Message with a Runnable callback; `what` and the
 * token support selective removal (Handler::removeMessages).
 */
struct Message
{
    /** Dispatch callback; required. */
    std::function<void()> callback;
    /** Earliest virtual time at which the message may run. */
    SimTime when = 0;
    /** Virtual CPU time the dispatch occupies on the looper's thread. */
    SimDuration cost = 0;
    /** Message kind, for removeMessages(what). */
    int what = 0;
    /** Owner token (usually the posting Handler), for bulk removal. */
    const void *token = nullptr;
    /** Human-readable label surfaced in traces. */
    std::string tag;
    /**
     * Looper-assigned id correlating this message's enqueue with its
     * dispatch in the analysis hooks; 0 before the looper accepts it.
     */
    std::uint64_t analysis_id = 0;
    /**
     * Queue-assigned arrival ticket breaking (when) ties FIFO; set by
     * MessageQueue::enqueue, meaningless outside the queue.
     */
    std::uint64_t seq = 0;
    /**
     * Tracer flow id stitching this message's post site to its dispatch
     * begin (trace::Tracer::newFlowId); 0 = no causal edge. Travels in
     * the payload slab with the rest of the message, so slot recycling
     * can never attach an edge to a slot's new occupant. Assigned by
     * Looper::enqueue when a tracer is installed; pre-set by explicitly
     * threaded chains (AsyncTask), whose flow-start the producer already
     * emitted itself.
     */
    std::uint64_t causal_id = 0;
    /**
     * True when the chain continues past this message's dispatch (the
     * consumer emits a flow step, not a flow end) — AsyncTask's worker
     * hop, whose result hop reuses the same flow id.
     */
    bool causal_continues = false;
};

/**
 * Time-ordered message store.
 *
 * Implemented as an indexed binary min-heap keyed (when, seq): the heap
 * orders lightweight POD entries that point into a stable slab of
 * Messages, so sift operations copy 24-byte keys instead of moving whole
 * Message payloads (a std::function closure plus a tag string), and each
 * payload is moved exactly once in and once out. Enqueue and pop are
 * O(log n) where the previous sorted-vector representation paid O(n)
 * payload moves for every enqueue ahead of the tail and every front pop.
 * Bulk removal is a single O(n) filter + re-heapify.
 */
class MessageQueue
{
  public:
    MessageQueue() = default;

    /** Insert, keeping (when, FIFO) order. */
    void enqueue(Message msg);

    /** Delivery time of the head message, if any. */
    std::optional<SimTime> nextWhen() const;

    /** Pop the head message due at or before `now_or_later`. */
    std::optional<Message> popDue(SimTime now_or_later);

    /** Pop the head regardless of time (looper decides when to run it). */
    std::optional<Message> popFront();

    /** Remove all messages owned by token; count removed. */
    std::size_t removeByToken(const void *token);

    /** Remove all messages owned by token with the given what. */
    std::size_t removeByWhat(const void *token, int what);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /**
     * Visit every pending message in delivery order — the
     * os/dispatch_order.h (when, seq) contract — without disturbing the
     * queue. O(n log n); used by the model checker to fingerprint
     * queue contents canonically (heap array order is not canonical)
     * and by introspection tools.
     */
    void forEachPendingInOrder(
        const std::function<void(const Message &)> &fn) const;

  private:
    /** Heap key: delivery order + the slab slot holding the payload. */
    struct HeapEntry
    {
        SimTime when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Heap predicate: the os/dispatch_order.h (when, seq) contract. */
    static bool
    laterThan(const HeapEntry &a, const HeapEntry &b)
    {
        return dispatch_order::firesAfter({a.when, a.seq}, {b.when, b.seq});
    }

    template <typename Pred> std::size_t removeMatching(Pred &&matches);

    /** Take the payload of the heap head and release its slot. */
    Message takeHead();

    std::vector<HeapEntry> heap_;
    /** Payload slab; slots listed in free_slots_ are vacant. */
    std::vector<Message> slots_;
    std::vector<std::uint32_t> free_slots_;
    std::uint64_t next_seq_ = 0;
};

} // namespace rchdroid

#endif // RCHDROID_OS_MESSAGE_QUEUE_H
