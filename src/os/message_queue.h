/**
 * @file
 * MessageQueue: the ordered pending-work list behind each Looper,
 * mirroring android.os.MessageQueue.
 *
 * Messages are ordered by delivery time, FIFO among equal times. Each
 * message carries a virtual CPU cost: the owning looper is busy for that
 * long after dispatch, which serialises the simulated thread and feeds
 * the CPU-usage traces of Fig. 9.
 */
#ifndef RCHDROID_OS_MESSAGE_QUEUE_H
#define RCHDROID_OS_MESSAGE_QUEUE_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "platform/time.h"

namespace rchdroid {

/**
 * One unit of work queued to a looper.
 *
 * Modelled on android.os.Message with a Runnable callback; `what` and the
 * token support selective removal (Handler::removeMessages).
 */
struct Message
{
    /** Dispatch callback; required. */
    std::function<void()> callback;
    /** Earliest virtual time at which the message may run. */
    SimTime when = 0;
    /** Virtual CPU time the dispatch occupies on the looper's thread. */
    SimDuration cost = 0;
    /** Message kind, for removeMessages(what). */
    int what = 0;
    /** Owner token (usually the posting Handler), for bulk removal. */
    const void *token = nullptr;
    /** Human-readable label surfaced in traces. */
    std::string tag;
    /**
     * Looper-assigned id correlating this message's enqueue with its
     * dispatch in the analysis hooks; 0 before the looper accepts it.
     */
    std::uint64_t analysis_id = 0;
};

/**
 * Time-ordered message store.
 */
class MessageQueue
{
  public:
    MessageQueue() = default;

    /** Insert, keeping (when, FIFO) order. */
    void enqueue(Message msg);

    /** Delivery time of the head message, if any. */
    std::optional<SimTime> nextWhen() const;

    /** Pop the head message due at or before `now_or_later`. */
    std::optional<Message> popDue(SimTime now_or_later);

    /** Pop the head regardless of time (looper decides when to run it). */
    std::optional<Message> popFront();

    /** Remove all messages owned by token; count removed. */
    std::size_t removeByToken(const void *token);

    /** Remove all messages owned by token with the given what. */
    std::size_t removeByWhat(const void *token, int what);

    bool empty() const { return messages_.empty(); }
    std::size_t size() const { return messages_.size(); }

  private:
    // A sorted vector: queues here are short (tens of messages) and the
    // dominant operations are push-back-ish inserts and front pops.
    std::vector<Message> messages_;
    std::uint64_t next_seq_ = 0;
    std::vector<std::uint64_t> seqs_;
};

} // namespace rchdroid

#endif // RCHDROID_OS_MESSAGE_QUEUE_H
