/**
 * @file
 * AndroidSystem: the full simulated device — one system_server (ATMS)
 * plus app processes, wired over the modelled binder, with trace, CPU
 * and memory instrumentation attached.
 *
 * This is the top-level façade every bench, example and integration
 * test drives: install apps, launch them, poke user state, issue
 * `wm size`-style configuration changes, and read the paper's metrics
 * back out.
 */
#ifndef RCHDROID_SIM_ANDROID_SYSTEM_H
#define RCHDROID_SIM_ANDROID_SYSTEM_H

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ams/atms.h"
#include "analysis/analyzer.h"
#include "app/activity_thread.h"
#include "apps/app_builder.h"
#include "apps/corpus.h"
#include "apps/simulated_app.h"
#include "apps/user_driver.h"
#include "rch/rch_client_handler.h"
#include "sim/cpu_tracker.h"
#include "sim/device_model.h"
#include "sim/energy_model.h"
#include "sim/memory_sampler.h"
#include "sim/trace.h"

namespace rchdroid::sim {

/** Construction parameters of a simulated device. */
struct SystemOptions
{
    /** Which runtime-change handling the framework runs. */
    RuntimeChangeMode mode = RuntimeChangeMode::Restart;
    /** RCHDroid tuning (used when mode == RchDroid). */
    RchConfig rch;
    /** Hardware calibration. */
    DeviceModel device = DeviceModel::rk3399();
    /** Attach the CpuTracker to every app looper. */
    bool record_cpu = true;
    /** Memory sampling period for startMemorySampling(). */
    SimDuration memory_sample_interval = milliseconds(10);
    /**
     * Boot configuration. The paper's eval board drives an HDMI screen
     * and boots landscape 1920×1080; `wm size 1080x1920` then makes it
     * portrait and `wm size reset` returns here.
     */
    Configuration native_config = Configuration::defaultLandscape();
    /**
     * Run the analysis subsystem (race detector + lifecycle checker)
     * for this system's lifetime. Unset → environment/build default
     * (on in debug builds; RCHDROID_ANALYSIS=1/0 overrides).
     */
    std::optional<bool> analysis_enabled;
    /** Checker configuration used when the subsystem runs. */
    analysis::AnalyzerOptions analysis;
};

/**
 * Parameters for installing a hand-written app (an Activity subclass of
 * your own) rather than a corpus-described SimulatedApp. This is the
 * quickstart path of the examples.
 */
struct CustomAppParams
{
    /** Process name, e.g. "com.example.photos". */
    std::string process;
    /** Main component, e.g. "com.example.photos/.GalleryActivity". */
    std::string component;
    /** Factory producing fresh instances of your Activity subclass. */
    ActivityFactory factory;
    /** The app's resources (may be an empty table). */
    std::shared_ptr<const ResourceTable> resources;
    std::size_t base_heap_bytes = 32u << 20;
    /** Manifest android:configChanges. */
    bool handles_config_changes = false;
};

/**
 * One installed app process and its harness attachments.
 */
struct InstalledApp
{
    /** Corpus spec; default-constructed for custom installs. */
    apps::AppSpec spec;
    apps::BuiltApp built;
    std::string process;
    std::string component;
    std::unique_ptr<ActivityThread> thread;
    /** Present when the system runs in RchDroid mode. */
    std::unique_ptr<RchClientHandler> handler;
    std::unique_ptr<MemorySampler> memory;
    /** The proxy the thread uses to reach the ATMS over binder. */
    std::unique_ptr<ActivityManager> am_proxy;
};

/**
 * The simulated device.
 */
class AndroidSystem
{
  public:
    explicit AndroidSystem(SystemOptions options = {});
    ~AndroidSystem();

    AndroidSystem(const AndroidSystem &) = delete;
    AndroidSystem &operator=(const AndroidSystem &) = delete;

    /** @name Core access
     * @{
     */
    SimScheduler &scheduler() { return scheduler_; }
    Atms &atms() { return *atms_; }
    TraceRecorder &trace() { return trace_; }
    CpuTracker &cpuTracker() { return cpu_; }
    EnergyModel &energy() { return energy_; }
    const SystemOptions &options() const { return options_; }
    /**
     * The analyzer this system installed, or null — analysis disabled,
     * or another analyzer (e.g. a test's own) was installed first and
     * keeps receiving the events.
     */
    analysis::Analyzer *analyzer();
    /** @} */

    /** @name App management
     * @{
     */
    /** Install a corpus app (process + resources + factory + handler). */
    InstalledApp &install(const apps::AppSpec &spec);
    /** Install a hand-written app (your own Activity subclass). */
    InstalledApp &installCustom(const CustomAppParams &params);
    /** Launch the main activity and run until it is resumed. */
    void launch(const apps::AppSpec &spec);
    /** Launch a custom app's main activity by process name. */
    void launchProcess(const std::string &process);
    InstalledApp &installed(const apps::AppSpec &spec);
    InstalledApp &installedProcess(const std::string &process);
    ActivityThread &threadFor(const apps::AppSpec &spec);
    /** Foreground instance as a SimulatedApp; null when gone/crashed. */
    std::shared_ptr<apps::SimulatedApp>
    foregroundApp(const apps::AppSpec &spec);
    /** Foreground activity of a custom app; null when gone/crashed. */
    std::shared_ptr<Activity>
    foregroundActivityOf(const std::string &process);
    /** Installed app processes keyed by process name (introspection). */
    const std::map<std::string, std::unique_ptr<InstalledApp>> &
    installedApps() const
    {
        return apps_;
    }
    /**
     * Register an additional component of an installed app (a second
     * screen reachable via Activity::startActivity).
     */
    void declareExtraComponent(const std::string &process,
                               const std::string &component,
                               ActivityFactory factory,
                               bool handles_config_changes = false);
    /** @} */

    /** @name Scripted user actions (run on the app's UI thread)
     * @{
     */
    /** Put the app into the canonical user state. */
    void applyUserState(const apps::AppSpec &spec);
    /** Observe whether the critical state survived. */
    apps::StateCheckResult verifyCriticalState(const apps::AppSpec &spec);
    /** Tap the app's update button. */
    void clickUpdateButton(const apps::AppSpec &spec);
    /** @} */

    /** @name Device actions
     * @{
     */
    /** Apply a full configuration. */
    void changeConfiguration(const Configuration &config);
    /** Rotate the screen (the most common runtime change). */
    void rotate();
    /** `adb shell wm size WxH`. */
    void wmSize(int width_px, int height_px);
    /** `adb shell wm size reset`. */
    void wmSizeReset();
    /** Switch the system locale. */
    void setLocale(const std::string &locale);
    /** Attach/detach a hardware keyboard (the paper's third example). */
    void setKeyboardAttached(bool attached);
    /** User back press on the foreground activity. */
    void pressBack();
    Configuration currentConfiguration() const;
    /** @} */

    /** @name Clock control
     * @{
     */
    void runFor(SimDuration duration);
    /**
     * Run until `predicate` holds or `timeout` elapses.
     * @return true when the predicate held.
     */
    bool runUntil(const std::function<bool()> &predicate,
                  SimDuration timeout);
    /**
     * Run until one more handling episode completes (or a crash ends
     * it). @return true on completion, false on crash/timeout.
     */
    bool waitHandlingComplete(SimDuration timeout = seconds(10));
    /** @} */

    /** @name Measurements
     * @{
     */
    /** Duration of the most recent completed handling episode, ms. */
    double lastHandlingMs() const { return trace_.lastHandlingMs(); }
    /** Current heap of the app's process. */
    std::size_t appHeapBytes(const apps::AppSpec &spec);
    /** Begin periodic heap sampling for the app. */
    MemorySampler &startMemorySampling(const apps::AppSpec &spec);
    /** @} */

  private:
    class AtmsProxy;

    /**
     * Declared first so it is destroyed last: hooks must stay installed
     * while apps_/atms_ tear down (their destructors report object-gone
     * events). Only the scheduler and options outlive it, and neither
     * touches the hooks.
     */
    std::unique_ptr<analysis::ScopedAnalyzer> analysis_guard_;
    SystemOptions options_;
    SimScheduler scheduler_;
    TraceRecorder trace_;
    CpuTracker cpu_;
    EnergyModel energy_;
    std::unique_ptr<Atms> atms_;
    std::map<std::string, std::unique_ptr<InstalledApp>> apps_;
};

} // namespace rchdroid::sim

#endif // RCHDROID_SIM_ANDROID_SYSTEM_H
