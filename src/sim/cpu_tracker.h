/**
 * @file
 * CpuTracker: collects the busy intervals of every observed looper and
 * derives CPU-utilisation-over-time series — the app CPU usage curves of
 * Fig. 9.
 */
#ifndef RCHDROID_SIM_CPU_TRACKER_H
#define RCHDROID_SIM_CPU_TRACKER_H

#include <string>
#include <vector>

#include "os/looper.h"

namespace rchdroid::sim {

/** One recorded busy interval. */
struct BusyInterval
{
    std::string looper;
    SimTime start = 0;
    SimTime end = 0;
    std::string tag;

    SimDuration duration() const { return end - start; }
};

/** One point of a utilisation series. */
struct UtilSample
{
    /** Window start time. */
    SimTime time = 0;
    /** Busy fraction within the window, 0..1 (may sum loopers > 1). */
    double utilization = 0.0;
};

/**
 * BusyObserver implementation + post-hoc analysis.
 */
class CpuTracker final : public BusyObserver
{
  public:
    void onBusyInterval(const std::string &looper_name, SimTime start,
                        SimTime end, const std::string &tag) override;

    const std::vector<BusyInterval> &intervals() const { return intervals_; }
    void clear() { intervals_.clear(); }

    /** Total busy time across observed loopers within [from, to). */
    SimDuration busyTime(SimTime from, SimTime to) const;

    /**
     * Utilisation as a fraction of `cores` across [from, to) — the
     * device-level figure the energy model consumes.
     */
    double utilization(SimTime from, SimTime to, int cores = 1) const;

    /**
     * Windowed series over [from, to): one sample per `window`,
     * normalised against `cores` core-time (the Fig. 9 y-axis is
     * device CPU %).
     */
    std::vector<UtilSample> series(SimTime from, SimTime to,
                                   SimDuration window, int cores = 1) const;

    /** Busy intervals whose tag contains `needle` (bench lookups). */
    std::vector<BusyInterval> intervalsTagged(const std::string &needle) const;

  private:
    std::vector<BusyInterval> intervals_;
};

} // namespace rchdroid::sim

#endif // RCHDROID_SIM_CPU_TRACKER_H
