/**
 * @file
 * DeviceModel: the ROC-RK3399-PC-PLUS calibration (paper §5.1 — 6-core
 * 2.0 GHz ARM64, Mali-T860 MP4, 2 GB DDR3, Android 10).
 *
 * Every latency/power constant of the simulation lives here, solved so
 * the simulator reproduces the paper's anchors (DESIGN.md §5):
 * Android-10 restart ≈ 141.8 ms and near-flat in view count, RCHDroid
 * flip ≈ 89.2 ms flat, RCHDroid-init 154.6 → 180.2 ms across 1 → 32
 * views, async migration 8.6 → 20.2 ms, and steady power 4.03 W.
 */
#ifndef RCHDROID_SIM_DEVICE_MODEL_H
#define RCHDROID_SIM_DEVICE_MODEL_H

#include "ams/atms_costs.h"
#include "app/framework_costs.h"
#include "os/ipc.h"
#include "resources/resource_manager.h"

namespace rchdroid::sim {

/** Power-model parameters (board-level, measured at the supply). */
struct PowerModel
{
    /** Board + display + radios with the CPU idle, watts. */
    double idle_watts = 4.03;
    /** Additional draw at 100% CPU utilisation, watts. */
    double cpu_max_watts = 2.4;
};

/**
 * The complete calibrated device description.
 */
struct DeviceModel
{
    FrameworkCosts framework;
    AtmsCosts atms;
    ResourceCostModel resources;
    IpcLatencyModel binder;
    PowerModel power;

    /** The paper's evaluation board, fully calibrated. */
    static DeviceModel rk3399();

    /**
     * A uniformly faster device (flagship-class): all latencies scaled
     * by `speedup`. Used by sensitivity/ablation benches.
     */
    static DeviceModel scaled(double speedup);
};

} // namespace rchdroid::sim

#endif // RCHDROID_SIM_DEVICE_MODEL_H
