#include "sim/snapshot.h"

#include <cstdlib>
#include <cstring>

#include "platform/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define RCHDROID_SNAPSHOT_POSIX 1
#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace rchdroid::sim {

namespace {

/** Wire kinds of the single-pipe frame protocol. */
enum class FrameKind : std::uint8_t {
    /** worker -> coordinator: a checkpoint was parked (payload: slot). */
    Parked = 1,
    /** worker -> coordinator: the execution's serialized result. */
    Result = 2,
    /** holder -> coordinator: acknowledging a Die command. */
    Ack = 3,
    /** coordinator -> holder: fork a continuation with this payload. */
    Resume = 4,
    /** coordinator -> holder: terminate. */
    Die = 5,
    /**
     * coordinator -> holder: become the continuation yourself (the
     * final resume of a checkpoint — saves the fork and the Die/Ack).
     */
    Take = 6,
};

#ifdef RCHDROID_SNAPSHOT_POSIX

/** Frame-read patience; a hung/crashed worker fails loudly, not never. */
int
readTimeoutMs()
{
    static const int timeout = [] {
        const char *env = std::getenv("RCHDROID_SNAPSHOT_TIMEOUT_MS");
        return env != nullptr && *env != '\0' ? std::atoi(env) : 300'000;
    }();
    return timeout;
}

void
writeAll(int fd, const void *data, std::size_t size)
{
    const char *p = static_cast<const char *>(data);
    while (size > 0) {
        const ssize_t n = ::write(fd, p, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            RCH_PANIC("snapshot pipe write failed: ",
                      std::strerror(errno));
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
}

void
readAll(int fd, void *data, std::size_t size)
{
    char *p = static_cast<char *>(data);
    while (size > 0) {
        struct pollfd pfd = {fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, readTimeoutMs());
        RCH_ASSERT(ready != 0, "snapshot pipe read timed out after ",
                   readTimeoutMs(),
                   " ms — a worker or checkpoint holder died without "
                   "reporting");
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            RCH_PANIC("snapshot pipe poll failed: ",
                      std::strerror(errno));
        }
        const ssize_t n = ::read(fd, p, size);
        if (n < 0 && errno == EINTR)
            continue;
        RCH_ASSERT(n > 0, "snapshot pipe closed mid-frame");
        p += n;
        size -= static_cast<std::size_t>(n);
    }
}

void
writeFrame(int fd, FrameKind kind, const std::string &payload)
{
    // One write per frame: each write to a pipe with a blocked reader
    // is a wakeup, and the protocol's critical path is wakeup-bound.
    std::string frame;
    frame.reserve(1 + sizeof(std::uint32_t) + payload.size());
    frame.push_back(static_cast<char>(kind));
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    frame.append(reinterpret_cast<const char *>(&len), sizeof len);
    frame.append(payload);
    writeAll(fd, frame.data(), frame.size());
}

std::pair<FrameKind, std::string>
readFrame(int fd)
{
    std::uint8_t k = 0;
    std::uint32_t len = 0;
    readAll(fd, &k, 1);
    readAll(fd, &len, sizeof len);
    std::string payload(len, '\0');
    if (len > 0)
        readAll(fd, payload.data(), len);
    return {static_cast<FrameKind>(k), std::move(payload)};
}

std::string
encodeSlot(int slot)
{
    std::uint32_t value = static_cast<std::uint32_t>(slot);
    return {reinterpret_cast<const char *>(&value), sizeof value};
}

int
decodeSlot(const std::string &payload)
{
    RCH_ASSERT(payload.size() == sizeof(std::uint32_t),
               "malformed Parked frame");
    std::uint32_t value = 0;
    std::memcpy(&value, payload.data(), sizeof value);
    return static_cast<int>(value);
}

#endif // RCHDROID_SNAPSHOT_POSIX

} // namespace

bool
SnapshotHost::supported()
{
#ifdef RCHDROID_SNAPSHOT_POSIX
    static const bool enabled = [] {
        const char *env = std::getenv("RCHDROID_SNAPSHOTS");
        return env == nullptr || std::strcmp(env, "0") != 0;
    }();
    return enabled;
#else
    return false;
#endif
}

#ifdef RCHDROID_SNAPSHOT_POSIX

SnapshotHost::SnapshotHost(int slots)
{
    if (!supported() || slots < 0)
        return;
    const auto open_pipe = [](Pipe &p) {
        int fds[2];
        if (::pipe(fds) != 0)
            return false;
        p.read_fd = fds[0];
        p.write_fd = fds[1];
        return true;
    };
    if (!open_pipe(upstream_))
        return;
    slot_cmd_.resize(static_cast<std::size_t>(slots));
    slot_live_.assign(static_cast<std::size_t>(slots), false);
    for (Pipe &p : slot_cmd_) {
        if (!open_pipe(p))
            return; // destructor closes what was opened
    }
    // Children are reaped by the kernel: the strictly sequential pipe
    // protocol replaces waitpid() as the completion signal.
    auto *old_action = new struct sigaction;
    struct sigaction ignore = {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGCHLD, &ignore, old_action);
    old_sigchld_ = old_action;
    active_ = true;
}

SnapshotHost::~SnapshotHost()
{
    if (active_) {
        for (int slot = 0; slot < static_cast<int>(slot_live_.size());
             ++slot) {
            if (slot_live_[static_cast<std::size_t>(slot)])
                discard(slot);
        }
    }
    if (old_sigchld_ != nullptr) {
        auto *old_action = static_cast<struct sigaction *>(old_sigchld_);
        ::sigaction(SIGCHLD, old_action, nullptr);
        delete old_action;
    }
    const auto close_pipe = [](Pipe &p) {
        if (p.read_fd >= 0)
            ::close(p.read_fd);
        if (p.write_fd >= 0)
            ::close(p.write_fd);
    };
    close_pipe(upstream_);
    for (Pipe &p : slot_cmd_)
        close_pipe(p);
}

void
SnapshotHost::spawnWorker(const std::function<void(SnapshotWorker &)> &body)
{
    RCH_ASSERT(active_, "spawnWorker on an inactive SnapshotHost");
    const pid_t pid = ::fork();
    RCH_ASSERT(pid >= 0, "snapshot worker fork failed: ",
               std::strerror(errno));
    if (pid != 0)
        return; // coordinator: results arrive via awaitResult()
    SnapshotWorker worker(*this);
    body(worker);
    ::_exit(111); // the body must leave through finish()
}

bool
SnapshotHost::slotLive(int slot) const
{
    return slot >= 0 && slot < static_cast<int>(slot_live_.size()) &&
           slot_live_[static_cast<std::size_t>(slot)];
}

void
SnapshotHost::resume(int slot, const std::string &payload, bool consume)
{
    RCH_ASSERT(slotLive(slot), "resume of a dead snapshot slot ", slot);
    ++restores_;
    writeFrame(slot_cmd_[static_cast<std::size_t>(slot)].write_fd,
               consume ? FrameKind::Take : FrameKind::Resume, payload);
    if (consume) {
        // The holder becomes the continuation and will never read the
        // command pipe again; no Die/Ack handshake is ever needed.
        slot_live_[static_cast<std::size_t>(slot)] = false;
    }
}

void
SnapshotHost::discard(int slot)
{
    RCH_ASSERT(slotLive(slot), "discard of a dead snapshot slot ", slot);
    writeFrame(slot_cmd_[static_cast<std::size_t>(slot)].write_fd,
               FrameKind::Die, "");
    // Block for the holder's ack: the slot's command pipe must be
    // drained before a future continuation parks a new checkpoint
    // there, or the dying holder could steal the newcomer's command.
    const auto frame = readFrame(upstream_.read_fd);
    RCH_ASSERT(frame.first == FrameKind::Ack,
               "snapshot protocol error: expected Ack, got kind ",
               static_cast<int>(frame.first));
    slot_live_[static_cast<std::size_t>(slot)] = false;
}

void
SnapshotHost::discardAbove(int slot)
{
    // Batched: fan out every Die first (the holders wake in parallel),
    // then collect the acks in one sweep.
    int dying = 0;
    for (int s = slot + 1; s < static_cast<int>(slot_live_.size()); ++s) {
        if (!slot_live_[static_cast<std::size_t>(s)])
            continue;
        writeFrame(slot_cmd_[static_cast<std::size_t>(s)].write_fd,
                   FrameKind::Die, "");
        slot_live_[static_cast<std::size_t>(s)] = false;
        ++dying;
    }
    for (int i = 0; i < dying; ++i) {
        const auto frame = readFrame(upstream_.read_fd);
        RCH_ASSERT(frame.first == FrameKind::Ack,
                   "snapshot protocol error: expected Ack, got kind ",
                   static_cast<int>(frame.first));
    }
}

SnapshotResult
SnapshotHost::awaitResult()
{
    RCH_ASSERT(active_, "awaitResult on an inactive SnapshotHost");
    SnapshotResult result;
    for (;;) {
        auto frame = readFrame(upstream_.read_fd);
        switch (frame.first) {
        case FrameKind::Parked: {
            const int slot = decodeSlot(frame.second);
            RCH_ASSERT(slot >= 0 &&
                           slot < static_cast<int>(slot_live_.size()),
                       "Parked frame for out-of-range slot ", slot);
            slot_live_[static_cast<std::size_t>(slot)] = true;
            result.parked_slots.push_back(slot);
            ++snapshots_taken_;
            break;
        }
        case FrameKind::Result:
            result.payload = std::move(frame.second);
            return result;
        default:
            RCH_PANIC("snapshot protocol error: unexpected frame "
                      "kind ",
                      static_cast<int>(frame.first),
                      " while awaiting a result");
        }
    }
}

std::optional<std::string>
SnapshotHost::workerPark(int slot)
{
    if (!active_ || slot < 0 ||
        slot >= static_cast<int>(slot_cmd_.size()))
        return std::nullopt;
    const pid_t pid = ::fork();
    RCH_ASSERT(pid >= 0, "snapshot checkpoint fork failed: ",
               std::strerror(errno));
    if (pid != 0) {
        // The running worker: announce the checkpoint and carry on.
        writeFrame(upstream_.write_fd, FrameKind::Parked,
                   encodeSlot(slot));
        return std::nullopt;
    }
    // The checkpoint holder: serve the slot's command pipe. Every
    // mutable page of the simulated system is frozen here by the
    // kernel's copy-on-write; each Resume forks a continuation that
    // returns out of this call into the execution loop, bit-identical
    // to the state the worker had when it parked.
    const int cmd_fd = slot_cmd_[static_cast<std::size_t>(slot)].read_fd;
    for (;;) {
        auto frame = readFrame(cmd_fd);
        if (frame.first == FrameKind::Die) {
            writeFrame(upstream_.write_fd, FrameKind::Ack, "");
            ::_exit(0);
        }
        if (frame.first == FrameKind::Take)
            return frame.second; // this holder IS the continuation now
        RCH_ASSERT(frame.first == FrameKind::Resume,
                   "snapshot protocol error: holder got frame kind ",
                   static_cast<int>(frame.first));
        const pid_t child = ::fork();
        RCH_ASSERT(child >= 0, "snapshot resume fork failed: ",
                   std::strerror(errno));
        if (child == 0)
            return frame.second; // the continuation resumes execution
    }
}

void
SnapshotHost::workerFinish(const std::string &result)
{
    writeFrame(upstream_.write_fd, FrameKind::Result, result);
    ::_exit(0);
}

#else // !RCHDROID_SNAPSHOT_POSIX

SnapshotHost::SnapshotHost(int slots)
{
    (void)slots;
}

SnapshotHost::~SnapshotHost() = default;

void
SnapshotHost::spawnWorker(const std::function<void(SnapshotWorker &)> &body)
{
    (void)body;
    RCH_PANIC("snapshots are not supported on this platform");
}

bool
SnapshotHost::slotLive(int slot) const
{
    (void)slot;
    return false;
}

void
SnapshotHost::resume(int slot, const std::string &payload, bool consume)
{
    (void)slot;
    (void)payload;
    (void)consume;
    RCH_PANIC("snapshots are not supported on this platform");
}

void
SnapshotHost::discard(int slot)
{
    (void)slot;
}

void
SnapshotHost::discardAbove(int slot)
{
    (void)slot;
}

SnapshotResult
SnapshotHost::awaitResult()
{
    RCH_PANIC("snapshots are not supported on this platform");
}

std::optional<std::string>
SnapshotHost::workerPark(int slot)
{
    (void)slot;
    return std::nullopt;
}

void
SnapshotHost::workerFinish(const std::string &result)
{
    (void)result;
    RCH_PANIC("snapshots are not supported on this platform");
}

#endif // RCHDROID_SNAPSHOT_POSIX

std::optional<std::string>
SnapshotWorker::park(int slot)
{
    return host_.workerPark(slot);
}

void
SnapshotWorker::finish(const std::string &result)
{
    host_.workerFinish(result);
}

} // namespace rchdroid::sim
