/**
 * @file
 * MemorySampler: periodic heap sampling of a simulated process — the
 * "Total PSS by process" polling the paper's artifact does with
 * `dumpsys meminfo`, and the memory-over-time curves of Fig. 9.
 */
#ifndef RCHDROID_SIM_MEMORY_SAMPLER_H
#define RCHDROID_SIM_MEMORY_SAMPLER_H

#include <functional>
#include <vector>

#include "os/scheduler.h"

namespace rchdroid::sim {

/** One memory observation. */
struct MemorySample
{
    SimTime time = 0;
    std::size_t bytes = 0;

    double megabytes() const
    { return static_cast<double>(bytes) / (1024.0 * 1024.0); }
};

/**
 * Self-rescheduling sampler on the shared scheduler.
 */
class MemorySampler
{
  public:
    /**
     * @param scheduler Event core the sampler runs on.
     * @param probe Returns the process's current heap bytes.
     * @param interval Sampling period.
     */
    MemorySampler(SimScheduler &scheduler, std::function<std::size_t()> probe,
                  SimDuration interval);
    ~MemorySampler();

    MemorySampler(const MemorySampler &) = delete;
    MemorySampler &operator=(const MemorySampler &) = delete;

    /** Begin sampling (first sample immediately). */
    void start();
    /** Stop sampling; samples stay available. */
    void stop();
    bool running() const { return running_; }

    const std::vector<MemorySample> &samples() const { return samples_; }
    void clear() { samples_.clear(); }

    /** Mean of all samples, MB; 0 when empty. */
    double meanMb() const;
    /** Largest sample, MB. */
    double peakMb() const;
    /** Mean over [from, to), MB. */
    double meanMbBetween(SimTime from, SimTime to) const;

  private:
    void tick();

    SimScheduler &scheduler_;
    std::function<std::size_t()> probe_;
    SimDuration interval_;
    std::vector<MemorySample> samples_;
    bool running_ = false;
    EventId pending_ = kInvalidEventId;
};

} // namespace rchdroid::sim

#endif // RCHDROID_SIM_MEMORY_SAMPLER_H
