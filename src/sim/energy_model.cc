#include "sim/energy_model.h"

#include <algorithm>

#include "platform/logging.h"

namespace rchdroid::sim {

EnergyModel::EnergyModel(const PowerModel &power, int cores)
    : power_(power), cores_(cores)
{
    RCH_ASSERT(cores_ > 0, "device needs at least one core");
}

double
EnergyModel::powerAtUtilization(double utilization) const
{
    const double clamped = std::clamp(utilization, 0.0, 1.0);
    return power_.idle_watts + power_.cpu_max_watts * clamped;
}

double
EnergyModel::averagePowerWatts(const CpuTracker &tracker, SimTime from,
                               SimTime to) const
{
    return powerAtUtilization(tracker.utilization(from, to, cores_));
}

double
EnergyModel::energyJoules(const CpuTracker &tracker, SimTime from,
                          SimTime to) const
{
    return averagePowerWatts(tracker, from, to) * toSecondsF(to - from);
}

} // namespace rchdroid::sim
