#include "sim/dumpsys.h"

#include <map>
#include <sstream>

#include "platform/strings.h"
#include "platform/tracing.h"
#include "profiling/critical_path.h"

namespace rchdroid::sim {

namespace {

const char *
recordStateName(RecordState state)
{
    switch (state) {
      case RecordState::Launching: return "Launching";
      case RecordState::Resumed: return "Resumed";
      case RecordState::Paused: return "Paused";
      case RecordState::Stopped: return "Stopped";
      case RecordState::Destroyed: return "Destroyed";
    }
    return "Unknown";
}

/** Sample the point-in-time gauges from the live system. */
void
sampleGauges(AndroidSystem &system, metrics::MetricsRegistry *registry)
{
    if (!registry)
        return;
    std::size_t activities = 0;
    std::size_t heap = 0;
    std::size_t pending = system.atms().looper().queuedMessages();
    for (const auto &[process, app] : system.installedApps()) {
        (void)process;
        activities += app->thread->liveActivityCount();
        heap += app->thread->totalHeapBytes();
        pending += app->thread->uiLooper().queuedMessages();
    }
    registry->set(metrics::Gauge::kLiveActivities,
                  static_cast<double>(activities));
    registry->set(metrics::Gauge::kHeapBytes, static_cast<double>(heap));
    registry->set(metrics::Gauge::kPendingMessages,
                  static_cast<double>(pending));
}

/**
 * Critical paths for this system's completed episodes, keyed by episode
 * index, when a tracer is live. The tracer may span several sequential
 * systems (quickstart runs two), so the match walks both sequences
 * backwards — this system's episodes are the trailing paths — and pairs
 * them by exact (begin, end) timestamps.
 */
std::map<std::size_t, profiling::CriticalPath>
matchedCriticalPaths(AndroidSystem &system)
{
    std::map<std::size_t, profiling::CriticalPath> matched;
    trace::Tracer *tracer = trace::Tracer::current();
    if (!tracer)
        return matched;
    std::vector<profiling::CriticalPath> paths =
        profiling::extractCriticalPaths(profiling::fromTracer(*tracer));
    const std::vector<HandlingEpisode> &episodes =
        system.trace().handlingEpisodes();
    std::size_t p = paths.size();
    for (std::size_t i = episodes.size(); i-- > 0 && p > 0;) {
        const HandlingEpisode &episode = episodes[i];
        if (!episode.end || episode.aborted)
            continue;
        const profiling::CriticalPath &candidate = paths[p - 1];
        if (candidate.begin != episode.start ||
            candidate.end != *episode.end)
            break;
        matched.emplace(i, candidate);
        --p;
    }
    return matched;
}

} // namespace

std::string
dumpsys(AndroidSystem &system, metrics::MetricsRegistry *registry)
{
    sampleGauges(system, registry);

    std::ostringstream os;
    Atms &atms = system.atms();
    os << "== dumpsys ==\n";
    os << "mode: " << runtimeChangeModeName(atms.mode())
       << "  sim time: " << formatDouble(toMillisF(system.scheduler().now()), 3)
       << " ms  config: " << atms.currentConfiguration().toString() << '\n';

    os << "\nACTIVITY MANAGER (tasks bottom -> top, records bottom -> top):\n";
    const ActivityStack &stack = atms.stack();
    if (stack.taskCount() == 0)
        os << "  (no tasks)\n";
    for (const auto &task : stack.tasks()) {
        os << "  Task #" << task->id() << " [" << task->process()
           << "] depth=" << task->depth() << '\n';
        for (ActivityToken token : task->tokens()) {
            const ActivityRecord *record = atms.recordFor(token);
            if (!record) {
                os << "    #" << token << " <record missing>\n";
                continue;
            }
            os << "    #" << token << ' ' << record->component()
               << " state=" << recordStateName(record->state());
            if (record->isShadow()) {
                os << " SHADOW age="
                   << formatDouble(toMillisF(system.scheduler().now() -
                                             record->shadowSince()),
                                   1)
                   << "ms";
            }
            os << '\n';
        }
    }
    const StarterStats &starter = atms.starterStats();
    os << "  starter: normal_starts=" << starter.normal_starts
       << " sunny_creates=" << starter.sunny_creates
       << " coin_flips=" << starter.coin_flips
       << " suppressed_same_top=" << starter.suppressed_same_top << '\n';
    os << "  atms looper: queued=" << atms.looper().queuedMessages()
       << " dispatched=" << atms.looper().dispatchedMessages() << " busy="
       << formatDouble(toMillisF(atms.looper().totalBusyTime()), 3) << "ms\n";

    os << "\nPROCESSES:\n";
    if (system.installedApps().empty())
        os << "  (no apps installed)\n";
    for (const auto &[process, app] : system.installedApps()) {
        ActivityThread &thread = *app->thread;
        os << "  " << process << ": activities="
           << thread.liveActivityCount() << " heap="
           << formatDouble(static_cast<double>(thread.totalHeapBytes()) /
                               (1024.0 * 1024.0),
                           2)
           << "MB crashed=" << (thread.crashed() ? "yes" : "no") << '\n';
        Looper &ui = thread.uiLooper();
        os << "    ui looper: queued=" << ui.queuedMessages()
           << " dispatched=" << ui.dispatchedMessages() << " busy="
           << formatDouble(toMillisF(ui.totalBusyTime()), 3) << "ms\n";
        if (app->handler) {
            const RchStats &rch = app->handler->stats();
            os << "    rch: runtime_changes=" << rch.runtime_changes
               << " init_launches=" << rch.init_launches
               << " flips=" << rch.flips
               << " views_mapped=" << rch.views_mapped
               << " views_unmatched=" << rch.views_unmatched
               << " views_migrated=" << rch.views_migrated
               << " gc_keeps=" << rch.gc_keeps
               << " gc_collections=" << rch.gc_collections << '\n';
        }
    }

    const std::vector<HandlingEpisode> &episodes =
        system.trace().handlingEpisodes();
    os << "\nHANDLING EPISODES: " << episodes.size() << " (last completed: ";
    const double last = system.trace().lastHandlingMs();
    if (last < 0)
        os << "none";
    else
        os << formatDouble(last, 3) << " ms";
    os << ")\n";
    const std::map<std::size_t, profiling::CriticalPath> paths =
        matchedCriticalPaths(system);
    if (!episodes.empty())
        os << "  id  trigger_ms  total_ms  dominant\n";
    for (std::size_t i = 0; i < episodes.size(); ++i) {
        const HandlingEpisode &episode = episodes[i];
        os << "  #" << i << "  "
           << formatDouble(toMillisF(episode.start), 3) << "  ";
        if (!episode.end)
            os << "(pending)  -";
        else if (episode.aborted)
            os << "(aborted)  -";
        else {
            os << formatDouble(episode.durationMs(), 3) << "  ";
            const auto it = paths.find(i);
            const profiling::Segment *dom =
                it != paths.end() ? it->second.dominant() : nullptr;
            os << (dom ? dom->label : "-");
        }
        os << '\n';
    }

    if (!paths.empty()) {
        std::vector<profiling::CriticalPath> matched;
        matched.reserve(paths.size());
        for (const auto &[index, path] : paths) {
            (void)index;
            matched.push_back(path);
        }
        const profiling::ProfileSummary summary =
            profiling::summarize(matched);
        os << "\nPROFILE (critical-path segment means, " << summary.episodes
           << " episode(s), mean total "
           << formatDouble(summary.mean_total_ms, 3) << " ms):\n";
        for (const auto &[label, stat] : summary.segments) {
            os << "  " << formatDouble(stat.mean_ms, 3) << " ms  "
               << formatDouble(100.0 * stat.share, 1) << "%  "
               << profiling::segmentKindName(stat.kind) << "  " << label
               << '\n';
        }
    }

    if (registry) {
        os << "\nMETRICS:\n" << registry->toText();
    } else {
        os << "\nMETRICS: (no registry installed)\n";
    }
    return os.str();
}

std::string
metricsJson(AndroidSystem &system, metrics::MetricsRegistry *registry)
{
    sampleGauges(system, registry);
    if (!registry)
        return "{}\n";
    std::string json = registry->toJson();
    const std::map<std::size_t, profiling::CriticalPath> paths =
        matchedCriticalPaths(system);
    if (!paths.empty()) {
        std::vector<profiling::CriticalPath> matched;
        matched.reserve(paths.size());
        for (const auto &[index, path] : paths) {
            (void)index;
            matched.push_back(path);
        }
        // Splice a "profile" member before the document's closing brace.
        const std::size_t pos = json.rfind("\n}");
        if (pos != std::string::npos) {
            json.insert(pos,
                        ",\n  \"profile\": " +
                            profiling::summaryJson(
                                profiling::summarize(matched), 2));
        }
    }
    return json;
}

} // namespace rchdroid::sim
