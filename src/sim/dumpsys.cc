#include "sim/dumpsys.h"

#include <sstream>

#include "platform/strings.h"

namespace rchdroid::sim {

namespace {

const char *
recordStateName(RecordState state)
{
    switch (state) {
      case RecordState::Launching: return "Launching";
      case RecordState::Resumed: return "Resumed";
      case RecordState::Paused: return "Paused";
      case RecordState::Stopped: return "Stopped";
      case RecordState::Destroyed: return "Destroyed";
    }
    return "Unknown";
}

/** Sample the point-in-time gauges from the live system. */
void
sampleGauges(AndroidSystem &system, metrics::MetricsRegistry *registry)
{
    if (!registry)
        return;
    std::size_t activities = 0;
    std::size_t heap = 0;
    std::size_t pending = system.atms().looper().queuedMessages();
    for (const auto &[process, app] : system.installedApps()) {
        (void)process;
        activities += app->thread->liveActivityCount();
        heap += app->thread->totalHeapBytes();
        pending += app->thread->uiLooper().queuedMessages();
    }
    registry->set(metrics::Gauge::kLiveActivities,
                  static_cast<double>(activities));
    registry->set(metrics::Gauge::kHeapBytes, static_cast<double>(heap));
    registry->set(metrics::Gauge::kPendingMessages,
                  static_cast<double>(pending));
}

} // namespace

std::string
dumpsys(AndroidSystem &system, metrics::MetricsRegistry *registry)
{
    sampleGauges(system, registry);

    std::ostringstream os;
    Atms &atms = system.atms();
    os << "== dumpsys ==\n";
    os << "mode: " << runtimeChangeModeName(atms.mode())
       << "  sim time: " << formatDouble(toMillisF(system.scheduler().now()), 3)
       << " ms  config: " << atms.currentConfiguration().toString() << '\n';

    os << "\nACTIVITY MANAGER (tasks bottom -> top, records bottom -> top):\n";
    const ActivityStack &stack = atms.stack();
    if (stack.taskCount() == 0)
        os << "  (no tasks)\n";
    for (const auto &task : stack.tasks()) {
        os << "  Task #" << task->id() << " [" << task->process()
           << "] depth=" << task->depth() << '\n';
        for (ActivityToken token : task->tokens()) {
            const ActivityRecord *record = atms.recordFor(token);
            if (!record) {
                os << "    #" << token << " <record missing>\n";
                continue;
            }
            os << "    #" << token << ' ' << record->component()
               << " state=" << recordStateName(record->state());
            if (record->isShadow()) {
                os << " SHADOW age="
                   << formatDouble(toMillisF(system.scheduler().now() -
                                             record->shadowSince()),
                                   1)
                   << "ms";
            }
            os << '\n';
        }
    }
    const StarterStats &starter = atms.starterStats();
    os << "  starter: normal_starts=" << starter.normal_starts
       << " sunny_creates=" << starter.sunny_creates
       << " coin_flips=" << starter.coin_flips
       << " suppressed_same_top=" << starter.suppressed_same_top << '\n';
    os << "  atms looper: queued=" << atms.looper().queuedMessages()
       << " dispatched=" << atms.looper().dispatchedMessages() << " busy="
       << formatDouble(toMillisF(atms.looper().totalBusyTime()), 3) << "ms\n";

    os << "\nPROCESSES:\n";
    if (system.installedApps().empty())
        os << "  (no apps installed)\n";
    for (const auto &[process, app] : system.installedApps()) {
        ActivityThread &thread = *app->thread;
        os << "  " << process << ": activities="
           << thread.liveActivityCount() << " heap="
           << formatDouble(static_cast<double>(thread.totalHeapBytes()) /
                               (1024.0 * 1024.0),
                           2)
           << "MB crashed=" << (thread.crashed() ? "yes" : "no") << '\n';
        Looper &ui = thread.uiLooper();
        os << "    ui looper: queued=" << ui.queuedMessages()
           << " dispatched=" << ui.dispatchedMessages() << " busy="
           << formatDouble(toMillisF(ui.totalBusyTime()), 3) << "ms\n";
        if (app->handler) {
            const RchStats &rch = app->handler->stats();
            os << "    rch: runtime_changes=" << rch.runtime_changes
               << " init_launches=" << rch.init_launches
               << " flips=" << rch.flips
               << " views_mapped=" << rch.views_mapped
               << " views_unmatched=" << rch.views_unmatched
               << " views_migrated=" << rch.views_migrated
               << " gc_keeps=" << rch.gc_keeps
               << " gc_collections=" << rch.gc_collections << '\n';
        }
    }

    os << "\nHANDLING EPISODES: " << system.trace().handlingEpisodes().size()
       << " (last completed: ";
    const double last = system.trace().lastHandlingMs();
    if (last < 0)
        os << "none";
    else
        os << formatDouble(last, 3) << " ms";
    os << ")\n";

    if (registry) {
        os << "\nMETRICS:\n" << registry->toText();
    } else {
        os << "\nMETRICS: (no registry installed)\n";
    }
    return os.str();
}

std::string
metricsJson(AndroidSystem &system, metrics::MetricsRegistry *registry)
{
    sampleGauges(system, registry);
    return registry ? registry->toJson() : std::string("{}\n");
}

} // namespace rchdroid::sim
