#include "sim/device_model.h"

namespace rchdroid::sim {

DeviceModel
DeviceModel::rk3399()
{
    DeviceModel d;

    // Binder: one-way transaction ≈ 1 ms on this class of SoC under
    // load, plus a small per-KiB parcel copy term.
    d.binder.base_latency = microseconds(1000);
    d.binder.per_kib = microseconds(3);

    // system_server costs. start_activity_base and record_create are
    // the extra server work the RCHDroid-init path pays over a plain
    // relaunch (which never enters the ActivityStarter).
    d.atms.config_dispatch = microseconds(2800);
    d.atms.start_activity_base = microseconds(13300);
    d.atms.record_create = microseconds(11600);
    d.atms.stack_search_per_record = microseconds(20);
    d.atms.flip_reorder = microseconds(2200);
    d.atms.transaction_handle = microseconds(400);

    // Resource resolution: cheap lookups, decode proportional to bitmap
    // size, parse proportional to layout nodes.
    d.resources.lookup_cost = microseconds(40);
    d.resources.drawable_base_cost = microseconds(40);
    d.resources.drawable_per_kib = nanoseconds(500);
    d.resources.layout_per_node = microseconds(40);

    // Client framework costs. on_create_base dominates the restart:
    // window/theme/context setup of a cold activity on this board.
    auto &f = d.framework;
    f.activity_construct = microseconds(8600);
    f.on_create_base = microseconds(90400);
    f.on_start = microseconds(5200);
    f.on_resume = microseconds(11500);
    f.on_pause = microseconds(3200);
    f.on_stop = microseconds(4100);
    f.on_destroy_base = microseconds(6400);
    f.destroy_per_view = microseconds(15);
    f.inflate_per_node = microseconds(50);
    f.layout_per_view = microseconds(25);
    f.draw_per_view = microseconds(15);
    f.draw_per_kib = microseconds(4);
    f.save_state_base = microseconds(2500);
    f.save_state_per_view = microseconds(25);
    f.restore_state_per_view = microseconds(40);
    // The essence mapping: hash insert + lookup/wire per view. These
    // carry most of the RCHDroid-init slope of Fig. 10(a).
    f.mapping_insert_per_view = microseconds(300);
    f.mapping_wire_per_view = microseconds(220);
    // Flip path: re-foregrounding the retained instance (surface and
    // window re-attach) plus a cheap per-view state sync.
    f.flip_fixed = microseconds(63100);
    f.flip_sync_per_view = microseconds(20);
    // Lazy migration: interception fixed cost per async batch plus the
    // typed attribute transfer per view (Fig. 10(b): 8.6 → 20.2 ms).
    f.migrate_batch_base = microseconds(8230);
    f.migrate_per_view = microseconds(370);
    f.gc_check = microseconds(150);
    f.transaction_handle = microseconds(400);

    // Measured board draw (§5.6): 4.03 W during the runtime-change
    // workloads on both systems — utilisation there is low, so the idle
    // term dominates.
    d.power.idle_watts = 4.03;
    d.power.cpu_max_watts = 2.4;
    return d;
}

namespace {

SimDuration
scale(SimDuration v, double factor)
{
    return static_cast<SimDuration>(static_cast<double>(v) / factor);
}

} // namespace

DeviceModel
DeviceModel::scaled(double speedup)
{
    DeviceModel d = rk3399();
    auto &f = d.framework;
    for (SimDuration *v :
         {&f.activity_construct, &f.on_create_base, &f.on_start,
          &f.on_resume, &f.on_pause, &f.on_stop, &f.on_destroy_base,
          &f.destroy_per_view, &f.inflate_per_node, &f.layout_per_view,
          &f.draw_per_view, &f.draw_per_kib, &f.save_state_base,
          &f.save_state_per_view, &f.restore_state_per_view,
          &f.mapping_insert_per_view, &f.mapping_wire_per_view,
          &f.flip_fixed, &f.flip_sync_per_view, &f.migrate_batch_base,
          &f.migrate_per_view, &f.gc_check, &f.transaction_handle}) {
        *v = scale(*v, speedup);
    }
    for (SimDuration *v :
         {&d.atms.config_dispatch, &d.atms.start_activity_base,
          &d.atms.record_create, &d.atms.stack_search_per_record,
          &d.atms.flip_reorder, &d.atms.transaction_handle}) {
        *v = scale(*v, speedup);
    }
    for (SimDuration *v :
         {&d.resources.lookup_cost, &d.resources.drawable_base_cost,
          &d.resources.drawable_per_kib, &d.resources.layout_per_node}) {
        *v = scale(*v, speedup);
    }
    d.binder.base_latency = scale(d.binder.base_latency, speedup);
    d.binder.per_kib = scale(d.binder.per_kib, speedup);
    return d;
}

} // namespace rchdroid::sim
