#include "sim/memory_sampler.h"

#include <utility>

#include "platform/logging.h"

namespace rchdroid::sim {

MemorySampler::MemorySampler(SimScheduler &scheduler,
                             std::function<std::size_t()> probe,
                             SimDuration interval)
    : scheduler_(scheduler), probe_(std::move(probe)), interval_(interval)
{
    RCH_ASSERT(probe_ != nullptr, "sampler needs a probe");
    RCH_ASSERT(interval_ > 0, "sampler needs a positive interval");
}

MemorySampler::~MemorySampler()
{
    stop();
}

void
MemorySampler::start()
{
    if (running_)
        return;
    running_ = true;
    tick();
}

void
MemorySampler::stop()
{
    running_ = false;
    if (pending_ != kInvalidEventId) {
        scheduler_.cancel(pending_);
        pending_ = kInvalidEventId;
    }
}

void
MemorySampler::tick()
{
    if (!running_)
        return;
    samples_.push_back(MemorySample{scheduler_.now(), probe_()});
    pending_ = scheduler_.schedule(interval_, [this] { tick(); });
}

double
MemorySampler::meanMb() const
{
    if (samples_.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &sample : samples_)
        total += sample.megabytes();
    return total / static_cast<double>(samples_.size());
}

double
MemorySampler::peakMb() const
{
    double peak = 0.0;
    for (const auto &sample : samples_)
        peak = std::max(peak, sample.megabytes());
    return peak;
}

double
MemorySampler::meanMbBetween(SimTime from, SimTime to) const
{
    double total = 0.0;
    std::size_t count = 0;
    for (const auto &sample : samples_) {
        if (sample.time >= from && sample.time < to) {
            total += sample.megabytes();
            ++count;
        }
    }
    return count ? total / static_cast<double>(count) : 0.0;
}

} // namespace rchdroid::sim
