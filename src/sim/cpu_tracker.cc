#include "sim/cpu_tracker.h"

#include <algorithm>

#include "platform/logging.h"

namespace rchdroid::sim {

void
CpuTracker::onBusyInterval(const std::string &looper_name, SimTime start,
                           SimTime end, const std::string &tag)
{
    RCH_ASSERT(end >= start, "inverted busy interval");
    intervals_.push_back(BusyInterval{looper_name, start, end, tag});
}

SimDuration
CpuTracker::busyTime(SimTime from, SimTime to) const
{
    SimDuration total = 0;
    for (const auto &interval : intervals_) {
        const SimTime lo = std::max(interval.start, from);
        const SimTime hi = std::min(interval.end, to);
        if (hi > lo)
            total += hi - lo;
    }
    return total;
}

double
CpuTracker::utilization(SimTime from, SimTime to, int cores) const
{
    RCH_ASSERT(to > from, "empty utilization window");
    RCH_ASSERT(cores > 0, "cores must be positive");
    const double core_time =
        static_cast<double>(to - from) * static_cast<double>(cores);
    return static_cast<double>(busyTime(from, to)) / core_time;
}

std::vector<UtilSample>
CpuTracker::series(SimTime from, SimTime to, SimDuration window,
                   int cores) const
{
    RCH_ASSERT(window > 0, "window must be positive");
    std::vector<UtilSample> out;
    for (SimTime t = from; t < to; t += window) {
        const SimTime hi = std::min(t + window, to);
        UtilSample sample;
        sample.time = t;
        sample.utilization = hi > t ? utilization(t, hi, cores) : 0.0;
        out.push_back(sample);
    }
    return out;
}

std::vector<BusyInterval>
CpuTracker::intervalsTagged(const std::string &needle) const
{
    std::vector<BusyInterval> out;
    for (const auto &interval : intervals_) {
        if (interval.tag.find(needle) != std::string::npos)
            out.push_back(interval);
    }
    return out;
}

} // namespace rchdroid::sim
