/**
 * @file
 * TraceRecorder: the TelemetrySink that collects every framework event
 * of a run and derives the paper's metrics from them — most importantly
 * the runtime-change handling time, "the time between the configuration
 * change arriving at the ATMS and the corresponding activity resumed"
 * (§5.1).
 */
#ifndef RCHDROID_SIM_TRACE_H
#define RCHDROID_SIM_TRACE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "platform/telemetry.h"

namespace rchdroid::sim {

/** One matched configuration-change handling episode. */
struct HandlingEpisode
{
    /** atms.configChange arrival. */
    SimTime start = 0;
    /** The matching atms.activityResumed, if handling completed. */
    std::optional<SimTime> end;
    /**
     * True when the next configuration change arrived before this
     * episode's resume: the handling was cut short (the relaunch or flip
     * restarted under the newer configuration), so the episode closes
     * incomplete instead of stealing the eventual resume event.
     */
    bool aborted = false;

    bool completed() const { return end.has_value(); }
    double
    durationMs() const
    {
        return end ? toMillisF(*end - start) : -1.0;
    }
};

/**
 * Event store + metric extraction.
 *
 * Per-kind counts and handling episodes are maintained incrementally in
 * record(): harness predicates poll countOfKind()/lastHandlingMs() after
 * every scheduler step, so deriving them by rescanning the event log
 * made long-lived systems quadratic in their own history. Counts are
 * indexed by the interned kind id — no string hashing on the hot path.
 *
 * When a trace::Tracer is installed on the thread, record() mirrors the
 * stream into it: an instant marker per event plus an async "episode"
 * span from each configChange to its resume (or abort), which is how a
 * rotation shows up as one bar across Looper lanes in Perfetto.
 */
class TraceRecorder final : public TelemetrySink
{
  public:
    void record(const TelemetryEvent &event) override;

    const std::vector<TelemetryEvent> &events() const { return events_; }
    void
    clear()
    {
        events_.clear();
        counts_.clear();
        episodes_.clear();
    }

    /** Events whose kind matches exactly. */
    std::vector<TelemetryEvent> eventsOfKind(TelemetryKind kind) const;
    std::size_t countOfKind(TelemetryKind kind) const;
    /** Last event of a kind, if any. */
    std::optional<TelemetryEvent> lastOfKind(TelemetryKind kind) const;

    /**
     * Each atms.configChange paired with the first atms.activityResumed
     * after it. Episodes overtaken by the next change are marked
     * aborted; crashed handlings stay open (no end, not aborted).
     */
    const std::vector<HandlingEpisode> &handlingEpisodes() const
    {
        return episodes_;
    }

    /** Duration of the most recent completed episode, ms; -1 if none. */
    double lastHandlingMs() const;

    /** True when an app.crash event was recorded. */
    bool sawCrash() const { return countOfKind(kinds::kAppCrash) > 0; }

    /**
     * Serialise the event log as CSV (`time_ms,kind,detail,value`) for
     * external plotting; detail fields are quoted.
     */
    std::string toCsv() const;

    /** Write toCsv() to a file; false on I/O failure. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<TelemetryEvent> events_;
    /** Incremental tallies backing countOfKind(), indexed by kind id. */
    std::vector<std::size_t> counts_;
    /** Incrementally paired episodes backing handlingEpisodes(). */
    std::vector<HandlingEpisode> episodes_;
};

} // namespace rchdroid::sim

#endif // RCHDROID_SIM_TRACE_H
