/**
 * @file
 * TraceRecorder: the TelemetrySink that collects every framework event
 * of a run and derives the paper's metrics from them — most importantly
 * the runtime-change handling time, "the time between the configuration
 * change arriving at the ATMS and the corresponding activity resumed"
 * (§5.1).
 */
#ifndef RCHDROID_SIM_TRACE_H
#define RCHDROID_SIM_TRACE_H

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "platform/telemetry.h"

namespace rchdroid::sim {

/** One matched configuration-change handling episode. */
struct HandlingEpisode
{
    /** atms.configChange arrival. */
    SimTime start = 0;
    /** The matching atms.activityResumed, if handling completed. */
    std::optional<SimTime> end;

    bool completed() const { return end.has_value(); }
    double
    durationMs() const
    {
        return end ? toMillisF(*end - start) : -1.0;
    }
};

/**
 * Event store + metric extraction.
 *
 * Per-kind counts and handling episodes are maintained incrementally in
 * record(): harness predicates poll countOfKind()/lastHandlingMs() after
 * every scheduler step, so deriving them by rescanning the event log
 * made long-lived systems quadratic in their own history.
 */
class TraceRecorder final : public TelemetrySink
{
  public:
    void record(const TelemetryEvent &event) override;

    const std::vector<TelemetryEvent> &events() const { return events_; }
    void
    clear()
    {
        events_.clear();
        counts_.clear();
        episodes_.clear();
    }

    /** Events whose kind matches exactly. */
    std::vector<TelemetryEvent> eventsOfKind(const std::string &kind) const;
    std::size_t countOfKind(const std::string &kind) const;
    /** Last event of a kind, if any. */
    std::optional<TelemetryEvent> lastOfKind(const std::string &kind) const;

    /**
     * Each atms.configChange paired with the first atms.activityResumed
     * after it (and before the next change). Crashed handlings stay
     * open (no end).
     */
    const std::vector<HandlingEpisode> &handlingEpisodes() const
    {
        return episodes_;
    }

    /** Duration of the most recent completed episode, ms; -1 if none. */
    double lastHandlingMs() const;

    /** True when an app.crash event was recorded. */
    bool sawCrash() const { return countOfKind("app.crash") > 0; }

    /**
     * Serialise the event log as CSV (`time_ms,kind,detail,value`) for
     * external plotting; detail fields are quoted.
     */
    std::string toCsv() const;

    /** Write toCsv() to a file; false on I/O failure. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<TelemetryEvent> events_;
    /** Incremental per-kind tallies backing countOfKind(). */
    std::unordered_map<std::string, std::size_t> counts_;
    /** Incrementally paired episodes backing handlingEpisodes(). */
    std::vector<HandlingEpisode> episodes_;
};

} // namespace rchdroid::sim

#endif // RCHDROID_SIM_TRACE_H
