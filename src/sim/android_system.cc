#include "sim/android_system.h"

#include <utility>

#include "platform/logging.h"
#include "platform/tracing.h"

namespace rchdroid::sim {

/**
 * Client → system_server binder proxy: every IActivityTaskManager call
 * crosses the modelled binder before reaching the ATMS (whose methods
 * then post onto the ATMS looper).
 */
class AndroidSystem::AtmsProxy final : public ActivityManager
{
  public:
    AtmsProxy(SimScheduler &scheduler, Atms &atms, IpcLatencyModel latency)
        : scheduler_(scheduler), atms_(atms), latency_(latency)
    {
    }

    void
    startActivity(const Intent &intent) override
    {
        defer([this, intent] { atms_.startActivity(intent); });
    }

    void
    activityResumed(ActivityToken token) override
    {
        defer([this, token] { atms_.activityResumed(token); });
    }

    void
    activityPaused(ActivityToken token) override
    {
        defer([this, token] { atms_.activityPaused(token); });
    }

    void
    activityStopped(ActivityToken token) override
    {
        defer([this, token] { atms_.activityStopped(token); });
    }

    void
    activityDestroyed(ActivityToken token) override
    {
        defer([this, token] { atms_.activityDestroyed(token); });
    }

    void
    shadowActivityReclaimed(ActivityToken token) override
    {
        defer([this, token] { atms_.shadowActivityReclaimed(token); });
    }

    void
    processCrashed(const std::string &process,
                   const std::string &reason) override
    {
        defer([this, process, reason] {
            atms_.processCrashed(process, reason);
        });
    }

  private:
    void
    defer(std::function<void()> fn)
    {
        std::uint64_t causal_id = 0;
#if RCHDROID_TRACING
        // Flow-start at the client send site (inside the app dispatch
        // that issued the IActivityTaskManager call); the ATMS-side
        // message inherits the id through the scheduler slot.
        if (trace::Tracer *tracer = trace::Tracer::current()) {
            if (Looper *producer = Looper::current();
                producer != nullptr && producer->isDispatching()) {
                causal_id = tracer->newFlowId();
                tracer->flowAt(trace::Phase::kFlowStart,
                               tracer->currentLane(), tracer->now(),
                               causal_id, "binder",
                               /*bind_enclosing=*/false);
            }
        }
#endif
        // Labeled "binder" for the model checker's NondetSeam. Several
        // binder legs may be tied at one instant; they share this label,
        // which the explorer treats as conservatively dependent (binder
        // delivery order towards the ATMS is a real ordering choice).
        scheduler_.schedule(latency_.oneWay(0), std::move(fn),
                            EventLabel{this, "binder"}, causal_id);
    }

    SimScheduler &scheduler_;
    Atms &atms_;
    IpcLatencyModel latency_;
};

AndroidSystem::AndroidSystem(SystemOptions options)
    : options_(std::move(options)),
      energy_(options_.device.power, /*cores=*/6)
{
    const bool analysis_on = options_.analysis_enabled.value_or(
        analysis::analysisEnabledByDefault());
    if (analysis_on) {
        analysis::AnalyzerOptions analysis_options = options_.analysis;
        if (!analysis_options.abort_on_violation)
            analysis_options.abort_on_violation =
                analysis::analysisAbortByDefault();
        analysis_guard_ =
            std::make_unique<analysis::ScopedAnalyzer>(analysis_options);
        if (analysis_guard_->installed())
            analysis_guard_->analyzer().sink().setTelemetry(&trace_);
    }
#if RCHDROID_TRACING
    // One trace "process" per system: sequential systems in a binary
    // restart sim time at zero, and separate pids keep every lane's
    // timestamps monotonic. The clock is cost-aware — inside a Looper
    // dispatch "now" is the message's accumulated-cost end — so nested
    // spans get real widths even though sim time freezes in callbacks.
    if (trace::Tracer *tracer = trace::Tracer::current()) {
        tracer->beginProcess(std::string("device[") +
                             runtimeChangeModeName(options_.mode) + "]");
        tracer->setClock([this] {
            Looper *looper = Looper::current();
            if (looper && looper->isDispatching())
                return looper->currentCostEnd();
            return scheduler_.now();
        });
    }
#endif
    atms_ = std::make_unique<Atms>(scheduler_, options_.device.atms,
                                   options_.device.binder, &trace_);
    atms_->setMode(options_.mode);
    atms_->setInitialConfiguration(options_.native_config);
    if (options_.record_cpu)
        atms_->looper().setBusyObserver(&cpu_);
}

AndroidSystem::~AndroidSystem()
{
#if RCHDROID_TRACING
    // The installed clock closure reads this system's scheduler; it must
    // not outlive us.
    if (trace::Tracer *tracer = trace::Tracer::current())
        tracer->clearClock();
#endif
}

analysis::Analyzer *
AndroidSystem::analyzer()
{
    return analysis_guard_ && analysis_guard_->installed()
               ? &analysis_guard_->analyzer()
               : nullptr;
}

InstalledApp &
AndroidSystem::installCustom(const CustomAppParams &params)
{
    RCH_ASSERT(apps_.find(params.process) == apps_.end(),
               "app already installed: ", params.process);
    RCH_ASSERT(params.factory != nullptr, "install needs a factory");
    auto installed = std::make_unique<InstalledApp>();
    installed->process = params.process;
    installed->component = params.component;

    ProcessParams process_params;
    process_params.process_name = params.process;
    process_params.base_heap_bytes = params.base_heap_bytes;
    auto resources = params.resources
                         ? params.resources
                         : std::make_shared<const ResourceTable>();
    installed->thread = std::make_unique<ActivityThread>(
        scheduler_, process_params, std::move(resources),
        options_.device.resources, options_.device.framework, &trace_);
    installed->thread->registerActivityFactory(params.component,
                                               params.factory);

    installed->am_proxy = std::make_unique<AtmsProxy>(
        scheduler_, *atms_, options_.device.binder);
    installed->thread->setActivityManager(installed->am_proxy.get());

    atms_->registerProcess(params.process, *installed->thread);
    ComponentInfo info;
    info.handles_config_changes = params.handles_config_changes;
    atms_->declareComponent(params.component, info);

    if (options_.mode == RuntimeChangeMode::RchDroid) {
        installed->handler = std::make_unique<RchClientHandler>(options_.rch);
        installed->handler->attach(*installed->thread);
    }
    if (options_.record_cpu) {
        installed->thread->uiLooper().setBusyObserver(&cpu_);
        installed->thread->workerLooper().setBusyObserver(&cpu_);
    }

    auto [it, inserted] =
        apps_.emplace(params.process, std::move(installed));
    RCH_ASSERT(inserted, "duplicate install");
    return *it->second;
}

InstalledApp &
AndroidSystem::install(const apps::AppSpec &spec)
{
    apps::BuiltApp built = apps::buildAppResources(spec);
    CustomAppParams params;
    params.process = spec.process();
    params.component = spec.component();
    params.factory = apps::makeAppFactory(spec, built);
    params.resources = built.resources;
    params.base_heap_bytes = spec.base_heap_bytes;
    // The RuntimeDroid patch declares android:configChanges so the
    // framework delivers the change for in-app handling.
    params.handles_config_changes =
        spec.handles_config_changes || spec.runtimedroid_patched;
    InstalledApp &app = installCustom(params);
    app.spec = spec;
    app.built = std::move(built);
    return app;
}

InstalledApp &
AndroidSystem::installed(const apps::AppSpec &spec)
{
    return installedProcess(spec.process());
}

InstalledApp &
AndroidSystem::installedProcess(const std::string &process)
{
    auto it = apps_.find(process);
    RCH_ASSERT(it != apps_.end(), "app not installed: ", process);
    return *it->second;
}

ActivityThread &
AndroidSystem::threadFor(const apps::AppSpec &spec)
{
    return *installed(spec).thread;
}

void
AndroidSystem::launchProcess(const std::string &process)
{
    InstalledApp &app = installedProcess(process);
    Intent intent;
    intent.component = app.component;
    intent.source_process = app.process;
    intent.flags = kFlagNewTask;
    const std::size_t resumed_before =
        trace_.countOfKind(kinds::kAtmsActivityResumed);
    app.am_proxy->startActivity(intent);
    const bool ok = runUntil(
        [this, resumed_before] {
            return trace_.countOfKind(kinds::kAtmsActivityResumed) >
                   resumed_before;
        },
        seconds(30));
    RCH_ASSERT(ok, "launch of ", process, " did not complete");
}

void
AndroidSystem::launch(const apps::AppSpec &spec)
{
    launchProcess(spec.process());
}

std::shared_ptr<apps::SimulatedApp>
AndroidSystem::foregroundApp(const apps::AppSpec &spec)
{
    auto activity = installed(spec).thread->foregroundActivity();
    return std::dynamic_pointer_cast<apps::SimulatedApp>(activity);
}

std::shared_ptr<Activity>
AndroidSystem::foregroundActivityOf(const std::string &process)
{
    return installedProcess(process).thread->foregroundActivity();
}

void
AndroidSystem::applyUserState(const apps::AppSpec &spec)
{
    InstalledApp &app = installed(spec);
    app.thread->postAppCallback(
        [this, &spec] {
            if (auto foreground = foregroundApp(spec))
                apps::applyCanonicalState(*foreground);
        },
        milliseconds(1), "driver.applyState");
    runFor(milliseconds(5));
}

apps::StateCheckResult
AndroidSystem::verifyCriticalState(const apps::AppSpec &spec)
{
    // Observation only — run directly, like reading the screen.
    auto foreground = foregroundApp(spec);
    if (!foreground) {
        apps::StateCheckResult result;
        result.preserved = false;
        result.losses.push_back(installed(spec).thread->crashed()
                                    ? "app crashed"
                                    : "no foreground activity");
        return result;
    }
    return apps::verifyCriticalState(*foreground);
}

void
AndroidSystem::clickUpdateButton(const apps::AppSpec &spec)
{
    InstalledApp &app = installed(spec);
    app.thread->postAppCallback(
        [this, &spec] {
            if (auto foreground = foregroundApp(spec))
                foreground->clickUpdateButton();
        },
        microseconds(300), "driver.click");
    runFor(milliseconds(1));
}

void
AndroidSystem::changeConfiguration(const Configuration &config)
{
    atms_->updateConfiguration(config);
}

void
AndroidSystem::rotate()
{
    changeConfiguration(atms_->currentConfiguration().rotated());
}

void
AndroidSystem::wmSize(int width_px, int height_px)
{
    changeConfiguration(
        atms_->currentConfiguration().resized(width_px, height_px));
}

void
AndroidSystem::wmSizeReset()
{
    // `wm size reset` restores the panel's native size; locale and other
    // axes are untouched.
    Configuration config = options_.native_config;
    config.locale = atms_->currentConfiguration().locale;
    changeConfiguration(config);
}

void
AndroidSystem::setLocale(const std::string &locale)
{
    changeConfiguration(atms_->currentConfiguration().withLocale(locale));
}

void
AndroidSystem::setKeyboardAttached(bool attached)
{
    Configuration config = atms_->currentConfiguration();
    config.keyboard =
        attached ? KeyboardState::Attached : KeyboardState::None;
    changeConfiguration(config);
}

void
AndroidSystem::pressBack()
{
    atms_->pressBack();
}

void
AndroidSystem::declareExtraComponent(const std::string &process,
                                     const std::string &component,
                                     ActivityFactory factory,
                                     bool handles_config_changes)
{
    InstalledApp &app = installedProcess(process);
    app.thread->registerActivityFactory(component, std::move(factory));
    ComponentInfo info;
    info.handles_config_changes = handles_config_changes;
    atms_->declareComponent(component, info);
}

Configuration
AndroidSystem::currentConfiguration() const
{
    return atms_->currentConfiguration();
}

void
AndroidSystem::runFor(SimDuration duration)
{
    scheduler_.runUntil(scheduler_.now() + duration);
}

bool
AndroidSystem::runUntil(const std::function<bool()> &predicate,
                        SimDuration timeout)
{
    const SimTime deadline = scheduler_.now() + timeout;
    while (!predicate()) {
        if (scheduler_.now() >= deadline)
            return false;
        if (!scheduler_.step()) {
            // Nothing pending: the condition can never become true.
            return predicate();
        }
    }
    return true;
}

bool
AndroidSystem::waitHandlingComplete(SimDuration timeout)
{
    const std::size_t resumed_before =
        trace_.countOfKind(kinds::kAtmsActivityResumed);
    const std::size_t crashes_before = trace_.countOfKind(kinds::kAppCrash);
    const bool done = runUntil(
        [this, resumed_before, crashes_before] {
            return trace_.countOfKind(kinds::kAtmsActivityResumed) >
                       resumed_before ||
                   trace_.countOfKind(kinds::kAppCrash) > crashes_before;
        },
        timeout);
    return done &&
           trace_.countOfKind(kinds::kAtmsActivityResumed) > resumed_before;
}

std::size_t
AndroidSystem::appHeapBytes(const apps::AppSpec &spec)
{
    return installed(spec).thread->totalHeapBytes();
}

MemorySampler &
AndroidSystem::startMemorySampling(const apps::AppSpec &spec)
{
    InstalledApp &app = installed(spec);
    if (!app.memory) {
        ActivityThread *thread = app.thread.get();
        app.memory = std::make_unique<MemorySampler>(
            scheduler_, [thread] { return thread->totalHeapBytes(); },
            options_.memory_sample_interval);
    }
    app.memory->start();
    return *app.memory;
}

} // namespace rchdroid::sim
