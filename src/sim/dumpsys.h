/**
 * @file
 * dumpsys: the simulator's `adb shell dumpsys activity` — a pretty
 * printed snapshot of the system's introspectable state (task stack and
 * shadow records, per-process RCH counters, looper health) plus the
 * installed MetricsRegistry, with a machine-readable JSON twin the bench
 * binaries embed in their BENCH_*.json output.
 */
#ifndef RCHDROID_SIM_DUMPSYS_H
#define RCHDROID_SIM_DUMPSYS_H

#include <string>

#include "platform/metrics.h"
#include "sim/android_system.h"

namespace rchdroid::sim {

/**
 * Pretty-print the system state dumpsys-style. Samples the point-in-time
 * gauges (live activities, heap, pending messages) into `registry`
 * before rendering it; pass null to dump the system sections only.
 */
std::string dumpsys(AndroidSystem &system,
                    metrics::MetricsRegistry *registry =
                        metrics::MetricsRegistry::current());

/**
 * The machine-readable twin: the registry's JSON with the same gauge
 * sampling applied. "{}\n" when no registry is installed.
 */
std::string metricsJson(AndroidSystem &system,
                        metrics::MetricsRegistry *registry =
                            metrics::MetricsRegistry::current());

} // namespace rchdroid::sim

#endif // RCHDROID_SIM_DUMPSYS_H
