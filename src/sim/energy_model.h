/**
 * @file
 * EnergyModel: board power from CPU utilisation — the §5.6 power-meter
 * stand-in. The paper's observation ("the energy consumption of RCHDroid
 * remains unchanged and is 4.03 W ... the shadow-state activity is not
 * shown in the foreground and remains in an inactive state") falls out
 * of the model: an inactive instance adds no utilisation, so it adds no
 * power.
 */
#ifndef RCHDROID_SIM_ENERGY_MODEL_H
#define RCHDROID_SIM_ENERGY_MODEL_H

#include "sim/cpu_tracker.h"
#include "sim/device_model.h"

namespace rchdroid::sim {

/**
 * Utilisation-linear power model.
 */
class EnergyModel
{
  public:
    /**
     * @param power Board power parameters.
     * @param cores Cores of the device (RK3399: 6).
     */
    explicit EnergyModel(const PowerModel &power, int cores = 6);

    /** Instantaneous power at a given utilisation fraction. */
    double powerAtUtilization(double utilization) const;

    /** Mean power over [from, to) given the tracker's busy record. */
    double averagePowerWatts(const CpuTracker &tracker, SimTime from,
                             SimTime to) const;

    /** Energy over [from, to) in joules. */
    double energyJoules(const CpuTracker &tracker, SimTime from,
                        SimTime to) const;

    int cores() const { return cores_; }

  private:
    PowerModel power_;
    int cores_;
};

} // namespace rchdroid::sim

#endif // RCHDROID_SIM_ENERGY_MODEL_H
