#include "sim/trace.h"

#include <fstream>
#include <sstream>

#include "platform/strings.h"

namespace rchdroid::sim {

void
TraceRecorder::record(const TelemetryEvent &event)
{
    ++counts_[event.kind];
    if (event.kind == "atms.configChange") {
        episodes_.push_back(HandlingEpisode{event.time, std::nullopt});
    } else if (event.kind == "atms.activityResumed") {
        if (!episodes_.empty() && !episodes_.back().end)
            episodes_.back().end = event.time;
    }
    events_.push_back(event);
}

std::vector<TelemetryEvent>
TraceRecorder::eventsOfKind(const std::string &kind) const
{
    std::vector<TelemetryEvent> out;
    for (const auto &event : events_) {
        if (event.kind == kind)
            out.push_back(event);
    }
    return out;
}

std::size_t
TraceRecorder::countOfKind(const std::string &kind) const
{
    const auto it = counts_.find(kind);
    return it == counts_.end() ? 0 : it->second;
}

std::optional<TelemetryEvent>
TraceRecorder::lastOfKind(const std::string &kind) const
{
    for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
        if (it->kind == kind)
            return *it;
    }
    return std::nullopt;
}

std::string
TraceRecorder::toCsv() const
{
    std::ostringstream os;
    os << "time_ms,kind,detail,value\n";
    for (const auto &event : events_) {
        std::string detail = event.detail;
        // Minimal CSV quoting: wrap and double embedded quotes.
        std::string quoted = "\"";
        for (char c : detail) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        os << formatDouble(toMillisF(event.time), 3) << ',' << event.kind
           << ',' << quoted << ',' << formatDouble(event.value, 3) << '\n';
    }
    return os.str();
}

bool
TraceRecorder::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toCsv();
    return static_cast<bool>(out);
}

double
TraceRecorder::lastHandlingMs() const
{
    for (auto it = episodes_.rbegin(); it != episodes_.rend(); ++it) {
        if (it->completed())
            return it->durationMs();
    }
    return -1.0;
}

} // namespace rchdroid::sim
