#include "sim/trace.h"

#include <fstream>
#include <sstream>

#include "platform/metrics.h"
#include "platform/strings.h"
#include "platform/tracing.h"

namespace rchdroid::sim {

void
TraceRecorder::record(const TelemetryEvent &event)
{
    const std::uint32_t id = event.kind.id();
    if (id >= counts_.size())
        counts_.resize(id + 1, 0);
    ++counts_[id];

#if RCHDROID_TRACING
    trace::Tracer *tracer = trace::Tracer::current();
    // Instants use the cost-aware clock so they sit inside whatever
    // span is currently open on the lane; the async episode endpoints
    // below use the event's semantic time instead.
    if (tracer)
        tracer->instant(event.kind.str(), event.detail);
#endif

    if (event.kind == kinds::kAtmsConfigChange) {
        if (!episodes_.empty() && !episodes_.back().end &&
            !episodes_.back().aborted) {
            // The previous handling never reached its resume: close it
            // as incomplete so this change's episode cannot steal the
            // eventual resume event (the mis-pairing bug).
            episodes_.back().aborted = true;
            metrics::add(metrics::Counter::kEpisodesAborted);
#if RCHDROID_TRACING
            if (tracer)
                tracer->asyncEnd("episode", episodes_.size() - 1, event.time,
                                 "aborted");
#endif
        }
        episodes_.push_back(HandlingEpisode{event.time, std::nullopt, false});
#if RCHDROID_TRACING
        if (tracer)
            tracer->asyncBegin("episode", episodes_.size() - 1, "rch.episode",
                               event.time, event.detail);
#endif
    } else if (event.kind == kinds::kAtmsActivityResumed) {
        if (!episodes_.empty() && !episodes_.back().end &&
            !episodes_.back().aborted) {
            HandlingEpisode &episode = episodes_.back();
            episode.end = event.time;
            metrics::add(metrics::Counter::kEpisodesCompleted);
            metrics::observe(metrics::Histogram::kHandlingMs,
                             episode.durationMs());
#if RCHDROID_TRACING
            if (tracer)
                tracer->asyncEnd("episode", episodes_.size() - 1, event.time);
#endif
        }
    }
    events_.push_back(event);
}

std::vector<TelemetryEvent>
TraceRecorder::eventsOfKind(TelemetryKind kind) const
{
    std::vector<TelemetryEvent> out;
    for (const auto &event : events_) {
        if (event.kind == kind)
            out.push_back(event);
    }
    return out;
}

std::size_t
TraceRecorder::countOfKind(TelemetryKind kind) const
{
    const std::uint32_t id = kind.id();
    return id < counts_.size() ? counts_[id] : 0;
}

std::optional<TelemetryEvent>
TraceRecorder::lastOfKind(TelemetryKind kind) const
{
    for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
        if (it->kind == kind)
            return *it;
    }
    return std::nullopt;
}

std::string
TraceRecorder::toCsv() const
{
    std::ostringstream os;
    os << "time_ms,kind,detail,value\n";
    for (const auto &event : events_) {
        std::string detail = event.detail;
        // Minimal CSV quoting: wrap and double embedded quotes.
        std::string quoted = "\"";
        for (char c : detail) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        os << formatDouble(toMillisF(event.time), 3) << ',' << event.kindName()
           << ',' << quoted << ',' << formatDouble(event.value, 3) << '\n';
    }
    return os.str();
}

bool
TraceRecorder::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toCsv();
    return static_cast<bool>(out);
}

double
TraceRecorder::lastHandlingMs() const
{
    for (auto it = episodes_.rbegin(); it != episodes_.rend(); ++it) {
        if (it->completed())
            return it->durationMs();
    }
    return -1.0;
}

} // namespace rchdroid::sim
