/**
 * @file
 * Copy-on-write process snapshots: checkpoint a whole simulated device
 * (an AndroidSystem plus every closure, oracle and analyzer observing
 * it) and later fork fresh continuations from any checkpoint in
 * O(changed pages) instead of re-executing from the root.
 *
 * Why fork(2) *is* the versioned store. The simulator's mutable state —
 * task stack and activity records (src/ams), view trees (src/view),
 * saved bundles and shadow/essence state (src/rch, src/app), and the
 * scheduler/MessageQueue payload slabs with their free lists,
 * tombstones and causal_ids (src/os) — is threaded through with
 * std::function closures capturing raw `this` pointers into the object
 * graph. No in-process deep copy can re-point those captures at a
 * cloned graph, so a data-structure-level clone would be unsound by
 * construction. The kernel's page table, however, already implements
 * exactly the structure the design calls for: shared immutable pages
 * plus a per-fork dirty set. fork() captures every store at once,
 * bit-identically, in O(page tables); the first write to a page after
 * the fork pays one page copy; unwritten pages stay shared between all
 * snapshots of a lineage. A restored continuation therefore produces
 * bit-identical fingerprints, traces and oracle verdicts versus a fresh
 * re-execution of the same prefix — there is no second implementation
 * of "copy the state" to drift.
 *
 * Process topology. One *coordinator* (the process calling explore(),
 * a bench, or a test) never constructs a simulated system itself; it
 * forks *workers* that do. A worker parks a checkpoint into a numbered
 * *slot* by forking: the child (the checkpoint holder) blocks in a tiny
 * service loop on the slot's command pipe while the worker runs on.
 * Resuming a slot forks the holder again; the new child returns out of
 * park() with the resume payload and continues executing from the
 * checkpointed state. All results stream to the coordinator over one
 * shared upstream pipe as length-prefixed frames; the protocol is
 * strictly sequential (exactly one process runs simulation code at any
 * time), so the single pipe needs no further synchronisation.
 *
 * The coordinator ignores SIGCHLD for the host's lifetime so exited
 * workers and holders are reaped by the kernel without a wait loop;
 * children always leave via _exit(), skipping atexit handlers and
 * (deliberately) leak checks for state the checkpoint owns by design.
 *
 * On non-POSIX builds (or with RCHDROID_SNAPSHOTS=0 in the
 * environment) SnapshotHost::supported() is false and callers fall
 * back to replay-from-root with identical observable results.
 */
#ifndef RCHDROID_SIM_SNAPSHOT_H
#define RCHDROID_SIM_SNAPSHOT_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace rchdroid::sim {

class SnapshotHost;

/**
 * The worker half of the snapshot protocol. Created by
 * SnapshotHost::spawnWorker inside the forked worker process and
 * passed to the worker body; also used (via the inherited memory
 * image) by every continuation forked from one of its checkpoints.
 */
class SnapshotWorker
{
  public:
    /**
     * Park a copy-on-write checkpoint of the calling process into
     * `slot`. The running worker returns std::nullopt immediately and
     * continues; each later SnapshotHost::resume(slot, payload) forks
     * a continuation that returns `payload` from this very call.
     * Out-of-range slots are ignored (returns std::nullopt).
     */
    std::optional<std::string> park(int slot);

    /** Stream the result upstream and terminate the worker process. */
    [[noreturn]] void finish(const std::string &result);

  private:
    friend class SnapshotHost;
    explicit SnapshotWorker(SnapshotHost &host) : host_(host) {}
    SnapshotHost &host_;
};

/** What one awaitResult() observed. */
struct SnapshotResult
{
    /** The worker's finish() payload. */
    std::string payload;
    /** Slots parked (in park order) during this execution. */
    std::vector<int> parked_slots;
};

/**
 * The coordinator half: owns the upstream pipe, one command pipe per
 * checkpoint slot, and the SIGCHLD disposition. One host serves one
 * exploration; the destructor discards every live checkpoint.
 */
class SnapshotHost
{
  public:
    /** @param slots Number of checkpoint slots (the depth bound). */
    explicit SnapshotHost(int slots);
    ~SnapshotHost();

    SnapshotHost(const SnapshotHost &) = delete;
    SnapshotHost &operator=(const SnapshotHost &) = delete;

    /**
     * True when fork-based snapshots work here: a POSIX build and
     * RCHDROID_SNAPSHOTS is not set to 0.
     */
    static bool supported();

    /** True when construction succeeded (pipes allocated). */
    bool active() const { return active_; }

    /**
     * Fork a fresh worker running `body`. The body executes in the
     * child with this host's SnapshotWorker and must end by calling
     * finish(); if it returns anyway the child exits with an error
     * status. The coordinator returns immediately — follow with
     * awaitResult().
     */
    void spawnWorker(const std::function<void(SnapshotWorker &)> &body);

    /** Is a checkpoint currently parked in `slot`? */
    bool slotLive(int slot) const;

    /**
     * Fork a continuation from the checkpoint in `slot`, handing it
     * `payload`. The slot stays live (it can be resumed again) —
     * unless `consume` is set, in which case the holder *becomes* the
     * continuation (no fork, no later discard) and the slot dies.
     * Follow with awaitResult().
     */
    void resume(int slot, const std::string &payload,
                bool consume = false);

    /** Terminate the checkpoint in `slot` (blocks for its ack). */
    void discard(int slot);

    /** Terminate every live checkpoint in slots > `slot`. */
    void discardAbove(int slot);

    /**
     * Block until the running worker/continuation finishes, recording
     * checkpoint-parked notifications on the way.
     */
    SnapshotResult awaitResult();

    /** @name Lifetime statistics
     * @{
     */
    /** Checkpoints parked (snapshots taken) so far. */
    std::uint64_t snapshotsTaken() const { return snapshots_taken_; }
    /** Continuations forked from checkpoints so far. */
    std::uint64_t restores() const { return restores_; }
    /** @} */

  private:
    friend class SnapshotWorker;

    struct Pipe
    {
        int read_fd = -1;
        int write_fd = -1;
    };

    /** Worker side of park(); see SnapshotWorker::park. */
    std::optional<std::string> workerPark(int slot);
    [[noreturn]] void workerFinish(const std::string &result);

    bool active_ = false;
    Pipe upstream_;
    std::vector<Pipe> slot_cmd_;
    std::vector<bool> slot_live_;
    std::uint64_t snapshots_taken_ = 0;
    std::uint64_t restores_ = 0;
    /** Saved SIGCHLD disposition, restored by the destructor. */
    void *old_sigchld_ = nullptr;
};

} // namespace rchdroid::sim

#endif // RCHDROID_SIM_SNAPSHOT_H
