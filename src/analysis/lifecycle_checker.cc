#include "analysis/lifecycle_checker.h"

#include <sstream>

namespace rchdroid::analysis {

std::string
LifecycleChecker::describeInstance(const Tracked &tracked) const
{
    std::ostringstream os;
    os << tracked.component << "#" << tracked.instance_id;
    return os.str();
}

void
LifecycleChecker::onTransition(const void *activity, const void *scope,
                               const std::string &component,
                               std::uint64_t instance_id,
                               LifecycleState from, LifecycleState to)
{
    ++transitions_checked_;

    auto it = activities_.find(activity);
    if (it != activities_.end() && it->second.state != from) {
        Violation violation;
        violation.kind = ViolationKind::LifecycleTransition;
        violation.time = context_.now();
        std::ostringstream os;
        os << describeInstance(it->second) << ": transition claims state "
           << lifecycleStateName(from) << " but last observed state was "
           << lifecycleStateName(it->second.state);
        violation.summary = os.str();
        violation.details.push_back("in " + context_.describeCurrent());
        sink_.report(std::move(violation));
    }

    Tracked &tracked = activities_[activity];
    tracked.scope = scope;
    tracked.component = component;
    tracked.instance_id = instance_id;

    if (!isValidTransition(from, to)) {
        Violation violation;
        violation.kind = ViolationKind::LifecycleTransition;
        violation.time = context_.now();
        std::ostringstream os;
        os << describeInstance(tracked) << ": illegal transition "
           << lifecycleStateName(from) << " -> " << lifecycleStateName(to)
           << " (no such edge in Fig. 4)";
        violation.summary = os.str();
        violation.details.push_back("in " + context_.describeCurrent());
        sink_.report(std::move(violation));
    }
    tracked.state = to;

    // Invariant: at most one foreground (and so at most one Sunny)
    // instance per process scope. Bare instances built directly by unit
    // tests have no scope and are exempt.
    if (isForeground(to) && scope) {
        for (const auto &[other, other_tracked] : activities_) {
            if (other == activity || other_tracked.scope != scope ||
                !isForeground(other_tracked.state)) {
                continue;
            }
            Violation violation;
            violation.kind = ViolationKind::LifecycleInvariant;
            violation.time = context_.now();
            std::ostringstream os;
            os << "two foreground instances in one process: "
               << describeInstance(tracked) << " became "
               << lifecycleStateName(to) << " while "
               << describeInstance(other_tracked) << " is "
               << lifecycleStateName(other_tracked.state);
            violation.summary = os.str();
            violation.details.push_back("in " + context_.describeCurrent());
            sink_.report(std::move(violation));
        }
    }
}

void
LifecycleChecker::onActivityGone(const void *activity)
{
    activities_.erase(activity);
}

void
LifecycleChecker::onDestroyedViewMutation(const void *view, const char *kind,
                                          const std::string &label)
{
    (void)view;
    if (context_.inAppCode()) {
        // A stale app callback touching a destroyed tree: the crash
        // scenario the paper studies, absorbed by the crash guard.
        ++app_destroyed_view_touches_;
        return;
    }
    Violation violation;
    violation.kind = ViolationKind::DestroyedViewMutation;
    violation.time = context_.now();
    std::ostringstream os;
    os << "framework mutated destroyed " << kind;
    if (!label.empty())
        os << " '" << label << "'";
    violation.summary = os.str();
    violation.details.push_back("in " + context_.describeCurrent());
    sink_.report(std::move(violation));
}

} // namespace rchdroid::analysis
