#include "analysis/race_detector.h"

#include <sstream>

#include "platform/logging.h"

namespace rchdroid::analysis {

int
RaceDetector::threadIndex(const Looper &looper)
{
    auto it = thread_index_.find(&looper);
    if (it != thread_index_.end())
        return it->second;
    const int index = static_cast<int>(thread_names_.size());
    thread_index_.emplace(&looper, index);
    thread_names_.push_back(looper.name());
    clocks_.emplace_back();
    // Start each thread at epoch 1 so a recorded epoch of 0 can never be
    // confused with "thread never ran".
    clocks_.back().set(index, 1);
    return index;
}

void
RaceDetector::onLooperCreated(const Looper &looper)
{
    threadIndex(looper);
}

void
RaceDetector::onLooperDestroyed(const Looper &looper)
{
    // The index (and its clock) stays allocated: recorded epochs keep
    // referring to it. Only the pointer mapping is dropped, so a new
    // looper reusing the address gets a fresh identity.
    thread_index_.erase(&looper);
    pending_sends_.erase(&looper);
}

void
RaceDetector::onMessageSend(const Looper &target, std::uint64_t msg_id)
{
    Looper *sender = Looper::current();
    if (!sender)
        return; // Harness enqueue: no happens-before edge.
    const int s = threadIndex(*sender);
    pending_sends_[&target].emplace(msg_id, clocks_[s]);
    // Release: later sender work is not ordered before this message.
    clocks_[s].tick(s);
}

void
RaceDetector::onDispatchBegin(const Looper &looper, std::uint64_t msg_id)
{
    const int r = threadIndex(looper);
    auto by_target = pending_sends_.find(&looper);
    if (by_target != pending_sends_.end()) {
        auto snapshot = by_target->second.find(msg_id);
        if (snapshot != by_target->second.end()) {
            clocks_[r].join(snapshot->second);
            by_target->second.erase(snapshot);
        }
    }
    // Each dispatch is a new epoch on its looper.
    clocks_[r].tick(r);
}

void
RaceDetector::onSyncBarrier(const void *scope, const char *label)
{
    (void)label;
    Looper *current = Looper::current();
    if (!current)
        return;
    const int t = threadIndex(*current);
    VectorClock &barrier = barriers_[scope];
    // Acquire everything released at earlier barriers on this scope,
    // then release our own history into it.
    clocks_[t].join(barrier);
    barrier.join(clocks_[t]);
    clocks_[t].tick(t);
}

RaceDetector::Epoch
RaceDetector::currentEpoch(int thread) const
{
    Epoch epoch;
    epoch.thread = thread;
    epoch.clock = clocks_[static_cast<std::size_t>(thread)].get(thread);
    if (const DispatchFrame *frame = context_.currentFrame()) {
        epoch.info.tag = frame->tag;
        epoch.info.msg_id = frame->msg_id;
    }
    epoch.info.time = context_.now();
    return epoch;
}

void
RaceDetector::onSharedAccess(const void *object, const char *kind,
                             const std::string &label, bool is_write)
{
    Looper *current = Looper::current();
    if (!current) {
        ++accesses_ignored_;
        return;
    }
    ++accesses_checked_;
    const int t = threadIndex(*current);
    const VectorClock &now = clocks_[static_cast<std::size_t>(t)];

    ObjectState &state = objects_[object];
    if (state.label.empty()) {
        state.kind = kind;
        state.label = label;
    }
    const Epoch here = currentEpoch(t);

    if (is_write) {
        if (state.write.thread >= 0 && !ordered(state.write, now))
            reportRace(state, state.write, /*prior_is_write=*/true, here,
                       /*current_is_write=*/true);
        for (const Epoch &read : state.reads) {
            if (!ordered(read, now))
                reportRace(state, read, /*prior_is_write=*/false, here,
                           /*current_is_write=*/true);
        }
        state.write = here;
        // Every prior read is now ordered before (or raced with) this
        // write; the write epoch subsumes them.
        state.reads.clear();
        return;
    }

    if (state.write.thread >= 0 && !ordered(state.write, now))
        reportRace(state, state.write, /*prior_is_write=*/true, here,
                   /*current_is_write=*/false);
    for (Epoch &read : state.reads) {
        if (read.thread == t) {
            read = here;
            return;
        }
    }
    state.reads.push_back(here);
}

void
RaceDetector::onObjectGone(const void *object)
{
    objects_.erase(object);
}

const VectorClock &
RaceDetector::clockOf(const Looper &looper)
{
    return clocks_[static_cast<std::size_t>(threadIndex(looper))];
}

std::string
RaceDetector::describeEpoch(const Epoch &epoch, bool is_write) const
{
    std::ostringstream os;
    os << (is_write ? "write" : "read") << " by ";
    const auto index = static_cast<std::size_t>(epoch.thread);
    os << (index < thread_names_.size() ? thread_names_[index]
                                        : "<unknown thread>");
    if (epoch.info.msg_id != 0) {
        os << " in dispatch #" << epoch.info.msg_id;
        if (!epoch.info.tag.empty())
            os << " '" << epoch.info.tag << "'";
    }
    os << " at " << formatSimTime(epoch.info.time) << " (epoch "
       << epoch.thread << ":" << epoch.clock << ")";
    return os.str();
}

void
RaceDetector::reportRace(ObjectState &state, const Epoch &prior,
                         bool prior_is_write, const Epoch &current,
                         bool current_is_write)
{
    ++races_found_;
    if (state.reported)
        return;
    state.reported = true;

    Violation violation;
    violation.kind = ViolationKind::DataRace;
    violation.time = current.info.time;
    {
        std::ostringstream os;
        os << "data race on " << state.kind;
        if (!state.label.empty())
            os << " '" << state.label << "'";
        os << ": unordered " << (prior_is_write ? "write" : "read") << "/"
           << (current_is_write ? "write" : "read") << " from "
           << thread_names_[static_cast<std::size_t>(prior.thread)]
           << " and "
           << thread_names_[static_cast<std::size_t>(current.thread)];
        violation.summary = os.str();
    }
    violation.details.push_back("prior:   " +
                                describeEpoch(prior, prior_is_write));
    violation.details.push_back("current: " +
                                describeEpoch(current, current_is_write));
    violation.details.push_back(
        "no happens-before path (message send, barrier, or program "
        "order) connects the two accesses");
    sink_.report(std::move(violation));
}

} // namespace rchdroid::analysis
