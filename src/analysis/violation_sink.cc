#include "analysis/violation.h"

#include <sstream>

#include "platform/logging.h"

namespace rchdroid::analysis {

const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::DataRace:
        return "DataRace";
      case ViolationKind::LifecycleTransition:
        return "LifecycleTransition";
      case ViolationKind::LifecycleInvariant:
        return "LifecycleInvariant";
      case ViolationKind::DestroyedViewMutation:
        return "DestroyedViewMutation";
    }
    return "Unknown";
}

std::string
Violation::toString() const
{
    std::ostringstream os;
    os << violationKindName(kind) << " @ " << time << "ns: " << summary;
    for (const auto &line : details)
        os << "\n  " << line;
    return os.str();
}

void
ViolationSink::report(Violation violation)
{
    if (timeline_snapshotter_) {
        auto timeline = timeline_snapshotter_();
        if (!timeline.empty()) {
            violation.details.emplace_back("recent events:");
            for (auto &line : timeline)
                violation.details.emplace_back("  " + std::move(line));
        }
    }

    ++total_count_;
    ++counts_[static_cast<std::size_t>(violation.kind)];
    if (telemetry_) {
        TelemetryEvent event;
        event.time = violation.time;
        event.kind = std::string("analysis.") + violationKindName(violation.kind);
        event.detail = violation.summary;
        telemetry_->record(event);
    }
    RCH_LOGE("Analysis", violation.toString());
    if (abort_on_violation_)
        RCH_PANIC("analysis violation: ", violation.toString());
    if (violations_.size() < kMaxStored)
        violations_.push_back(std::move(violation));
}

void
ViolationSink::clear()
{
    violations_.clear();
    counts_.fill(0);
    total_count_ = 0;
}

} // namespace rchdroid::analysis
