/**
 * @file
 * VectorClock: the logical-time backbone of the deterministic race
 * detector.
 *
 * Each simulated thread (Looper) gets a dense index; a clock maps index
 * → count of that thread's dispatch segments observed so far. Message
 * sends carry the sender's clock to the receiving dispatch, which joins
 * it — giving exactly the happens-before relation of the looper model:
 * program order within a looper plus message-send edges between them.
 * Virtual time deliberately does NOT order events: two dispatches that
 * merely happen to be scheduled apart are concurrent, which is what lets
 * a fully deterministic simulation still expose logical races.
 */
#ifndef RCHDROID_ANALYSIS_VECTOR_CLOCK_H
#define RCHDROID_ANALYSIS_VECTOR_CLOCK_H

#include <cstdint>
#include <string>
#include <vector>

namespace rchdroid::analysis {

/**
 * A grow-on-demand vector clock over dense thread indices.
 */
class VectorClock
{
  public:
    VectorClock() = default;

    /** Component for `thread` (0 when never set). */
    std::uint64_t get(int thread) const;

    /** Set component `thread` to `value`. */
    void set(int thread, std::uint64_t value);

    /** Increment component `thread` by one. */
    void tick(int thread);

    /** Pointwise maximum with `other` (the join of the lattice). */
    void join(const VectorClock &other);

    /** True when every component of this clock is <= `other`'s. */
    bool leq(const VectorClock &other) const;

    /** Number of components stored (threads ever touched). */
    std::size_t size() const { return clocks_.size(); }

    /** "[2 0 7]" — diagnostics. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> clocks_;
};

} // namespace rchdroid::analysis

#endif // RCHDROID_ANALYSIS_VECTOR_CLOCK_H
