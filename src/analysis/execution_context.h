/**
 * @file
 * ExecutionContext: where the simulation is "right now", from the
 * analysis layer's point of view.
 *
 * The Analyzer maintains one of these from the dispatch and app-code
 * hooks; the checkers read it to attribute findings (which thread, which
 * message, inside app code or framework code) without re-deriving the
 * state themselves.
 */
#ifndef RCHDROID_ANALYSIS_EXECUTION_CONTEXT_H
#define RCHDROID_ANALYSIS_EXECUTION_CONTEXT_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "os/looper.h"
#include "platform/time.h"

namespace rchdroid::analysis {

/** One in-flight looper dispatch. */
struct DispatchFrame
{
    const Looper *looper = nullptr;
    std::uint64_t msg_id = 0;
    std::string tag;
};

/**
 * Tracks the dispatch stack, the app-code nesting depth, and the last
 * virtual time any hook observed.
 */
class ExecutionContext
{
  public:
    void
    pushDispatch(const Looper &looper, std::uint64_t msg_id,
                 const std::string &tag)
    {
        stack_.push_back({&looper, msg_id, tag});
        last_time_ = looper.now();
    }

    void
    popDispatch()
    {
        if (!stack_.empty()) {
            last_time_ = stack_.back().looper->now();
            stack_.pop_back();
        }
    }

    /** The innermost in-flight dispatch, or null outside any dispatch. */
    const DispatchFrame *
    currentFrame() const
    {
        return stack_.empty() ? nullptr : &stack_.back();
    }

    void enterAppCode() { ++app_code_depth_; }
    void exitAppCode()
    {
        if (app_code_depth_ > 0)
            --app_code_depth_;
    }

    /** True inside ActivityThread::runAppCode (the crash guard scope). */
    bool inAppCode() const { return app_code_depth_ > 0; }

    /** Best-known current virtual time. */
    SimTime
    now() const
    {
        if (const DispatchFrame *frame = currentFrame())
            return frame->looper->now();
        return last_time_;
    }

    /** "app.main dispatch #42 'appCallback'" or "<outside dispatch>". */
    std::string
    describeCurrent() const
    {
        const DispatchFrame *frame = currentFrame();
        if (!frame)
            return "<outside dispatch>";
        std::ostringstream os;
        os << frame->looper->name() << " dispatch #" << frame->msg_id;
        if (!frame->tag.empty())
            os << " '" << frame->tag << "'";
        return os.str();
    }

  private:
    std::vector<DispatchFrame> stack_;
    int app_code_depth_ = 0;
    SimTime last_time_ = 0;
};

} // namespace rchdroid::analysis

#endif // RCHDROID_ANALYSIS_EXECUTION_CONTEXT_H
