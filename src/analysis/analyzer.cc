#include "analysis/analyzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace rchdroid::analysis {

Analyzer::Analyzer(AnalyzerOptions options)
    : options_(options),
      races_(sink_, context_),
      lifecycle_(sink_, context_)
{
    sink_.setAbortOnViolation(options_.abort_on_violation);
    sink_.setTimelineSnapshotter([this] {
        return std::vector<std::string>(timeline_.begin(), timeline_.end());
    });
}

void
Analyzer::noteTimeline(std::string line)
{
    if (options_.timeline_capacity == 0)
        return;
    if (timeline_.size() >= options_.timeline_capacity)
        timeline_.pop_front();
    timeline_.push_back(std::move(line));
}

std::string
Analyzer::summary() const
{
    std::ostringstream os;
    os << sink_.totalCount() << " violation(s): "
       << sink_.countOf(ViolationKind::DataRace) << " race(s), "
       << sink_.countOf(ViolationKind::LifecycleTransition) +
              sink_.countOf(ViolationKind::LifecycleInvariant)
       << " lifecycle, "
       << sink_.countOf(ViolationKind::DestroyedViewMutation)
       << " destroyed-view; "
       << races_.accessesChecked() << " access(es) and "
       << lifecycle_.transitionsChecked() << " transition(s) checked";
    return os.str();
}

void
Analyzer::onLooperCreated(Looper &looper)
{
    if (options_.race_detector)
        races_.onLooperCreated(looper);
}

void
Analyzer::onLooperDestroyed(Looper &looper)
{
    if (options_.race_detector)
        races_.onLooperDestroyed(looper);
}

void
Analyzer::onMessageSend(Looper &target, std::uint64_t msg_id, SimTime when,
                        const std::string &tag)
{
    (void)when;
    (void)tag;
    if (options_.race_detector)
        races_.onMessageSend(target, msg_id);
}

void
Analyzer::onDispatchBegin(Looper &looper, std::uint64_t msg_id,
                          const std::string &tag)
{
    context_.pushDispatch(looper, msg_id, tag);
    if (options_.race_detector)
        races_.onDispatchBegin(looper, msg_id);
    std::ostringstream os;
    os << formatSimTime(looper.now()) << " " << looper.name() << " #"
       << msg_id;
    if (!tag.empty())
        os << " '" << tag << "'";
    noteTimeline(os.str());
}

void
Analyzer::onDispatchEnd(Looper &looper)
{
    (void)looper;
    context_.popDispatch();
}

void
Analyzer::onSyncBarrier(const void *scope, const char *label)
{
    if (options_.race_detector)
        races_.onSyncBarrier(scope, label);
    std::ostringstream os;
    os << formatSimTime(context_.now()) << " barrier '" << label << "'";
    noteTimeline(os.str());
}

void
Analyzer::onSharedAccess(const void *object, const char *kind,
                         const std::string &label, bool is_write)
{
    if (options_.race_detector)
        races_.onSharedAccess(object, kind, label, is_write);
}

void
Analyzer::onObjectGone(const void *object)
{
    if (options_.race_detector)
        races_.onObjectGone(object);
}

void
Analyzer::onLifecycleTransition(const void *activity, const void *scope,
                                const std::string &component,
                                std::uint64_t instance_id, std::uint8_t from,
                                std::uint8_t to)
{
    const auto from_state = static_cast<LifecycleState>(from);
    const auto to_state = static_cast<LifecycleState>(to);
    std::ostringstream os;
    os << formatSimTime(context_.now()) << " " << component << "#"
       << instance_id << " " << lifecycleStateName(from_state) << " -> "
       << lifecycleStateName(to_state);
    noteTimeline(os.str());
    if (options_.lifecycle_checker)
        lifecycle_.onTransition(activity, scope, component, instance_id,
                                from_state, to_state);
}

void
Analyzer::onActivityGone(const void *activity)
{
    if (options_.lifecycle_checker)
        lifecycle_.onActivityGone(activity);
}

void
Analyzer::onDestroyedViewMutation(const void *view, const char *kind,
                                  const std::string &label)
{
    if (options_.lifecycle_checker)
        lifecycle_.onDestroyedViewMutation(view, kind, label);
}

void
Analyzer::onAppCodeBegin()
{
    context_.enterAppCode();
}

void
Analyzer::onAppCodeEnd()
{
    context_.exitAppCode();
}

ScopedAnalyzer::ScopedAnalyzer(AnalyzerOptions options) : analyzer_(options)
{
    if (!hooks()) {
        setHooks(&analyzer_);
        installed_ = true;
    }
}

ScopedAnalyzer::~ScopedAnalyzer()
{
    if (installed_)
        setHooks(nullptr);
}

namespace {

/** -1 unset, 0 forced off, 1 forced on. */
int
envTristate(const char *name)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return -1;
    return (std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0)
               ? 0
               : 1;
}

} // namespace

bool
analysisEnabledByDefault()
{
    const int forced = envTristate("RCHDROID_ANALYSIS");
    if (forced >= 0)
        return forced == 1;
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

bool
analysisAbortByDefault()
{
    return envTristate("RCHDROID_ANALYSIS_ABORT") == 1;
}

AnalyzerOptions
optionsFromEnv()
{
    AnalyzerOptions options;
    options.abort_on_violation = analysisAbortByDefault();
    return options;
}

CheckMode::CheckMode(int &argc, char **argv)
{
    int out = 1;
    bool found = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            found = true;
            continue;
        }
        argv[out++] = argv[i];
    }
    if (found) {
        argc = out;
        argv[argc] = nullptr;
        AnalyzerOptions options = optionsFromEnv();
        // --check reports at exit rather than aborting mid-run unless
        // the environment explicitly asks for abort.
        guard_.emplace(options);
    }
}

int
CheckMode::finish() const
{
    if (!guard_)
        return 0;
    const Analyzer &analyzer = guard_->analyzer();
    std::printf("analysis: %s\n", analyzer.summary().c_str());
    for (const Violation &violation : analyzer.sink().violations())
        std::printf("%s\n", violation.toString().c_str());
    return analyzer.sink().totalCount() == 0 ? 0 : 1;
}

} // namespace rchdroid::analysis
