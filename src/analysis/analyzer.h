/**
 * @file
 * Analyzer: the analysis subsystem's facade — one object implementing
 * the os-level Hooks interface, owning the race detector, the lifecycle
 * protocol checker, the shared ViolationSink, and a ring buffer of
 * recent events that every violation report carries as a timeline.
 *
 * Installation is RAII-scoped (ScopedAnalyzer) and idempotent: a guard
 * only installs when no hooks are present, so a test that installs its
 * own analyzer wins over the one AndroidSystem would install. By
 * default the subsystem is on in debug builds and off in release; the
 * RCHDROID_ANALYSIS / RCHDROID_ANALYSIS_ABORT environment variables
 * override in both directions, which is how every tier-1 ctest run gets
 * the checkers with abort-on-violation armed regardless of build type.
 */
#ifndef RCHDROID_ANALYSIS_ANALYZER_H
#define RCHDROID_ANALYSIS_ANALYZER_H

#include <cstddef>
#include <deque>
#include <optional>
#include <string>

#include "analysis/execution_context.h"
#include "analysis/lifecycle_checker.h"
#include "analysis/race_detector.h"
#include "analysis/violation.h"
#include "os/analysis_hooks.h"

namespace rchdroid::analysis {

/** What the Analyzer runs and how it reacts to findings. */
struct AnalyzerOptions
{
    bool race_detector = true;
    bool lifecycle_checker = true;
    /** Panic on the first violation (how tier-1 tests run). */
    bool abort_on_violation = false;
    /** Recent-event ring attached to every report. */
    std::size_t timeline_capacity = 64;
};

/**
 * The hooks implementation: dispatch/lifecycle/access events fan out to
 * the enabled checkers and into the timeline ring.
 */
class Analyzer final : public Hooks
{
  public:
    explicit Analyzer(AnalyzerOptions options = {});

    ViolationSink &sink() { return sink_; }
    const ViolationSink &sink() const { return sink_; }
    RaceDetector &raceDetector() { return races_; }
    const RaceDetector &raceDetector() const { return races_; }
    LifecycleChecker &lifecycleChecker() { return lifecycle_; }
    const LifecycleChecker &lifecycleChecker() const { return lifecycle_; }
    const ExecutionContext &context() const { return context_; }
    const AnalyzerOptions &options() const { return options_; }

    /** One-line "N violations (x races, y lifecycle, ...)" summary. */
    std::string summary() const;

    /** @name Hooks implementation
     * @{
     */
    void onLooperCreated(Looper &looper) override;
    void onLooperDestroyed(Looper &looper) override;
    void onMessageSend(Looper &target, std::uint64_t msg_id, SimTime when,
                       const std::string &tag) override;
    void onDispatchBegin(Looper &looper, std::uint64_t msg_id,
                         const std::string &tag) override;
    void onDispatchEnd(Looper &looper) override;
    void onSyncBarrier(const void *scope, const char *label) override;
    void onSharedAccess(const void *object, const char *kind,
                        const std::string &label, bool is_write) override;
    void onObjectGone(const void *object) override;
    void onLifecycleTransition(const void *activity, const void *scope,
                               const std::string &component,
                               std::uint64_t instance_id, std::uint8_t from,
                               std::uint8_t to) override;
    void onActivityGone(const void *activity) override;
    void onDestroyedViewMutation(const void *view, const char *kind,
                                 const std::string &label) override;
    void onAppCodeBegin() override;
    void onAppCodeEnd() override;
    /** @} */

  private:
    void noteTimeline(std::string line);

    AnalyzerOptions options_;
    ViolationSink sink_;
    ExecutionContext context_;
    RaceDetector races_;
    LifecycleChecker lifecycle_;
    std::deque<std::string> timeline_;
};

/**
 * RAII installer. Owns an Analyzer and installs it as this thread's
 * hooks — unless hooks are already installed on the thread, in which
 * case this guard is inert (installed() == false) and the earlier
 * installation wins. The seam is thread-local, so systems running on
 * parallel experiment workers each get their own analyzer.
 */
class ScopedAnalyzer
{
  public:
    explicit ScopedAnalyzer(AnalyzerOptions options = {});
    ~ScopedAnalyzer();

    ScopedAnalyzer(const ScopedAnalyzer &) = delete;
    ScopedAnalyzer &operator=(const ScopedAnalyzer &) = delete;

    /** False when another analyzer was already installed. */
    bool installed() const { return installed_; }

    /** This guard's analyzer (inert when !installed()). */
    Analyzer &analyzer() { return analyzer_; }
    const Analyzer &analyzer() const { return analyzer_; }

  private:
    Analyzer analyzer_;
    bool installed_ = false;
};

/** @name Environment-driven defaults
 * RCHDROID_ANALYSIS=1/0 forces the subsystem on/off (default: on in
 * debug builds, off in release). RCHDROID_ANALYSIS_ABORT=1/0 likewise
 * controls abort-on-violation (default: off).
 * @{
 */
bool analysisEnabledByDefault();
bool analysisAbortByDefault();
/** AnalyzerOptions seeded from the environment. */
AnalyzerOptions optionsFromEnv();
/** @} */

/**
 * Opt-in checking for tools and examples: strips a `--check` flag from
 * argv and, when present, installs an analyzer for the program's
 * lifetime. Call finish() last to print the summary and get the exit
 * status.
 */
class CheckMode
{
  public:
    /** Scans argv for "--check"; removes it and arms the analyzer. */
    CheckMode(int &argc, char **argv);

    bool enabled() const { return guard_.has_value(); }

    Analyzer *analyzer()
    { return guard_ ? &guard_->analyzer() : nullptr; }

    /**
     * Print the violation summary (and each stored report).
     * @return 0 when clean or disabled, 1 when violations were found.
     */
    int finish() const;

  private:
    std::optional<ScopedAnalyzer> guard_;
};

} // namespace rchdroid::analysis

#endif // RCHDROID_ANALYSIS_ANALYZER_H
