/**
 * @file
 * LifecycleChecker: validates every observed LifecycleState transition
 * against the Fig. 4 state machine (stock edges plus the RCHDroid
 * dotted edges), and enforces two cross-instance invariants:
 *
 *  1. at most one foreground instance (Resumed or Sunny — in
 *     particular at most one Sunny) per process scope at a time;
 *  2. no view mutation after Destroyed from framework code. App code is
 *     exempt: the crash-matrix scenarios *deliberately* touch destroyed
 *     views from stale callbacks — that is the app bug under study, and
 *     the crash guard absorbs it — so only the framework itself doing
 *     it is a protocol violation.
 */
#ifndef RCHDROID_ANALYSIS_LIFECYCLE_CHECKER_H
#define RCHDROID_ANALYSIS_LIFECYCLE_CHECKER_H

#include <cstdint>
#include <string>
#include <unordered_map>

#include "analysis/execution_context.h"
#include "analysis/violation.h"
#include "app/lifecycle.h"

namespace rchdroid::analysis {

/**
 * The protocol checker. Driven by the Analyzer from the lifecycle
 * hooks; reports into the shared sink.
 */
class LifecycleChecker
{
  public:
    LifecycleChecker(ViolationSink &sink, const ExecutionContext &context)
        : sink_(sink), context_(context)
    {
    }

    /** @name Hook entry points (forwarded by the Analyzer)
     * @{
     */
    void onTransition(const void *activity, const void *scope,
                      const std::string &component,
                      std::uint64_t instance_id, LifecycleState from,
                      LifecycleState to);
    void onActivityGone(const void *activity);
    void onDestroyedViewMutation(const void *view, const char *kind,
                                 const std::string &label);
    /** @} */

    /** @name Statistics
     * @{
     */
    std::size_t transitionsChecked() const { return transitions_checked_; }
    std::size_t trackedActivities() const { return activities_.size(); }
    /** Destroyed-view touches from app code (expected crash scenarios). */
    std::size_t appDestroyedViewTouches() const
    { return app_destroyed_view_touches_; }
    /** @} */

  private:
    struct Tracked
    {
        const void *scope = nullptr;
        std::string component;
        std::uint64_t instance_id = 0;
        LifecycleState state = LifecycleState::Initial;
    };

    std::string describeInstance(const Tracked &tracked) const;

    ViolationSink &sink_;
    const ExecutionContext &context_;
    std::unordered_map<const void *, Tracked> activities_;
    std::size_t transitions_checked_ = 0;
    std::size_t app_destroyed_view_touches_ = 0;
};

} // namespace rchdroid::analysis

#endif // RCHDROID_ANALYSIS_LIFECYCLE_CHECKER_H
