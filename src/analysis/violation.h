/**
 * @file
 * Violation reporting for the analysis layer.
 *
 * Both checkers (race detector, lifecycle protocol checker) funnel their
 * findings through one ViolationSink. The sink keeps the structured
 * record for tests to assert on, mirrors each finding into telemetry so
 * it lands on the simulation trace next to the events that caused it,
 * and — when abort-on-violation is armed, as it is for every tier-1
 * test run — panics with the full report so CI fails loudly at the
 * first defect.
 */
#ifndef RCHDROID_ANALYSIS_VIOLATION_H
#define RCHDROID_ANALYSIS_VIOLATION_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "platform/telemetry.h"
#include "platform/time.h"

namespace rchdroid::analysis {

/** What kind of rule a finding violates. */
enum class ViolationKind : std::uint8_t {
    /** Unordered cross-looper accesses to the same object. */
    DataRace,
    /** A LifecycleState transition outside the Fig. 4 edge set. */
    LifecycleTransition,
    /** A cross-instance lifecycle invariant (e.g. two Sunny per task). */
    LifecycleInvariant,
    /** Framework code mutated a view after Destroyed. */
    DestroyedViewMutation,
};

/** "DataRace", "LifecycleTransition", ... */
const char *violationKindName(ViolationKind kind);

/** One finding, with enough context to debug it from the report alone. */
struct Violation
{
    ViolationKind kind = ViolationKind::DataRace;
    /** One-line description of what went wrong. */
    std::string summary;
    /** Supporting lines: both access contexts, the event timeline, ... */
    std::vector<std::string> details;
    /** Virtual time at which the violation was detected. */
    SimTime time = 0;

    /** Multi-line human-readable report. */
    std::string toString() const;
};

/**
 * Collects violations from the checkers.
 *
 * Dedup/capacity: at most kMaxStored violations keep their full record
 * (counters keep counting past that) so a pathological workload cannot
 * exhaust memory with reports.
 */
class ViolationSink
{
  public:
    ViolationSink() = default;

    /** Record a finding; logs, mirrors to telemetry, maybe panics. */
    void report(Violation violation);

    /** Panic on the first report (how tier-1 tests run). */
    void setAbortOnViolation(bool abort) { abort_on_violation_ = abort; }
    bool abortOnViolation() const { return abort_on_violation_; }

    /** Mirror findings onto this trace (not owned; null to detach). */
    void setTelemetry(TelemetrySink *telemetry) { telemetry_ = telemetry; }

    /**
     * Callback that snapshots the recent-event timeline; the sink
     * appends it to each violation's details.
     */
    void setTimelineSnapshotter(std::function<std::vector<std::string>()> fn)
    { timeline_snapshotter_ = std::move(fn); }

    /** Stored findings (capped at kMaxStored). */
    const std::vector<Violation> &violations() const { return violations_; }

    /** Total findings including any past the storage cap. */
    std::size_t totalCount() const { return total_count_; }

    /** Findings of one kind (counted, not capped). */
    std::size_t countOf(ViolationKind kind) const
    { return counts_[static_cast<std::size_t>(kind)]; }

    /** Drop all stored findings and reset the counters. */
    void clear();

    /** Storage cap for full violation records. */
    static constexpr std::size_t kMaxStored = 100;

  private:
    std::vector<Violation> violations_;
    std::array<std::size_t, 4> counts_{};
    std::size_t total_count_ = 0;
    bool abort_on_violation_ = false;
    TelemetrySink *telemetry_ = nullptr;
    std::function<std::vector<std::string>()> timeline_snapshotter_;
};

} // namespace rchdroid::analysis

#endif // RCHDROID_ANALYSIS_VIOLATION_H
