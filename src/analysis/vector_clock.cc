#include "analysis/vector_clock.h"

#include <algorithm>
#include <sstream>

#include "platform/logging.h"

namespace rchdroid::analysis {

std::uint64_t
VectorClock::get(int thread) const
{
    const auto index = static_cast<std::size_t>(thread);
    return index < clocks_.size() ? clocks_[index] : 0;
}

void
VectorClock::set(int thread, std::uint64_t value)
{
    RCH_ASSERT(thread >= 0, "negative thread index ", thread);
    const auto index = static_cast<std::size_t>(thread);
    if (index >= clocks_.size())
        clocks_.resize(index + 1, 0);
    clocks_[index] = value;
}

void
VectorClock::tick(int thread)
{
    set(thread, get(thread) + 1);
}

void
VectorClock::join(const VectorClock &other)
{
    if (other.clocks_.size() > clocks_.size())
        clocks_.resize(other.clocks_.size(), 0);
    for (std::size_t i = 0; i < other.clocks_.size(); ++i)
        clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
}

bool
VectorClock::leq(const VectorClock &other) const
{
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
        const std::uint64_t theirs =
            i < other.clocks_.size() ? other.clocks_[i] : 0;
        if (clocks_[i] > theirs)
            return false;
    }
    return true;
}

std::string
VectorClock::toString() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < clocks_.size(); ++i)
        os << (i ? " " : "") << clocks_[i];
    os << "]";
    return os.str();
}

} // namespace rchdroid::analysis
