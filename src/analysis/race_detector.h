/**
 * @file
 * RaceDetector: deterministic happens-before race detection over the
 * simulated looper model.
 *
 * Happens-before is exactly:
 *  - program order: consecutive dispatches on one looper;
 *  - message sends: enqueueing from inside a dispatch carries the
 *    sender's clock to the receiving dispatch (post, IPC legs, UI
 *    continuations all funnel through Looper::enqueue);
 *  - barriers: RCHDroid's coin flip and shadow GC fully synchronise on
 *    their ActivityThread scope.
 *
 * Virtual timestamps do NOT order accesses — two dispatches that merely
 * happen at different virtual times but have no send path between them
 * are concurrent, which is precisely the bug class (unsynchronised
 * worker↔UI sharing) a real TSan run would catch on device.
 *
 * The algorithm is FastTrack-flavoured: per-object last-write epoch plus
 * per-thread last-read epochs, checked against the accessing thread's
 * vector clock. Accesses from outside any dispatch (test harness) are
 * outside the concurrency model and ignored.
 */
#ifndef RCHDROID_ANALYSIS_RACE_DETECTOR_H
#define RCHDROID_ANALYSIS_RACE_DETECTOR_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/execution_context.h"
#include "analysis/vector_clock.h"
#include "analysis/violation.h"
#include "os/looper.h"

namespace rchdroid::analysis {

/**
 * The happens-before checker. Driven by the Analyzer from the os-level
 * hooks; reports DataRace violations into the shared sink.
 */
class RaceDetector
{
  public:
    RaceDetector(ViolationSink &sink, const ExecutionContext &context)
        : sink_(sink), context_(context)
    {
    }

    /** @name Hook entry points (forwarded by the Analyzer)
     * @{
     */
    void onLooperCreated(const Looper &looper);
    void onLooperDestroyed(const Looper &looper);
    void onMessageSend(const Looper &target, std::uint64_t msg_id);
    void onDispatchBegin(const Looper &looper, std::uint64_t msg_id);
    void onSyncBarrier(const void *scope, const char *label);
    void onSharedAccess(const void *object, const char *kind,
                        const std::string &label, bool is_write);
    void onObjectGone(const void *object);
    /** @} */

    /** @name Statistics (test assertions, summaries)
     * @{
     */
    std::size_t accessesChecked() const { return accesses_checked_; }
    std::size_t accessesIgnored() const { return accesses_ignored_; }
    std::size_t racesFound() const { return races_found_; }
    std::size_t trackedObjects() const { return objects_.size(); }
    std::size_t trackedThreads() const { return thread_names_.size(); }
    /** @} */

    /** The detector's vector clock for `looper` (diagnostics). */
    const VectorClock &clockOf(const Looper &looper);

  private:
    /** Context captured at one access, for the eventual report. */
    struct AccessInfo
    {
        std::string tag;
        std::uint64_t msg_id = 0;
        SimTime time = 0;
    };

    /** A (thread, clock) pair plus its report context. */
    struct Epoch
    {
        int thread = -1;
        std::uint64_t clock = 0;
        AccessInfo info;
    };

    struct ObjectState
    {
        const char *kind = "";
        std::string label;
        Epoch write;
        /** Last read per thread (few threads: linear scan). */
        std::vector<Epoch> reads;
        /** One report per object keeps a racy loop from flooding. */
        bool reported = false;
    };

    /** Dense index for `looper`, registering it on first sight. */
    int threadIndex(const Looper &looper);

    Epoch currentEpoch(int thread) const;

    /** True when `earlier` is ordered before thread `thread`'s present. */
    bool
    ordered(const Epoch &earlier, const VectorClock &current) const
    {
        return earlier.clock <= current.get(earlier.thread);
    }

    void reportRace(ObjectState &state, const Epoch &prior,
                    bool prior_is_write, const Epoch &current,
                    bool current_is_write);

    std::string describeEpoch(const Epoch &epoch, bool is_write) const;

    ViolationSink &sink_;
    const ExecutionContext &context_;

    std::unordered_map<const Looper *, int> thread_index_;
    std::vector<std::string> thread_names_;
    std::vector<VectorClock> clocks_;

    /** Clock snapshots of in-flight messages: target → msg id → clock. */
    std::unordered_map<const Looper *,
                       std::unordered_map<std::uint64_t, VectorClock>>
        pending_sends_;

    /** Accumulated clock per barrier scope. */
    std::unordered_map<const void *, VectorClock> barriers_;

    std::unordered_map<const void *, ObjectState> objects_;

    std::size_t accesses_checked_ = 0;
    std::size_t accesses_ignored_ = 0;
    std::size_t races_found_ = 0;
};

} // namespace rchdroid::analysis

#endif // RCHDROID_ANALYSIS_RACE_DETECTOR_H
