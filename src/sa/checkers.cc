#include "sa/checkers.h"

namespace rchdroid::sa {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
Finding::toString() const
{
    std::string out = severityName(severity);
    out += "[";
    out += checker;
    out += "/";
    out += handlingModelName(handling);
    out += "]";
    if (!location.empty()) {
        out += " ";
        out += location;
        out += ":";
    }
    out += " ";
    out += message;
    return out;
}

namespace {

/**
 * The Fig. 1 crash shape, statically: a task that captured raw view
 * references may complete after the change. Under a stock restart the
 * captured instance is destroyed, so the completion mutates dead views
 * (or posts a dialog to a dead window). RCHDroid's shadow keeps the
 * captured instance alive, and the in-place path never tears it down,
 * so only the stock restart model crashes.
 */
bool
staleRefCrashPredicted(const AppModel &model)
{
    return model.handling == HandlingModel::Stock && !model.in_place &&
           model.async.has_task &&
           model.async.capture == AsyncCapture::RawViewRef &&
           model.async.may_straddle_change && !model.async.cancels_on_stop;
}

bool
anyCriticalLoss(const AppModel &model, const FlowSolution &flow)
{
    for (std::size_t i = 0; i < model.locations.size(); ++i) {
        if (model.locations[i].critical &&
            flow.mayLose(model.observationNode(), i))
            return true;
    }
    return false;
}

void
checkDataLossFor(const AppModel &model, const FlowSolution &flow,
                 std::vector<Finding> &findings)
{
    const LcNode observed = model.observationNode();
    for (std::size_t i = 0; i < model.locations.size(); ++i) {
        const StateLocation &location = model.locations[i];
        if (!flow.mayLose(observed, i))
            continue;
        Finding finding;
        finding.checker = "data_loss";
        finding.handling = model.handling;
        finding.location = location.name;
        if (location.critical) {
            finding.severity = Severity::Error;
            finding.dynamically_checkable = true;
            finding.message = "critical state may not survive a runtime "
                              "change (fact at ";
            finding.message += lcNodeName(observed);
            finding.message += " is ";
            finding.message += stateFactName(flow.at(observed, i));
            finding.message += ")";
        } else {
            // verifyCriticalState only observes the table-row state, so
            // companion losses are advisory and excluded from the
            // differential precision count.
            finding.severity = Severity::Info;
            finding.dynamically_checkable = false;
            finding.message = "auxiliary view state may not survive a "
                              "runtime change";
        }
        findings.push_back(std::move(finding));
    }
}

std::vector<Finding>
checkDataLoss(const CheckInput &input)
{
    std::vector<Finding> findings;
    checkDataLossFor(*input.stock, *input.stock_flow, findings);
    checkDataLossFor(*input.rch, *input.rch_flow, findings);
    return findings;
}

std::vector<Finding>
checkStaleReference(const CheckInput &input)
{
    std::vector<Finding> findings;
    if (!staleRefCrashPredicted(*input.stock))
        return findings;
    Finding finding;
    finding.checker = "stale_reference";
    finding.severity = Severity::Error;
    finding.handling = HandlingModel::Stock;
    finding.location = input.stock->async.shows_dialog
                           ? "AsyncTask.onPostExecute(dialog)"
                           : "AsyncTask.onPostExecute(view refs)";
    finding.dynamically_checkable = true;
    finding.message =
        input.stock->async.shows_dialog
            ? "task may outlive the restart and show a dialog on the "
              "destroyed activity (BadTokenException class)"
            : "task captures raw view references and may complete after "
              "the restart destroyed them";
    findings.push_back(std::move(finding));
    return findings;
}

std::vector<Finding>
checkConfigDecl(const CheckInput &input)
{
    std::vector<Finding> findings;
    const apps::AppSpec &spec = input.stock->spec;

    const bool predicted_issue_stock =
        anyCriticalLoss(*input.stock, *input.stock_flow) ||
        staleRefCrashPredicted(*input.stock);
    const bool predicted_fixed_rch =
        predicted_issue_stock && !anyCriticalLoss(*input.rch, *input.rch_flow);

    auto mismatch = [&](HandlingModel handling, std::string message) {
        Finding finding;
        finding.checker = "config_decl";
        finding.severity = Severity::Warning;
        finding.handling = handling;
        finding.dynamically_checkable = false;
        finding.message = std::move(message);
        findings.push_back(std::move(finding));
    };

    if (spec.expect_issue_stock != predicted_issue_stock) {
        mismatch(HandlingModel::Stock,
                 spec.expect_issue_stock
                     ? "table row expects a stock issue but the model "
                       "predicts a clean restart"
                     : "table row expects stock to be safe but the model "
                       "predicts loss or crash");
    }
    if (spec.expect_fixed_by_rch != predicted_fixed_rch) {
        mismatch(HandlingModel::RchDroid,
                 spec.expect_fixed_by_rch
                     ? "table row expects RCHDroid to fix the issue but "
                       "the model predicts residual loss"
                     : "table row expects RCHDroid not to fix it but the "
                       "model predicts a clean change");
    }
    if (spec.runtimedroid_patched && !spec.handles_config_changes) {
        Finding finding;
        finding.checker = "config_decl";
        finding.severity = Severity::Info;
        finding.handling = HandlingModel::Stock;
        finding.dynamically_checkable = false;
        finding.message =
            "RuntimeDroid patch requires android:configChanges; the "
            "installer supplies it, but the spec should declare it";
        findings.push_back(std::move(finding));
    }
    if (spec.implements_on_save && input.stock->in_place) {
        Finding finding;
        finding.checker = "config_decl";
        finding.severity = Severity::Info;
        finding.handling = HandlingModel::Stock;
        finding.dynamically_checkable = false;
        finding.message =
            "onSaveInstanceState is dead discipline for runtime changes "
            "once android:configChanges suppresses the restart";
        findings.push_back(std::move(finding));
    }
    return findings;
}

std::vector<Finding>
checkRchEligibility(const CheckInput &input)
{
    std::vector<Finding> findings;
    Finding finding;
    finding.checker = "rch_eligibility";
    finding.handling = HandlingModel::RchDroid;
    finding.dynamically_checkable = false;

    if (input.rch->in_place) {
        finding.severity = Severity::Info;
        finding.message = "self-handling: the app declares (or is patched "
                          "to declare) android:configChanges, so RCHDroid "
                          "leaves it alone";
        findings.push_back(std::move(finding));
        return findings;
    }
    // Which critical locations still leak under RCHDroid?
    std::string residual;
    const LcNode observed = input.rch->observationNode();
    for (std::size_t i = 0; i < input.rch->locations.size(); ++i) {
        const StateLocation &location = input.rch->locations[i];
        if (location.critical && input.rch_flow->mayLose(observed, i)) {
            if (!residual.empty())
                residual += ", ";
            residual += location.name;
        }
    }
    if (residual.empty()) {
        finding.severity = Severity::Info;
        finding.message = "eligible: shadow snapshot + lazy migration "
                          "cover every tracked location";
    } else {
        finding.severity = Severity::Warning;
        finding.location = residual;
        finding.message = "ineligible without app cooperation: app-private "
                          "state rides neither the snapshot nor the essence "
                          "mapping (needs onSaveInstanceState)";
    }
    findings.push_back(std::move(finding));
    return findings;
}

// tools/lint_rules.py parses this table: every row's name must have a
// matching tests/sa/checker_<name>_test.cc.
const std::vector<CheckerInfo> kCheckers = {
    {"data_loss", "critical state may not survive a runtime change",
     checkDataLoss},
    {"stale_reference",
     "async completion may mutate views of a destroyed instance",
     checkStaleReference},
    {"config_decl",
     "spec/table consistency around android:configChanges declarations",
     checkConfigDecl},
    {"rch_eligibility",
     "can RCHDroid transparently fix this app?", checkRchEligibility},
};

} // namespace

const std::vector<CheckerInfo> &
checkerRegistry()
{
    return kCheckers;
}

std::vector<Finding>
runCheckers(const CheckInput &input)
{
    std::vector<Finding> findings;
    for (const CheckerInfo &checker : kCheckers) {
        std::vector<Finding> batch = checker.fn(input);
        for (Finding &finding : batch)
            findings.push_back(std::move(finding));
    }
    return findings;
}

} // namespace rchdroid::sa
