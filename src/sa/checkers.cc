#include "sa/checkers.h"

#include "sa/mhp.h"

namespace rchdroid::sa {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
Finding::toString() const
{
    std::string out = severityName(severity);
    out += "[";
    out += checker;
    out += "/";
    out += handlingModelName(handling);
    out += "]";
    if (!location.empty()) {
        out += " ";
        out += location;
        out += ":";
    }
    out += " ";
    out += message;
    return out;
}

namespace {

/**
 * The Fig. 1 crash shape, statically: a task that captured raw view
 * references may complete after the change. Under a stock restart the
 * captured instance is destroyed, so the completion mutates dead views
 * (or posts a dialog to a dead window). RCHDroid's shadow keeps the
 * captured instance alive, and the in-place path never tears it down,
 * so only the stock restart model crashes.
 */
bool
staleRefCrashPredicted(const AppModel &model)
{
    return model.handling == HandlingModel::Stock && !model.in_place &&
           model.async.has_task &&
           model.async.capture == AsyncCapture::RawViewRef &&
           model.async.may_straddle_change && !model.async.cancels_on_stop;
}

bool
anyCriticalLoss(const AppModel &model, const FlowSolution &flow)
{
    for (std::size_t i = 0; i < model.locations.size(); ++i) {
        if (model.locations[i].critical &&
            flow.mayLose(model.observationNode(), i))
            return true;
    }
    return false;
}

void
checkDataLossFor(const AppModel &model, const FlowSolution &flow,
                 std::vector<Finding> &findings)
{
    const LcNode observed = model.observationNode();
    for (std::size_t i = 0; i < model.locations.size(); ++i) {
        const StateLocation &location = model.locations[i];
        if (!flow.mayLose(observed, i))
            continue;
        Finding finding;
        finding.checker = "data_loss";
        finding.handling = model.handling;
        finding.location = location.name;
        if (location.critical) {
            finding.severity = Severity::Error;
            finding.dynamically_checkable = true;
            finding.message = "critical state may not survive a runtime "
                              "change (fact at ";
            finding.message += lcNodeName(observed);
            finding.message += " is ";
            finding.message += stateFactName(flow.at(observed, i));
            finding.message += ")";
        } else {
            // verifyCriticalState only observes the table-row state, so
            // companion losses are advisory and excluded from the
            // differential precision count.
            finding.severity = Severity::Info;
            finding.dynamically_checkable = false;
            finding.message = "auxiliary view state may not survive a "
                              "runtime change";
        }
        findings.push_back(std::move(finding));
    }
}

std::vector<Finding>
checkDataLoss(const CheckInput &input)
{
    std::vector<Finding> findings;
    checkDataLossFor(*input.stock, *input.stock_flow, findings);
    checkDataLossFor(*input.rch, *input.rch_flow, findings);
    return findings;
}

std::vector<Finding>
checkStaleReference(const CheckInput &input)
{
    std::vector<Finding> findings;
    if (!staleRefCrashPredicted(*input.stock))
        return findings;
    Finding finding;
    finding.checker = "stale_reference";
    finding.severity = Severity::Error;
    finding.handling = HandlingModel::Stock;
    finding.location = input.stock->async.shows_dialog
                           ? "AsyncTask.onPostExecute(dialog)"
                           : "AsyncTask.onPostExecute(view refs)";
    finding.dynamically_checkable = true;
    finding.message =
        input.stock->async.shows_dialog
            ? "task may outlive the restart and show a dialog on the "
              "destroyed activity (BadTokenException class)"
            : "task captures raw view references and may complete after "
              "the restart destroyed them";
    findings.push_back(std::move(finding));
    return findings;
}

std::vector<Finding>
checkConfigDecl(const CheckInput &input)
{
    std::vector<Finding> findings;
    const apps::AppSpec &spec = input.stock->spec;

    const bool predicted_issue_stock =
        anyCriticalLoss(*input.stock, *input.stock_flow) ||
        staleRefCrashPredicted(*input.stock);
    const bool predicted_fixed_rch =
        predicted_issue_stock && !anyCriticalLoss(*input.rch, *input.rch_flow);

    auto mismatch = [&](HandlingModel handling, std::string message) {
        Finding finding;
        finding.checker = "config_decl";
        finding.severity = Severity::Warning;
        finding.handling = handling;
        finding.dynamically_checkable = false;
        finding.message = std::move(message);
        findings.push_back(std::move(finding));
    };

    if (spec.expect_issue_stock != predicted_issue_stock) {
        mismatch(HandlingModel::Stock,
                 spec.expect_issue_stock
                     ? "table row expects a stock issue but the model "
                       "predicts a clean restart"
                     : "table row expects stock to be safe but the model "
                       "predicts loss or crash");
    }
    if (spec.expect_fixed_by_rch != predicted_fixed_rch) {
        mismatch(HandlingModel::RchDroid,
                 spec.expect_fixed_by_rch
                     ? "table row expects RCHDroid to fix the issue but "
                       "the model predicts residual loss"
                     : "table row expects RCHDroid not to fix it but the "
                       "model predicts a clean change");
    }
    if (spec.runtimedroid_patched && !spec.handles_config_changes) {
        Finding finding;
        finding.checker = "config_decl";
        finding.severity = Severity::Info;
        finding.handling = HandlingModel::Stock;
        finding.dynamically_checkable = false;
        finding.message =
            "RuntimeDroid patch requires android:configChanges; the "
            "installer supplies it, but the spec should declare it";
        findings.push_back(std::move(finding));
    }
    if (spec.implements_on_save && input.stock->in_place) {
        Finding finding;
        finding.checker = "config_decl";
        finding.severity = Severity::Info;
        finding.handling = HandlingModel::Stock;
        finding.dynamically_checkable = false;
        finding.message =
            "onSaveInstanceState is dead discipline for runtime changes "
            "once android:configChanges suppresses the restart";
        findings.push_back(std::move(finding));
    }
    return findings;
}

std::vector<Finding>
checkRchEligibility(const CheckInput &input)
{
    std::vector<Finding> findings;
    Finding finding;
    finding.checker = "rch_eligibility";
    finding.handling = HandlingModel::RchDroid;
    finding.dynamically_checkable = false;

    if (input.rch->in_place) {
        finding.severity = Severity::Info;
        finding.message = "self-handling: the app declares (or is patched "
                          "to declare) android:configChanges, so RCHDroid "
                          "leaves it alone";
        findings.push_back(std::move(finding));
        return findings;
    }
    // Which critical locations still leak under RCHDroid?
    std::string residual;
    const LcNode observed = input.rch->observationNode();
    for (std::size_t i = 0; i < input.rch->locations.size(); ++i) {
        const StateLocation &location = input.rch->locations[i];
        if (location.critical && input.rch_flow->mayLose(observed, i)) {
            if (!residual.empty())
                residual += ", ";
            residual += location.name;
        }
    }
    if (residual.empty()) {
        finding.severity = Severity::Info;
        finding.message = "eligible: shadow snapshot + lazy migration "
                          "cover every tracked location";
    } else {
        finding.severity = Severity::Warning;
        finding.location = residual;
        finding.message = "ineligible without app cooperation: app-private "
                          "state rides neither the snapshot nor the essence "
                          "mapping (needs onSaveInstanceState)";
    }
    findings.push_back(std::move(finding));
    return findings;
}

/**
 * MHP-backed race checker. Builds each model's concurrency graph,
 * closes happens-before, and reports MHP pairs whose location masks
 * conflict.
 *
 * Per handling model:
 *  - Stock: an async completion racing the restart teardown is exactly
 *    the Fig. 1 crash (Error, dynamically checkable). By construction
 *    this agrees with stale_reference's predicate — the graph has an
 *    async node iff has_task, a raw-ref completion writes the captured
 *    tree iff capture == RawViewRef, !may_straddle adds the
 *    completion→change edge and cancels_on_stop the completion→onStop
 *    edge, and the in-place model has no DestroyViews node at all.
 *  - RCHDroid: the completion may race the shadow GC's CollectShadow
 *    teardown. The gc policy guards this window (thresh_t keeps a
 *    young shadow alive, and releaseShadow runs behind a sync
 *    barrier), so it is a Warning and not dynamically checkable.
 *  - Migrate × CollectShadow MHP pairs exist in the rch graph (the
 *    ShadowAlive fork makes them branch-parallel) but the two arms are
 *    mutually exclusive at runtime — one shadow either migrates or is
 *    collected — so they are suppressed here; racePairs still returns
 *    them for the graph dump.
 */
std::vector<Finding>
checkAsyncRace(const CheckInput &input)
{
    std::vector<Finding> findings;

    auto scan = [&](const AppModel &model, const FlowSolution &flow) {
        const ConcurrencyGraph graph = buildConcurrencyGraph(model, flow);
        const MhpResult mhp = computeMhp(graph);
        for (const RacePair &pair : racePairs(graph, mhp)) {
            const CgNode &a = graph.nodes[pair.a];
            const CgNode &b = graph.nodes[pair.b];
            const bool async_involved = a.is_async || b.is_async;
            if (!async_involved)
                continue; // branch-parallel lifecycle arms (see above)
            Finding finding;
            finding.checker = "async_race";
            finding.handling = model.handling;
            finding.location = a.label + " || " + b.label;
            if (model.handling == HandlingModel::Stock) {
                finding.severity = Severity::Error;
                finding.dynamically_checkable = true;
                finding.message =
                    "async completion may happen in parallel with the "
                    "restart teardown and touch ";
                finding.message += maskToString(model, pair.locations);
            } else {
                finding.severity = Severity::Warning;
                finding.dynamically_checkable = false;
                finding.message =
                    "async completion is unordered with shadow GC over ";
                finding.message += maskToString(model, pair.locations);
                finding.message +=
                    " (policy-guarded: thresh_t + sync barrier)";
            }
            findings.push_back(std::move(finding));
        }
    };

    scan(*input.stock, *input.stock_flow);
    scan(*input.rch, *input.rch_flow);
    return findings;
}

// tools/lint_rules.py parses this table: every row's name must have a
// matching tests/sa/checker_<name>_test.cc.
const std::vector<CheckerInfo> kCheckers = {
    {"data_loss", "critical state may not survive a runtime change",
     checkDataLoss},
    {"stale_reference",
     "async completion may mutate views of a destroyed instance",
     checkStaleReference},
    {"config_decl",
     "spec/table consistency around android:configChanges declarations",
     checkConfigDecl},
    {"rch_eligibility",
     "can RCHDroid transparently fix this app?", checkRchEligibility},
    {"async_race",
     "MHP pairs with conflicting write/teardown location masks",
     checkAsyncRace},
};

} // namespace

const std::vector<CheckerInfo> &
checkerRegistry()
{
    return kCheckers;
}

std::vector<Finding>
runCheckers(const CheckInput &input)
{
    std::vector<Finding> findings;
    for (const CheckerInfo &checker : kCheckers) {
        std::vector<Finding> batch = checker.fn(input);
        for (Finding &finding : batch)
            findings.push_back(std::move(finding));
    }
    return findings;
}

} // namespace rchdroid::sa
