/**
 * @file
 * Corpus sweep: analyzeApp() over an app set, with aggregate counts and
 * a single JSON document (`{"apps": [...], "summary": {...}}`) the
 * rchdroid_sa binary writes for the CI artifact.
 */
#ifndef RCHDROID_SA_SWEEP_H
#define RCHDROID_SA_SWEEP_H

#include <string>
#include <vector>

#include "apps/app_spec.h"
#include "sa/verdict.h"

namespace rchdroid::sa {

/** Aggregate counts over one sweep. */
struct SweepSummary
{
    int apps = 0;
    int findings = 0;
    int errors = 0;
    int warnings = 0;
    int infos = 0;
    /** Apps predicted clean under the stock restart. */
    int stock_clean = 0;
    /** Apps predicted clean under RCHDroid. */
    int rch_clean = 0;
    /** android:configChanges (or patched): RCHDroid leaves them alone. */
    int self_handling = 0;
    /** RCHDroid fixes them transparently. */
    int rch_eligible = 0;
    /** App-private state RCHDroid cannot reach. */
    int rch_ineligible = 0;
};

/** The sweep's output: one verdict per app, in input order. */
struct SweepResult
{
    std::vector<AppVerdict> verdicts;

    SweepSummary summary() const;
    /** `{"apps": [...], "summary": {...}}`, trailing newline included. */
    std::string toJson() const;
};

/** Analyze every app in `specs`. */
SweepResult sweep(const std::vector<apps::AppSpec> &specs);

/**
 * The full evaluation corpus: Table 3 (TP-37), Table 5 (top-100), and
 * the five examples/ stand-ins — every app the repo knows about, each
 * with a verdict in one pass.
 */
std::vector<apps::AppSpec> fullCorpus();

} // namespace rchdroid::sa

#endif // RCHDROID_SA_SWEEP_H
