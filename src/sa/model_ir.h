/**
 * @file
 * The static analyzer's model IR.
 *
 * compile(AppSpec, HandlingModel) lowers one declarative app spec into
 * three small structures the checkers reason over — without executing
 * anything and without including a single framework header (the build
 * enforces this: src/sa/ may only see spec/model headers, mirroring the
 * analysis_hooks seam discipline):
 *
 *  - a lifecycle control-flow graph derived from the Fig. 4 protocol,
 *    specialised to the handling model (stock restart teardown, RCH
 *    shadow + lazy migration, or the in-place onConfigurationChanged
 *    path when the manifest declares android:configChanges);
 *  - a set of state locations (the bundle fields and view contents the
 *    spec's CriticalState names, via apps/spec_traits.h), each edge
 *    annotated with the save/restore/migrate effect it applies;
 *  - a callback/post summary of the app's AsyncTask: what it captures
 *    (raw view references vs id-based re-resolution), whether it may
 *    complete after a runtime change, and whether onStop cancels it.
 *
 * The dataflow engine (src/sa/dataflow.h) runs a fixpoint over this
 * graph; the checkers (src/sa/checkers.h) read the solution.
 */
#ifndef RCHDROID_SA_MODEL_IR_H
#define RCHDROID_SA_MODEL_IR_H

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app_spec.h"
#include "apps/spec_traits.h"

namespace rchdroid::sa {

/** Which runtime-change handling the model is compiled against. */
enum class HandlingModel : std::uint8_t {
    /** Stock Android 10: destroy + recreate. */
    Stock,
    /** RCHDroid: coin flip, shadow instance, lazy migration. */
    RchDroid,
};

/** "stock" / "rchdroid". */
const char *handlingModelName(HandlingModel model);

/**
 * Lifecycle CFG nodes: the Fig. 4 protocol states plus the
 * post-change continuations the two handling models add.
 */
enum class LcNode : std::uint8_t {
    Launched,
    Created,
    Started,
    Resumed,
    /** A runtime change is delivered to the foreground instance. */
    ConfigDispatch,
    /** onConfigurationChanged handled it in place (declared/patched). */
    InPlaceHandled,
    /** @name Stock teardown of the old instance */
    Paused,
    Saved,
    Stopped,
    Destroyed,
    /** @name RCHDroid path for the old instance */
    ShadowEntry,
    ShadowAlive,
    ShadowCollected,
    /** @name The replacement (recreated / sunny) instance */
    NextCreated,
    NextRestored,
    NextResumed,
    kCount,
};

constexpr std::size_t kLcNodeCount = static_cast<std::size_t>(LcNode::kCount);

/** "Resumed", "ShadowEntry", ... */
const char *lcNodeName(LcNode node);

/** The state effect an edge applies to every tracked location. */
enum class EdgeEffect : std::uint8_t {
    None,
    /** onCreate builds the views: locations become live. */
    Materialize,
    /** Stock onSaveInstanceState: the partial per-widget default save. */
    SaveDefault,
    /** RCHDroid/RuntimeDroid full snapshot (the 79-LoC View patch). */
    SaveFull,
    /** Instance teardown: anything neither saved nor shadowed is lost. */
    DestroyViews,
    /** Old instance parked as the shadow; its views stay alive. */
    EnterShadow,
    /** Bundle contents restored into the new instance's views. */
    Restore,
    /** Essence mapping: shadow state lazily migrated to the sunny. */
    Migrate,
    /** Shadow GC: state that only lived in the shadow is lost. */
    CollectShadow,
};

/** "Materialize", "SaveDefault", ... */
const char *edgeEffectName(EdgeEffect effect);

/** One lifecycle CFG edge. */
struct LcEdge
{
    LcNode from;
    LcNode to;
    EdgeEffect effect = EdgeEffect::None;
    /** Protocol label, e.g. "onSaveInstanceState". */
    const char *label = "";
};

/** One modelled piece of app state the dataflow tracks. */
struct StateLocation
{
    /** Display name, e.g. "EditText(no id).text". */
    std::string name;
    apps::CriticalStateTraits traits;
    /** This is the spec's table-row critical state. */
    bool critical = false;
    /** An app-implemented onSaveInstanceState covers it. */
    bool covered_by_on_save = false;
};

/** How the app's AsyncTask captures its UI targets. */
enum class AsyncCapture : std::uint8_t {
    None,
    /** Fig. 1 anti-pattern: raw View pointers captured at task start. */
    RawViewRef,
    /** RuntimeDroid-patched: ids captured, re-resolved at completion. */
    ViewId,
};

/** Static summary of the app's callback/post graph. */
struct AsyncModel
{
    bool has_task = false;
    AsyncCapture capture = AsyncCapture::None;
    bool cancels_on_stop = false;
    /** onPostExecute shows a dialog on the captured activity (§2.3). */
    bool shows_dialog = false;
    /** Completion may interleave with a runtime change. */
    bool may_straddle_change = false;
};

/** The compiled model of one app under one handling model. */
struct AppModel
{
    apps::AppSpec spec;
    HandlingModel handling = HandlingModel::Stock;
    /** Manifest keeps the framework from restarting the activity. */
    bool in_place = false;
    std::vector<LcEdge> edges;
    std::vector<StateLocation> locations;
    AsyncModel async;

    /**
     * Where the app's post-change state is observed: Resumed for the
     * in-place path (same instance), NextResumed otherwise.
     */
    LcNode observationNode() const;

    /** True when some edge reaches `node`. */
    bool reachable(LcNode node) const;

    /** Multi-line debug dump of the CFG, locations and async summary. */
    std::string describe() const;
};

/** Lower one spec into its model under the given handling. */
AppModel compile(const apps::AppSpec &spec, HandlingModel handling);

} // namespace rchdroid::sa

#endif // RCHDROID_SA_MODEL_IR_H
