#include "sa/differential.h"

#include <cstdio>

namespace rchdroid::sa {

DifferentialOutcome
compareOne(const AppVerdict &verdict, const DynamicObservation &observation)
{
    DifferentialOutcome outcome;
    outcome.app = verdict.app;
    outcome.handling = observation.handling;
    outcome.static_clean = verdict.cleanFor(observation.handling);
    outcome.dynamic_dirty = observation.dirty();
    outcome.soundness_violation =
        outcome.static_clean && outcome.dynamic_dirty;

    if (outcome.soundness_violation) {
        outcome.detail = verdict.app;
        outcome.detail += " [";
        outcome.detail += handlingModelName(observation.handling);
        outcome.detail += "]: statically clean but dynamically";
        if (!observation.state_preserved)
            outcome.detail += " state-lost";
        if (observation.crashed)
            outcome.detail += " crashed";
        if (observation.stale_view_mutations > 0)
            outcome.detail += " stale-view-mutation";
        if (observation.mc_explored && observation.mc_issue_found)
            outcome.detail += " mc-counterexample";
    }

    // Precision: each checkable error finding for this mode is confirmed
    // by the dynamic signal it predicts.
    for (const Finding &finding : verdict.findings) {
        if (finding.handling != observation.handling ||
            finding.severity != Severity::Error ||
            !finding.dynamically_checkable)
            continue;
        bool hit = false;
        if (finding.checker == "data_loss") {
            hit = !observation.state_preserved;
        } else if (finding.checker == "stale_reference" ||
                   finding.checker == "async_race") {
            hit = observation.crashed ||
                  observation.stale_view_mutations > 0;
        } else {
            // Unknown checkable checker: count it against precision so a
            // new checker cannot inflate the metric by accident.
            hit = false;
        }
        if (hit) {
            ++outcome.confirmed_findings;
        } else {
            ++outcome.unconfirmed_findings;
            if (!outcome.detail.empty())
                outcome.detail += "; ";
            outcome.detail += "unconfirmed ";
            outcome.detail += finding.checker;
            outcome.detail += " on ";
            outcome.detail += verdict.app;
        }
    }
    return outcome;
}

int
DifferentialReport::soundnessViolations() const
{
    int count = 0;
    for (const DifferentialOutcome &outcome : outcomes)
        count += outcome.soundness_violation ? 1 : 0;
    return count;
}

int
DifferentialReport::confirmed() const
{
    int count = 0;
    for (const DifferentialOutcome &outcome : outcomes)
        count += outcome.confirmed_findings;
    return count;
}

int
DifferentialReport::unconfirmed() const
{
    int count = 0;
    for (const DifferentialOutcome &outcome : outcomes)
        count += outcome.unconfirmed_findings;
    return count;
}

double
DifferentialReport::precision() const
{
    const int total = confirmed() + unconfirmed();
    if (total == 0)
        return 1.0;
    return static_cast<double>(confirmed()) / total;
}

std::string
DifferentialReport::toString() const
{
    std::string out;
    for (const DifferentialOutcome &outcome : outcomes) {
        if (!outcome.detail.empty()) {
            out += outcome.detail;
            out += "\n";
        }
    }
    out += "comparisons=";
    out += std::to_string(outcomes.size());
    out += " soundness_violations=";
    out += std::to_string(soundnessViolations());
    out += " confirmed=";
    out += std::to_string(confirmed());
    out += " unconfirmed=";
    out += std::to_string(unconfirmed());
    char buf[32];
    std::snprintf(buf, sizeof buf, " precision=%.3f", precision());
    out += buf;
    out += "\n";
    return out;
}

} // namespace rchdroid::sa
