#include "sa/sweep.h"

#include "apps/corpus.h"

namespace rchdroid::sa {

SweepSummary
SweepResult::summary() const
{
    SweepSummary totals;
    totals.apps = static_cast<int>(verdicts.size());
    for (const AppVerdict &verdict : verdicts) {
        totals.findings += static_cast<int>(verdict.findings.size());
        for (const Finding &finding : verdict.findings) {
            switch (finding.severity) {
              case Severity::Error: ++totals.errors; break;
              case Severity::Warning: ++totals.warnings; break;
              case Severity::Info: ++totals.infos; break;
            }
        }
        if (verdict.stock.clean())
            ++totals.stock_clean;
        if (verdict.rch.clean())
            ++totals.rch_clean;
        if (verdict.in_place) {
            ++totals.self_handling;
        } else if (verdict.rch.clean()) {
            ++totals.rch_eligible;
        } else {
            ++totals.rch_ineligible;
        }
    }
    return totals;
}

std::string
SweepResult::toJson() const
{
    const SweepSummary totals = summary();
    std::string out = "{\"apps\": [\n";
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        out += "  ";
        out += verdicts[i].toJson();
        if (i + 1 < verdicts.size())
            out += ",";
        out += "\n";
    }
    out += "], \"summary\": {\"apps\": ";
    out += std::to_string(totals.apps);
    out += ", \"findings\": ";
    out += std::to_string(totals.findings);
    out += ", \"errors\": ";
    out += std::to_string(totals.errors);
    out += ", \"warnings\": ";
    out += std::to_string(totals.warnings);
    out += ", \"infos\": ";
    out += std::to_string(totals.infos);
    out += ", \"stock_clean\": ";
    out += std::to_string(totals.stock_clean);
    out += ", \"rch_clean\": ";
    out += std::to_string(totals.rch_clean);
    out += ", \"self_handling\": ";
    out += std::to_string(totals.self_handling);
    out += ", \"rch_eligible\": ";
    out += std::to_string(totals.rch_eligible);
    out += ", \"rch_ineligible\": ";
    out += std::to_string(totals.rch_ineligible);
    out += "}}\n";
    return out;
}

SweepResult
sweep(const std::vector<apps::AppSpec> &specs)
{
    SweepResult result;
    result.verdicts.reserve(specs.size());
    for (const apps::AppSpec &spec : specs)
        result.verdicts.push_back(analyzeApp(spec));
    return result;
}

std::vector<apps::AppSpec>
fullCorpus()
{
    std::vector<apps::AppSpec> specs = apps::tp37();
    for (auto set : {apps::top100(), apps::exampleSpecs()}) {
        for (apps::AppSpec &spec : set)
            specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace rchdroid::sa
