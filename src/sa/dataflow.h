/**
 * @file
 * Forward fixpoint dataflow over the lifecycle CFG.
 *
 * Boundary condition: the user puts the app into its state while the
 * activity is Resumed (the §6 methodology — "when it is running in a
 * state, we change screen sizes"), so the solver injects Live for every
 * location at the Resumed node and propagates through the edges'
 * transfer functions until nothing changes. Join is set union, facts
 * only grow, and the CFG is tiny (≤ 16 nodes), so the fixpoint is a
 * handful of iterations.
 */
#ifndef RCHDROID_SA_DATAFLOW_H
#define RCHDROID_SA_DATAFLOW_H

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "sa/lattice.h"
#include "sa/model_ir.h"

namespace rchdroid::sa {

/** The fixpoint solution: one fact per (node, location). */
struct FlowSolution
{
    /** facts[node][location_index]. */
    std::array<std::vector<StateFact>, kLcNodeCount> facts;
    /** Worklist passes until quiescence (observability/tests). */
    int iterations = 0;

    StateFact at(LcNode node, std::size_t location) const
    {
        const auto &row = facts[static_cast<std::size_t>(node)];
        return location < row.size() ? row[location] : kFactBottom;
    }

    /**
     * May the location's value be gone when the app is next observed at
     * `node`? True when some path lost the only copy, or when no path
     * makes it live again in the observed instance.
     */
    bool mayLose(LcNode node, std::size_t location) const
    {
        const StateFact fact = at(node, location);
        return (fact & kLost) != 0 || (fact & kLive) == 0;
    }

    /** Per-node "loc: Live|Saved" dump for debugging. */
    std::string describe(const AppModel &model) const;
};

/** Run the fixpoint. */
FlowSolution solve(const AppModel &model);

} // namespace rchdroid::sa

#endif // RCHDROID_SA_DATAFLOW_H
