#include "sa/lattice.h"

namespace rchdroid::sa {

const char *
stateFactName(StateFact fact)
{
    switch (fact & (kLive | kSaved | kShadow | kLost)) {
      case 0: return "⊥";
      case kLive: return "Live";
      case kSaved: return "Saved";
      case kLive | kSaved: return "Live|Saved";
      case kShadow: return "Shadow";
      case kLive | kShadow: return "Live|Shadow";
      case kSaved | kShadow: return "Saved|Shadow";
      case kLive | kSaved | kShadow: return "Live|Saved|Shadow";
      case kLost: return "Lost";
      case kLive | kLost: return "Live|Lost";
      case kSaved | kLost: return "Saved|Lost";
      case kLive | kSaved | kLost: return "Live|Saved|Lost";
      case kShadow | kLost: return "Shadow|Lost";
      case kLive | kShadow | kLost: return "Live|Shadow|Lost";
      case kSaved | kShadow | kLost: return "Saved|Shadow|Lost";
      default: return "Live|Saved|Shadow|Lost";
    }
}

bool
saveCovers(EdgeEffect effect, const StateLocation &location)
{
    switch (effect) {
      case EdgeEffect::SaveDefault:
        return (location.traits.saved_by_default &&
                location.traits.has_view_id) ||
               location.covered_by_on_save;
      case EdgeEffect::SaveFull:
        return location.traits.view_backed || location.covered_by_on_save;
      default:
        return false;
    }
}

StateFact
transferFact(StateFact fact, EdgeEffect effect,
             const StateLocation &location)
{
    switch (effect) {
      case EdgeEffect::None:
        return fact;

      case EdgeEffect::Materialize:
        // onCreate builds fresh views holding *defaults*, not the
        // user's value — the value only becomes Live through the
        // Resumed boundary fact (the user put the app in a state) or a
        // Restore/Migrate edge. Identity on the value lattice.
        return fact;

      case EdgeEffect::SaveDefault:
      case EdgeEffect::SaveFull:
        if ((fact & kLive) && saveCovers(effect, location))
            return joinFacts(fact, kSaved);
        return fact;

      case EdgeEffect::DestroyViews: {
        // The instance (views AND fields) is torn down. A value whose
        // only residence was the live instance is lost.
        StateFact out = static_cast<StateFact>(fact & ~kLive);
        if ((fact & kLive) && !(fact & (kSaved | kShadow)))
            out = joinFacts(out, kLost);
        return out;
      }

      case EdgeEffect::EnterShadow: {
        // The old instance is parked, not destroyed: its live value
        // keeps existing, but in the shadow, not the foreground.
        StateFact out = static_cast<StateFact>(fact & ~kLive);
        if (fact & kLive)
            out = joinFacts(out, kShadow);
        return out;
      }

      case EdgeEffect::Restore:
        if (fact & kSaved)
            return joinFacts(fact, kLive);
        return fact;

      case EdgeEffect::Migrate:
        // Essence mapping moves migratable shadow state into the sunny
        // instance; the full-snapshot bundle restores the rest it
        // covered. App-private fields ride neither path.
        if (((fact & kShadow) && location.traits.rch_migratable) ||
            (fact & kSaved))
            return joinFacts(fact, kLive);
        return fact;

      case EdgeEffect::CollectShadow: {
        // Shadow GC: a value that survived only in the shadow dies
        // with it.
        StateFact out = static_cast<StateFact>(fact & ~kShadow);
        if ((fact & kShadow) && !(fact & (kLive | kSaved)))
            out = joinFacts(out, kLost);
        return out;
      }
    }
    return fact;
}

} // namespace rchdroid::sa
