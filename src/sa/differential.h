/**
 * @file
 * Differential validation: static verdicts vs dynamic ground truth.
 *
 * This header is deliberately simulator-free (the lint seam forbids
 * src/sa/ from seeing os/ or sim/ headers): the dynamic side is an
 * opaque DynamicObservation record produced elsewhere (src/mc's
 * app-scenario runner drives the real simulator, dynamic analyzers and
 * model checker and fills one in per app × handling model). Here we
 * only compare.
 *
 * Contracts (DESIGN.md §12):
 *  - Soundness: an app the static pass calls clean for a mode must show
 *    no dynamic issue in that mode on any explored schedule. A
 *    violation is a bug in the analyzer's over-approximation and fails
 *    the differential CTest.
 *  - Precision: the fraction of dynamically-checkable error findings
 *    that a dynamic run confirms. Reported, not asserted — a may-
 *    analysis is allowed false alarms, but we want to see the number.
 */
#ifndef RCHDROID_SA_DIFFERENTIAL_H
#define RCHDROID_SA_DIFFERENTIAL_H

#include <string>
#include <vector>

#include "sa/verdict.h"

namespace rchdroid::sa {

/** What one dynamic run of one app under one handling model observed. */
struct DynamicObservation
{
    std::string app;
    HandlingModel handling = HandlingModel::Stock;
    /** verifyCriticalState() after the change. */
    bool state_preserved = true;
    /** The app's thread crashed (uncaught UI exception). */
    bool crashed = false;
    /** DestroyedViewMutation violations the dynamic analyzers flagged. */
    int stale_view_mutations = 0;
    /** Other analyzer violations (lifecycle/data-race). */
    int other_violations = 0;
    /** The model checker also explored this app's schedule space. */
    bool mc_explored = false;
    /** ...and found some schedule violating an oracle. */
    bool mc_issue_found = false;

    /** Any user-visible issue observed dynamically. */
    bool dirty() const
    {
        return !state_preserved || crashed || stale_view_mutations > 0 ||
               (mc_explored && mc_issue_found);
    }
};

/** The comparison of one (verdict, observation) pair. */
struct DifferentialOutcome
{
    std::string app;
    HandlingModel handling = HandlingModel::Stock;
    bool static_clean = true;
    bool dynamic_dirty = false;
    /** static_clean && dynamic_dirty — the soundness contract broken. */
    bool soundness_violation = false;
    /** Checkable error findings the dynamic run confirmed / refuted. */
    int confirmed_findings = 0;
    int unconfirmed_findings = 0;
    /** Human-readable explanation of any disagreement. */
    std::string detail;
};

/** Compare one app's verdict with one mode's dynamic observation. */
DifferentialOutcome compareOne(const AppVerdict &verdict,
                               const DynamicObservation &observation);

/** Aggregate over a corpus of comparisons. */
struct DifferentialReport
{
    std::vector<DifferentialOutcome> outcomes;

    void add(const AppVerdict &verdict,
             const DynamicObservation &observation)
    {
        outcomes.push_back(compareOne(verdict, observation));
    }

    int soundnessViolations() const;
    int confirmed() const;
    int unconfirmed() const;
    /** confirmed / (confirmed + unconfirmed); 1.0 when no findings. */
    double precision() const;
    /** Per-disagreement lines + the summary line. */
    std::string toString() const;
};

} // namespace rchdroid::sa

#endif // RCHDROID_SA_DIFFERENTIAL_H
