#include "sa/dataflow.h"

namespace rchdroid::sa {

FlowSolution
solve(const AppModel &model)
{
    FlowSolution solution;
    const std::size_t n_locations = model.locations.size();
    for (auto &row : solution.facts)
        row.assign(n_locations, kFactBottom);

    // Boundary: every tracked value is live in the foreground instance
    // once the user has put the app into its state at Resumed.
    auto &resumed = solution.facts[static_cast<std::size_t>(LcNode::Resumed)];
    for (StateFact &fact : resumed)
        fact = kLive;

    bool changed = true;
    while (changed) {
        changed = false;
        ++solution.iterations;
        for (const LcEdge &edge : model.edges) {
            const auto &from =
                solution.facts[static_cast<std::size_t>(edge.from)];
            auto &to = solution.facts[static_cast<std::size_t>(edge.to)];
            for (std::size_t i = 0; i < n_locations; ++i) {
                if (from[i] == kFactBottom)
                    continue;
                const StateFact incoming =
                    transferFact(from[i], edge.effect, model.locations[i]);
                const StateFact joined = joinFacts(to[i], incoming);
                if (joined != to[i]) {
                    to[i] = joined;
                    changed = true;
                }
            }
        }
    }
    return solution;
}

std::string
FlowSolution::describe(const AppModel &model) const
{
    std::string out;
    for (std::size_t n = 0; n < kLcNodeCount; ++n) {
        const auto node = static_cast<LcNode>(n);
        if (!model.reachable(node))
            continue;
        out += lcNodeName(node);
        out += ":";
        for (std::size_t i = 0; i < model.locations.size(); ++i) {
            out += " ";
            out += model.locations[i].name;
            out += "=";
            out += stateFactName(at(node, i));
        }
        out += "\n";
    }
    return out;
}

} // namespace rchdroid::sa
