#include "sa/mhp.h"

namespace rchdroid::sa {

LocationMask
locationBit(std::size_t index)
{
    return index < 31 ? (LocationMask{1} << index) : kViewsBit;
}

std::string
maskToString(const AppModel &model, LocationMask mask)
{
    std::string out;
    for (std::size_t i = 0; i < model.locations.size() && i < 31; ++i) {
        if ((mask & locationBit(i)) == 0)
            continue;
        if (!out.empty())
            out += ", ";
        out += model.locations[i].name;
    }
    if (mask & kViewsBit) {
        if (!out.empty())
            out += ", ";
        out += "captured views";
    }
    return out.empty() ? "none" : out;
}

const char *
cgEdgeKindName(CgEdgeKind kind)
{
    switch (kind) {
      case CgEdgeKind::Program: return "program";
      case CgEdgeKind::PostReply: return "post";
      case CgEdgeKind::Lifecycle: return "lifecycle";
    }
    return "?";
}

int
ConcurrencyGraph::node(const std::string &label) const
{
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].label == label)
            return static_cast<int>(i);
    }
    return -1;
}

std::string
ConcurrencyGraph::describe() const
{
    std::string out;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const CgNode &node = nodes[i];
        out += "  [";
        out += std::to_string(i);
        out += "] ";
        out += node.label;
        out += node.looper == CgLooper::Main ? " (main" : " (worker";
        if (node.is_async)
            out += ", async";
        out += ")";
        if (node.reads || node.writes || node.teardown) {
            out += " r=0x";
            char buf[16];
            std::snprintf(buf, sizeof buf, "%x", node.reads);
            out += buf;
            std::snprintf(buf, sizeof buf, " w=0x%x", node.writes);
            out += buf;
            std::snprintf(buf, sizeof buf, " t=0x%x", node.teardown);
            out += buf;
        }
        out += "\n";
    }
    for (const CgEdge &edge : edges) {
        out += "  ";
        out += nodes[edge.from].label;
        out += " -> ";
        out += nodes[edge.to].label;
        out += " (";
        out += cgEdgeKindName(edge.kind);
        out += ")\n";
    }
    return out;
}

namespace {

/** All location bits of the model (view-backed user state). */
LocationMask
allLocations(const AppModel &model)
{
    LocationMask mask = 0;
    for (std::size_t i = 0; i < model.locations.size(); ++i)
        mask |= locationBit(i);
    return mask;
}

/** Locations whose fact at `node` includes `residence`. */
LocationMask
locationsWithFact(const AppModel &model, const FlowSolution &flow,
                  LcNode node, StateFact residence)
{
    LocationMask mask = 0;
    for (std::size_t i = 0; i < model.locations.size(); ++i) {
        if ((flow.at(node, i) & residence) != 0)
            mask |= locationBit(i);
    }
    return mask;
}

void
applyEffectMasks(CgNode &node, const LcEdge &edge, const AppModel &model,
                 const FlowSolution &flow, bool original_instance)
{
    switch (edge.effect) {
      case EdgeEffect::None:
        break;
      case EdgeEffect::Materialize:
        // Building a view tree writes every view-backed location of
        // the instance being built; only the original instance is the
        // one async captures may target.
        node.writes |= allLocations(model);
        if (original_instance)
            node.writes |= kViewsBit;
        break;
      case EdgeEffect::SaveDefault:
      case EdgeEffect::SaveFull:
        node.reads |= allLocations(model);
        break;
      case EdgeEffect::DestroyViews:
        // The restart teardown destroys the old instance's tree and,
        // with it, every location still Live there.
        node.teardown |=
            kViewsBit | locationsWithFact(model, flow, edge.from, kLive);
        break;
      case EdgeEffect::EnterShadow:
        break;
      case EdgeEffect::Restore:
        node.writes |= allLocations(model);
        break;
      case EdgeEffect::Migrate:
        // Lazy migration reads the parked shadow tree into the sunny
        // instance's views.
        node.reads |= kViewsBit;
        node.writes |= allLocations(model);
        break;
      case EdgeEffect::CollectShadow:
        // Shadow GC destroys the parked tree and every location whose
        // surviving copy is the shadow residence.
        node.teardown |=
            kViewsBit | locationsWithFact(model, flow, edge.from, kShadow);
        break;
    }
}

} // namespace

ConcurrencyGraph
buildConcurrencyGraph(const AppModel &model, const FlowSolution &flow)
{
    ConcurrencyGraph graph;

    // One node per lifecycle CFG edge (= one callback execution on the
    // main looper), dropping the NextResumed → ConfigDispatch back edge
    // so the graph models exactly one runtime change and stays acyclic.
    std::vector<const LcEdge *> lc_edges;
    for (const LcEdge &edge : model.edges) {
        if (edge.to == LcNode::ConfigDispatch &&
            edge.from == LcNode::NextResumed)
            continue;
        lc_edges.push_back(&edge);
    }

    std::vector<int> node_of(lc_edges.size(), -1);
    for (std::size_t i = 0; i < lc_edges.size(); ++i) {
        const LcEdge &edge = *lc_edges[i];
        CgNode node;
        node.label = edge.label;
        node.looper = CgLooper::Main;
        applyEffectMasks(node, edge, model, flow,
                         /*original_instance=*/edge.from == LcNode::Launched);
        node_of[i] = static_cast<int>(graph.nodes.size());
        graph.nodes.push_back(std::move(node));
    }

    // Lifecycle ordering: callback of edge A precedes callback of edge
    // B whenever A ends where B begins. This follows the CFG through
    // branches (the RCH path forks at ShadowAlive).
    for (std::size_t i = 0; i < lc_edges.size(); ++i) {
        for (std::size_t j = 0; j < lc_edges.size(); ++j) {
            if (i != j && lc_edges[i]->to == lc_edges[j]->from)
                graph.edges.push_back(
                    {node_of[i], node_of[j], CgEdgeKind::Lifecycle});
        }
    }

    if (model.async.has_task) {
        const int change = graph.node("runtime change");
        const int resume = graph.node("onResume");

        CgNode execute;
        execute.label = "AsyncTask.execute";
        execute.looper = CgLooper::Main;
        execute.is_async = true;
        const int execute_id = static_cast<int>(graph.nodes.size());
        graph.nodes.push_back(std::move(execute));

        CgNode background;
        background.label = "AsyncTask.doInBackground";
        background.looper = CgLooper::Worker;
        background.is_async = true;
        const int background_id = static_cast<int>(graph.nodes.size());
        graph.nodes.push_back(std::move(background));

        CgNode done;
        done.label = "AsyncTask.onPostExecute";
        done.looper = CgLooper::Main;
        done.is_async = true;
        if (model.async.capture == AsyncCapture::RawViewRef) {
            // Fig. 1 anti-pattern: raw references into the captured
            // instance's tree. ViewId re-resolves through the live
            // tree, so it never writes the old instance.
            done.writes |= kViewsBit;
        }
        const int done_id = static_cast<int>(graph.nodes.size());
        graph.nodes.push_back(std::move(done));

        // The task starts from the resumed instance, before the change
        // (the §6 methodology seeds state while Resumed).
        if (resume >= 0)
            graph.edges.push_back(
                {resume, execute_id, CgEdgeKind::Program});
        graph.edges.push_back(
            {execute_id, background_id, CgEdgeKind::PostReply});
        graph.edges.push_back(
            {background_id, done_id, CgEdgeKind::PostReply});

        if (!model.async.may_straddle_change && change >= 0) {
            // Zero-duration task: its completion is already dispatched
            // when the change can arrive.
            graph.edges.push_back(
                {done_id, change, CgEdgeKind::Program});
        }
        if (model.async.cancels_on_stop) {
            // onStop cancels the task, so a completion that runs at
            // all ran before onStop's teardown successor.
            const int stop = graph.node("onStop");
            if (stop >= 0)
                graph.edges.push_back(
                    {done_id, stop, CgEdgeKind::Program});
        }
    }
    return graph;
}

MhpResult
computeMhp(const ConcurrencyGraph &graph)
{
    MhpResult result;
    result.node_count = graph.nodes.size();
    result.reach.assign(result.node_count,
                        std::vector<bool>(result.node_count, false));

    // Worklist-free fixpoint: sweep the edge list, folding each edge's
    // target closure into its source, until a full pass changes
    // nothing. The graphs are tiny (≤ ~20 nodes), so this converges in
    // a handful of passes; `iterations` counts them for the tests.
    bool changed = true;
    while (changed) {
        changed = false;
        ++result.iterations;
        for (const CgEdge &edge : graph.edges) {
            std::vector<bool> &from = result.reach[edge.from];
            if (!from[edge.to]) {
                from[edge.to] = true;
                changed = true;
            }
            const std::vector<bool> &to = result.reach[edge.to];
            for (std::size_t k = 0; k < result.node_count; ++k) {
                if (to[k] && !from[k]) {
                    from[k] = true;
                    changed = true;
                }
            }
        }
    }
    return result;
}

std::vector<RacePair>
racePairs(const ConcurrencyGraph &graph, const MhpResult &mhp)
{
    std::vector<RacePair> pairs;
    for (std::size_t a = 0; a < graph.nodes.size(); ++a) {
        for (std::size_t b = a + 1; b < graph.nodes.size(); ++b) {
            if (!mhp.mhp(a, b))
                continue;
            const CgNode &na = graph.nodes[a];
            const CgNode &nb = graph.nodes[b];
            // Conflict: a destructive or plain write on one side meets
            // any access on the other.
            const LocationMask a_dest = na.writes | na.teardown;
            const LocationMask b_dest = nb.writes | nb.teardown;
            const LocationMask clash =
                (a_dest & (b_dest | nb.reads)) | (b_dest & na.reads);
            if (clash == 0)
                continue;
            RacePair pair;
            pair.a = static_cast<int>(a);
            pair.b = static_cast<int>(b);
            pair.locations = clash;
            pair.teardown = (na.teardown & (b_dest | nb.reads)) != 0 ||
                            (nb.teardown & (a_dest | na.reads)) != 0;
            pairs.push_back(pair);
        }
    }
    return pairs;
}

const StepClass *
IndependenceSpec::find(const std::string &key) const
{
    for (const StepClass &step : classes) {
        if (step.key() == key)
            return &step;
    }
    return nullptr;
}

const std::string *
IndependenceSpec::looperProcess(const std::string &looper) const
{
    for (const StepClass &step : classes) {
        if (step.looper == looper && !step.global)
            return &step.process;
    }
    return nullptr;
}

bool
IndependenceSpec::processIsolated() const
{
    if (!closed_world || classes.empty())
        return false;
    for (const StepClass &step : classes) {
        if (step.global)
            return false;
    }
    return true;
}

bool
IndependenceSpec::independentClasses(const StepClass &a,
                                     const StepClass &b) const
{
    if (a.global || b.global)
        return false;
    if (a.looper == b.looper) {
        // One queue serialises them and the order is observable (which
        // message ran first is part of the state).
        return false;
    }
    if (a.process != b.process)
        return true; // isolation is the spec author's obligation
    return (a.writes & (b.reads | b.writes)) == 0 &&
           (b.writes & a.reads) == 0;
}

} // namespace rchdroid::sa
