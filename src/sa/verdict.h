/**
 * @file
 * Per-app verdicts: the analyzer's end product.
 *
 * analyzeApp() compiles the spec under both handling models, runs the
 * fixpoint and every registered checker, and folds the findings into a
 * ModePrediction per handling model ("will the user's critical state
 * survive? will the app crash?"). The sweep serialises verdicts as JSON
 * (one object per app) for the CI artifact; the differential harness
 * compares them against dynamic observations.
 */
#ifndef RCHDROID_SA_VERDICT_H
#define RCHDROID_SA_VERDICT_H

#include <string>
#include <vector>

#include "apps/app_spec.h"
#include "sa/checkers.h"
#include "sa/model_ir.h"

namespace rchdroid::sa {

/** What the analyzer predicts for one app under one handling model. */
struct ModePrediction
{
    HandlingModel handling = HandlingModel::Stock;
    /** No critical location may lose its value across the change. */
    bool state_preserved = true;
    /** A stale-reference completion may crash the app. */
    bool crash_predicted = false;

    /** No user-visible issue predicted for this mode. */
    bool clean() const { return state_preserved && !crash_predicted; }
};

/** The analyzer's complete answer for one app. */
struct AppVerdict
{
    std::string app;
    std::string critical;
    bool in_place = false;
    ModePrediction stock;
    ModePrediction rch;
    std::vector<Finding> findings;

    const ModePrediction &prediction(HandlingModel handling) const
    {
        return handling == HandlingModel::Stock ? stock : rch;
    }

    /**
     * Statically clean for the mode: no dynamically-checkable
     * error-severity finding concerns it. This is the predicate the
     * soundness contract quantifies over.
     */
    bool cleanFor(HandlingModel handling) const;

    /** One JSON object (no trailing newline). */
    std::string toJson() const;
};

/** JSON string escaping (quotes, backslashes, control chars). */
std::string jsonEscape(const std::string &text);

/** Compile, solve, and check one app. */
AppVerdict analyzeApp(const apps::AppSpec &spec);

} // namespace rchdroid::sa

#endif // RCHDROID_SA_VERDICT_H
