#include "sa/model_ir.h"

namespace rchdroid::sa {

const char *
handlingModelName(HandlingModel model)
{
    return model == HandlingModel::Stock ? "stock" : "rchdroid";
}

const char *
lcNodeName(LcNode node)
{
    switch (node) {
      case LcNode::Launched: return "Launched";
      case LcNode::Created: return "Created";
      case LcNode::Started: return "Started";
      case LcNode::Resumed: return "Resumed";
      case LcNode::ConfigDispatch: return "ConfigDispatch";
      case LcNode::InPlaceHandled: return "InPlaceHandled";
      case LcNode::Paused: return "Paused";
      case LcNode::Saved: return "Saved";
      case LcNode::Stopped: return "Stopped";
      case LcNode::Destroyed: return "Destroyed";
      case LcNode::ShadowEntry: return "ShadowEntry";
      case LcNode::ShadowAlive: return "ShadowAlive";
      case LcNode::ShadowCollected: return "ShadowCollected";
      case LcNode::NextCreated: return "NextCreated";
      case LcNode::NextRestored: return "NextRestored";
      case LcNode::NextResumed: return "NextResumed";
      case LcNode::kCount: break;
    }
    return "?";
}

const char *
edgeEffectName(EdgeEffect effect)
{
    switch (effect) {
      case EdgeEffect::None: return "None";
      case EdgeEffect::Materialize: return "Materialize";
      case EdgeEffect::SaveDefault: return "SaveDefault";
      case EdgeEffect::SaveFull: return "SaveFull";
      case EdgeEffect::DestroyViews: return "DestroyViews";
      case EdgeEffect::EnterShadow: return "EnterShadow";
      case EdgeEffect::Restore: return "Restore";
      case EdgeEffect::Migrate: return "Migrate";
      case EdgeEffect::CollectShadow: return "CollectShadow";
    }
    return "?";
}

LcNode
AppModel::observationNode() const
{
    return in_place ? LcNode::Resumed : LcNode::NextResumed;
}

bool
AppModel::reachable(LcNode node) const
{
    for (const LcEdge &edge : edges) {
        if (edge.to == node || edge.from == node)
            return true;
    }
    return false;
}

std::string
AppModel::describe() const
{
    std::string out = spec.name;
    out += " [";
    out += handlingModelName(handling);
    out += in_place ? ", in-place]\n" : "]\n";
    for (const LcEdge &edge : edges) {
        out += "  ";
        out += lcNodeName(edge.from);
        out += " -> ";
        out += lcNodeName(edge.to);
        out += " (";
        out += edge.label;
        if (edge.effect != EdgeEffect::None) {
            out += ", ";
            out += edgeEffectName(edge.effect);
        }
        out += ")\n";
    }
    for (const StateLocation &location : locations) {
        out += "  loc ";
        out += location.name;
        out += location.critical ? " [critical]\n" : "\n";
    }
    if (async.has_task) {
        out += "  async capture=";
        out += async.capture == AsyncCapture::RawViewRef ? "raw-view-ref"
               : async.capture == AsyncCapture::ViewId   ? "view-id"
                                                         : "none";
        if (async.cancels_on_stop)
            out += " cancels-on-stop";
        if (async.shows_dialog)
            out += " shows-dialog";
        if (async.may_straddle_change)
            out += " may-straddle-change";
        out += "\n";
    }
    return out;
}

namespace {

void
addCommonPrefix(AppModel &model)
{
    model.edges.push_back({LcNode::Launched, LcNode::Created,
                           EdgeEffect::Materialize, "onCreate"});
    model.edges.push_back(
        {LcNode::Created, LcNode::Started, EdgeEffect::None, "onStart"});
    model.edges.push_back(
        {LcNode::Started, LcNode::Resumed, EdgeEffect::None, "onResume"});
    model.edges.push_back({LcNode::Resumed, LcNode::ConfigDispatch,
                           EdgeEffect::None, "runtime change"});
}

void
addInPlacePath(AppModel &model)
{
    // android:configChanges declared (directly or via the RuntimeDroid
    // patch, which requires the declaration): the same instance handles
    // the change in onConfigurationChanged; nothing is torn down.
    model.edges.push_back({LcNode::ConfigDispatch, LcNode::InPlaceHandled,
                           EdgeEffect::None, "onConfigurationChanged"});
    model.edges.push_back({LcNode::InPlaceHandled, LcNode::Resumed,
                           EdgeEffect::None, "handled in place"});
}

void
addStockRestartPath(AppModel &model)
{
    model.edges.push_back(
        {LcNode::ConfigDispatch, LcNode::Paused, EdgeEffect::None,
         "onPause"});
    model.edges.push_back({LcNode::Paused, LcNode::Saved,
                           EdgeEffect::SaveDefault, "onSaveInstanceState"});
    model.edges.push_back(
        {LcNode::Saved, LcNode::Stopped, EdgeEffect::None, "onStop"});
    model.edges.push_back({LcNode::Stopped, LcNode::Destroyed,
                           EdgeEffect::DestroyViews, "onDestroy"});
    model.edges.push_back({LcNode::Destroyed, LcNode::NextCreated,
                           EdgeEffect::Materialize, "onCreate (recreated)"});
    model.edges.push_back({LcNode::NextCreated, LcNode::NextRestored,
                           EdgeEffect::Restore, "onRestoreInstanceState"});
    model.edges.push_back({LcNode::NextRestored, LcNode::NextResumed,
                           EdgeEffect::None, "onResume (recreated)"});
    // A later change treats the recreated instance as the foreground.
    model.edges.push_back({LcNode::NextResumed, LcNode::ConfigDispatch,
                           EdgeEffect::None, "runtime change"});
}

void
addRchPath(AppModel &model)
{
    // Coin flip lands in-process: the old instance is parked as the
    // shadow (views stay alive), a full-coverage snapshot is taken, the
    // sunny instance is created under the new configuration and essence
    // migrates lazily. The shadow is GC'd once cold.
    model.edges.push_back({LcNode::ConfigDispatch, LcNode::ShadowEntry,
                           EdgeEffect::SaveFull, "shadow snapshot"});
    model.edges.push_back({LcNode::ShadowEntry, LcNode::ShadowAlive,
                           EdgeEffect::EnterShadow, "enter shadow"});
    model.edges.push_back({LcNode::ShadowAlive, LcNode::NextCreated,
                           EdgeEffect::Materialize, "onCreate (sunny)"});
    model.edges.push_back({LcNode::NextCreated, LcNode::NextRestored,
                           EdgeEffect::Migrate, "lazy migration"});
    model.edges.push_back({LcNode::NextRestored, LcNode::NextResumed,
                           EdgeEffect::None, "onResume (sunny)"});
    model.edges.push_back({LcNode::ShadowAlive, LcNode::ShadowCollected,
                           EdgeEffect::CollectShadow, "shadow GC"});
    model.edges.push_back({LcNode::NextResumed, LcNode::ConfigDispatch,
                           EdgeEffect::None, "runtime change"});
}

void
addLocations(AppModel &model)
{
    const apps::AppSpec &spec = model.spec;
    if (spec.critical != apps::CriticalState::None) {
        StateLocation location;
        location.traits = apps::criticalStateTraits(spec.critical);
        location.name = location.traits.location;
        location.critical = true;
        location.covered_by_on_save =
            spec.implements_on_save &&
            apps::coveredByAppOnSave(spec.critical);
        model.locations.push_back(location);
    }
    // Non-critical companion locations keep the flow honest: every app
    // has an id-carrying EditText the default path covers (the
    // true-negative every checker must get right), and async apps'
    // ImageView contents are view state the default save skips.
    if (spec.n_edit_texts > 0 &&
        spec.critical != apps::CriticalState::EditTextWithId) {
        StateLocation edit;
        edit.traits =
            apps::criticalStateTraits(apps::CriticalState::EditTextWithId);
        edit.name = edit.traits.location;
        model.locations.push_back(edit);
    }
    if (spec.n_image_views > 0 &&
        spec.async.trigger != apps::AsyncTrigger::Never) {
        StateLocation image;
        image.traits = {true, true, false, true, "ImageView#img.drawable"};
        image.name = image.traits.location;
        model.locations.push_back(image);
    }
}

void
addAsyncModel(AppModel &model)
{
    const apps::AsyncSpec &async = model.spec.async;
    if (async.trigger == apps::AsyncTrigger::Never)
        return;
    model.async.has_task = true;
    model.async.capture = model.spec.runtimedroid_patched
                              ? AsyncCapture::ViewId
                              : AsyncCapture::RawViewRef;
    model.async.cancels_on_stop = async.cancels_on_stop;
    model.async.shows_dialog = async.shows_dialog;
    // Any task with a nonzero doInBackground window may still be in
    // flight when a change arrives — the static model cannot bound when
    // the user rotates, so it over-approximates.
    model.async.may_straddle_change = async.duration > 0;
}

} // namespace

AppModel
compile(const apps::AppSpec &spec, HandlingModel handling)
{
    AppModel model;
    model.spec = spec;
    model.handling = handling;
    // The installer declares android:configChanges for patched apps
    // (the patch depends on it), so either flag suppresses the restart.
    model.in_place =
        spec.handles_config_changes || spec.runtimedroid_patched;

    addCommonPrefix(model);
    if (model.in_place)
        addInPlacePath(model);
    else if (handling == HandlingModel::Stock)
        addStockRestartPath(model);
    else
        addRchPath(model);

    addLocations(model);
    addAsyncModel(model);
    return model;
}

} // namespace rchdroid::sa
