/**
 * @file
 * The state-flow lattice: for every tracked location, a powerset over
 * *where the user's value may currently live*. The analysis is a may-
 * analysis — join is set union, facts only grow — so "Lost" is sticky:
 * once some path can lose a value, the fact records it. That is the
 * over-approximation the soundness contract rests on (DESIGN.md §12):
 * an app the static pass calls clean must be clean on every dynamic
 * schedule.
 *
 *   Live    the value sits in the foreground instance (view or field)
 *   Saved   a bundle copy exists (default, full, or app onSave)
 *   Shadow  the value survives in the parked shadow instance
 *   Lost    some path destroyed the only copy
 */
#ifndef RCHDROID_SA_LATTICE_H
#define RCHDROID_SA_LATTICE_H

#include <cstdint>

#include "sa/model_ir.h"

namespace rchdroid::sa {

/** One location's fact: a bitset over the four residences. */
using StateFact = std::uint8_t;

inline constexpr StateFact kFactBottom = 0;
inline constexpr StateFact kLive = 1u << 0;
inline constexpr StateFact kSaved = 1u << 1;
inline constexpr StateFact kShadow = 1u << 2;
inline constexpr StateFact kLost = 1u << 3;

/** Join = may-union. */
inline StateFact
joinFacts(StateFact a, StateFact b)
{
    return static_cast<StateFact>(a | b);
}

/** "Live|Saved", "Lost", "⊥", ... (debug output). */
const char *stateFactName(StateFact fact);

/**
 * Does this save effect cover this location?
 *  - SaveDefault: stock per-widget defaults — needs an id AND a widget
 *    whose default onSaveInstanceState saves the attribute; an
 *    app-implemented onSaveInstanceState adds its custom field.
 *  - SaveFull: the RCHDroid/RuntimeDroid snapshot — every view-backed
 *    location (id-less keyed by path) plus the app's onSave field.
 */
bool saveCovers(EdgeEffect effect, const StateLocation &location);

/** Apply one edge's effect to one location's fact (transfer function). */
StateFact transferFact(StateFact fact, EdgeEffect effect,
                       const StateLocation &location);

} // namespace rchdroid::sa

#endif // RCHDROID_SA_LATTICE_H
