#include "sa/verdict.h"

#include <cstdio>

#include "sa/dataflow.h"

namespace rchdroid::sa {

bool
AppVerdict::cleanFor(HandlingModel handling) const
{
    for (const Finding &finding : findings) {
        if (finding.handling == handling &&
            finding.severity == Severity::Error &&
            finding.dynamically_checkable)
            return false;
    }
    return true;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

const char *
jsonBool(bool value)
{
    return value ? "true" : "false";
}

std::string
predictionJson(const ModePrediction &prediction)
{
    std::string out = "{\"state_preserved\": ";
    out += jsonBool(prediction.state_preserved);
    out += ", \"crash_predicted\": ";
    out += jsonBool(prediction.crash_predicted);
    out += ", \"clean\": ";
    out += jsonBool(prediction.clean());
    out += "}";
    return out;
}

std::string
findingJson(const Finding &finding)
{
    std::string out = "{\"checker\": \"";
    out += jsonEscape(finding.checker);
    out += "\", \"severity\": \"";
    out += severityName(finding.severity);
    out += "\", \"handling\": \"";
    out += handlingModelName(finding.handling);
    out += "\", \"location\": \"";
    out += jsonEscape(finding.location);
    out += "\", \"message\": \"";
    out += jsonEscape(finding.message);
    out += "\", \"dynamically_checkable\": ";
    out += jsonBool(finding.dynamically_checkable);
    out += "}";
    return out;
}

ModePrediction
foldPrediction(HandlingModel handling, const std::vector<Finding> &findings)
{
    ModePrediction prediction;
    prediction.handling = handling;
    for (const Finding &finding : findings) {
        if (finding.handling != handling ||
            finding.severity != Severity::Error)
            continue;
        if (finding.checker == "data_loss")
            prediction.state_preserved = false;
        else if (finding.checker == "stale_reference" ||
                 finding.checker == "async_race")
            prediction.crash_predicted = true;
    }
    return prediction;
}

} // namespace

std::string
AppVerdict::toJson() const
{
    std::string out = "{\"app\": \"";
    out += jsonEscape(app);
    out += "\", \"critical\": \"";
    out += jsonEscape(critical);
    out += "\", \"in_place\": ";
    out += jsonBool(in_place);
    out += ", \"stock\": ";
    out += predictionJson(stock);
    out += ", \"rchdroid\": ";
    out += predictionJson(rch);
    out += ", \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += findingJson(findings[i]);
    }
    out += "]}";
    return out;
}

AppVerdict
analyzeApp(const apps::AppSpec &spec)
{
    const AppModel stock_model = compile(spec, HandlingModel::Stock);
    const AppModel rch_model = compile(spec, HandlingModel::RchDroid);
    const FlowSolution stock_flow = solve(stock_model);
    const FlowSolution rch_flow = solve(rch_model);

    CheckInput input;
    input.stock = &stock_model;
    input.rch = &rch_model;
    input.stock_flow = &stock_flow;
    input.rch_flow = &rch_flow;

    AppVerdict verdict;
    verdict.app = spec.name;
    verdict.critical = apps::criticalStateName(spec.critical);
    verdict.in_place = stock_model.in_place;
    verdict.findings = runCheckers(input);
    verdict.stock = foldPrediction(HandlingModel::Stock, verdict.findings);
    verdict.rch = foldPrediction(HandlingModel::RchDroid, verdict.findings);
    return verdict;
}

} // namespace rchdroid::sa
