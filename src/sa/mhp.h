/**
 * @file
 * May-happen-in-parallel (MHP) analysis over the model IR, and the
 * independence relation it exports to the model checker.
 *
 * buildConcurrencyGraph() lowers one compiled AppModel (plus its flow
 * solution) into a concurrency graph: one node per executable step —
 * every lifecycle callback from the Fig. 4 CFG, plus the AsyncTask's
 * execute / doInBackground / onPostExecute steps from the async posted-
 * callback summary. Edges are happens-before facts the model
 * guarantees:
 *
 *  - Lifecycle: the CFG's own ordering (onCreate before onStart, the
 *    restart teardown before the recreated instance's callbacks, ...).
 *    The NextResumed → ConfigDispatch back edge is dropped — the graph
 *    models one runtime change, and MHP needs acyclicity.
 *  - Program: per-looper program order among steps the same looper
 *    runs in a fixed sequence (execute precedes the task's result).
 *  - PostReply: the post edge from a producer to the callback it
 *    enqueues (doInBackground → onPostExecute).
 *
 * computeMhp() closes reachability over the graph with a worklist
 * fixpoint; two nodes may happen in parallel exactly when neither
 * reaches the other. "Parallel" here means *unordered dispatch*: two
 * main-looper callbacks whose queue order the scheduler does not fix
 * can land either way around, which is all a write/teardown race needs.
 *
 * Each node carries read/write/teardown masks over the dataflow's
 * tracked locations plus one pseudo-location (kViewsBit: the captured
 * instance's live view tree). racePairs() reports MHP pairs whose
 * masks conflict — the async_race checker's raw material.
 *
 * IndependenceSpec is the contract this analysis exports to src/mc/:
 * a vocabulary of runtime step classes ("<looper>#<tag>") with the
 * same masks, from which the explorer derives a *sound* independence
 * oracle (DESIGN.md §14). src/sa/ stays simulator-free: the spec is
 * plain data; mapping runtime events onto classes is mc's job.
 */
#ifndef RCHDROID_SA_MHP_H
#define RCHDROID_SA_MHP_H

#include <cstdint>
#include <string>
#include <vector>

#include "sa/dataflow.h"
#include "sa/model_ir.h"

namespace rchdroid::sa {

/**
 * Bitmask over tracked state locations (bit i = model.locations[i])
 * plus the pseudo-location below. Locations beyond 31 saturate into
 * the pseudo-bit (conservative: they conflict with everything that
 * touches views) — the corpus tracks ≤ 3 locations per app.
 */
using LocationMask = std::uint32_t;

/** The captured (old / shadow) instance's live view tree. */
inline constexpr LocationMask kViewsBit = 1u << 31;

/** Bit for location index i (saturates into kViewsBit). */
LocationMask locationBit(std::size_t index);

/** Render a mask using the model's location names. */
std::string maskToString(const AppModel &model, LocationMask mask);

/** Which simulated thread a node runs on. */
enum class CgLooper : std::uint8_t { Main, Worker };

/** One executable step of the concurrency graph. */
struct CgNode
{
    /** Protocol label ("onDestroy", "AsyncTask.onPostExecute", ...). */
    std::string label;
    CgLooper looper = CgLooper::Main;
    /** Part of the async posted-callback chain. */
    bool is_async = false;
    LocationMask reads = 0;
    LocationMask writes = 0;
    /** Destructive writes: the step destroys these residences. */
    LocationMask teardown = 0;
};

enum class CgEdgeKind : std::uint8_t { Program, PostReply, Lifecycle };

/** "program" / "post" / "lifecycle". */
const char *cgEdgeKindName(CgEdgeKind kind);

/** One happens-before edge: nodes[from] precedes nodes[to]. */
struct CgEdge
{
    int from = 0;
    int to = 0;
    CgEdgeKind kind = CgEdgeKind::Lifecycle;
};

struct ConcurrencyGraph
{
    std::vector<CgNode> nodes;
    std::vector<CgEdge> edges;

    /** Index of the node with this label, or -1. */
    int node(const std::string &label) const;

    /** Multi-line debug dump (nodes, masks, edges). */
    std::string describe() const;
};

/**
 * Lower one compiled model into its concurrency graph. Effect masks
 * come from the flow solution: DestroyViews tears down exactly the
 * locations Live at its source node, CollectShadow the locations whose
 * only copy is the Shadow residence.
 */
ConcurrencyGraph buildConcurrencyGraph(const AppModel &model,
                                       const FlowSolution &flow);

/** The MHP fixpoint's result: the reachability closure. */
struct MhpResult
{
    std::size_t node_count = 0;
    /** reach[i][j]: node i happens before node j on every schedule. */
    std::vector<std::vector<bool>> reach;
    /** Worklist passes until quiescence (observability/tests). */
    int iterations = 0;

    bool ordered(std::size_t a, std::size_t b) const
    {
        return a == b || reach[a][b] || reach[b][a];
    }

    /** Symmetric, irreflexive: unordered distinct steps. */
    bool mhp(std::size_t a, std::size_t b) const
    {
        return a != b && !reach[a][b] && !reach[b][a];
    }
};

/** Close reachability over the graph (must be acyclic). */
MhpResult computeMhp(const ConcurrencyGraph &graph);

/** One statically-possible race: an MHP pair with conflicting masks. */
struct RacePair
{
    int a = 0;
    int b = 0;
    /** The locations both sides touch. */
    LocationMask locations = 0;
    /** One side tears down what the other writes or reads. */
    bool teardown = false;
};

/**
 * Every MHP pair whose masks conflict (write/write, write/read, or
 * either against a teardown), a < b, in node order.
 */
std::vector<RacePair> racePairs(const ConcurrencyGraph &graph,
                                const MhpResult &mhp);

// ---------------------------------------------------------------------
// The independence oracle exported to src/mc/ (DESIGN.md §14).
// ---------------------------------------------------------------------

/**
 * One runtime step class: every dispatch of a message with `tag` on
 * the looper named `looper` is an instance of this class, and the
 * masks over-approximate what any such dispatch may touch.
 */
struct StepClass
{
    /** Runtime looper name, e.g. "com.example.ping0.main". */
    std::string looper;
    /** Message tag, e.g. "gcTick" or "Benchmark4#task0.onPostExecute". */
    std::string tag;
    /** Owning process; classes of distinct processes never interact. */
    std::string process;
    LocationMask reads = 0;
    /** Includes destructive writes (teardown). */
    LocationMask writes = 0;
    /** Touches cross-process state (injections, ATMS): independent of
     * nothing. */
    bool global = false;

    /** The runtime key the mc hooks record: "<looper>#<tag>". */
    std::string key() const { return looper + "#" + tag; }
};

/**
 * The static independence relation one scenario hands the explorer.
 *
 * Soundness obligations on whoever builds a spec (hand-written per
 * scenario or derived from a compiled model):
 *  - masks over-approximate every dispatch of the class;
 *  - classes of distinct processes really are isolated — nothing a
 *    listed class does reads or writes another listed process's state
 *    (cross-process traffic must be marked `global`);
 *  - `closed_world` additionally asserts the listed classes are ALL
 *    message classes that can be dispatched inside the controlled
 *    window, and that none of them posts across processes.
 * The guided-vs-unguided bit-identical CTest and the differential race
 * gate check these obligations empirically on every run.
 */
struct IndependenceSpec
{
    std::vector<StepClass> classes;
    bool closed_world = false;

    bool empty() const { return classes.empty(); }

    /** Class with key() == `key`, or null. */
    const StepClass *find(const std::string &key) const;

    /** Owning process of the class registered on `looper`, or null. */
    const std::string *looperProcess(const std::string &looper) const;

    /**
     * Closed world with no global class: every event in the window
     * belongs to a listed class and processes are fully isolated —
     * the precondition of the explorer's persistent-set pruning.
     */
    bool processIsolated() const;

    /**
     * May dispatches of `a` and `b` be reordered without observable
     * difference? False whenever either is global or both share a
     * looper (one queue serialises them); true across distinct
     * processes; mask-disjointness within one process.
     */
    bool independentClasses(const StepClass &a, const StepClass &b) const;
};

} // namespace rchdroid::sa

#endif // RCHDROID_SA_MHP_H
