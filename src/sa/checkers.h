/**
 * @file
 * The checker registry: every static rule the analyzer runs over one
 * app's compiled models (stock + RCHDroid) and their flow solutions.
 *
 * Checkers are pure functions of the CheckInput; each registered
 * checker must have a matching test file tests/sa/checker_<name>_test.cc
 * (tools/lint_rules.py rule 4 enforces this against the kCheckers
 * table in checkers.cc).
 *
 * Severity contract:
 *  - Error: the modelled behaviour WILL violate a user-visible
 *    guarantee on some schedule (data loss, crash);
 *  - Warning: a structural inconsistency that degrades a guarantee
 *    (e.g. not RCH-eligible);
 *  - Info: advisory (dead discipline, redundant declarations).
 */
#ifndef RCHDROID_SA_CHECKERS_H
#define RCHDROID_SA_CHECKERS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sa/dataflow.h"
#include "sa/model_ir.h"

namespace rchdroid::sa {

enum class Severity : std::uint8_t { Info, Warning, Error };

/** "info" / "warning" / "error". */
const char *severityName(Severity severity);

/** One static finding. */
struct Finding
{
    /** Registry name of the checker that raised it. */
    std::string checker;
    Severity severity = Severity::Warning;
    /** The handling model the finding concerns. */
    HandlingModel handling = HandlingModel::Stock;
    /** The modelled state location involved, or "". */
    std::string location;
    std::string message;
    /**
     * A dynamic run can confirm or refute it (data loss, crash). False
     * for spec-consistency lints; the differential harness only counts
     * checkable findings toward precision.
     */
    bool dynamically_checkable = true;

    /** "error[data_loss/stock] EditText(no id).text: ..." */
    std::string toString() const;
};

/** Everything a checker may look at. */
struct CheckInput
{
    const AppModel *stock = nullptr;
    const AppModel *rch = nullptr;
    const FlowSolution *stock_flow = nullptr;
    const FlowSolution *rch_flow = nullptr;
};

using CheckerFn = std::vector<Finding> (*)(const CheckInput &input);

/** One registry row. */
struct CheckerInfo
{
    const char *name;
    const char *summary;
    CheckerFn fn;
};

/** The full registry, in evaluation order. */
const std::vector<CheckerInfo> &checkerRegistry();

/** Run every registered checker; findings in registry order. */
std::vector<Finding> runCheckers(const CheckInput &input);

} // namespace rchdroid::sa

#endif // RCHDROID_SA_CHECKERS_H
