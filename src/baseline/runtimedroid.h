/**
 * @file
 * RuntimeDroidModel: the state-of-the-art comparator of §5.7 / Fig. 12 /
 * Table 4.
 *
 * RuntimeDroid (Farooq & Zhao, MobiSys'18) is an app-level patching tool
 * that masks the restart and migrates views dynamically. It is closed
 * source, and the paper itself compares against the numbers *reported in
 * the RuntimeDroid paper* ("Since RuntimeDroid has not open-sourced its
 * source code, we use the results presented in their paper"). We do the
 * same: Table 4's per-app LoC data is reproduced verbatim, and the
 * Fig. 12 latency bars use RuntimeDroid's reported speedups normalised
 * against our Android-10 baseline — the comparison methodology of the
 * paper, not a reimplementation of a system nobody can observe.
 */
#ifndef RCHDROID_BASELINE_RUNTIMEDROID_H
#define RCHDROID_BASELINE_RUNTIMEDROID_H

#include <cstdint>
#include <string>
#include <vector>

#include "platform/time.h"

namespace rchdroid {

/** One row of Table 4 plus the modelled latency/patch figures. */
struct RuntimeDroidAppData
{
    std::string app_name;
    /** App LoC when built against stock Android 10 (Table 4). */
    int loc_android10 = 0;
    /** App LoC after the RuntimeDroid patch (Table 4). */
    int loc_runtimedroid = 0;
    /** LoC the patch adds (Table 4 "Modifications"). */
    int loc_modifications = 0;
    /**
     * Runtime-change handling time as a fraction of Android-10
     * (Fig. 12's normalised bars; RuntimeDroid masks the restart at the
     * app level, so it undercuts even RCHDroid).
     */
    double latency_vs_android10 = 0.0;
    /** Per-app patch time (§5.7 Deployment Overhead), milliseconds. */
    std::int64_t patch_time_ms = 0;
};

/**
 * Static data + derived aggregates for the §5.7 comparison.
 */
class RuntimeDroidModel
{
  public:
    RuntimeDroidModel();

    /** The eight evaluation apps of Table 4. */
    const std::vector<RuntimeDroidAppData> &apps() const { return apps_; }

    /** Total LoC the patches add across the eval apps. */
    int totalModificationLoc() const;

    /** RCHDroid's one-time system deployment, ms (§5.7: 92,870 ms). */
    static std::int64_t rchdroidDeployTimeMs() { return 92'870; }

    /** Per-app modification LoC RCHDroid requires (the point: zero). */
    static int rchdroidAppModificationLoc() { return 0; }

    /** Range of per-app patch times reported in §5.7. */
    static std::int64_t minPatchTimeMs() { return 12'867; }
    static std::int64_t maxPatchTimeMs() { return 161'598; }

    /** Lookup by app name; null when absent. */
    const RuntimeDroidAppData *find(const std::string &app_name) const;

  private:
    std::vector<RuntimeDroidAppData> apps_;
};

} // namespace rchdroid

#endif // RCHDROID_BASELINE_RUNTIMEDROID_H
