#include "baseline/runtimedroid.h"

namespace rchdroid {

RuntimeDroidModel::RuntimeDroidModel()
{
    // LoC columns are Table 4 verbatim. The latency fractions and patch
    // times are modelled within the ranges §5.7 reports: RuntimeDroid's
    // dynamic app-level migration beats both systems on latency
    // (Fig. 12), and patch time spans 12,867–161,598 ms, roughly
    // proportional to app size.
    apps_ = {
        {"Mdapp",        26'342, 28'419, 2077, 0.42, 161'598},
        {"Remindly",      6'966,  7'820,  854, 0.47,  41'210},
        {"AlarmKlock",    2'838,  3'610,  772, 0.51,  12'867},
        {"Weather",      10'949, 12'208, 1259, 0.45,  63'904},
        {"PDFCreator",   19'624, 20'895, 1271, 0.43, 118'372},
        {"Sieben",       20'518, 22'123, 1605, 0.44, 124'951},
        {"AndroPTPB",     3'405,  5'127, 1722, 0.49,  20'433},
        {"VlilleChecker",12'083, 12'843,  760, 0.46,  70'516},
    };
}

int
RuntimeDroidModel::totalModificationLoc() const
{
    int total = 0;
    for (const auto &app : apps_)
        total += app.loc_modifications;
    return total;
}

const RuntimeDroidAppData *
RuntimeDroidModel::find(const std::string &app_name) const
{
    for (const auto &app : apps_) {
        if (app.app_name == app_name)
            return &app;
    }
    return nullptr;
}

} // namespace rchdroid
