/**
 * @file
 * SimulatedApp: the Activity subclass that behaves like the app an
 * AppSpec describes.
 *
 * The framework never inspects it — it is driven purely through the
 * public Activity lifecycle, exactly as a black-box APK would be. Its
 * app logic covers the behaviours the evaluation needs: critical user
 * state in a configurable widget pattern, optional onSaveInstanceState,
 * optional android:configChanges handling, and the AsyncTask pattern of
 * Fig. 1 that captures raw view references and updates them on return.
 */
#ifndef RCHDROID_APPS_SIMULATED_APP_H
#define RCHDROID_APPS_SIMULATED_APP_H

#include <memory>
#include <vector>

#include "app/activity.h"
#include "app/async_task.h"
#include "apps/app_spec.h"
#include "view/image_view.h"

namespace rchdroid::apps {

/**
 * The spec interpreter.
 */
class SimulatedApp final : public Activity
{
  public:
    SimulatedApp(AppSpec spec, ResourceId main_layout);

    const AppSpec &spec() const { return spec_; }

    /** @name App-private state (CriticalState::CustomVariable)
     * @{
     */
    int customValue() const { return custom_value_; }
    void setCustomValue(int value) { custom_value_ = value; }
    /** @} */

    /** Tap the update button (starts the AsyncTask when so wired). */
    void clickUpdateButton();

    /** Fire the async update directly (harness convenience). */
    void startAsyncUpdate();

    /** Number of async tasks this instance has started. */
    int asyncTasksStarted() const { return tasks_started_; }

    /** Dialogs this instance created (result dialogs from async). */
    int dialogsShown() const;

  protected:
    void onCreate(const Bundle *saved_state) override;
    void onStop() override;
    void onSaveInstanceState(Bundle &out_state) override;
    void onRestoreInstanceState(const Bundle &saved) override;
    void onConfigurationChanged(const Configuration &config) override;

  private:
    /** The RuntimeDroid patch body: rebuild content in place. */
    void hotReload();

    AppSpec spec_;
    ResourceId main_layout_;
    int custom_value_ = 0;
    int tasks_started_ = 0;
    // Weak: a running task is kept alive by the thread's in-flight
    // list (and pins this activity through its owner reference); a
    // strong edge here would close an unreclaimable ownership cycle.
    std::vector<std::weak_ptr<AsyncTask>> tasks_;
    std::vector<std::unique_ptr<Dialog>> dialogs_;
};

} // namespace rchdroid::apps

#endif // RCHDROID_APPS_SIMULATED_APP_H
