#include "apps/app_builder.h"

#include <string>

#include "apps/simulated_app.h"
#include "platform/logging.h"

namespace rchdroid::apps {

namespace {

LayoutNode
leaf(std::string element, std::map<std::string, std::string> attrs)
{
    LayoutNode node;
    node.element = std::move(element);
    node.attrs = std::move(attrs);
    return node;
}

std::string
itemsLiteral(int count)
{
    std::string out;
    for (int i = 0; i < count; ++i) {
        if (i)
            out += '|';
        out += "item" + std::to_string(i);
    }
    return out;
}

} // namespace

int
AppSpec::totalLayoutViews() const
{
    // root + title + button + widgets (+ scroll container when present).
    int n = 3 + n_text_views + n_edit_texts + n_image_views + n_checkboxes +
            n_progress_bars + n_list_views + n_video_views;
    if (critical == CriticalState::ScrollOffsetNoId)
        n += 1;
    return n;
}

const char *
criticalStateName(CriticalState state)
{
    switch (state) {
      case CriticalState::None: return "None";
      case CriticalState::EditTextWithId: return "EditTextWithId";
      case CriticalState::EditTextNoId: return "EditTextNoId";
      case CriticalState::TextViewText: return "TextViewText";
      case CriticalState::ListSelection: return "ListSelection";
      case CriticalState::ScrollOffsetNoId: return "ScrollOffsetNoId";
      case CriticalState::ProgressValue: return "ProgressValue";
      case CriticalState::CheckBoxNoId: return "CheckBoxNoId";
      case CriticalState::VideoPosition: return "VideoPosition";
      case CriticalState::CustomVariable: return "CustomVariable";
    }
    return "Unknown";
}

LayoutNode
buildMainLayout(const AppSpec &spec)
{
    LayoutNode root;
    root.element = "LinearLayout";
    root.attrs = {{"id", "root"}, {"orientation", "vertical"}};

    root.children.push_back(
        leaf("TextView", {{"id", "title"}, {"text", "@string/title"}}));

    for (int i = 0; i < spec.n_text_views; ++i) {
        root.children.push_back(leaf(
            "TextView", {{"id", "text_" + std::to_string(i)},
                         {"text", "@string/placeholder"}}));
    }
    for (int i = 0; i < spec.n_edit_texts; ++i) {
        std::map<std::string, std::string> attrs = {
            {"hint", "@string/hint"}};
        // The "text box" issue class: the critical EditText lacks an id,
        // so the stock save path skips it.
        const bool idless =
            i == 0 && spec.critical == CriticalState::EditTextNoId;
        if (!idless)
            attrs["id"] = "edit_" + std::to_string(i);
        root.children.push_back(leaf("EditText", std::move(attrs)));
    }
    for (int i = 0; i < spec.n_checkboxes; ++i) {
        std::map<std::string, std::string> attrs = {{"text", "option"}};
        const bool idless =
            i == 0 && spec.critical == CriticalState::CheckBoxNoId;
        if (!idless)
            attrs["id"] = "check_" + std::to_string(i);
        root.children.push_back(leaf("CheckBox", std::move(attrs)));
    }
    for (int i = 0; i < spec.n_progress_bars; ++i) {
        root.children.push_back(
            leaf("ProgressBar",
                 {{"id", "prog_" + std::to_string(i)}, {"max", "100"}}));
    }
    for (int i = 0; i < spec.n_image_views; ++i) {
        root.children.push_back(
            leaf("ImageView", {{"id", "img_" + std::to_string(i)},
                               {"src", "@drawable/img_" + std::to_string(i)}}));
    }
    for (int i = 0; i < spec.n_list_views; ++i) {
        root.children.push_back(
            leaf("ListView", {{"id", "list_" + std::to_string(i)},
                              {"items", itemsLiteral(spec.list_items)}}));
    }
    for (int i = 0; i < spec.n_video_views; ++i) {
        root.children.push_back(
            leaf("VideoView", {{"id", "video_" + std::to_string(i)},
                               {"video", "content://media/clip.mp4"}}));
    }
    root.children.push_back(
        leaf("Button", {{"id", "btn"}, {"text", "@string/update"}}));

    if (spec.critical == CriticalState::ScrollOffsetNoId) {
        // The "scroll location" issue class: the content sits inside an
        // id-less ScrollView whose offset the stock save path skips.
        LayoutNode scroll;
        scroll.element = "ScrollView";
        scroll.children.push_back(std::move(root));
        LayoutNode outer;
        outer.element = "LinearLayout";
        outer.attrs = {{"id", "outer"}, {"orientation", "vertical"}};
        outer.children.push_back(std::move(scroll));
        return outer;
    }
    return root;
}

BuiltApp
buildAppResources(const AppSpec &spec)
{
    auto table = std::make_shared<ResourceTable>();

    // Strings: a locale-qualified variant exists so locale switches also
    // re-resolve, like values-*/strings.xml.
    table->addString("title", ResourceQualifier::any(),
                     StringValue{spec.name});
    table->addString("title", ResourceQualifier::forLocale("fr-FR"),
                     StringValue{spec.name + " (fr)"});
    table->addString("placeholder", ResourceQualifier::any(),
                     StringValue{"--"});
    table->addString("hint", ResourceQualifier::any(),
                     StringValue{"enter text"});
    table->addString("update", ResourceQualifier::any(),
                     StringValue{"Update"});

    // Drawables sized per the spec; orientation-qualified variants force
    // a re-decode after rotation, like drawable-land/ assets.
    for (int i = 0; i < spec.n_image_views; ++i) {
        const std::string asset = "img_" + std::to_string(i);
        table->addDrawable(
            asset, ResourceQualifier::forOrientation(Orientation::Portrait),
            DrawableValue{asset + "_port", spec.image_edge_px,
                          spec.image_edge_px});
        table->addDrawable(
            asset, ResourceQualifier::forOrientation(Orientation::Landscape),
            DrawableValue{asset + "_land", spec.image_edge_px,
                          spec.image_edge_px});
    }

    // The main layout: same structure in both orientations (the essence
    // mapping relies on ids, not structure, but identical structure also
    // keeps the full-save path keys stable), registered as two qualified
    // variants like layout-port/ and layout-land/.
    const LayoutNode tree = buildMainLayout(spec);
    BuiltApp built;
    built.main_layout = table->addLayout(
        "main", ResourceQualifier::forOrientation(Orientation::Portrait),
        LayoutValue{tree});
    table->addLayout("main",
                     ResourceQualifier::forOrientation(Orientation::Landscape),
                     LayoutValue{tree});

    built.resources = std::move(table);
    return built;
}

ActivityFactory
makeAppFactory(const AppSpec &spec, const BuiltApp &built)
{
    const ResourceId layout = built.main_layout;
    return [spec, layout]() -> std::unique_ptr<Activity> {
        return std::make_unique<SimulatedApp>(spec, layout);
    };
}

} // namespace rchdroid::apps
