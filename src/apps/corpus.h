/**
 * @file
 * corpus: the evaluation app sets.
 *
 *  - tp37(): the 27 runnable apps of the TP-37 set (Table 3), each with
 *    the issue its row describes.
 *  - top100(): the Google-Play top-100 study set (Table 5): 63 apps with
 *    runtime-change issues (59 RCHDroid-fixable + 4 custom-state cases),
 *    26 apps that declare android:configChanges, and 11 issue-free
 *    default-handling apps.
 *  - makeBenchmarkApp(): the §5.1 second app-set — n ImageViews plus a
 *    Button whose tap fires an AsyncTask that updates the images.
 *  - runtimeDroidEvalApps(): the Table 4 / Fig. 12 comparison apps.
 *
 * Composition parameters (view counts, drawable sizes, heap baselines)
 * are synthesised deterministically per app name so that per-app
 * latencies and memory numbers vary realistically while every run is
 * reproducible.
 */
#ifndef RCHDROID_APPS_CORPUS_H
#define RCHDROID_APPS_CORPUS_H

#include <vector>

#include "apps/app_spec.h"

namespace rchdroid::apps {

/** The 27 TP-37 apps of Table 3. */
std::vector<AppSpec> tp37();

/** The Google-Play top-100 apps of Table 5, in table order. */
std::vector<AppSpec> top100();

/**
 * A §5.1 benchmark app: `n_image_views` ImageViews + one Button; the
 * button starts an AsyncTask that updates every ImageView after
 * `async_duration`.
 */
AppSpec makeBenchmarkApp(int n_image_views,
                         SimDuration async_duration = seconds(5));

/** The eight Table 4 apps used in the RuntimeDroid comparison. */
std::vector<AppSpec> runtimeDroidEvalApps();

/**
 * AppSpec stand-ins for the five examples/ programs (quickstart,
 * login_form, photo_gallery, mail_navigation, gc_tuning), carrying the
 * same critical state and async shape their activities exhibit. The
 * static-analysis sweep uses these so the examples get verdicts
 * alongside the corpus tables.
 */
std::vector<AppSpec> exampleSpecs();

} // namespace rchdroid::apps

#endif // RCHDROID_APPS_CORPUS_H
