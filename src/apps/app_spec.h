/**
 * @file
 * AppSpec: the declarative description of one evaluation app.
 *
 * The framework treats apps as black boxes (paper §1, challenge 1); the
 * spec is interpreted by apps::SimulatedApp, which behaves like the app
 * the table row describes: where its critical user state lives, whether
 * it implements onSaveInstanceState, whether it declares
 * android:configChanges, and whether it fires asynchronous tasks.
 */
#ifndef RCHDROID_APPS_APP_SPEC_H
#define RCHDROID_APPS_APP_SPEC_H

#include <cstdint>
#include <string>

#include "platform/time.h"

namespace rchdroid::apps {

/**
 * Where the app keeps the user state the table's "Specific Problem"
 * column says gets lost. Each value maps to a concrete widget pattern
 * with a known stock-Android save behaviour, so the Table 3/5 outcomes
 * emerge from mechanism rather than from hard-coding.
 */
enum class CriticalState : std::uint8_t {
    /** No state that a restart endangers. */
    None,
    /** EditText with an id: the default save path covers it (safe). */
    EditTextWithId,
    /** EditText without an id: "State loss (text box / login page)". */
    EditTextNoId,
    /** Programmatic TextView text: timers, report pages, dates. */
    TextViewText,
    /** AbsListView selection: "State loss (selection list)". */
    ListSelection,
    /** Id-less ScrollView offset: "State loss (scroll location)". */
    ScrollOffsetNoId,
    /** ProgressBar value: brightness/zoom/volume bars. */
    ProgressValue,
    /** Id-less CheckBox: settings toggles. */
    CheckBoxNoId,
    /** VideoView playback position. */
    VideoPosition,
    /**
     * A plain field of the activity object, not mirrored in any view:
     * only an app-implemented onSaveInstanceState can save it. Without
     * one this is the class neither system fixes (Table 3 #9/#10,
     * Table 5 #2/#57/#66/#70).
     */
    CustomVariable,
};

const char *criticalStateName(CriticalState state);

/** When the app fires its AsyncTask. */
enum class AsyncTrigger : std::uint8_t {
    Never,
    /** On activity creation (image/feed loading patterns). */
    OnCreate,
    /** On a button tap (the §5.1 benchmark apps). */
    OnButtonClick,
};

/** Background-task behaviour. */
struct AsyncSpec
{
    AsyncTrigger trigger = AsyncTrigger::Never;
    /** doInBackground duration (the benchmark apps use five seconds). */
    SimDuration duration = seconds(5);
    /** UI cost of the onPostExecute work. */
    SimDuration ui_cost = milliseconds(1);
    /**
     * Whether the app cancels its tasks in onStop — the discipline the
     * paper observes most developers lack ("92.4% of app developers are
     * unaware of the restarting").
     */
    bool cancels_on_stop = false;
    /**
     * onPostExecute shows a result dialog on the captured activity —
     * the WindowLeaked/BadTokenException crash class of §2.3 (instead
     * of, or in addition to, updating the ImageViews).
     */
    bool shows_dialog = false;
};

/**
 * Complete description of one evaluation app.
 */
struct AppSpec
{
    /** Display name, e.g. "OpenSudoku". */
    std::string name;
    /** Play-store downloads column ("1M+"). */
    std::string downloads;
    /** The table's "Issues of Current Android Design" text. */
    std::string issue_description;

    /** Table's issue column: stock Android loses state / crashes. */
    bool expect_issue_stock = true;
    /** Table's RCHDroid column: ✓ (fixed) vs ✗ (still lost). */
    bool expect_fixed_by_rch = true;

    /** Manifest android:configChanges — no restart on either system. */
    bool handles_config_changes = false;
    /**
     * The app carries a RuntimeDroid-style patch (the Table 4
     * modifications): it declares android:configChanges and handles the
     * change itself by hot-reloading its content in place — full state
     * snapshot, re-inflate under the new configuration, restore, and
     * id-based re-resolution of async view references. This is our
     * executable reimplementation of the §5.7 comparator's approach.
     */
    bool runtimedroid_patched = false;
    /**
     * Fixed app-level cost of the patch's dynamic resource reloading
     * (HotR-style), charged on each handled change.
     */
    SimDuration hot_reload_cost = milliseconds(28);
    /** App implements onSaveInstanceState for its custom state. */
    bool implements_on_save = false;
    CriticalState critical = CriticalState::None;
    AsyncSpec async;

    /** @name UI composition (drives tree size and resource weight)
     * @{
     */
    int n_text_views = 2;
    int n_edit_texts = 1;
    int n_image_views = 2;
    int n_checkboxes = 1;
    int n_progress_bars = 0;
    int n_list_views = 1;
    int list_items = 8;
    int n_video_views = 0;
    /** Square drawable edge in px (bytes = edge² × 4 per image). */
    int image_edge_px = 96;
    /** @} */

    /** @name Cost/heap parameters
     * @{
     */
    /** Process heap outside activity instances. */
    std::size_t base_heap_bytes = 40u << 20;
    /** Per-instance app-private heap (caches, decoded media). */
    std::size_t private_heap_bytes = 4u << 20;
    /** App-logic cost inside onCreate (DB reads, view wiring). */
    SimDuration app_create_cost = milliseconds(5);
    /** App-logic cost inside onConfigurationChanged. */
    SimDuration app_config_cost = milliseconds(2);
    /** @} */

    /** Process name, derived from the display name. */
    std::string process() const { return "com.eval." + name; }
    /** Component name of the main activity. */
    std::string component() const { return process() + "/.MainActivity"; }

    /** Total views the main layout will contain (incl. containers). */
    int totalLayoutViews() const;
};

} // namespace rchdroid::apps

#endif // RCHDROID_APPS_APP_SPEC_H
