#include "apps/spec_traits.h"

namespace rchdroid::apps {

const CriticalStateTraits &
criticalStateTraits(CriticalState state)
{
    // view_backed / has_view_id / saved_by_default / rch_migratable.
    static const CriticalStateTraits kNone = {
        false, false, false, false, "<none>"};
    static const CriticalStateTraits kEditWithId = {
        true, true, true, true, "EditText#edit_0.text"};
    static const CriticalStateTraits kEditNoId = {
        true, false, false, true, "EditText(no id).text"};
    static const CriticalStateTraits kTextView = {
        true, true, false, true, "TextView#text_0.text"};
    static const CriticalStateTraits kList = {
        true, true, false, true, "AbsListView#list_0.checkedItem"};
    static const CriticalStateTraits kScroll = {
        true, false, false, true, "ScrollView(no id).scrollY"};
    static const CriticalStateTraits kProgress = {
        true, true, false, true, "ProgressBar#prog_0.progress"};
    static const CriticalStateTraits kCheckBox = {
        true, false, false, true, "CheckBox(no id).checked"};
    static const CriticalStateTraits kVideo = {
        true, true, false, true, "VideoView#video_0.positionMs"};
    static const CriticalStateTraits kCustom = {
        false, false, false, false, "Activity.customValue"};

    switch (state) {
      case CriticalState::None: return kNone;
      case CriticalState::EditTextWithId: return kEditWithId;
      case CriticalState::EditTextNoId: return kEditNoId;
      case CriticalState::TextViewText: return kTextView;
      case CriticalState::ListSelection: return kList;
      case CriticalState::ScrollOffsetNoId: return kScroll;
      case CriticalState::ProgressValue: return kProgress;
      case CriticalState::CheckBoxNoId: return kCheckBox;
      case CriticalState::VideoPosition: return kVideo;
      case CriticalState::CustomVariable: return kCustom;
    }
    return kNone;
}

bool
coveredByAppOnSave(CriticalState state)
{
    return state == CriticalState::CustomVariable;
}

} // namespace rchdroid::apps
