#include "apps/corpus.h"

#include "apps/corpus_internal.h"

namespace rchdroid::apps {

namespace {

using detail::nameHash;

AppSpec
exampleApp(std::string name, CriticalState critical, std::string issue)
{
    AppSpec spec;
    spec.name = std::move(name);
    spec.downloads = "example";
    spec.issue_description = std::move(issue);
    spec.critical = critical;
    spec.expect_issue_stock = true;
    spec.expect_fixed_by_rch = critical != CriticalState::CustomVariable;

    const std::uint64_t h = nameHash(spec.name);
    spec.n_text_views = 1 + static_cast<int>(h % 2);
    spec.n_edit_texts = 1;
    spec.n_image_views = 3;
    spec.n_checkboxes = 1;
    spec.n_list_views = 1;
    spec.list_items = 5 + static_cast<int>((h >> 8) % 4);
    spec.image_edge_px = 128;
    spec.base_heap_bytes = 32u << 20;
    spec.private_heap_bytes = 3u << 20;
    spec.app_create_cost = milliseconds(4);
    spec.app_config_cost = milliseconds(2);
    return spec;
}

} // namespace

std::vector<AppSpec>
exampleSpecs()
{
    using CS = CriticalState;
    // AppSpec stand-ins for the five examples/ programs, with the same
    // critical state and async shape their activities exhibit; used by
    // the static-analysis sweep so the examples get verdicts alongside
    // the corpus tables.
    std::vector<AppSpec> apps;

    // quickstart: note-taking screen — id-less draft box.
    apps.push_back(exampleApp("ExQuickstart", CS::EditTextNoId,
                              "Draft note lost after restart"));

    // login_form: Fig. 13(a) — half-typed name in an id-less box.
    apps.push_back(exampleApp("ExLoginForm", CS::EditTextNoId,
                              "Half-typed username lost after restart"));

    // photo_gallery: Fig. 1 — thumbnail AsyncTask captures raw view
    // references at start and updates them on return.
    AppSpec gallery = exampleApp("ExPhotoGallery", CS::None,
                                 "Async thumbnail update crashes after "
                                 "restart");
    gallery.async.trigger = AsyncTrigger::OnCreate;
    gallery.async.duration = seconds(3);
    gallery.n_image_views = 6;
    apps.push_back(gallery);

    // mail_navigation: inbox list selection across screens.
    apps.push_back(exampleApp("ExMailNavigation", CS::ListSelection,
                              "Selected message lost after restart"));

    // gc_tuning: heavy gallery whose update task straddles changes —
    // the shadow-GC pressure workload.
    AppSpec tuning = exampleApp("ExGcTuning", CS::TextViewText,
                                "Status label lost; async update "
                                "straddles the change");
    tuning.async.trigger = AsyncTrigger::OnButtonClick;
    tuning.async.duration = seconds(4);
    tuning.base_heap_bytes = 96u << 20;
    tuning.n_image_views = 8;
    apps.push_back(tuning);

    return apps;
}

} // namespace rchdroid::apps
