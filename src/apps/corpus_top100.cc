#include "apps/corpus.h"

#include "apps/corpus_internal.h"
#include "platform/logging.h"

namespace rchdroid::apps {

namespace {

using detail::nameHash;

/**
 * Issue classes of Table 5's "Specific Problem" column, plus the three
 * no-issue flavours.
 */
enum class Row : char {
    TextBox,       // "State loss (text box)"
    LoginPage,     // "State loss (login page)" — a text-box variant
    RegisterPage,  // "State loss (register page)"
    SelectionList, // "State loss (selection list)"
    ProductList,   // "State loss (product list)"
    FaqList,       // "State loss (FAQ list)"
    ScrollLoc,     // "State loss (scroll location)"
    ZoomBar,       // "State loss (zoom bar)"
    VolumeBar,     // "State loss (volume bar)"
    ReportPage,    // "State loss (report page)"
    FileNumber,    // "State loss (file number)"
    TimerState,    // "State loss (timer state)"
    LocationPage,  // "State loss (location page)"
    CheckBoxRow,   // "State loss (check box)"
    Unfixable,     // custom state, no onSaveInstanceState (#2/#57/#66/#70)
    DeclaresCfg,   // no issue: manifest android:configChanges
    DefaultSafe,   // no issue: state lives where the default save reaches
};

struct TableRow
{
    const char *name;
    const char *downloads;
    Row row;
};

CriticalState
criticalFor(Row row)
{
    switch (row) {
      case Row::TextBox:
      case Row::LoginPage:
      case Row::RegisterPage:
        return CriticalState::EditTextNoId;
      case Row::SelectionList:
      case Row::ProductList:
      case Row::FaqList:
        return CriticalState::ListSelection;
      case Row::ScrollLoc:
        return CriticalState::ScrollOffsetNoId;
      case Row::ZoomBar:
      case Row::VolumeBar:
        return CriticalState::ProgressValue;
      case Row::ReportPage:
      case Row::FileNumber:
      case Row::TimerState:
      case Row::LocationPage:
        return CriticalState::TextViewText;
      case Row::CheckBoxRow:
        return CriticalState::CheckBoxNoId;
      case Row::Unfixable:
        return CriticalState::CustomVariable;
      case Row::DeclaresCfg:
        return CriticalState::None;
      case Row::DefaultSafe:
        return CriticalState::EditTextWithId;
    }
    return CriticalState::None;
}

const char *
problemText(Row row)
{
    switch (row) {
      case Row::TextBox: return "State loss (text box)";
      case Row::LoginPage: return "State loss (login page)";
      case Row::RegisterPage: return "State loss (register page)";
      case Row::SelectionList: return "State loss (selection list)";
      case Row::ProductList: return "State loss (product list)";
      case Row::FaqList: return "State loss (FAQ list)";
      case Row::ScrollLoc: return "State loss (scroll location)";
      case Row::ZoomBar: return "State loss (zoom bar)";
      case Row::VolumeBar: return "State loss (volume bar)";
      case Row::ReportPage: return "State loss (report page)";
      case Row::FileNumber: return "State loss (file number)";
      case Row::TimerState: return "State loss (timer state)";
      case Row::LocationPage: return "State loss (location page)";
      case Row::CheckBoxRow: return "State loss (check box)";
      case Row::Unfixable: return "State loss (app-private state)";
      case Row::DeclaresCfg: return "No";
      case Row::DefaultSafe: return "No";
    }
    return "No";
}

/**
 * Heavyweight consumer app: large heaps (Fig. 14b averages near
 * 162 MB stock), image-rich first screens, and heavier app logic.
 */
AppSpec
heavyApp(const TableRow &row)
{
    AppSpec spec;
    spec.name = row.name;
    spec.downloads = row.downloads;
    spec.issue_description = problemText(row.row);
    spec.critical = criticalFor(row.row);
    spec.expect_issue_stock =
        row.row != Row::DeclaresCfg && row.row != Row::DefaultSafe;
    spec.expect_fixed_by_rch =
        spec.expect_issue_stock && row.row != Row::Unfixable;
    spec.handles_config_changes = row.row == Row::DeclaresCfg;

    const std::uint64_t h = nameHash(spec.name);
    spec.n_text_views = 4 + static_cast<int>(h % 6);           // 4..9
    spec.n_edit_texts = 1 + static_cast<int>((h >> 4) % 3);    // 1..3
    spec.n_image_views = 8 + static_cast<int>((h >> 8) % 7);   // 8..14
    spec.n_checkboxes = 1 + static_cast<int>((h >> 12) % 3);
    spec.n_progress_bars =
        spec.critical == CriticalState::ProgressValue
            ? 1
            : static_cast<int>((h >> 16) % 2);
    spec.n_list_views = 1 + static_cast<int>((h >> 18) % 2);
    spec.list_items = 12 + static_cast<int>((h >> 20) % 24);
    spec.n_video_views = (h >> 26) % 5 == 0 ? 1 : 0;
    spec.image_edge_px = 320 + static_cast<int>((h >> 28) % 7) * 32; // ..512
    spec.base_heap_bytes = (122ull + (h >> 32) % 60) << 20;   // 122..181 MB
    spec.private_heap_bytes = (2ull + (h >> 38) % 4) << 20;   // 2..5 MB
    spec.app_create_cost =
        milliseconds(185 + static_cast<int>((h >> 42) % 111)); // 185..295 ms
    spec.app_config_cost =
        milliseconds(100 + static_cast<int>((h >> 48) % 61));  // 100..160 ms
    return spec;
}

} // namespace

std::vector<AppSpec>
top100()
{
    using R = Row;
    // Table 5, in row order. 63 issue apps (59 fixable + the 4
    // app-private-state cases #2/#57/#66/#70), 26 apps that declare
    // android:configChanges, 11 issue-free default-handling apps.
    static const TableRow kRows[] = {
        {"AmazonPrimeVideo", "100M+", R::TextBox},       // 1
        {"Filto", "5M+", R::Unfixable},                  // 2
        {"TikTok", "1B+", R::TextBox},                   // 3
        {"Instagram", "1B+", R::DeclaresCfg},            // 4
        {"WhatsApp", "5B+", R::DeclaresCfg},             // 5
        {"CashApp", "50M+", R::DeclaresCfg},             // 6
        {"DeepCleaner", "10M+", R::DeclaresCfg},         // 7
        {"ZOOM", "500M+", R::DeclaresCfg},               // 8
        {"Disney+", "100M+", R::ScrollLoc},              // 9
        {"Snapchat", "1B+", R::LoginPage},               // 10
        {"AmazonShopping", "500M+", R::DeclaresCfg},     // 11
        {"Telegram", "1B+", R::TextBox},                 // 12
        {"TorBrowser", "10M+", R::DeclaresCfg},          // 13
        {"MaxCleaner", "5M+", R::DeclaresCfg},           // 14
        {"Messenger", "5B+", R::DeclaresCfg},            // 15
        {"PeacockTV", "10M+", R::DeclaresCfg},           // 16
        {"WalmartShopping", "50M+", R::ScrollLoc},       // 17
        {"McDonald's", "10M+", R::DeclaresCfg},          // 18
        {"Facebook", "5B+", R::SelectionList},           // 19
        {"NewsBreak", "50M+", R::TextBox},               // 20
        {"CapCut", "100M+", R::DeclaresCfg},             // 21
        {"QR&BarcodeScanner", "100M+", R::ZoomBar},      // 22
        {"MicrosoftTeams", "100M+", R::TextBox},         // 23
        {"Indeed", "100M+", R::DeclaresCfg},             // 24
        {"Tubi", "100M+", R::DeclaresCfg},               // 25
        {"SHEIN", "100M+", R::SelectionList},            // 26
        {"TextNow", "50M+", R::LoginPage},               // 27
        {"Twitter", "1B+", R::TextBox},                  // 28
        {"Wonder", "1M+", R::DeclaresCfg},               // 29
        {"Netflix", "1B+", R::FaqList},                  // 30
        {"AllDocumentReader", "50M+", R::SelectionList}, // 31
        {"Roku", "50M+", R::DeclaresCfg},                // 32
        {"PlutoTV", "100M+", R::DeclaresCfg},            // 33
        {"DoorDash", "10M+", R::SelectionList},          // 34
        {"Uber", "500M+", R::DeclaresCfg},               // 35
        {"Discord", "100M+", R::RegisterPage},           // 36
        {"Audible", "100M+", R::TextBox},                // 37
        {"Ticketmaster", "10M+", R::SelectionList},      // 38
        {"Life360", "100M+", R::DeclaresCfg},            // 39
        {"Hulu", "50M+", R::TextBox},                    // 40
        {"Orbot", "10M+", R::SelectionList},             // 41
        {"MovetoiOS", "100M+", R::ScrollLoc},            // 42
        {"DailyDiary", "10M+", R::TextBox},              // 43
        {"Yoshion", "1M+", R::SelectionList},            // 44
        {"MSAuthenticator", "50M+", R::TextBox},         // 45
        {"PowerCleaner", "10M+", R::ReportPage},         // 46
        {"SamsungSmartSwitch", "100M+", R::DeclaresCfg}, // 47
        {"Alibaba.com", "100M+", R::SelectionList},      // 48
        {"Reddit", "100M+", R::DeclaresCfg},             // 49
        {"Paramount+", "10M+", R::DeclaresCfg},          // 50
        {"Lyft", "50M+", R::DeclaresCfg},                // 51
        {"Pinterest", "500M+", R::TextBox},              // 52
        {"OfferUp", "50M+", R::DeclaresCfg},             // 53
        {"BeReal", "5M+", R::TextBox},                   // 54
        {"UberEats", "100M+", R::TextBox},               // 55
        {"FetchRewards", "10M+", R::ScrollLoc},          // 56
        {"HaircutPrank", "1M+", R::Unfixable},           // 57
        {"MyBath&BodyWorks", "1M+", R::ScrollLoc},       // 58
        {"Wholee", "5M+", R::SelectionList},             // 59
        {"UltraCleaner", "1M+", R::FileNumber},          // 60
        {"eBay", "100M+", R::DeclaresCfg},               // 61
        {"FacebookLite", "1B+", R::TextBox},             // 62
        {"Adidas", "10M+", R::ProductList},              // 63
        {"Duolingo", "100M+", R::DeclaresCfg},           // 64
        {"BravoCleaner", "10M+", R::SelectionList},      // 65
        {"CastForChrome", "10M+", R::Unfixable},         // 66
        {"Waze", "100M+", R::DefaultSafe},               // 67
        {"UltraSurf", "10M+", R::SelectionList},         // 68
        {"PetDiary", "500K+", R::ScrollLoc},             // 69
        {"KingJamesBible", "50M+", R::Unfixable},        // 70
        {"EmailHome", "5M+", R::DefaultSafe},            // 71
        {"CapitalOne", "10M+", R::DefaultSafe},          // 72
        {"Plex", "10M+", R::DefaultSafe},                // 73
        {"DoordashDasher", "10M+", R::TextBox},          // 74
        {"Shop", "10M+", R::DefaultSafe},                // 75
        {"Expedia", "10M+", R::TextBox},                 // 76
        {"ESPN", "50M+", R::ScrollLoc},                  // 77
        {"Pandora", "100M+", R::DefaultSafe},            // 78
        {"Picsart", "500M+", R::ScrollLoc},              // 79
        {"FileRecovery", "10M+", R::ReportPage},         // 80
        {"Callapp", "100M+", R::SelectionList},          // 81
        {"Tinder", "100M+", R::TextBox},                 // 82
        {"Etsy", "10M+", R::TextBox},                    // 83
        {"SiriusXM", "10M+", R::DefaultSafe},            // 84
        {"AliExpress", "500M+", R::ScrollLoc},           // 85
        {"NFL", "100M+", R::DefaultSafe},                // 86
        {"Adobe", "500M+", R::LoginPage},                // 87
        {"KJVBible", "100K+", R::TimerState},            // 88
        {"HomeDepot", "10M+", R::SelectionList},         // 89
        {"TacoBell", "10M+", R::LocationPage},           // 90
        {"UberDriver", "100M+", R::LoginPage},           // 91
        {"Booking.com", "500M+", R::TextBox},            // 92
        {"CCFileManager", "5M+", R::SelectionList},      // 93
        {"SpeedBooster", "5M+", R::ReportPage},          // 94
        {"Firefox", "100M+", R::DefaultSafe},            // 95
        {"Twitch", "100M+", R::DefaultSafe},             // 96
        {"Target", "10M+", R::CheckBoxRow},              // 97
        {"SmartBooster", "10M+", R::ReportPage},         // 98
        {"Bumble", "10M+", R::SelectionList},            // 99
        {"Wish", "500M+", R::DefaultSafe},               // 100
    };

    std::vector<AppSpec> apps;
    apps.reserve(std::size(kRows));
    for (const TableRow &row : kRows)
        apps.push_back(heavyApp(row));

    // Sanity-check the table's aggregate claims at build time.
    int issues = 0, fixable = 0, declares = 0;
    for (const auto &spec : apps) {
        issues += spec.expect_issue_stock;
        fixable += spec.expect_fixed_by_rch;
        declares += spec.handles_config_changes;
    }
    RCH_ASSERT(issues == 63, "Table 5 issue count: ", issues);
    RCH_ASSERT(fixable == 59, "Table 5 fixable count: ", fixable);
    RCH_ASSERT(declares == 26, "Table 5 configChanges count: ", declares);
    return apps;
}

} // namespace rchdroid::apps
