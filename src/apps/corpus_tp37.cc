#include "apps/corpus.h"

#include "apps/corpus_internal.h"

namespace rchdroid::apps {

namespace {

using detail::nameHash;

/**
 * Fill the composition/cost parameters of a light (TP-37-class) app:
 * small utility apps with modest view trees and heaps around the
 * Fig. 8 stock average of 47.56 MB.
 */
AppSpec
lightApp(std::string name, std::string downloads, std::string issue,
         CriticalState critical)
{
    AppSpec spec;
    spec.name = std::move(name);
    spec.downloads = std::move(downloads);
    spec.issue_description = std::move(issue);
    spec.critical = critical;
    spec.expect_issue_stock = true;
    spec.expect_fixed_by_rch = critical != CriticalState::CustomVariable;

    const std::uint64_t h = nameHash(spec.name);
    spec.n_text_views = 2 + static_cast<int>(h % 4);         // 2..5
    spec.n_edit_texts = 1 + static_cast<int>((h >> 4) % 2);  // 1..2
    spec.n_image_views = 2 + static_cast<int>((h >> 8) % 4); // 2..5
    spec.n_checkboxes = 1 + static_cast<int>((h >> 12) % 3); // 1..3
    spec.n_progress_bars =
        critical == CriticalState::ProgressValue ? 1 : static_cast<int>((h >> 16) % 2);
    spec.n_list_views = 1;
    spec.list_items = 6 + static_cast<int>((h >> 20) % 10);
    spec.n_video_views = critical == CriticalState::VideoPosition ? 1 : 0;
    spec.image_edge_px = 96 + static_cast<int>((h >> 24) % 5) * 16; // 96..160
    spec.base_heap_bytes =
        (36ull + (h >> 28) % 13) << 20;                      // 36..48 MB
    spec.private_heap_bytes = (4ull + (h >> 32) % 4) << 20;  // 4..7 MB
    spec.app_create_cost = milliseconds(4 + static_cast<int>((h >> 36) % 10));
    spec.app_config_cost = milliseconds(16 + static_cast<int>((h >> 40) % 13));
    return spec;
}

} // namespace

std::vector<AppSpec>
tp37()
{
    using CS = CriticalState;
    std::vector<AppSpec> apps = {
        lightApp("AlarmClockPlus", "5M+",
                 "The alarm state is lost after restart", CS::CheckBoxNoId),
        lightApp("AlarmKlock", "500K+",
                 "The alarm time change is gone after restart",
                 CS::TextViewText),
        lightApp("AndroidToken", "5M+",
                 "The selected token is lost after restart",
                 CS::ListSelection),
        lightApp("BlueNET", "500K+",
                 "The server is unexpectedly turned off after restart",
                 CS::CheckBoxNoId),
        lightApp("BrightnessProfile", "5M+",
                 "Brightness level is lost after restart", CS::ProgressValue),
        lightApp("BTHFPowerSave", "500K+",
                 "State changes are lost after restart", CS::CheckBoxNoId),
        lightApp("CalenMob", "10K+",
                 "The working date resets to current date after restart",
                 CS::TextViewText),
        lightApp("DateSlider", "10K+",
                 "The chosen date is lost after restart", CS::ProgressValue),
        lightApp("DiskDiggerPro", "100K+",
                 "The percentage set by the user is lost after restart",
                 CS::CustomVariable),
        lightApp("Dock4Droid", "10K+",
                 "The last-added app is missing after restart",
                 CS::CustomVariable),
        lightApp("DrWebAntiVirus", "100M+",
                 "The check box setting is lost after restart",
                 CS::CheckBoxNoId),
        lightApp("Droidstack", "100K+",
                 "The title is not preserved after restart", CS::TextViewText),
        lightApp("FoxFi", "10M+",
                 "The entered email is lost after restart", CS::EditTextNoId),
        lightApp("MOBILedit", "1K+",
                 "The WiFi settings are not retained after restart",
                 CS::CheckBoxNoId),
        lightApp("OIFileManager", "5M+",
                 "The last-opened path is lost after restart",
                 CS::TextViewText),
        lightApp("OpenSudoku", "1M+",
                 "User-filled numbers are lost after restart",
                 CS::TextViewText),
        lightApp("OpenWordSearch", "1M+",
                 "The word filled by user is lost after restarts",
                 CS::TextViewText),
        lightApp("WorkRecorder", "5K+",
                 "The workout start time is lost after restart",
                 CS::TextViewText),
        lightApp("PowerToggles", "10K+",
                 "The notification widgets are lost after restart",
                 CS::CheckBoxNoId),
        lightApp("PhoneCopier", "10K+",
                 "The email address is lost after restart", CS::EditTextNoId),
        lightApp("ScrambledNet", "10K+",
                 "The game state is lost after a restart", CS::TextViewText),
        lightApp("ScrollableNews", "1K+",
                 "The color selection is lost after restart",
                 CS::ListSelection),
        lightApp("ServDroidWeb", "1K+",
                 "The new status is gone after restarts", CS::TextViewText),
        lightApp("SouveyMusicPro", "1K+",
                 "The settings of Metronome are lost after restart",
                 CS::ProgressValue),
        lightApp("SSHTunnel", "100K+",
                 "SSH connection profile is lost upon restart",
                 CS::ListSelection),
        lightApp("VPNConnection", "1K+",
                 "The IPSec ID is lost upon restart", CS::EditTextNoId),
        lightApp("ZircoBrowser", "1K+",
                 "Bookmark is lost after restart", CS::ListSelection),
    };
    return apps;
}

std::vector<AppSpec>
runtimeDroidEvalApps()
{
    using CS = CriticalState;
    // The Table 4 eval set. AlarmKlock overlaps TP-37; the others are
    // comparable small open-source apps.
    return {
        lightApp("Mdapp", "100K+", "Clinical reference state loss",
                 CS::ListSelection),
        lightApp("Remindly", "50K+", "Reminder draft loss",
                 CS::EditTextNoId),
        lightApp("AlarmKlock", "500K+", "Alarm time change loss",
                 CS::TextViewText),
        lightApp("Weather", "100K+", "Forecast scroll loss",
                 CS::ScrollOffsetNoId),
        lightApp("PDFCreator", "100K+", "Document setting loss",
                 CS::CheckBoxNoId),
        lightApp("Sieben", "100K+", "Workout timer loss", CS::TextViewText),
        lightApp("AndroPTPB", "10K+", "Paste draft loss", CS::EditTextNoId),
        lightApp("VlilleChecker", "10K+", "Station selection loss",
                 CS::ListSelection),
    };
}

} // namespace rchdroid::apps
