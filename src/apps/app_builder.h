/**
 * @file
 * app_builder: turns an AppSpec into the artefacts an install needs —
 * the app's ResourceTable (strings, drawables, and the main layout in
 * portrait and landscape variants) and an ActivityFactory producing
 * SimulatedApp instances.
 */
#ifndef RCHDROID_APPS_APP_BUILDER_H
#define RCHDROID_APPS_APP_BUILDER_H

#include <memory>

#include "app/activity_thread.h"
#include "apps/app_spec.h"
#include "resources/resource_table.h"

namespace rchdroid::apps {

/** Everything needed to install one app into a simulated system. */
struct BuiltApp
{
    std::shared_ptr<const ResourceTable> resources;
    ResourceId main_layout = 0;
};

/**
 * Declare the app's resources: a "main" layout with portrait and
 * landscape variants (forcing configuration-dependent resolution, like
 * the paper's layout-land / layout-port benchmark files), the strings it
 * references, and one drawable per ImageView sized per the spec.
 */
BuiltApp buildAppResources(const AppSpec &spec);

/** The layout tree the builder generates (exposed for tests). */
LayoutNode buildMainLayout(const AppSpec &spec);

/** Factory producing SimulatedApp instances for ActivityThread. */
ActivityFactory makeAppFactory(const AppSpec &spec, const BuiltApp &built);

} // namespace rchdroid::apps

#endif // RCHDROID_APPS_APP_BUILDER_H
