#include "apps/user_driver.h"

#include <algorithm>

#include "platform/strings.h"
#include "view/list_view.h"
#include "view/progress_bar.h"
#include "view/text_view.h"
#include "view/video_view.h"
#include "view/view_group.h"

namespace rchdroid::apps {

namespace {

/** First view of type T in the window, or null. */
template <typename T>
T *
firstOfType(SimulatedApp &app)
{
    T *found = nullptr;
    app.window().decorView().visit([&found](View &v) {
        if (!found)
            found = dynamic_cast<T *>(&v);
    });
    return found;
}

int
clampedItem(const AbsListView &list, int wanted)
{
    if (list.itemCount() == 0)
        return -1;
    return std::min(wanted, static_cast<int>(list.itemCount()) - 1);
}

} // namespace

std::string
StateCheckResult::toString() const
{
    if (preserved)
        return "preserved";
    return "lost: " + joinStrings(losses, ", ");
}

void
applyCanonicalState(SimulatedApp &app)
{
    app.window().decorView().visit([](View &v) {
        if (auto *edit = dynamic_cast<EditText *>(&v)) {
            edit->setText("");
            edit->setCursorPosition(0);
            edit->typeText(CanonicalValues::kTypedText);
        } else if (auto *box = dynamic_cast<CheckBox *>(&v)) {
            box->setChecked(true);
        } else if (dynamic_cast<Button *>(&v)) {
            // Buttons keep their label; clicking is a separate action.
        } else if (auto *text = dynamic_cast<TextView *>(&v)) {
            if (startsWith(text->id(), "text_"))
                text->setText(CanonicalValues::kLabelText);
        } else if (auto *bar = dynamic_cast<ProgressBar *>(&v)) {
            bar->setProgress(CanonicalValues::kProgress);
        } else if (auto *list = dynamic_cast<AbsListView *>(&v)) {
            const int item = clampedItem(*list, CanonicalValues::kCheckedItem);
            if (item >= 0) {
                list->setItemChecked(item);
                list->setSelectorPosition(item);
            }
        } else if (auto *scroll = dynamic_cast<ScrollView *>(&v)) {
            scroll->scrollTo(CanonicalValues::kScrollY);
        } else if (auto *video = dynamic_cast<VideoView *>(&v)) {
            video->seekTo(CanonicalValues::kVideoPositionMs);
        }
    });
    app.setCustomValue(CanonicalValues::kCustomValue);
}

namespace {

void
checkEditText(SimulatedApp &app, StateCheckResult &result)
{
    if (auto *edit = firstOfType<EditText>(app)) {
        if (edit->text() != CanonicalValues::kTypedText)
            result.losses.push_back("text box content ('" + edit->text() +
                                    "')");
    }
}

void
checkTextView(SimulatedApp &app, StateCheckResult &result)
{
    TextView *target = nullptr;
    app.window().decorView().visit([&target](View &v) {
        if (target)
            return;
        if (auto *text = dynamic_cast<TextView *>(&v)) {
            if (startsWith(text->id(), "text_"))
                target = text;
        }
    });
    if (target && target->text() != CanonicalValues::kLabelText)
        result.losses.push_back("label/timer text ('" + target->text() + "')");
}

void
checkList(SimulatedApp &app, StateCheckResult &result)
{
    if (auto *list = firstOfType<AbsListView>(app)) {
        const int expected = clampedItem(*list, CanonicalValues::kCheckedItem);
        if (list->checkedItem() != expected)
            result.losses.push_back("list selection");
    }
}

void
checkScroll(SimulatedApp &app, StateCheckResult &result)
{
    if (auto *scroll = firstOfType<ScrollView>(app)) {
        if (scroll->scrollY() != CanonicalValues::kScrollY)
            result.losses.push_back("scroll location");
    }
}

void
checkProgress(SimulatedApp &app, StateCheckResult &result)
{
    if (auto *bar = firstOfType<ProgressBar>(app)) {
        if (bar->progress() != CanonicalValues::kProgress)
            result.losses.push_back("progress value");
    }
}

void
checkCheckBox(SimulatedApp &app, StateCheckResult &result)
{
    if (auto *box = firstOfType<CheckBox>(app)) {
        if (!box->isChecked())
            result.losses.push_back("check box setting");
    }
}

void
checkVideo(SimulatedApp &app, StateCheckResult &result)
{
    if (auto *video = firstOfType<VideoView>(app)) {
        if (video->positionMs() != CanonicalValues::kVideoPositionMs)
            result.losses.push_back("video position");
    }
}

void
checkCustom(SimulatedApp &app, StateCheckResult &result)
{
    if (app.customValue() != CanonicalValues::kCustomValue)
        result.losses.push_back("app-private state");
}

} // namespace

StateCheckResult
verifyCriticalState(SimulatedApp &app)
{
    StateCheckResult result;
    switch (app.spec().critical) {
      case CriticalState::None:
        break;
      case CriticalState::EditTextWithId:
      case CriticalState::EditTextNoId:
        checkEditText(app, result);
        break;
      case CriticalState::TextViewText:
        checkTextView(app, result);
        break;
      case CriticalState::ListSelection:
        checkList(app, result);
        break;
      case CriticalState::ScrollOffsetNoId:
        checkScroll(app, result);
        break;
      case CriticalState::ProgressValue:
        checkProgress(app, result);
        break;
      case CriticalState::CheckBoxNoId:
        checkCheckBox(app, result);
        break;
      case CriticalState::VideoPosition:
        checkVideo(app, result);
        break;
      case CriticalState::CustomVariable:
        checkCustom(app, result);
        break;
    }
    result.preserved = result.losses.empty();
    return result;
}

StateCheckResult
verifyAllState(SimulatedApp &app)
{
    StateCheckResult result;
    checkEditText(app, result);
    checkTextView(app, result);
    checkList(app, result);
    checkScroll(app, result);
    checkProgress(app, result);
    checkCheckBox(app, result);
    checkVideo(app, result);
    checkCustom(app, result);
    result.preserved = result.losses.empty();
    return result;
}

bool
imagesUpdatedByAsync(SimulatedApp &app)
{
    bool all_updated = true;
    bool any_image = false;
    app.window().decorView().visit([&](View &v) {
        if (auto *image = dynamic_cast<ImageView *>(&v)) {
            any_image = true;
            if (!startsWith(image->assetName(), "async_loaded_"))
                all_updated = false;
        }
    });
    return any_image && all_updated;
}

} // namespace rchdroid::apps
