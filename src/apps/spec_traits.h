/**
 * @file
 * Spec introspection: what each CriticalState *is*, mechanically.
 *
 * The corpus tables describe apps by symptom ("State loss (zoom bar)");
 * the simulator reproduces the symptom from widget mechanism (which
 * view holds the state, whether it has an id, what the stock default
 * save path covers, what RCHDroid's essence mapping migrates). This
 * header exposes that mechanism as data so observers — most notably the
 * static analyzer in src/sa/ — can reason about an AppSpec without
 * executing it and without including any framework header.
 *
 * The table is the single source of truth shared with the executable
 * semantics: view/view.h documents the default-vs-full save split these
 * bits summarise, and tests/apps/ pins the two against each other.
 */
#ifndef RCHDROID_APPS_SPEC_TRAITS_H
#define RCHDROID_APPS_SPEC_TRAITS_H

#include "apps/app_spec.h"

namespace rchdroid::apps {

/**
 * Mechanical description of where one CriticalState value lives and
 * which save/migrate paths cover it.
 */
struct CriticalStateTraits
{
    /** The state lives in a view (vs a plain activity field). */
    bool view_backed = false;
    /** The hosting widget carries an android:id. */
    bool has_view_id = false;
    /**
     * AOSP's default per-widget onSaveInstanceState covers it (needs
     * both an id and a widget that saves the attribute — EditText text
     * yes; TextView text, ProgressBar progress, scroll offsets no).
     */
    bool saved_by_default = false;
    /**
     * RCHDroid's full snapshot / essence mapping migrates it (the
     * 79-LoC View patch: every widget, id-less views keyed by path).
     */
    bool rch_migratable = false;
    /** Display name of the modelled location, e.g. "EditText(no id)". */
    const char *location = "<none>";
};

/** The traits row for one CriticalState. */
const CriticalStateTraits &criticalStateTraits(CriticalState state);

/**
 * True when an app-implemented onSaveInstanceState covers the state:
 * only the app-private CustomVariable class — the corpus apps' on-save
 * persists their custom field, never their view contents.
 */
bool coveredByAppOnSave(CriticalState state);

} // namespace rchdroid::apps

#endif // RCHDROID_APPS_SPEC_TRAITS_H
