#include "apps/corpus.h"

namespace rchdroid::apps {

AppSpec
makeBenchmarkApp(int n_image_views, SimDuration async_duration)
{
    // §5.1: "each benchmark app's view tree contains a set of ImageViews
    // and a Button view. The number of ImageViews is varied. When
    // touching the button, an AsyncTask will be issued to update the
    // ImageViews in five seconds."
    AppSpec spec;
    spec.name = "Benchmark" + std::to_string(n_image_views);
    spec.downloads = "n/a";
    spec.issue_description = "benchmark app (" +
                             std::to_string(n_image_views) + " ImageViews)";
    spec.expect_issue_stock = true; // async return after restart crashes
    spec.expect_fixed_by_rch = true;
    spec.critical = CriticalState::None;
    spec.async.trigger = AsyncTrigger::OnButtonClick;
    spec.async.duration = async_duration;
    spec.async.ui_cost = 0;

    spec.n_text_views = 0;
    spec.n_edit_texts = 0;
    spec.n_image_views = n_image_views;
    spec.n_checkboxes = 0;
    spec.n_progress_bars = 0;
    spec.n_list_views = 0;
    spec.n_video_views = 0;
    // Small assets keep the restart cost dominated by the fixed
    // framework path, matching the near-flat Android-10 line of
    // Fig. 10(a).
    spec.image_edge_px = 64;
    spec.base_heap_bytes = 24u << 20;
    spec.private_heap_bytes = 1u << 20;
    spec.app_create_cost = 0;
    spec.app_config_cost = 0;
    return spec;
}

} // namespace rchdroid::apps
