#include "apps/simulated_app.h"

#include <utility>

#include "app/activity_thread.h"
#include "platform/logging.h"
#include "view/text_view.h"

namespace rchdroid::apps {

SimulatedApp::SimulatedApp(AppSpec spec, ResourceId main_layout)
    : Activity(spec.component()),
      spec_(std::move(spec)),
      main_layout_(main_layout)
{
}

void
SimulatedApp::onCreate(const Bundle *saved_state)
{
    (void)saved_state;
    chargeCpu(spec_.app_create_cost);
    setContentView(main_layout_);
    setPrivateHeapBytes(spec_.private_heap_bytes);

    if (auto *btn = findViewByIdAs<Button>("btn")) {
        btn->setOnClickListener([this] {
            if (spec_.async.trigger == AsyncTrigger::OnButtonClick)
                startAsyncUpdate();
        });
    }
    if (spec_.async.trigger == AsyncTrigger::OnCreate)
        startAsyncUpdate();
}

void
SimulatedApp::onStop()
{
    if (spec_.async.cancels_on_stop) {
        for (auto &weak_task : tasks_) {
            if (auto task = weak_task.lock())
                task->cancel();
        }
    }
}

void
SimulatedApp::onSaveInstanceState(Bundle &out_state)
{
    // Only the disciplined apps persist their custom state; the paper's
    // unfixable cases are exactly the apps that do not.
    if (spec_.implements_on_save)
        out_state.putInt("custom_value", custom_value_);
}

void
SimulatedApp::onRestoreInstanceState(const Bundle &saved)
{
    if (saved.contains("custom_value"))
        custom_value_ = static_cast<int>(saved.getInt("custom_value"));
}

void
SimulatedApp::onConfigurationChanged(const Configuration &config)
{
    (void)config;
    chargeCpu(spec_.app_config_cost);
    if (spec_.runtimedroid_patched)
        hotReload();
}

void
SimulatedApp::hotReload()
{
    // The RuntimeDroid patch, in app code: freeze everything, rebuild
    // the content under the new configuration (resources re-resolve
    // through the inflater), thaw everything back. The framework never
    // sees a restart.
    chargeCpu(spec_.hot_reload_cost);
    Bundle frozen = saveInstanceStateNow(/*full=*/true);
    chargeCpu(spec_.app_create_cost); // the app's own UI-build logic
    setContentView(main_layout_);
    if (auto *btn = findViewByIdAs<Button>("btn")) {
        btn->setOnClickListener([this] {
            if (spec_.async.trigger == AsyncTrigger::OnButtonClick)
                startAsyncUpdate();
        });
    }
    window().decorView().restoreHierarchyState(frozen.getBundle("views"),
                                               "r");
}

void
SimulatedApp::clickUpdateButton()
{
    if (auto *btn = findViewByIdAs<Button>("btn"))
        btn->performClick();
}

void
SimulatedApp::startAsyncUpdate()
{
    ActivityThread *thread = context().thread;
    RCH_ASSERT(thread, "async update before attach");
    auto self = thread->activityForToken(token());
    if (!self) {
        // Not registered (unit-test construction); async is meaningless.
        return;
    }

    // The Fig. 1 anti-pattern, verbatim: capture raw view references at
    // task start. After a stock restart these point into the destroyed
    // tree, and onPostExecute's setDrawable throws — crashing the app.
    // A RuntimeDroid patch rewrites these captures into id-based
    // lookups resolved at completion time, so patched apps capture ids.
    std::vector<ImageView *> targets;
    std::vector<std::string> target_ids;
    window().decorView().visit([&](View &v) {
        if (auto *image = dynamic_cast<ImageView *>(&v)) {
            if (spec_.runtimedroid_patched)
                target_ids.push_back(image->id());
            else
                targets.push_back(image);
        }
    });

    auto task = std::make_shared<AsyncTask>(
        *thread, self, spec_.name + "#task" + std::to_string(tasks_started_));
    tasks_.push_back(task);
    ++tasks_started_;

    const int edge = spec_.image_edge_px;
    const bool shows_dialog = spec_.async.shows_dialog;
    // `self` keeps this instance reachable, as the Java reference would;
    // `this` is therefore safe to use inside the callback.
    task->execute(
        spec_.async.duration,
        [this, self, targets, target_ids, edge, shows_dialog] {
            int seq = 0;
            for (ImageView *image : targets) {
                image->setDrawable(DrawableValue{
                    "async_loaded_" + std::to_string(seq++), edge, edge});
            }
            for (const std::string &id : target_ids) {
                // Patched path: re-resolve through the live tree.
                if (auto *image = findViewByIdAs<ImageView>(id)) {
                    image->setDrawable(DrawableValue{
                        "async_loaded_" + std::to_string(seq++), edge,
                        edge});
                }
            }
            if (shows_dialog) {
                // The §2.3 WindowLeaked class: show a result dialog on
                // the activity the task captured. After a stock restart
                // that activity is destroyed and this throws.
                auto dialog =
                    std::make_unique<Dialog>(*this, "download complete");
                dialog->show();
                dialogs_.push_back(std::move(dialog));
            }
        },
        spec_.async.ui_cost);
}

int
SimulatedApp::dialogsShown() const
{
    int n = 0;
    for (const auto &dialog : dialogs_)
        n += dialog->isShowing();
    return n;
}

} // namespace rchdroid::apps
