/**
 * @file
 * Shared helpers for the corpus translation units (internal).
 */
#ifndef RCHDROID_APPS_CORPUS_INTERNAL_H
#define RCHDROID_APPS_CORPUS_INTERNAL_H

#include <cstdint>
#include <string>

namespace rchdroid::apps::detail {

/** Deterministic per-name parameter synthesis (FNV-1a). */
inline std::uint64_t
nameHash(const std::string &name)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace rchdroid::apps::detail

#endif // RCHDROID_APPS_CORPUS_INTERNAL_H
