/**
 * @file
 * user_driver: the scripted user of the effectiveness experiments.
 *
 * Mirrors the paper's §6 methodology: "for each app, when it is running
 * in a state, we change screen sizes and observe if the state can be
 * correctly restored". applyCanonicalState puts the app "in a state"
 * (types text, checks boxes, selects list items, scrolls, drags bars);
 * verifyCriticalState observes whether the state the app's table row
 * cares about survived.
 */
#ifndef RCHDROID_APPS_USER_DRIVER_H
#define RCHDROID_APPS_USER_DRIVER_H

#include <string>
#include <vector>

#include "apps/simulated_app.h"

namespace rchdroid::apps {

/** Canonical values the driver writes (exposed for tests). */
struct CanonicalValues
{
    static constexpr const char *kTypedText = "alpha42";
    static constexpr const char *kLabelText = "stateful-7";
    static constexpr int kProgress = 42;
    static constexpr int kCheckedItem = 3;
    static constexpr int kScrollY = 420;
    static constexpr std::int64_t kVideoPositionMs = 90'000;
    static constexpr int kCustomValue = 1234;
};

/** Outcome of a state observation. */
struct StateCheckResult
{
    bool preserved = true;
    /** Human-readable description of each lost piece of state. */
    std::vector<std::string> losses;

    /** "preserved" or "lost: <...>, <...>". */
    std::string toString() const;
};

/** Put the app into the canonical user state (all widgets). */
void applyCanonicalState(SimulatedApp &app);

/**
 * Check only the state the spec's CriticalState names — the observation
 * that decides the app's Table 3 / Table 5 row.
 */
StateCheckResult verifyCriticalState(SimulatedApp &app);

/** Check every widget the driver touched (stricter; used by tests). */
StateCheckResult verifyAllState(SimulatedApp &app);

/** True when every ImageView shows the async-loaded drawable. */
bool imagesUpdatedByAsync(SimulatedApp &app);

} // namespace rchdroid::apps

#endif // RCHDROID_APPS_USER_DRIVER_H
