file(REMOVE_RECURSE
  "CMakeFiles/rchdroid_shell.dir/rchdroid_shell.cc.o"
  "CMakeFiles/rchdroid_shell.dir/rchdroid_shell.cc.o.d"
  "rchdroid_shell"
  "rchdroid_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rchdroid_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
