# Empty compiler generated dependencies file for rchdroid_shell.
# This may be replaced when dependencies are built.
