file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coinflip.dir/bench_ablation_coinflip.cc.o"
  "CMakeFiles/bench_ablation_coinflip.dir/bench_ablation_coinflip.cc.o.d"
  "bench_ablation_coinflip"
  "bench_ablation_coinflip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coinflip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
