# Empty compiler generated dependencies file for bench_ablation_coinflip.
# This may be replaced when dependencies are built.
