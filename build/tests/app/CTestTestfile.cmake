# CMake generated Testfile for 
# Source directory: /root/repo/tests/app
# Build directory: /root/repo/build/tests/app
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lifecycle_test "/root/repo/build/tests/app/lifecycle_test")
set_tests_properties(lifecycle_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/app/CMakeLists.txt;1;rch_add_test;/root/repo/tests/app/CMakeLists.txt;0;")
add_test(window_test "/root/repo/build/tests/app/window_test")
set_tests_properties(window_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/app/CMakeLists.txt;2;rch_add_test;/root/repo/tests/app/CMakeLists.txt;0;")
add_test(activity_test "/root/repo/build/tests/app/activity_test")
set_tests_properties(activity_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/app/CMakeLists.txt;3;rch_add_test;/root/repo/tests/app/CMakeLists.txt;0;")
add_test(async_task_test "/root/repo/build/tests/app/async_task_test")
set_tests_properties(async_task_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/app/CMakeLists.txt;4;rch_add_test;/root/repo/tests/app/CMakeLists.txt;0;")
add_test(activity_thread_test "/root/repo/build/tests/app/activity_thread_test")
set_tests_properties(activity_thread_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/app/CMakeLists.txt;5;rch_add_test;/root/repo/tests/app/CMakeLists.txt;0;")
add_test(fragment_test "/root/repo/build/tests/app/fragment_test")
set_tests_properties(fragment_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/app/CMakeLists.txt;6;rch_add_test;/root/repo/tests/app/CMakeLists.txt;0;")
add_test(dialog_test "/root/repo/build/tests/app/dialog_test")
set_tests_properties(dialog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/app/CMakeLists.txt;7;rch_add_test;/root/repo/tests/app/CMakeLists.txt;0;")
