# Empty dependencies file for dialog_test.
# This may be replaced when dependencies are built.
