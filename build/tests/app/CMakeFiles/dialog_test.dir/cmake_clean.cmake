file(REMOVE_RECURSE
  "CMakeFiles/dialog_test.dir/dialog_test.cc.o"
  "CMakeFiles/dialog_test.dir/dialog_test.cc.o.d"
  "dialog_test"
  "dialog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dialog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
