file(REMOVE_RECURSE
  "CMakeFiles/async_task_test.dir/async_task_test.cc.o"
  "CMakeFiles/async_task_test.dir/async_task_test.cc.o.d"
  "async_task_test"
  "async_task_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
