# CMake generated Testfile for 
# Source directory: /root/repo/tests/platform
# Build directory: /root/repo/build/tests/platform
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(rng_test "/root/repo/build/tests/platform/rng_test")
set_tests_properties(rng_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/platform/CMakeLists.txt;1;rch_add_test;/root/repo/tests/platform/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/platform/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/platform/CMakeLists.txt;2;rch_add_test;/root/repo/tests/platform/CMakeLists.txt;0;")
add_test(strings_test "/root/repo/build/tests/platform/strings_test")
set_tests_properties(strings_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/platform/CMakeLists.txt;3;rch_add_test;/root/repo/tests/platform/CMakeLists.txt;0;")
add_test(status_test "/root/repo/build/tests/platform/status_test")
set_tests_properties(status_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/platform/CMakeLists.txt;4;rch_add_test;/root/repo/tests/platform/CMakeLists.txt;0;")
add_test(time_test "/root/repo/build/tests/platform/time_test")
set_tests_properties(time_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/platform/CMakeLists.txt;5;rch_add_test;/root/repo/tests/platform/CMakeLists.txt;0;")
add_test(telemetry_test "/root/repo/build/tests/platform/telemetry_test")
set_tests_properties(telemetry_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/platform/CMakeLists.txt;6;rch_add_test;/root/repo/tests/platform/CMakeLists.txt;0;")
