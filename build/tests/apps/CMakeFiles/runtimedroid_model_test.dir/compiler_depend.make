# Empty compiler generated dependencies file for runtimedroid_model_test.
# This may be replaced when dependencies are built.
