file(REMOVE_RECURSE
  "CMakeFiles/runtimedroid_model_test.dir/runtimedroid_model_test.cc.o"
  "CMakeFiles/runtimedroid_model_test.dir/runtimedroid_model_test.cc.o.d"
  "runtimedroid_model_test"
  "runtimedroid_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtimedroid_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
