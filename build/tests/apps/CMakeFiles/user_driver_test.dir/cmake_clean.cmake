file(REMOVE_RECURSE
  "CMakeFiles/user_driver_test.dir/user_driver_test.cc.o"
  "CMakeFiles/user_driver_test.dir/user_driver_test.cc.o.d"
  "user_driver_test"
  "user_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
