# Empty compiler generated dependencies file for simulated_app_test.
# This may be replaced when dependencies are built.
