file(REMOVE_RECURSE
  "CMakeFiles/simulated_app_test.dir/simulated_app_test.cc.o"
  "CMakeFiles/simulated_app_test.dir/simulated_app_test.cc.o.d"
  "simulated_app_test"
  "simulated_app_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulated_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
