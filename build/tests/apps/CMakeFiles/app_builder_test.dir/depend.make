# Empty dependencies file for app_builder_test.
# This may be replaced when dependencies are built.
