file(REMOVE_RECURSE
  "CMakeFiles/app_builder_test.dir/app_builder_test.cc.o"
  "CMakeFiles/app_builder_test.dir/app_builder_test.cc.o.d"
  "app_builder_test"
  "app_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
