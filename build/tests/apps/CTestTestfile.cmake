# CMake generated Testfile for 
# Source directory: /root/repo/tests/apps
# Build directory: /root/repo/build/tests/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(corpus_test "/root/repo/build/tests/apps/corpus_test")
set_tests_properties(corpus_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/apps/CMakeLists.txt;1;rch_add_test;/root/repo/tests/apps/CMakeLists.txt;0;")
add_test(app_builder_test "/root/repo/build/tests/apps/app_builder_test")
set_tests_properties(app_builder_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/apps/CMakeLists.txt;2;rch_add_test;/root/repo/tests/apps/CMakeLists.txt;0;")
add_test(simulated_app_test "/root/repo/build/tests/apps/simulated_app_test")
set_tests_properties(simulated_app_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/apps/CMakeLists.txt;3;rch_add_test;/root/repo/tests/apps/CMakeLists.txt;0;")
add_test(user_driver_test "/root/repo/build/tests/apps/user_driver_test")
set_tests_properties(user_driver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/apps/CMakeLists.txt;4;rch_add_test;/root/repo/tests/apps/CMakeLists.txt;0;")
add_test(runtimedroid_model_test "/root/repo/build/tests/apps/runtimedroid_model_test")
set_tests_properties(runtimedroid_model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/apps/CMakeLists.txt;5;rch_add_test;/root/repo/tests/apps/CMakeLists.txt;0;")
