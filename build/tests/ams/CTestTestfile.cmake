# CMake generated Testfile for 
# Source directory: /root/repo/tests/ams
# Build directory: /root/repo/build/tests/ams
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(activity_stack_test "/root/repo/build/tests/ams/activity_stack_test")
set_tests_properties(activity_stack_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/ams/CMakeLists.txt;1;rch_add_test;/root/repo/tests/ams/CMakeLists.txt;0;")
add_test(atms_test "/root/repo/build/tests/ams/atms_test")
set_tests_properties(atms_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/ams/CMakeLists.txt;2;rch_add_test;/root/repo/tests/ams/CMakeLists.txt;0;")
add_test(activity_starter_test "/root/repo/build/tests/ams/activity_starter_test")
set_tests_properties(activity_starter_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/ams/CMakeLists.txt;3;rch_add_test;/root/repo/tests/ams/CMakeLists.txt;0;")
