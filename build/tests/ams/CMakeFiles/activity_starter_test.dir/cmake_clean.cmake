file(REMOVE_RECURSE
  "CMakeFiles/activity_starter_test.dir/activity_starter_test.cc.o"
  "CMakeFiles/activity_starter_test.dir/activity_starter_test.cc.o.d"
  "activity_starter_test"
  "activity_starter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_starter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
