# Empty dependencies file for activity_starter_test.
# This may be replaced when dependencies are built.
