file(REMOVE_RECURSE
  "CMakeFiles/atms_test.dir/atms_test.cc.o"
  "CMakeFiles/atms_test.dir/atms_test.cc.o.d"
  "atms_test"
  "atms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
