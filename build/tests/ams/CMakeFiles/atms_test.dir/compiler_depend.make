# Empty compiler generated dependencies file for atms_test.
# This may be replaced when dependencies are built.
