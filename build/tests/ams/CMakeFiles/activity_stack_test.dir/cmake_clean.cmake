file(REMOVE_RECURSE
  "CMakeFiles/activity_stack_test.dir/activity_stack_test.cc.o"
  "CMakeFiles/activity_stack_test.dir/activity_stack_test.cc.o.d"
  "activity_stack_test"
  "activity_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
