# Empty compiler generated dependencies file for activity_stack_test.
# This may be replaced when dependencies are built.
