# Empty dependencies file for lazy_migrator_test.
# This may be replaced when dependencies are built.
