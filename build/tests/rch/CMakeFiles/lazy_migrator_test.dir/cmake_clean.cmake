file(REMOVE_RECURSE
  "CMakeFiles/lazy_migrator_test.dir/lazy_migrator_test.cc.o"
  "CMakeFiles/lazy_migrator_test.dir/lazy_migrator_test.cc.o.d"
  "lazy_migrator_test"
  "lazy_migrator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_migrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
