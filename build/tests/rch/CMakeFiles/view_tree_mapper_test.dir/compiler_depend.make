# Empty compiler generated dependencies file for view_tree_mapper_test.
# This may be replaced when dependencies are built.
