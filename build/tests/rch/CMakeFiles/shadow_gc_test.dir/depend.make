# Empty dependencies file for shadow_gc_test.
# This may be replaced when dependencies are built.
