file(REMOVE_RECURSE
  "CMakeFiles/shadow_gc_test.dir/shadow_gc_test.cc.o"
  "CMakeFiles/shadow_gc_test.dir/shadow_gc_test.cc.o.d"
  "shadow_gc_test"
  "shadow_gc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
