file(REMOVE_RECURSE
  "CMakeFiles/rch_client_handler_test.dir/rch_client_handler_test.cc.o"
  "CMakeFiles/rch_client_handler_test.dir/rch_client_handler_test.cc.o.d"
  "rch_client_handler_test"
  "rch_client_handler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_client_handler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
