# Empty dependencies file for rch_client_handler_test.
# This may be replaced when dependencies are built.
