# CMake generated Testfile for 
# Source directory: /root/repo/tests/rch
# Build directory: /root/repo/build/tests/rch
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(view_tree_mapper_test "/root/repo/build/tests/rch/view_tree_mapper_test")
set_tests_properties(view_tree_mapper_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rch/CMakeLists.txt;1;rch_add_test;/root/repo/tests/rch/CMakeLists.txt;0;")
add_test(lazy_migrator_test "/root/repo/build/tests/rch/lazy_migrator_test")
set_tests_properties(lazy_migrator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rch/CMakeLists.txt;2;rch_add_test;/root/repo/tests/rch/CMakeLists.txt;0;")
add_test(shadow_gc_test "/root/repo/build/tests/rch/shadow_gc_test")
set_tests_properties(shadow_gc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rch/CMakeLists.txt;3;rch_add_test;/root/repo/tests/rch/CMakeLists.txt;0;")
add_test(rch_client_handler_test "/root/repo/build/tests/rch/rch_client_handler_test")
set_tests_properties(rch_client_handler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rch/CMakeLists.txt;4;rch_add_test;/root/repo/tests/rch/CMakeLists.txt;0;")
