file(REMOVE_RECURSE
  "CMakeFiles/resource_table_test.dir/resource_table_test.cc.o"
  "CMakeFiles/resource_table_test.dir/resource_table_test.cc.o.d"
  "resource_table_test"
  "resource_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
