file(REMOVE_RECURSE
  "CMakeFiles/resource_manager_test.dir/resource_manager_test.cc.o"
  "CMakeFiles/resource_manager_test.dir/resource_manager_test.cc.o.d"
  "resource_manager_test"
  "resource_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
