# CMake generated Testfile for 
# Source directory: /root/repo/tests/resources
# Build directory: /root/repo/build/tests/resources
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(configuration_test "/root/repo/build/tests/resources/configuration_test")
set_tests_properties(configuration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/resources/CMakeLists.txt;1;rch_add_test;/root/repo/tests/resources/CMakeLists.txt;0;")
add_test(resource_table_test "/root/repo/build/tests/resources/resource_table_test")
set_tests_properties(resource_table_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/resources/CMakeLists.txt;2;rch_add_test;/root/repo/tests/resources/CMakeLists.txt;0;")
add_test(resource_manager_test "/root/repo/build/tests/resources/resource_manager_test")
set_tests_properties(resource_manager_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/resources/CMakeLists.txt;3;rch_add_test;/root/repo/tests/resources/CMakeLists.txt;0;")
