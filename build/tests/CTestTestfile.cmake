# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("platform")
subdirs("os")
subdirs("resources")
subdirs("view")
subdirs("app")
subdirs("ams")
subdirs("rch")
subdirs("apps")
subdirs("sim")
subdirs("integration")
