# CMake generated Testfile for 
# Source directory: /root/repo/tests/os
# Build directory: /root/repo/build/tests/os
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(scheduler_test "/root/repo/build/tests/os/scheduler_test")
set_tests_properties(scheduler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/os/CMakeLists.txt;1;rch_add_test;/root/repo/tests/os/CMakeLists.txt;0;")
add_test(message_queue_test "/root/repo/build/tests/os/message_queue_test")
set_tests_properties(message_queue_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/os/CMakeLists.txt;2;rch_add_test;/root/repo/tests/os/CMakeLists.txt;0;")
add_test(looper_test "/root/repo/build/tests/os/looper_test")
set_tests_properties(looper_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/os/CMakeLists.txt;3;rch_add_test;/root/repo/tests/os/CMakeLists.txt;0;")
add_test(handler_test "/root/repo/build/tests/os/handler_test")
set_tests_properties(handler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/os/CMakeLists.txt;4;rch_add_test;/root/repo/tests/os/CMakeLists.txt;0;")
add_test(ipc_test "/root/repo/build/tests/os/ipc_test")
set_tests_properties(ipc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/os/CMakeLists.txt;5;rch_add_test;/root/repo/tests/os/CMakeLists.txt;0;")
add_test(bundle_test "/root/repo/build/tests/os/bundle_test")
set_tests_properties(bundle_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/os/CMakeLists.txt;6;rch_add_test;/root/repo/tests/os/CMakeLists.txt;0;")
add_test(parcel_test "/root/repo/build/tests/os/parcel_test")
set_tests_properties(parcel_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/os/CMakeLists.txt;7;rch_add_test;/root/repo/tests/os/CMakeLists.txt;0;")
