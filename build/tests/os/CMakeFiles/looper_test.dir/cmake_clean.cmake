file(REMOVE_RECURSE
  "CMakeFiles/looper_test.dir/looper_test.cc.o"
  "CMakeFiles/looper_test.dir/looper_test.cc.o.d"
  "looper_test"
  "looper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/looper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
