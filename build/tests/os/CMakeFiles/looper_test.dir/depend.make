# Empty dependencies file for looper_test.
# This may be replaced when dependencies are built.
