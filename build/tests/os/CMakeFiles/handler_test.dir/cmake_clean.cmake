file(REMOVE_RECURSE
  "CMakeFiles/handler_test.dir/handler_test.cc.o"
  "CMakeFiles/handler_test.dir/handler_test.cc.o.d"
  "handler_test"
  "handler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
