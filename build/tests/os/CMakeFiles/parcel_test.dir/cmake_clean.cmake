file(REMOVE_RECURSE
  "CMakeFiles/parcel_test.dir/parcel_test.cc.o"
  "CMakeFiles/parcel_test.dir/parcel_test.cc.o.d"
  "parcel_test"
  "parcel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
