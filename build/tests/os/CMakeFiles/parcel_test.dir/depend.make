# Empty dependencies file for parcel_test.
# This may be replaced when dependencies are built.
