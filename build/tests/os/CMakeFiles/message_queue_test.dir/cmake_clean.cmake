file(REMOVE_RECURSE
  "CMakeFiles/message_queue_test.dir/message_queue_test.cc.o"
  "CMakeFiles/message_queue_test.dir/message_queue_test.cc.o.d"
  "message_queue_test"
  "message_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
