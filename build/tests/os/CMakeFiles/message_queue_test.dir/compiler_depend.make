# Empty compiler generated dependencies file for message_queue_test.
# This may be replaced when dependencies are built.
