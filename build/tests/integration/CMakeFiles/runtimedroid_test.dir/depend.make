# Empty dependencies file for runtimedroid_test.
# This may be replaced when dependencies are built.
