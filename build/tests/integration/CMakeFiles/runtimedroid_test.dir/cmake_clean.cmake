file(REMOVE_RECURSE
  "CMakeFiles/runtimedroid_test.dir/runtimedroid_test.cc.o"
  "CMakeFiles/runtimedroid_test.dir/runtimedroid_test.cc.o.d"
  "runtimedroid_test"
  "runtimedroid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtimedroid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
