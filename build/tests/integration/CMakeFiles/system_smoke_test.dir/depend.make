# Empty dependencies file for system_smoke_test.
# This may be replaced when dependencies are built.
