
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/system_smoke_test.cc" "tests/integration/CMakeFiles/system_smoke_test.dir/system_smoke_test.cc.o" "gcc" "tests/integration/CMakeFiles/system_smoke_test.dir/system_smoke_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rch/CMakeFiles/rch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ams/CMakeFiles/rch_ams.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/rch_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/rch_app.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/rch_view.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rch_os.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rch_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rch_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rch_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
