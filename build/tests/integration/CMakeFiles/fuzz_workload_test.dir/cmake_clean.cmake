file(REMOVE_RECURSE
  "CMakeFiles/fuzz_workload_test.dir/fuzz_workload_test.cc.o"
  "CMakeFiles/fuzz_workload_test.dir/fuzz_workload_test.cc.o.d"
  "fuzz_workload_test"
  "fuzz_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
