file(REMOVE_RECURSE
  "CMakeFiles/performance_property_test.dir/performance_property_test.cc.o"
  "CMakeFiles/performance_property_test.dir/performance_property_test.cc.o.d"
  "performance_property_test"
  "performance_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performance_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
