# Empty compiler generated dependencies file for performance_property_test.
# This may be replaced when dependencies are built.
