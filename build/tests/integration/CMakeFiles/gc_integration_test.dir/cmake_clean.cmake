file(REMOVE_RECURSE
  "CMakeFiles/gc_integration_test.dir/gc_integration_test.cc.o"
  "CMakeFiles/gc_integration_test.dir/gc_integration_test.cc.o.d"
  "gc_integration_test"
  "gc_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
