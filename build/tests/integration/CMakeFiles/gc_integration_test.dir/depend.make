# Empty dependencies file for gc_integration_test.
# This may be replaced when dependencies are built.
