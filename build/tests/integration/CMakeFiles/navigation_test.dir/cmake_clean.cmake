file(REMOVE_RECURSE
  "CMakeFiles/navigation_test.dir/navigation_test.cc.o"
  "CMakeFiles/navigation_test.dir/navigation_test.cc.o.d"
  "navigation_test"
  "navigation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navigation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
