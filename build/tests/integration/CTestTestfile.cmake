# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(system_smoke_test "/root/repo/build/tests/integration/system_smoke_test")
set_tests_properties(system_smoke_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;1;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(effectiveness_test "/root/repo/build/tests/integration/effectiveness_test")
set_tests_properties(effectiveness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;2;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(performance_property_test "/root/repo/build/tests/integration/performance_property_test")
set_tests_properties(performance_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;3;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(gc_integration_test "/root/repo/build/tests/integration/gc_integration_test")
set_tests_properties(gc_integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;4;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(crash_matrix_test "/root/repo/build/tests/integration/crash_matrix_test")
set_tests_properties(crash_matrix_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;5;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(multi_app_test "/root/repo/build/tests/integration/multi_app_test")
set_tests_properties(multi_app_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;6;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(fuzz_workload_test "/root/repo/build/tests/integration/fuzz_workload_test")
set_tests_properties(fuzz_workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;7;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(navigation_test "/root/repo/build/tests/integration/navigation_test")
set_tests_properties(navigation_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;8;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(runtimedroid_test "/root/repo/build/tests/integration/runtimedroid_test")
set_tests_properties(runtimedroid_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;9;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(soak_test "/root/repo/build/tests/integration/soak_test")
set_tests_properties(soak_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/integration/CMakeLists.txt;10;rch_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
