file(REMOVE_RECURSE
  "CMakeFiles/layout_inflater_test.dir/layout_inflater_test.cc.o"
  "CMakeFiles/layout_inflater_test.dir/layout_inflater_test.cc.o.d"
  "layout_inflater_test"
  "layout_inflater_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_inflater_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
