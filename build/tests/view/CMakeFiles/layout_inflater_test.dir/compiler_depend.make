# Empty compiler generated dependencies file for layout_inflater_test.
# This may be replaced when dependencies are built.
