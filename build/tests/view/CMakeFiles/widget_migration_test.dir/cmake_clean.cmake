file(REMOVE_RECURSE
  "CMakeFiles/widget_migration_test.dir/widget_migration_test.cc.o"
  "CMakeFiles/widget_migration_test.dir/widget_migration_test.cc.o.d"
  "widget_migration_test"
  "widget_migration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widget_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
