# Empty dependencies file for widget_migration_test.
# This may be replaced when dependencies are built.
