file(REMOVE_RECURSE
  "CMakeFiles/tree_fuzz_test.dir/tree_fuzz_test.cc.o"
  "CMakeFiles/tree_fuzz_test.dir/tree_fuzz_test.cc.o.d"
  "tree_fuzz_test"
  "tree_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
