# Empty compiler generated dependencies file for tree_fuzz_test.
# This may be replaced when dependencies are built.
