file(REMOVE_RECURSE
  "CMakeFiles/widget_state_test.dir/widget_state_test.cc.o"
  "CMakeFiles/widget_state_test.dir/widget_state_test.cc.o.d"
  "widget_state_test"
  "widget_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widget_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
