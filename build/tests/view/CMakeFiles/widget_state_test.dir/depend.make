# Empty dependencies file for widget_state_test.
# This may be replaced when dependencies are built.
