file(REMOVE_RECURSE
  "CMakeFiles/extra_widgets_test.dir/extra_widgets_test.cc.o"
  "CMakeFiles/extra_widgets_test.dir/extra_widgets_test.cc.o.d"
  "extra_widgets_test"
  "extra_widgets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_widgets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
