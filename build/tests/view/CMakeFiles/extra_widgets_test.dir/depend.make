# Empty dependencies file for extra_widgets_test.
# This may be replaced when dependencies are built.
