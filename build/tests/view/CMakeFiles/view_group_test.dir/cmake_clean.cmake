file(REMOVE_RECURSE
  "CMakeFiles/view_group_test.dir/view_group_test.cc.o"
  "CMakeFiles/view_group_test.dir/view_group_test.cc.o.d"
  "view_group_test"
  "view_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
