# CMake generated Testfile for 
# Source directory: /root/repo/tests/view
# Build directory: /root/repo/build/tests/view
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(view_test "/root/repo/build/tests/view/view_test")
set_tests_properties(view_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/view/CMakeLists.txt;1;rch_add_test;/root/repo/tests/view/CMakeLists.txt;0;")
add_test(view_group_test "/root/repo/build/tests/view/view_group_test")
set_tests_properties(view_group_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/view/CMakeLists.txt;2;rch_add_test;/root/repo/tests/view/CMakeLists.txt;0;")
add_test(widget_state_test "/root/repo/build/tests/view/widget_state_test")
set_tests_properties(widget_state_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/view/CMakeLists.txt;3;rch_add_test;/root/repo/tests/view/CMakeLists.txt;0;")
add_test(widget_migration_test "/root/repo/build/tests/view/widget_migration_test")
set_tests_properties(widget_migration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/view/CMakeLists.txt;4;rch_add_test;/root/repo/tests/view/CMakeLists.txt;0;")
add_test(layout_inflater_test "/root/repo/build/tests/view/layout_inflater_test")
set_tests_properties(layout_inflater_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/view/CMakeLists.txt;5;rch_add_test;/root/repo/tests/view/CMakeLists.txt;0;")
add_test(extra_widgets_test "/root/repo/build/tests/view/extra_widgets_test")
set_tests_properties(extra_widgets_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/view/CMakeLists.txt;6;rch_add_test;/root/repo/tests/view/CMakeLists.txt;0;")
add_test(tree_fuzz_test "/root/repo/build/tests/view/tree_fuzz_test")
set_tests_properties(tree_fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/view/CMakeLists.txt;7;rch_add_test;/root/repo/tests/view/CMakeLists.txt;0;")
