# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(device_model_test "/root/repo/build/tests/sim/device_model_test")
set_tests_properties(device_model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/sim/CMakeLists.txt;1;rch_add_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(trace_test "/root/repo/build/tests/sim/trace_test")
set_tests_properties(trace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/sim/CMakeLists.txt;2;rch_add_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(cpu_tracker_test "/root/repo/build/tests/sim/cpu_tracker_test")
set_tests_properties(cpu_tracker_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/sim/CMakeLists.txt;3;rch_add_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(memory_sampler_test "/root/repo/build/tests/sim/memory_sampler_test")
set_tests_properties(memory_sampler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/sim/CMakeLists.txt;4;rch_add_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(energy_model_test "/root/repo/build/tests/sim/energy_model_test")
set_tests_properties(energy_model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/sim/CMakeLists.txt;5;rch_add_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(android_system_test "/root/repo/build/tests/sim/android_system_test")
set_tests_properties(android_system_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/sim/CMakeLists.txt;6;rch_add_test;/root/repo/tests/sim/CMakeLists.txt;0;")
