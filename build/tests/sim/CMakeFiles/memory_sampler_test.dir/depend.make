# Empty dependencies file for memory_sampler_test.
# This may be replaced when dependencies are built.
