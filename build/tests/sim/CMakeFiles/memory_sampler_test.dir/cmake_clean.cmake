file(REMOVE_RECURSE
  "CMakeFiles/memory_sampler_test.dir/memory_sampler_test.cc.o"
  "CMakeFiles/memory_sampler_test.dir/memory_sampler_test.cc.o.d"
  "memory_sampler_test"
  "memory_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
