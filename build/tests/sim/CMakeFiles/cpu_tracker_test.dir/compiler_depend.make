# Empty compiler generated dependencies file for cpu_tracker_test.
# This may be replaced when dependencies are built.
