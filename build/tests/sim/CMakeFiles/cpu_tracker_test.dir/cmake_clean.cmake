file(REMOVE_RECURSE
  "CMakeFiles/cpu_tracker_test.dir/cpu_tracker_test.cc.o"
  "CMakeFiles/cpu_tracker_test.dir/cpu_tracker_test.cc.o.d"
  "cpu_tracker_test"
  "cpu_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
