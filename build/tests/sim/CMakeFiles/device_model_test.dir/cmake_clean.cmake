file(REMOVE_RECURSE
  "CMakeFiles/device_model_test.dir/device_model_test.cc.o"
  "CMakeFiles/device_model_test.dir/device_model_test.cc.o.d"
  "device_model_test"
  "device_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
