file(REMOVE_RECURSE
  "CMakeFiles/rch_baseline.dir/runtimedroid.cc.o"
  "CMakeFiles/rch_baseline.dir/runtimedroid.cc.o.d"
  "librch_baseline.a"
  "librch_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
