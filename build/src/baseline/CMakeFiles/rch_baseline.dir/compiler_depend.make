# Empty compiler generated dependencies file for rch_baseline.
# This may be replaced when dependencies are built.
