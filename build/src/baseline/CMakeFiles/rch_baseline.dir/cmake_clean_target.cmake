file(REMOVE_RECURSE
  "librch_baseline.a"
)
