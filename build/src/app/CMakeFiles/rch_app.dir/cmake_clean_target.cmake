file(REMOVE_RECURSE
  "librch_app.a"
)
