
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/activity.cc" "src/app/CMakeFiles/rch_app.dir/activity.cc.o" "gcc" "src/app/CMakeFiles/rch_app.dir/activity.cc.o.d"
  "/root/repo/src/app/activity_thread.cc" "src/app/CMakeFiles/rch_app.dir/activity_thread.cc.o" "gcc" "src/app/CMakeFiles/rch_app.dir/activity_thread.cc.o.d"
  "/root/repo/src/app/async_task.cc" "src/app/CMakeFiles/rch_app.dir/async_task.cc.o" "gcc" "src/app/CMakeFiles/rch_app.dir/async_task.cc.o.d"
  "/root/repo/src/app/dialog.cc" "src/app/CMakeFiles/rch_app.dir/dialog.cc.o" "gcc" "src/app/CMakeFiles/rch_app.dir/dialog.cc.o.d"
  "/root/repo/src/app/fragment.cc" "src/app/CMakeFiles/rch_app.dir/fragment.cc.o" "gcc" "src/app/CMakeFiles/rch_app.dir/fragment.cc.o.d"
  "/root/repo/src/app/lifecycle.cc" "src/app/CMakeFiles/rch_app.dir/lifecycle.cc.o" "gcc" "src/app/CMakeFiles/rch_app.dir/lifecycle.cc.o.d"
  "/root/repo/src/app/window.cc" "src/app/CMakeFiles/rch_app.dir/window.cc.o" "gcc" "src/app/CMakeFiles/rch_app.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/view/CMakeFiles/rch_view.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rch_os.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rch_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rch_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
