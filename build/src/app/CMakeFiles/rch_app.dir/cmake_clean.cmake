file(REMOVE_RECURSE
  "CMakeFiles/rch_app.dir/activity.cc.o"
  "CMakeFiles/rch_app.dir/activity.cc.o.d"
  "CMakeFiles/rch_app.dir/activity_thread.cc.o"
  "CMakeFiles/rch_app.dir/activity_thread.cc.o.d"
  "CMakeFiles/rch_app.dir/async_task.cc.o"
  "CMakeFiles/rch_app.dir/async_task.cc.o.d"
  "CMakeFiles/rch_app.dir/dialog.cc.o"
  "CMakeFiles/rch_app.dir/dialog.cc.o.d"
  "CMakeFiles/rch_app.dir/fragment.cc.o"
  "CMakeFiles/rch_app.dir/fragment.cc.o.d"
  "CMakeFiles/rch_app.dir/lifecycle.cc.o"
  "CMakeFiles/rch_app.dir/lifecycle.cc.o.d"
  "CMakeFiles/rch_app.dir/window.cc.o"
  "CMakeFiles/rch_app.dir/window.cc.o.d"
  "librch_app.a"
  "librch_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
