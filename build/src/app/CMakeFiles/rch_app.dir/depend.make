# Empty dependencies file for rch_app.
# This may be replaced when dependencies are built.
