# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("platform")
subdirs("os")
subdirs("resources")
subdirs("view")
subdirs("app")
subdirs("ams")
subdirs("rch")
subdirs("baseline")
subdirs("apps")
subdirs("sim")
