file(REMOVE_RECURSE
  "CMakeFiles/rch_core.dir/lazy_migrator.cc.o"
  "CMakeFiles/rch_core.dir/lazy_migrator.cc.o.d"
  "CMakeFiles/rch_core.dir/rch_client_handler.cc.o"
  "CMakeFiles/rch_core.dir/rch_client_handler.cc.o.d"
  "CMakeFiles/rch_core.dir/shadow_gc.cc.o"
  "CMakeFiles/rch_core.dir/shadow_gc.cc.o.d"
  "CMakeFiles/rch_core.dir/view_tree_mapper.cc.o"
  "CMakeFiles/rch_core.dir/view_tree_mapper.cc.o.d"
  "librch_core.a"
  "librch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
