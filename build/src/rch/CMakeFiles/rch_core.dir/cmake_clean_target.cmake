file(REMOVE_RECURSE
  "librch_core.a"
)
