# Empty dependencies file for rch_core.
# This may be replaced when dependencies are built.
