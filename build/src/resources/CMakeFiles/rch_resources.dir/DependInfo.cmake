
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resources/configuration.cc" "src/resources/CMakeFiles/rch_resources.dir/configuration.cc.o" "gcc" "src/resources/CMakeFiles/rch_resources.dir/configuration.cc.o.d"
  "/root/repo/src/resources/resource_manager.cc" "src/resources/CMakeFiles/rch_resources.dir/resource_manager.cc.o" "gcc" "src/resources/CMakeFiles/rch_resources.dir/resource_manager.cc.o.d"
  "/root/repo/src/resources/resource_table.cc" "src/resources/CMakeFiles/rch_resources.dir/resource_table.cc.o" "gcc" "src/resources/CMakeFiles/rch_resources.dir/resource_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/rch_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
