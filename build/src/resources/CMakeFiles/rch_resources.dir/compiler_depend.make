# Empty compiler generated dependencies file for rch_resources.
# This may be replaced when dependencies are built.
