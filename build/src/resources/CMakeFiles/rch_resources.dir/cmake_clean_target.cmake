file(REMOVE_RECURSE
  "librch_resources.a"
)
