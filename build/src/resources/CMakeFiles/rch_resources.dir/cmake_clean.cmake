file(REMOVE_RECURSE
  "CMakeFiles/rch_resources.dir/configuration.cc.o"
  "CMakeFiles/rch_resources.dir/configuration.cc.o.d"
  "CMakeFiles/rch_resources.dir/resource_manager.cc.o"
  "CMakeFiles/rch_resources.dir/resource_manager.cc.o.d"
  "CMakeFiles/rch_resources.dir/resource_table.cc.o"
  "CMakeFiles/rch_resources.dir/resource_table.cc.o.d"
  "librch_resources.a"
  "librch_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
