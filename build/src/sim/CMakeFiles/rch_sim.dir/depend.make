# Empty dependencies file for rch_sim.
# This may be replaced when dependencies are built.
