file(REMOVE_RECURSE
  "librch_sim.a"
)
