file(REMOVE_RECURSE
  "CMakeFiles/rch_sim.dir/android_system.cc.o"
  "CMakeFiles/rch_sim.dir/android_system.cc.o.d"
  "CMakeFiles/rch_sim.dir/cpu_tracker.cc.o"
  "CMakeFiles/rch_sim.dir/cpu_tracker.cc.o.d"
  "CMakeFiles/rch_sim.dir/device_model.cc.o"
  "CMakeFiles/rch_sim.dir/device_model.cc.o.d"
  "CMakeFiles/rch_sim.dir/energy_model.cc.o"
  "CMakeFiles/rch_sim.dir/energy_model.cc.o.d"
  "CMakeFiles/rch_sim.dir/memory_sampler.cc.o"
  "CMakeFiles/rch_sim.dir/memory_sampler.cc.o.d"
  "CMakeFiles/rch_sim.dir/trace.cc.o"
  "CMakeFiles/rch_sim.dir/trace.cc.o.d"
  "librch_sim.a"
  "librch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
