
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/android_system.cc" "src/sim/CMakeFiles/rch_sim.dir/android_system.cc.o" "gcc" "src/sim/CMakeFiles/rch_sim.dir/android_system.cc.o.d"
  "/root/repo/src/sim/cpu_tracker.cc" "src/sim/CMakeFiles/rch_sim.dir/cpu_tracker.cc.o" "gcc" "src/sim/CMakeFiles/rch_sim.dir/cpu_tracker.cc.o.d"
  "/root/repo/src/sim/device_model.cc" "src/sim/CMakeFiles/rch_sim.dir/device_model.cc.o" "gcc" "src/sim/CMakeFiles/rch_sim.dir/device_model.cc.o.d"
  "/root/repo/src/sim/energy_model.cc" "src/sim/CMakeFiles/rch_sim.dir/energy_model.cc.o" "gcc" "src/sim/CMakeFiles/rch_sim.dir/energy_model.cc.o.d"
  "/root/repo/src/sim/memory_sampler.cc" "src/sim/CMakeFiles/rch_sim.dir/memory_sampler.cc.o" "gcc" "src/sim/CMakeFiles/rch_sim.dir/memory_sampler.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/rch_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/rch_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rch/CMakeFiles/rch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/rch_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rch_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/ams/CMakeFiles/rch_ams.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/rch_app.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/rch_view.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rch_os.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rch_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rch_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
