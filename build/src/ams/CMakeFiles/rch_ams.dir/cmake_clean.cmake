file(REMOVE_RECURSE
  "CMakeFiles/rch_ams.dir/activity_stack.cc.o"
  "CMakeFiles/rch_ams.dir/activity_stack.cc.o.d"
  "CMakeFiles/rch_ams.dir/activity_starter.cc.o"
  "CMakeFiles/rch_ams.dir/activity_starter.cc.o.d"
  "CMakeFiles/rch_ams.dir/atms.cc.o"
  "CMakeFiles/rch_ams.dir/atms.cc.o.d"
  "librch_ams.a"
  "librch_ams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_ams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
