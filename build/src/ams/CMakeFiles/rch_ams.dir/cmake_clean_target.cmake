file(REMOVE_RECURSE
  "librch_ams.a"
)
