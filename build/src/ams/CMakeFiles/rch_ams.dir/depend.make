# Empty dependencies file for rch_ams.
# This may be replaced when dependencies are built.
