
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ams/activity_stack.cc" "src/ams/CMakeFiles/rch_ams.dir/activity_stack.cc.o" "gcc" "src/ams/CMakeFiles/rch_ams.dir/activity_stack.cc.o.d"
  "/root/repo/src/ams/activity_starter.cc" "src/ams/CMakeFiles/rch_ams.dir/activity_starter.cc.o" "gcc" "src/ams/CMakeFiles/rch_ams.dir/activity_starter.cc.o.d"
  "/root/repo/src/ams/atms.cc" "src/ams/CMakeFiles/rch_ams.dir/atms.cc.o" "gcc" "src/ams/CMakeFiles/rch_ams.dir/atms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/rch_app.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/rch_view.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rch_os.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rch_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rch_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
