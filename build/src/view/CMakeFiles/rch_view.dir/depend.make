# Empty dependencies file for rch_view.
# This may be replaced when dependencies are built.
