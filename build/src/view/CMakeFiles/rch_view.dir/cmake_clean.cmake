file(REMOVE_RECURSE
  "CMakeFiles/rch_view.dir/extra_widgets.cc.o"
  "CMakeFiles/rch_view.dir/extra_widgets.cc.o.d"
  "CMakeFiles/rch_view.dir/image_view.cc.o"
  "CMakeFiles/rch_view.dir/image_view.cc.o.d"
  "CMakeFiles/rch_view.dir/layout_inflater.cc.o"
  "CMakeFiles/rch_view.dir/layout_inflater.cc.o.d"
  "CMakeFiles/rch_view.dir/list_view.cc.o"
  "CMakeFiles/rch_view.dir/list_view.cc.o.d"
  "CMakeFiles/rch_view.dir/progress_bar.cc.o"
  "CMakeFiles/rch_view.dir/progress_bar.cc.o.d"
  "CMakeFiles/rch_view.dir/text_view.cc.o"
  "CMakeFiles/rch_view.dir/text_view.cc.o.d"
  "CMakeFiles/rch_view.dir/video_view.cc.o"
  "CMakeFiles/rch_view.dir/video_view.cc.o.d"
  "CMakeFiles/rch_view.dir/view.cc.o"
  "CMakeFiles/rch_view.dir/view.cc.o.d"
  "CMakeFiles/rch_view.dir/view_group.cc.o"
  "CMakeFiles/rch_view.dir/view_group.cc.o.d"
  "librch_view.a"
  "librch_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
