
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/view/extra_widgets.cc" "src/view/CMakeFiles/rch_view.dir/extra_widgets.cc.o" "gcc" "src/view/CMakeFiles/rch_view.dir/extra_widgets.cc.o.d"
  "/root/repo/src/view/image_view.cc" "src/view/CMakeFiles/rch_view.dir/image_view.cc.o" "gcc" "src/view/CMakeFiles/rch_view.dir/image_view.cc.o.d"
  "/root/repo/src/view/layout_inflater.cc" "src/view/CMakeFiles/rch_view.dir/layout_inflater.cc.o" "gcc" "src/view/CMakeFiles/rch_view.dir/layout_inflater.cc.o.d"
  "/root/repo/src/view/list_view.cc" "src/view/CMakeFiles/rch_view.dir/list_view.cc.o" "gcc" "src/view/CMakeFiles/rch_view.dir/list_view.cc.o.d"
  "/root/repo/src/view/progress_bar.cc" "src/view/CMakeFiles/rch_view.dir/progress_bar.cc.o" "gcc" "src/view/CMakeFiles/rch_view.dir/progress_bar.cc.o.d"
  "/root/repo/src/view/text_view.cc" "src/view/CMakeFiles/rch_view.dir/text_view.cc.o" "gcc" "src/view/CMakeFiles/rch_view.dir/text_view.cc.o.d"
  "/root/repo/src/view/video_view.cc" "src/view/CMakeFiles/rch_view.dir/video_view.cc.o" "gcc" "src/view/CMakeFiles/rch_view.dir/video_view.cc.o.d"
  "/root/repo/src/view/view.cc" "src/view/CMakeFiles/rch_view.dir/view.cc.o" "gcc" "src/view/CMakeFiles/rch_view.dir/view.cc.o.d"
  "/root/repo/src/view/view_group.cc" "src/view/CMakeFiles/rch_view.dir/view_group.cc.o" "gcc" "src/view/CMakeFiles/rch_view.dir/view_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/rch_os.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rch_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rch_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
