file(REMOVE_RECURSE
  "librch_view.a"
)
