# Empty dependencies file for rch_platform.
# This may be replaced when dependencies are built.
