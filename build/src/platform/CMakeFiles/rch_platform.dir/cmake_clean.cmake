file(REMOVE_RECURSE
  "CMakeFiles/rch_platform.dir/logging.cc.o"
  "CMakeFiles/rch_platform.dir/logging.cc.o.d"
  "CMakeFiles/rch_platform.dir/rng.cc.o"
  "CMakeFiles/rch_platform.dir/rng.cc.o.d"
  "CMakeFiles/rch_platform.dir/stats.cc.o"
  "CMakeFiles/rch_platform.dir/stats.cc.o.d"
  "CMakeFiles/rch_platform.dir/status.cc.o"
  "CMakeFiles/rch_platform.dir/status.cc.o.d"
  "CMakeFiles/rch_platform.dir/strings.cc.o"
  "CMakeFiles/rch_platform.dir/strings.cc.o.d"
  "CMakeFiles/rch_platform.dir/time.cc.o"
  "CMakeFiles/rch_platform.dir/time.cc.o.d"
  "librch_platform.a"
  "librch_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
