file(REMOVE_RECURSE
  "librch_platform.a"
)
