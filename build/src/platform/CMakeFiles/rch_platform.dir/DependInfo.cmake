
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/logging.cc" "src/platform/CMakeFiles/rch_platform.dir/logging.cc.o" "gcc" "src/platform/CMakeFiles/rch_platform.dir/logging.cc.o.d"
  "/root/repo/src/platform/rng.cc" "src/platform/CMakeFiles/rch_platform.dir/rng.cc.o" "gcc" "src/platform/CMakeFiles/rch_platform.dir/rng.cc.o.d"
  "/root/repo/src/platform/stats.cc" "src/platform/CMakeFiles/rch_platform.dir/stats.cc.o" "gcc" "src/platform/CMakeFiles/rch_platform.dir/stats.cc.o.d"
  "/root/repo/src/platform/status.cc" "src/platform/CMakeFiles/rch_platform.dir/status.cc.o" "gcc" "src/platform/CMakeFiles/rch_platform.dir/status.cc.o.d"
  "/root/repo/src/platform/strings.cc" "src/platform/CMakeFiles/rch_platform.dir/strings.cc.o" "gcc" "src/platform/CMakeFiles/rch_platform.dir/strings.cc.o.d"
  "/root/repo/src/platform/time.cc" "src/platform/CMakeFiles/rch_platform.dir/time.cc.o" "gcc" "src/platform/CMakeFiles/rch_platform.dir/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
