file(REMOVE_RECURSE
  "CMakeFiles/rch_apps.dir/app_builder.cc.o"
  "CMakeFiles/rch_apps.dir/app_builder.cc.o.d"
  "CMakeFiles/rch_apps.dir/benchmark_app.cc.o"
  "CMakeFiles/rch_apps.dir/benchmark_app.cc.o.d"
  "CMakeFiles/rch_apps.dir/corpus_top100.cc.o"
  "CMakeFiles/rch_apps.dir/corpus_top100.cc.o.d"
  "CMakeFiles/rch_apps.dir/corpus_tp37.cc.o"
  "CMakeFiles/rch_apps.dir/corpus_tp37.cc.o.d"
  "CMakeFiles/rch_apps.dir/simulated_app.cc.o"
  "CMakeFiles/rch_apps.dir/simulated_app.cc.o.d"
  "CMakeFiles/rch_apps.dir/user_driver.cc.o"
  "CMakeFiles/rch_apps.dir/user_driver.cc.o.d"
  "librch_apps.a"
  "librch_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
