file(REMOVE_RECURSE
  "librch_apps.a"
)
