# Empty dependencies file for rch_apps.
# This may be replaced when dependencies are built.
