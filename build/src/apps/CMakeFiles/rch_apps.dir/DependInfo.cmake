
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_builder.cc" "src/apps/CMakeFiles/rch_apps.dir/app_builder.cc.o" "gcc" "src/apps/CMakeFiles/rch_apps.dir/app_builder.cc.o.d"
  "/root/repo/src/apps/benchmark_app.cc" "src/apps/CMakeFiles/rch_apps.dir/benchmark_app.cc.o" "gcc" "src/apps/CMakeFiles/rch_apps.dir/benchmark_app.cc.o.d"
  "/root/repo/src/apps/corpus_top100.cc" "src/apps/CMakeFiles/rch_apps.dir/corpus_top100.cc.o" "gcc" "src/apps/CMakeFiles/rch_apps.dir/corpus_top100.cc.o.d"
  "/root/repo/src/apps/corpus_tp37.cc" "src/apps/CMakeFiles/rch_apps.dir/corpus_tp37.cc.o" "gcc" "src/apps/CMakeFiles/rch_apps.dir/corpus_tp37.cc.o.d"
  "/root/repo/src/apps/simulated_app.cc" "src/apps/CMakeFiles/rch_apps.dir/simulated_app.cc.o" "gcc" "src/apps/CMakeFiles/rch_apps.dir/simulated_app.cc.o.d"
  "/root/repo/src/apps/user_driver.cc" "src/apps/CMakeFiles/rch_apps.dir/user_driver.cc.o" "gcc" "src/apps/CMakeFiles/rch_apps.dir/user_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/rch_app.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/rch_view.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rch_os.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rch_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rch_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
