file(REMOVE_RECURSE
  "librch_os.a"
)
