# Empty compiler generated dependencies file for rch_os.
# This may be replaced when dependencies are built.
