
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/bundle.cc" "src/os/CMakeFiles/rch_os.dir/bundle.cc.o" "gcc" "src/os/CMakeFiles/rch_os.dir/bundle.cc.o.d"
  "/root/repo/src/os/handler.cc" "src/os/CMakeFiles/rch_os.dir/handler.cc.o" "gcc" "src/os/CMakeFiles/rch_os.dir/handler.cc.o.d"
  "/root/repo/src/os/ipc.cc" "src/os/CMakeFiles/rch_os.dir/ipc.cc.o" "gcc" "src/os/CMakeFiles/rch_os.dir/ipc.cc.o.d"
  "/root/repo/src/os/looper.cc" "src/os/CMakeFiles/rch_os.dir/looper.cc.o" "gcc" "src/os/CMakeFiles/rch_os.dir/looper.cc.o.d"
  "/root/repo/src/os/message_queue.cc" "src/os/CMakeFiles/rch_os.dir/message_queue.cc.o" "gcc" "src/os/CMakeFiles/rch_os.dir/message_queue.cc.o.d"
  "/root/repo/src/os/parcel.cc" "src/os/CMakeFiles/rch_os.dir/parcel.cc.o" "gcc" "src/os/CMakeFiles/rch_os.dir/parcel.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/os/CMakeFiles/rch_os.dir/scheduler.cc.o" "gcc" "src/os/CMakeFiles/rch_os.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/rch_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
