file(REMOVE_RECURSE
  "CMakeFiles/rch_os.dir/bundle.cc.o"
  "CMakeFiles/rch_os.dir/bundle.cc.o.d"
  "CMakeFiles/rch_os.dir/handler.cc.o"
  "CMakeFiles/rch_os.dir/handler.cc.o.d"
  "CMakeFiles/rch_os.dir/ipc.cc.o"
  "CMakeFiles/rch_os.dir/ipc.cc.o.d"
  "CMakeFiles/rch_os.dir/looper.cc.o"
  "CMakeFiles/rch_os.dir/looper.cc.o.d"
  "CMakeFiles/rch_os.dir/message_queue.cc.o"
  "CMakeFiles/rch_os.dir/message_queue.cc.o.d"
  "CMakeFiles/rch_os.dir/parcel.cc.o"
  "CMakeFiles/rch_os.dir/parcel.cc.o.d"
  "CMakeFiles/rch_os.dir/scheduler.cc.o"
  "CMakeFiles/rch_os.dir/scheduler.cc.o.d"
  "librch_os.a"
  "librch_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rch_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
