file(REMOVE_RECURSE
  "CMakeFiles/photo_gallery.dir/photo_gallery.cpp.o"
  "CMakeFiles/photo_gallery.dir/photo_gallery.cpp.o.d"
  "photo_gallery"
  "photo_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photo_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
