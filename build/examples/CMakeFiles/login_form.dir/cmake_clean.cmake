file(REMOVE_RECURSE
  "CMakeFiles/login_form.dir/login_form.cpp.o"
  "CMakeFiles/login_form.dir/login_form.cpp.o.d"
  "login_form"
  "login_form.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/login_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
