# Empty dependencies file for login_form.
# This may be replaced when dependencies are built.
