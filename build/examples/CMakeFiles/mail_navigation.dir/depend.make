# Empty dependencies file for mail_navigation.
# This may be replaced when dependencies are built.
