file(REMOVE_RECURSE
  "CMakeFiles/mail_navigation.dir/mail_navigation.cpp.o"
  "CMakeFiles/mail_navigation.dir/mail_navigation.cpp.o.d"
  "mail_navigation"
  "mail_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
