#!/usr/bin/env python3
"""Gate a BENCH_mc.json run against bench/BENCH_mc.baseline.json.

Usage: compare_mc.py BASELINE_JSON CURRENT_JSON [--reduction-floor=5.0]
                     [--replayed-epsilon=0.5] [--wall-ratio=3.0]

bench_mc runs every model-check scenario twice — snapshot-forked and
replay-from-root — so the report splits into two kinds of numbers, and
(following tools/compare_simcore.py) they gate differently:

Deterministic counters gate HARD (exit 1 with a ::error::):
  * any scenario where the two arms diverged (`identical` false, or
    `totals.all_identical` false) — the bit-identity soundness bar;
  * the quickstart `events_replayed_reduction` below the floor — the
    headline perf_opt acceptance criterion (snapshot resumes must kill
    at least `--reduction-floor` of the replay-from-root prefix work);
  * a snapshot arm whose replayed-events-per-execution grew by more
    than `--replayed-epsilon` over the baseline — checkpoints stopped
    landing at the divergence points they used to.

Wall-clock numbers only WARN: shared CI runners make them advisory,
and at the catalogue's microsecond scenario scale a fork costs more
than a whole re-execution, so the snapshot arm's wall is expected to
trail until scenarios grow (see DESIGN.md §15). The warning threshold
is `--wall-ratio` times the replay-from-root arm.

Schedule/execution-count drifts against the baseline also only warn:
they move legitimately when exploration or reduction logic changes,
and the cure is refreshing the checked-in baseline in the same PR.

A missing or unreadable baseline skips the baseline-relative checks
with a warning (a branch may predate the baseline); the current run's
self-contained gates (bit-identity, reduction floor) still apply.
"""

import json
import sys

QUICKSTART = "quickstart"


def load_report(path, role):
    """Load one report; None (with a warning) when absent/unparsable."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"::warning::bench_mc {role} {path} unusable ({exc})")
        return None


def check_identity(current):
    """Hard bit-identity gate on the current run alone.

    Returns a list of error strings (empty = pass): one per scenario
    whose arms diverged, plus one for a false totals.all_identical.
    """
    errors = []
    for name, cell in sorted(current.get("scenarios", {}).items()):
        if cell.get("identical") is not True:
            errors.append(
                f"scenario {name}: snapshot and replay-from-root arms "
                f"diverged (schedules/executions/violations)")
    totals = current.get("totals", {})
    if totals and totals.get("all_identical") is not True:
        errors.append("totals.all_identical is false")
    return errors


def check_reduction_floor(current, floor):
    """Hard gate: quickstart replayed-events reduction >= floor.

    Returns an error string or None. A missing quickstart cell is an
    error too — the acceptance metric must be measurable.
    """
    cell = current.get("scenarios", {}).get(QUICKSTART)
    if cell is None:
        return f"scenario {QUICKSTART} missing from run"
    reduction = cell.get("events_replayed_reduction", 0.0)
    if reduction < floor:
        return (f"{QUICKSTART} events_replayed_reduction {reduction:.1f}x "
                f"is below the {floor:.1f}x floor")
    return None


def check_replayed_regressions(baseline, current, epsilon):
    """Deterministic perf gate vs baseline.

    Returns (errors, warnings): an error per scenario whose snapshot
    arm now replays more events per execution than the baseline plus
    epsilon; a warning per scenario missing from the current run.
    """
    errors = []
    warnings = []
    for name, base_cell in sorted(baseline.get("scenarios", {}).items()):
        cur_cell = current.get("scenarios", {}).get(name)
        if cur_cell is None:
            warnings.append(f"scenario {name} missing from run")
            continue
        base = base_cell.get("snapshot", {}).get("replayed_per_execution",
                                                 0.0)
        cur = cur_cell.get("snapshot", {}).get("replayed_per_execution",
                                               0.0)
        if cur > base + epsilon:
            errors.append(
                f"scenario {name}: snapshot arm replays "
                f"{cur:.2f} events/execution (baseline {base:.2f} + "
                f"epsilon {epsilon:.2f}) — checkpoints no longer land "
                f"at divergence points")
    return errors, warnings


def check_schedule_drift(baseline, current):
    """Advisory: schedule/execution counts moved vs the baseline."""
    warnings = []
    for name, base_cell in sorted(baseline.get("scenarios", {}).items()):
        cur_cell = current.get("scenarios", {}).get(name)
        if cur_cell is None:
            continue
        for key in ("schedules_covered", "executions"):
            base = base_cell.get("snapshot", {}).get(key)
            cur = cur_cell.get("snapshot", {}).get(key)
            if base != cur:
                warnings.append(
                    f"scenario {name}: {key} moved {base} -> {cur} vs "
                    f"baseline — refresh bench/BENCH_mc.baseline.json if "
                    f"the exploration change is intentional")
    return warnings


def check_wall(current, ratio):
    """Advisory: snapshot arm wall beyond ratio x replay-from-root."""
    warnings = []
    for name, cell in sorted(current.get("scenarios", {}).items()):
        snap_ms = cell.get("snapshot", {}).get("wall_ms", 0.0)
        root_ms = cell.get("replay_from_root", {}).get("wall_ms", 0.0)
        if root_ms > 0.0 and snap_ms > ratio * root_ms:
            warnings.append(
                f"scenario {name}: snapshot wall {snap_ms:.1f} ms > "
                f"{ratio:.1f}x replay-from-root {root_ms:.1f} ms "
                f"(advisory at micro-scenario scale)")
    return warnings


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    reduction_floor = 5.0
    replayed_epsilon = 0.5
    wall_ratio = 3.0
    for arg in argv[3:]:
        if arg.startswith("--reduction-floor="):
            reduction_floor = float(arg.split("=", 1)[1])
        elif arg.startswith("--replayed-epsilon="):
            replayed_epsilon = float(arg.split("=", 1)[1])
        elif arg.startswith("--wall-ratio="):
            wall_ratio = float(arg.split("=", 1)[1])

    current = load_report(argv[2], "run")
    if current is None:
        print("::error::bench_mc run report unusable — failing")
        return 1

    errors = check_identity(current)
    floor_error = check_reduction_floor(current, reduction_floor)
    if floor_error:
        errors.append(floor_error)
    warnings = check_wall(current, wall_ratio)

    baseline = load_report(argv[1], "baseline")
    if baseline is None:
        warnings.append("baseline missing — baseline-relative checks "
                        "skipped")
    else:
        replay_errors, replay_warnings = check_replayed_regressions(
            baseline, current, replayed_epsilon)
        errors.extend(replay_errors)
        warnings.extend(replay_warnings)
        warnings.extend(check_schedule_drift(baseline, current))

    for name, cell in sorted(current.get("scenarios", {}).items()):
        snap = cell.get("snapshot", {})
        root = cell.get("replay_from_root", {})
        print(f"{name}: {snap.get('schedules_covered')} schedules, "
              f"replayed/exec {root.get('replayed_per_execution', 0):.1f}"
              f" -> {snap.get('replayed_per_execution', 0):.1f}, "
              f"saved {snap.get('events_saved')}, wall "
              f"{root.get('wall_ms', 0):.1f} -> "
              f"{snap.get('wall_ms', 0):.1f} ms, identical="
              f"{cell.get('identical')}")

    for warning in warnings:
        print(f"::warning::bench_mc {warning}")
    for error in errors:
        print(f"::error::bench_mc {error}")
    if errors:
        return 1
    print(f"bench_mc gates passed (reduction floor {reduction_floor:.1f}x,"
          f" replayed epsilon {replayed_epsilon:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
