/**
 * @file
 * rchdroid_sa: the static RCH-compatibility analyzer CLI.
 *
 * Sweeps the full evaluation corpus (TP-37 + top-100 + the examples/
 * stand-ins) without executing any of it and emits one JSON document
 * with a per-app verdict: will the critical state survive a runtime
 * change under stock Android and under RCHDroid, may the app crash on a
 * straddling async completion, and is it RCHDroid-eligible.
 *
 *   rchdroid_sa                    sweep, summary to stdout
 *   rchdroid_sa --json             sweep, JSON to stdout
 *   rchdroid_sa --out FILE         sweep, JSON to FILE
 *   rchdroid_sa --app NAME         one app: findings + model dump
 *   rchdroid_sa --findings         sweep, every finding line-by-line
 *
 * The binary never fails on findings — predictions are data. The
 * differential CTest (tests/sa/differential_test.cc) is what turns a
 * soundness violation into a red build.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sa/dataflow.h"
#include "sa/sweep.h"

namespace {

using namespace rchdroid;

int
analyzeOne(const std::string &name)
{
    for (const apps::AppSpec &spec : sa::fullCorpus()) {
        if (spec.name != name)
            continue;
        const sa::AppModel stock =
            sa::compile(spec, sa::HandlingModel::Stock);
        const sa::AppModel rch =
            sa::compile(spec, sa::HandlingModel::RchDroid);
        std::cout << stock.describe() << "\n" << rch.describe() << "\n";
        std::cout << sa::solve(stock).describe(stock) << "\n";
        const sa::AppVerdict verdict = sa::analyzeApp(spec);
        for (const sa::Finding &finding : verdict.findings)
            std::cout << finding.toString() << "\n";
        std::cout << verdict.toJson() << "\n";
        return 0;
    }
    std::cerr << "rchdroid_sa: unknown app '" << name
              << "' (names come from the corpus tables and examples)\n";
    return 2;
}

void
printSummary(const sa::SweepResult &result)
{
    const sa::SweepSummary totals = result.summary();
    std::printf("apps=%d findings=%d (errors=%d warnings=%d infos=%d)\n"
                "stock_clean=%d rch_clean=%d\n"
                "self_handling=%d rch_eligible=%d rch_ineligible=%d\n",
                totals.apps, totals.findings, totals.errors,
                totals.warnings, totals.infos, totals.stock_clean,
                totals.rch_clean, totals.self_handling,
                totals.rch_eligible, totals.rch_ineligible);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string app_name;
    bool json_stdout = false;
    bool list_findings = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            json_stdout = true;
        } else if (std::strcmp(arg, "--findings") == 0) {
            list_findings = true;
        } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(arg, "--app") == 0 && i + 1 < argc) {
            app_name = argv[++i];
        } else {
            std::cerr << "usage: rchdroid_sa [--json] [--findings] "
                         "[--out FILE] [--app NAME]\n";
            return std::strcmp(arg, "--help") == 0 ? 0 : 2;
        }
    }

    if (!app_name.empty())
        return analyzeOne(app_name);

    const sa::SweepResult result = sa::sweep(sa::fullCorpus());
    if (list_findings) {
        for (const sa::AppVerdict &verdict : result.verdicts) {
            for (const sa::Finding &finding : verdict.findings)
                std::cout << verdict.app << ": " << finding.toString()
                          << "\n";
        }
    }
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "rchdroid_sa: cannot write " << out_path << "\n";
            return 1;
        }
        out << result.toJson();
    }
    if (json_stdout)
        std::cout << result.toJson();
    else
        printSummary(result);
    return 0;
}
