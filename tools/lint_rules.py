#!/usr/bin/env python3
"""Project-specific lint rules the generic toolchain can't express.

Run as ``python3 tools/lint_rules.py [REPO_ROOT]`` (default: the
repository containing this script). Exit status is non-zero when any
rule fires; each violation prints as ``file:line: [rule] message``.

Rule 1 — interned-kinds: raw telemetry kind strings (the dotted names
seeded into the intern table, e.g. "atms.configChange") must not appear
in framework source outside platform/telemetry.cc. Everywhere else the
pre-interned ``kinds::`` constants are mandatory: they are 4-byte
handles on the hot emission path, and a typo'd raw string would silently
intern a brand-new kind instead of failing to compile. The expected
strings are parsed out of the kSeed table in platform/telemetry.cc, so
the rule tracks the source of truth automatically. Comments are exempt
(docs may spell the dotted names), and tests/ may use raw names —
exercising the string-edge API is exactly what the telemetry tests are
for.

Rule 2 — analysis-seam: framework layers (os, view, app, ams, rch,
platform, resources, apps, baseline) must not include analysis/ headers
directly; the one sanctioned crossing is the os/analysis_hooks.h seam,
whose Hooks interface (in namespace analysis::, defined by the seam
header itself) is how the framework reports events. sim/ and mc/ are
harness layers that own an Analyzer by design and are exempt. This
keeps the dependency arrow pointing one way: analysis observes the
framework, the framework never grows a compile-time dependency on its
observer.
"""

import os
import re
import sys

#: Framework layers rule 2 protects. sim/ and mc/ are deliberately
#: absent: they are harness layers allowed to own an Analyzer.
FRAMEWORK_LAYERS = ("os", "view", "app", "ams", "rch", "platform",
                    "resources", "apps", "baseline")

#: The one sanctioned framework crossing into analysis/.
ANALYSIS_SEAM = os.path.join("src", "os", "analysis_hooks.h")

#: Where the raw kind strings live (and must stay).
KIND_HOME = os.path.join("src", "platform", "telemetry.cc")

SOURCE_SUFFIXES = (".h", ".cc")


def seeded_kind_names(repo_root):
    """Parse the kSeed string table out of platform/telemetry.cc."""
    path = os.path.join(repo_root, KIND_HOME)
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    match = re.search(r"kSeed\[\]\s*=\s*\{(.*?)\};", text, re.DOTALL)
    if not match:
        raise SystemExit(f"lint_rules: no kSeed table found in {path}")
    # Allow the empty "" seed entry so quote pairs stay aligned, then
    # drop it: only real dotted names are guarded.
    names = [n for n in re.findall(r'"([^"]*)"', match.group(1)) if n]
    if not names:
        raise SystemExit(f"lint_rules: kSeed table in {path} is empty")
    return names


def strip_comments(text):
    """Remove // and /* */ comments, preserving line numbers."""
    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", blank, text)


def source_files(repo_root):
    src = os.path.join(repo_root, "src")
    for directory, _, files in os.walk(src):
        for name in sorted(files):
            if name.endswith(SOURCE_SUFFIXES):
                yield os.path.join(directory, name)


def check_file(path, rel, kind_names, errors):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()

    layer = rel.split(os.sep)[1] if rel.startswith("src" + os.sep) else ""
    code = strip_comments(text)

    if rel != KIND_HOME:
        for number, line in enumerate(code.splitlines(), 1):
            for name in kind_names:
                if f'"{name}"' in line:
                    errors.append(
                        f"{rel}:{number}: [interned-kinds] raw kind "
                        f"string \"{name}\" — use the kinds:: constant "
                        f"(raw names live only in {KIND_HOME})")

    if layer in FRAMEWORK_LAYERS and rel != ANALYSIS_SEAM:
        for number, line in enumerate(code.splitlines(), 1):
            if re.search(r'#\s*include\s*"analysis/', line):
                errors.append(
                    f"{rel}:{number}: [analysis-seam] framework layer "
                    f"\"{layer}\" includes an analysis/ header — go "
                    f"through {ANALYSIS_SEAM}")


def main():
    repo_root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir))
    kind_names = seeded_kind_names(repo_root)

    errors = []
    checked = 0
    for path in source_files(repo_root):
        rel = os.path.relpath(path, repo_root)
        check_file(path, rel, kind_names, errors)
        checked += 1

    for error in errors:
        print(f"lint_rules: {error}", file=sys.stderr)
    if errors:
        print(f"lint_rules: FAIL ({len(errors)} violation(s) in "
              f"{checked} files)", file=sys.stderr)
        return 1
    print(f"lint_rules: OK — {checked} files, "
          f"{len(kind_names)} interned kinds guarded")
    return 0


if __name__ == "__main__":
    sys.exit(main())
