#!/usr/bin/env python3
"""Project-specific lint rules the generic toolchain can't express.

Run as ``python3 tools/lint_rules.py [REPO_ROOT] [--json]`` (default
root: the repository containing this script). Exit status is non-zero
when any rule fires; each violation prints as ``file:line: [rule]
message``, or as a JSON array of ``{file, line, rule, message}`` objects
with ``--json`` (for editor/CI integration).

Structural problems (a source-of-truth table the rules parse going
missing) are reported as ``[structure]`` violations and the scan
continues — one broken table must not hide every other violation in the
tree.

Rule 1 — interned-kinds: raw telemetry kind strings (the dotted names
seeded into the intern table, e.g. "atms.configChange") must not appear
in framework source outside platform/telemetry.cc. Everywhere else the
pre-interned ``kinds::`` constants are mandatory: they are 4-byte
handles on the hot emission path, and a typo'd raw string would silently
intern a brand-new kind instead of failing to compile. The expected
strings are parsed out of the kSeed table in platform/telemetry.cc, so
the rule tracks the source of truth automatically. Comments are exempt
(docs may spell the dotted names), and tests/ may use raw names —
exercising the string-edge API is exactly what the telemetry tests are
for.

Rule 2 — analysis-seam: framework layers (os, view, app, ams, rch,
platform, resources, apps, baseline) must not include analysis/ headers
directly; the one sanctioned crossing is the os/analysis_hooks.h seam,
whose Hooks interface (in namespace analysis::, defined by the seam
header itself) is how the framework reports events. sim/ and mc/ are
harness layers that own an Analyzer by design and are exempt. This
keeps the dependency arrow pointing one way: analysis observes the
framework, the framework never grows a compile-time dependency on its
observer.

Rule 3 — sa-seam: the static analyzer (src/sa/) must stay executable-
semantics-free: it may include its own headers, platform/, and the
declarative spec/model headers (apps/app_spec.h, apps/corpus.h,
apps/spec_traits.h) — never os/, sim/, view/, ams/ or any other
simulator internals. The soundness argument rests on the analyzer
predicting behaviour without running it; a sim include would let
predictions quietly become observations. The dynamic half of the
differential harness lives in src/mc/ (a harness layer) for exactly
this reason.

Rule 4 — checker-tests: every checker registered in the kCheckers table
of src/sa/checkers.cc must have a matching test file
tests/sa/checker_<name>_test.cc. A checker without tests is a verdict
nobody has pinned down; the registry is parsed so the rule tracks new
checkers automatically.

Rule 5 — profiling-seam: the causal profiler (src/profiling/) consumes
the tracer's event stream, live or re-read from JSON — it must never
include simulator internals (os/, sim/, app/, ams/, ...). Only its own
headers and platform/ (where the tracer lives) are reachable. This is
the same one-way-arrow argument as sa-seam: the profiler analyzes
recorded behaviour; an os/ include would let it read simulator state
the trace does not carry, and the offline CLI (rchdroid_profile) would
silently diverge from what a trace consumer can reconstruct.

Rule 6 — mc-seam: the model checker (src/mc/) is the one layer allowed
to bridge the static analyzer and the simulator — that is its job
(it feeds sa/'s independence relation into DPOR and replays sa/
predictions against real executions). But the bridge must stay a
harness: it may include mc/, sa/, platform/, os/, sim/, view/,
analysis/ and apps/ headers, never app/, ams/, rch/, resources/ or
baseline/ internals directly. Activity-thread and policy internals are
reached through the sim/ facade; a direct include would couple the
checker to framework innards the scheduler seam deliberately hides.

Rule 7 — snapshot-seam: the copy-on-write snapshot layer (the
``snapshot*`` files in src/sim/ and src/mc/) may touch only the stores
it versions — never analysis/, profiling/ or sa/ headers. A checkpoint
must capture the simulated system bit-for-bit, and fork(2) already
captures the whole process; pulling an analyzer or profiler into the
snapshot layer would entangle observer state with the versioned store
and quietly widen what a "restore" means. Observers stay outside: they
re-attach to a restored system the same way they attach to a fresh one.
"""

import json
import os
import re
import sys

#: Framework layers rule 2 protects. sim/ and mc/ are deliberately
#: absent: they are harness layers allowed to own an Analyzer.
FRAMEWORK_LAYERS = ("os", "view", "app", "ams", "rch", "platform",
                    "resources", "apps", "baseline")

#: The one sanctioned framework crossing into analysis/.
ANALYSIS_SEAM = os.path.join("src", "os", "analysis_hooks.h")

#: Where the raw kind strings live (and must stay).
KIND_HOME = os.path.join("src", "platform", "telemetry.cc")

#: The checker registry rule 4 parses.
CHECKER_HOME = os.path.join("src", "sa", "checkers.cc")

#: Include prefixes/files src/sa/ may reach (rule 3).
SA_ALLOWED_INCLUDES = ("sa/", "platform/", "apps/app_spec.h",
                       "apps/corpus.h", "apps/spec_traits.h")

#: Include prefixes src/profiling/ may reach (rule 5).
PROFILING_ALLOWED_INCLUDES = ("profiling/", "platform/")

#: Include prefixes src/mc/ may reach (rule 6). app/, ams/, rch/ and
#: friends are reached through the sim/ facade only.
MC_ALLOWED_INCLUDES = ("mc/", "sa/", "platform/", "os/", "sim/",
                       "view/", "analysis/", "apps/")

#: Include prefixes the snapshot layer may never reach (rule 7).
SNAPSHOT_BANNED_INCLUDES = ("analysis/", "profiling/", "sa/")

SOURCE_SUFFIXES = (".h", ".cc")


def is_snapshot_layer(rel):
    """Rule 7's scope: snapshot* sources inside src/ (any layer)."""
    return (rel.startswith("src" + os.sep) and
            os.path.basename(rel).startswith("snapshot"))


def seeded_kind_names(repo_root, errors):
    """Parse the kSeed string table out of platform/telemetry.cc.

    On a structural problem (missing file/table/entries), append a
    [structure] violation and return an empty list so the remaining
    rules still run over the whole tree.
    """
    path = os.path.join(repo_root, KIND_HOME)
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        errors.append(_error(KIND_HOME, 1, "structure",
                             f"cannot read the kind-seed home: {exc}"))
        return []
    match = re.search(r"kSeed\[\]\s*=\s*\{(.*?)\};", text, re.DOTALL)
    if not match:
        errors.append(_error(KIND_HOME, 1, "structure",
                             "no kSeed table found — the interned-kinds "
                             "rule has lost its source of truth"))
        return []
    # Allow the empty "" seed entry so quote pairs stay aligned, then
    # drop it: only real dotted names are guarded.
    names = [n for n in re.findall(r'"([^"]*)"', match.group(1)) if n]
    if not names:
        errors.append(_error(KIND_HOME, 1, "structure",
                             "kSeed table is empty — the interned-kinds "
                             "rule has lost its source of truth"))
    return names


def registered_checkers(repo_root, errors):
    """Parse checker names out of the kCheckers table (rule 4)."""
    path = os.path.join(repo_root, CHECKER_HOME)
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        errors.append(_error(CHECKER_HOME, 1, "structure",
                             f"cannot read the checker registry: {exc}"))
        return []
    match = re.search(r"kCheckers\s*=\s*\{(.*?)\n\};", text, re.DOTALL)
    if not match:
        errors.append(_error(CHECKER_HOME, 1, "structure",
                             "no kCheckers table found — the "
                             "checker-tests rule has lost its registry"))
        return []
    names = re.findall(r'\{\s*"([a-z_]+)"', match.group(1))
    if not names:
        errors.append(_error(CHECKER_HOME, 1, "structure",
                             "kCheckers table is empty — the "
                             "checker-tests rule has lost its registry"))
    return names


def strip_comments(text):
    """Remove // and /* */ comments, preserving line numbers."""
    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", blank, text)


def source_files(repo_root):
    src = os.path.join(repo_root, "src")
    for directory, _, files in os.walk(src):
        for name in sorted(files):
            if name.endswith(SOURCE_SUFFIXES):
                yield os.path.join(directory, name)


def _error(rel, line, rule, message):
    return {"file": rel, "line": line, "rule": rule, "message": message}


def check_file(path, rel, kind_names, errors):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()

    layer = rel.split(os.sep)[1] if rel.startswith("src" + os.sep) else ""
    code = strip_comments(text)

    if rel != KIND_HOME:
        for number, line in enumerate(code.splitlines(), 1):
            for name in kind_names:
                if f'"{name}"' in line:
                    errors.append(_error(
                        rel, number, "interned-kinds",
                        f"raw kind string \"{name}\" — use the kinds:: "
                        f"constant (raw names live only in {KIND_HOME})"))

    if layer in FRAMEWORK_LAYERS and rel != ANALYSIS_SEAM:
        for number, line in enumerate(code.splitlines(), 1):
            if re.search(r'#\s*include\s*"analysis/', line):
                errors.append(_error(
                    rel, number, "analysis-seam",
                    f"framework layer \"{layer}\" includes an analysis/ "
                    f"header — go through {ANALYSIS_SEAM}"))

    if layer == "sa":
        for number, line in enumerate(code.splitlines(), 1):
            match = re.search(r'#\s*include\s*"([^"]+)"', line)
            if not match:
                continue
            include = match.group(1)
            if not include.startswith(SA_ALLOWED_INCLUDES):
                errors.append(_error(
                    rel, number, "sa-seam",
                    f"static analyzer includes \"{include}\" — src/sa/ "
                    f"may only see sa/, platform/ and the spec/model "
                    f"headers ({', '.join(SA_ALLOWED_INCLUDES[2:])}); "
                    f"dynamic harness code belongs in src/mc/"))

    if layer == "mc":
        for number, line in enumerate(code.splitlines(), 1):
            match = re.search(r'#\s*include\s*"([^"]+)"', line)
            if not match:
                continue
            include = match.group(1)
            if not include.startswith(MC_ALLOWED_INCLUDES):
                errors.append(_error(
                    rel, number, "mc-seam",
                    f"model checker includes \"{include}\" — src/mc/ "
                    f"bridges sa/ and the simulator through "
                    f"{', '.join(MC_ALLOWED_INCLUDES)} only; framework "
                    f"internals stay behind the sim/ facade"))

    if is_snapshot_layer(rel):
        for number, line in enumerate(code.splitlines(), 1):
            match = re.search(r'#\s*include\s*"([^"]+)"', line)
            if not match:
                continue
            include = match.group(1)
            if include.startswith(SNAPSHOT_BANNED_INCLUDES):
                errors.append(_error(
                    rel, number, "snapshot-seam",
                    f"snapshot layer includes \"{include}\" — checkpoints "
                    f"version the simulated stores only; analyzers, "
                    f"profilers and the static analyzer re-attach to a "
                    f"restored system from outside"))

    if layer == "profiling":
        for number, line in enumerate(code.splitlines(), 1):
            match = re.search(r'#\s*include\s*"([^"]+)"', line)
            if not match:
                continue
            include = match.group(1)
            if not include.startswith(PROFILING_ALLOWED_INCLUDES):
                errors.append(_error(
                    rel, number, "profiling-seam",
                    f"profiler includes \"{include}\" — src/profiling/ "
                    f"may only see profiling/ and platform/ (the trace "
                    f"is its whole world; simulator internals stay "
                    f"behind the tracer seam)"))


def check_checker_tests(repo_root, checker_names, errors):
    """Rule 4: every registered checker has tests/sa/checker_<n>_test.cc."""
    for name in checker_names:
        rel_test = os.path.join("tests", "sa", f"checker_{name}_test.cc")
        if not os.path.isfile(os.path.join(repo_root, rel_test)):
            errors.append(_error(
                CHECKER_HOME, 1, "checker-tests",
                f"checker \"{name}\" is registered but {rel_test} does "
                f"not exist — every checker needs pinned TP/TN coverage"))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    as_json = "--json" in argv
    if as_json:
        argv.remove("--json")
    repo_root = os.path.abspath(
        argv[0] if argv
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir))

    errors = []
    kind_names = seeded_kind_names(repo_root, errors)
    checker_names = registered_checkers(repo_root, errors)

    checked = 0
    for path in source_files(repo_root):
        rel = os.path.relpath(path, repo_root)
        check_file(path, rel, kind_names, errors)
        checked += 1
    check_checker_tests(repo_root, checker_names, errors)

    if as_json:
        print(json.dumps(errors, indent=2))
        return 1 if errors else 0

    for error in errors:
        print(f"lint_rules: {error['file']}:{error['line']}: "
              f"[{error['rule']}] {error['message']}", file=sys.stderr)
    if errors:
        print(f"lint_rules: FAIL ({len(errors)} violation(s) in "
              f"{checked} files)", file=sys.stderr)
        return 1
    print(f"lint_rules: OK — {checked} files, "
          f"{len(kind_names)} interned kinds guarded, "
          f"{len(checker_names)} checkers covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
