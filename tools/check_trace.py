#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON produced by --trace-out.

Checks, per (pid, tid) lane in array order:
  - every E closes a matching B (a simple stack suffices because the
    tracer emits B/E pairs, not X complete events);
  - timestamps of B/E events are non-decreasing (instant and flow
    events use the cost-aware clock mid-dispatch and are exempt);
and globally:
  - async b/e events pair up by (cat, id) with begin before end;
  - flow events (s/t/f) carry a numeric id, never restart an id (the
    tracer allocates each once), never step/end an id that was not
    started, carry no binding other than bp="e", and sit inside an open
    B span on their lane — both the producer side (emitted at a post
    site inside the producer's dispatch) and the consumer side (bound
    to the dispatch the message caused), so the critical-path analyzer
    can always resolve an enclosing span;
  - metadata names every (pid, tid) that carries events.

Flows still open at the end of the array are NOT errors: self-reposting
chains (gcTick) legitimately cross the trace cut. They are reported as
an informational note only.

Usage:
  check_trace.py TRACE.json [--require-episodes]

--require-episodes additionally demands at least one completed
"episode" async span (a rotation that ran to activityResumed).
Exit status is non-zero on any violation.
"""

import argparse
import json
import sys


def fail(errors, message):
    errors.append(message)


def check(trace, require_episodes=False, notes=None):
    """Validate the trace; returns the list of violations.

    `notes`, when given a list, collects informational observations
    (currently: flow chains still open at the trace cut).
    """
    errors = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]

    named_lanes = set()
    named_pids = set()
    stacks = {}       # (pid, tid) -> [name, ...] of open B spans
    last_ts = {}      # (pid, tid) -> ts of the previous B/E event
    async_open = {}   # (cat, id) -> name
    flows_open = {}   # flow id -> name of its start event
    flows_done = set()
    episodes_done = 0

    for index, event in enumerate(events):
        phase = event.get("ph")
        where = f"event[{index}] ({event.get('name', '?')})"
        if phase == "M":
            if event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
            elif event.get("name") == "thread_name":
                named_lanes.add((event.get("pid"), event.get("tid")))
            continue

        lane = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            fail(errors, f"{where}: non-numeric ts {ts!r}")
            continue

        if phase in ("B", "E"):
            previous = last_ts.get(lane)
            if previous is not None and ts < previous:
                fail(errors,
                     f"{where}: ts {ts} < previous {previous} on lane "
                     f"pid={lane[0]} tid={lane[1]}")
            last_ts[lane] = ts

        if phase == "B":
            stacks.setdefault(lane, []).append(event.get("name", ""))
        elif phase == "E":
            stack = stacks.get(lane)
            if not stack:
                fail(errors, f"{where}: E with no open B on lane {lane}")
            else:
                stack.pop()
        elif phase == "b":
            key = (event.get("cat"), event.get("id"))
            if key in async_open:
                fail(errors, f"{where}: async begin {key} already open")
            async_open[key] = event.get("name", "")
        elif phase == "e":
            key = (event.get("cat"), event.get("id"))
            if key not in async_open:
                fail(errors, f"{where}: async end {key} with no begin")
            else:
                del async_open[key]
                if event.get("cat") == "episode":
                    episodes_done += 1
        elif phase in ("s", "t", "f"):
            flow_id = event.get("id")
            if not isinstance(flow_id, (int, float)):
                fail(errors, f"{where}: flow '{phase}' without numeric id")
            elif phase == "s":
                if flow_id in flows_open or flow_id in flows_done:
                    fail(errors,
                         f"{where}: flow start reuses id {flow_id}")
                else:
                    flows_open[flow_id] = event.get("name", "")
            elif flow_id not in flows_open:
                fail(errors, f"{where}: flow '{phase}' id {flow_id} has no "
                             f"open flow start")
            elif phase == "f":
                del flows_open[flow_id]
                flows_done.add(flow_id)
            bp = event.get("bp")
            if bp is not None and bp != "e":
                fail(errors, f"{where}: flow binding bp={bp!r} (only "
                             f"\"e\" is valid)")
            if not stacks.get(lane):
                fail(errors, f"{where}: flow '{phase}' outside any open B "
                             f"span on lane {lane}")
        elif phase == "i":
            pass  # cost-aware clock; exempt from lane monotonicity
        else:
            fail(errors, f"{where}: unknown phase {phase!r}")

        if phase != "M" and lane not in named_lanes:
            fail(errors, f"{where}: lane {lane} has no thread_name metadata")
            named_lanes.add(lane)  # report each lane once

    for lane, stack in stacks.items():
        if stack:
            fail(errors, f"lane {lane}: {len(stack)} unclosed B span(s), "
                         f"innermost '{stack[-1]}'")
    for key, name in async_open.items():
        fail(errors, f"async span {key} ('{name}') never ended")
    if notes is not None and flows_open:
        notes.append(f"{len(flows_open)} flow chain(s) still open at the "
                     f"trace cut (self-reposting chains; not an error)")
    if require_episodes and episodes_done == 0:
        fail(errors, "no completed 'episode' async span found")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require-episodes", action="store_true",
                        help="require >= 1 completed episode async span")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_trace: {args.trace}: {error}", file=sys.stderr)
        return 1

    notes = []
    errors = check(trace, require_episodes=args.require_episodes,
                   notes=notes)
    for note in notes:
        print(f"check_trace: note: {note}")
    if errors:
        for error in errors:
            print(f"check_trace: {error}", file=sys.stderr)
        print(f"check_trace: FAIL ({len(errors)} problem(s)) in {args.trace}",
              file=sys.stderr)
        return 1

    events = trace["traceEvents"]
    real = sum(1 for e in events if e.get("ph") != "M")
    print(f"check_trace: OK — {real} events "
          f"({len(events) - real} metadata) in {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
